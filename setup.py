"""Package metadata (legacy setup.py so ``pip install -e .`` works
offline, without fetching a PEP 517 build backend)."""

from setuptools import find_packages, setup

setup(
    name="riot-repro",
    version="0.1.0",
    description=("Reproduction of RIOT: I/O-Efficient Numerical "
                 "Computing without SQL (CIDR 2009)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
)
