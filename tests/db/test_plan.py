"""Tests for logical plan nodes: schemas, cardinality, ordering, SQL."""

import numpy as np
import pytest

from repro.db import (Arith, Cmp, Col, Const, Database, Filter, GroupAgg,
                      Join, Limit, Project, Rename, Scan, Schema, Sort,
                      Values, walk)

VEC = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))


@pytest.fixture
def db():
    db = Database(memory_bytes=1 << 20)
    db.load_table("T", VEC, {
        "I": np.arange(1, 1001, dtype=np.int64),
        "V": np.ones(1000)})
    return db


class TestSchemas:
    def test_scan_qualifies_columns(self, db):
        schema = Scan("T").output_schema(db.catalog)
        assert schema.names == ["T.I", "T.V"]

    def test_scan_alias(self, db):
        schema = Scan("T", "E1").output_schema(db.catalog)
        assert schema.names == ["E1.I", "E1.V"]

    def test_project_types_inferred(self, db):
        plan = Project(Scan("T"), [
            ("I", Col("T.I")),
            ("half", Arith("/", Col("T.I"), Const(2)))])
        schema = plan.output_schema(db.catalog)
        assert schema.column("I").type == "INT"
        assert schema.column("half").type == "DOUBLE"  # division

    def test_int_arith_stays_int(self, db):
        plan = Project(Scan("T"), [
            ("J", Arith("+", Col("T.I"), Const(1)))])
        assert plan.output_schema(db.catalog).column("J").type == "INT"

    def test_join_concatenates_schemas(self, db):
        plan = Join(Scan("T", "A"), Scan("T", "B"), ["A.I"], ["B.I"])
        assert plan.output_schema(db.catalog).names == \
            ["A.I", "A.V", "B.I", "B.V"]

    def test_groupagg_schema(self, db):
        plan = GroupAgg(Scan("T"), ["T.I"], [
            ("s", "SUM", Col("T.V")), ("c", "COUNT", Col("T.V"))])
        schema = plan.output_schema(db.catalog)
        assert schema.names == ["I", "s", "c"]
        assert schema.column("c").type == "INT"

    def test_rename_schema(self, db):
        plan = Rename(Scan("T"), {"T.I": "D.I", "T.V": "D.V"})
        assert plan.output_schema(db.catalog).names == ["D.I", "D.V"]

    def test_duplicate_outputs_rejected(self, db):
        with pytest.raises(ValueError):
            Project(Scan("T"), [("I", Col("T.I")), ("I", Col("T.V"))])


class TestCardinality:
    def test_scan_exact(self, db):
        assert Scan("T").est_rows(db.catalog) == 1000

    def test_filter_reduces(self, db):
        plan = Filter(Scan("T"), Cmp(">", Col("T.V"), Const(0)))
        assert plan.est_rows(db.catalog) < 1000

    def test_join_key_key_heuristic(self, db):
        plan = Join(Scan("T", "A"), Scan("T", "B"), ["A.I"], ["B.I"])
        assert plan.est_rows(db.catalog) == 1000

    def test_limit_caps(self, db):
        assert Limit(Scan("T"), 10).est_rows(db.catalog) == 10

    def test_values_exact(self, db):
        v = Values({"I": np.arange(3), "V": np.zeros(3)}, VEC)
        assert v.est_rows(db.catalog) == 3


class TestOrdering:
    def test_scan_inherits_clustering(self, db):
        assert Scan("T").ordering(db.catalog) == ("T.I",)

    def test_filter_preserves(self, db):
        plan = Filter(Scan("T"), Cmp(">", Col("T.V"), Const(0)))
        assert plan.ordering(db.catalog) == ("T.I",)

    def test_project_maps_through_cols(self, db):
        plan = Project(Scan("T"), [("I", Col("T.I")),
                                   ("V", Col("T.V"))])
        assert plan.ordering(db.catalog) == ("I",)

    def test_project_breaks_on_expression(self, db):
        plan = Project(Scan("T"), [
            ("J", Arith("+", Col("T.I"), Const(1)))])
        assert plan.ordering(db.catalog) == ()

    def test_sort_declares_keys(self, db):
        assert Sort(Scan("T"), ["T.V"]).ordering(db.catalog) == ("T.V",)


class TestSQLRendering:
    def test_full_query_renders(self, db):
        plan = Project(
            Filter(Join(Scan("T", "A"), Scan("T", "B"),
                        ["A.I"], ["B.I"]),
                   Cmp(">", Col("A.V"), Const(0))),
            [("I", Col("A.I")),
             ("V", Arith("+", Col("A.V"), Col("B.V")))])
        sql = plan.to_sql(db.catalog)
        assert "JOIN" in sql and "WHERE" in sql and "SELECT" in sql
        assert "(A.V + B.V) AS V" in sql

    def test_groupby_renders(self, db):
        plan = GroupAgg(Scan("T"), ["T.I"],
                        [("s", "SUM", Col("T.V"))])
        sql = plan.to_sql(db.catalog)
        assert "GROUP BY T.I" in sql
        assert "SUM(T.V) AS s" in sql

    def test_walk_visits_all(self, db):
        plan = Filter(Join(Scan("T", "A"), Scan("T", "B"),
                           ["A.I"], ["B.I"]),
                      Cmp(">", Col("A.V"), Const(0)))
        kinds = [type(n).__name__ for n in walk(plan)]
        assert kinds.count("Scan") == 2
        assert "Join" in kinds and "Filter" in kinds
