"""Tests for the vectorized executor: scans, sort, aggregation, limits."""

import numpy as np
import pytest

from repro.db import (Arith, Cmp, Col, Const, Database, Filter, GroupAgg,
                      Limit, Project, Scan, Schema, Sort, Values)
from repro.db.executor import ExternalSortOp, lex_leq, lexsort_batch

VEC = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))


@pytest.fixture
def db():
    return Database(memory_bytes=2 * 1024 * 1024,
                    work_mem_bytes=256 * 1024)


def load(db, name, values):
    n = len(values)
    return db.load_table(name, VEC, {
        "I": np.arange(1, n + 1, dtype=np.int64),
        "V": np.asarray(values, dtype=np.float64)})


class TestScanFilterProject:
    def test_seq_scan(self, db, rng):
        values = rng.standard_normal(5000)
        load(db, "T", values)
        out = db.query(Scan("T"))
        assert np.allclose(out["T.V"], values)

    def test_filter(self, db):
        load(db, "T", np.arange(100, dtype=float))
        out = db.query(Filter(Scan("T"),
                              Cmp(">=", Col("T.V"), Const(95.0))))
        assert sorted(out["T.V"].tolist()) == [95, 96, 97, 98, 99]

    def test_project_expression(self, db):
        load(db, "T", np.asarray([1.0, 2.0, 3.0]))
        plan = Project(Scan("T"), [
            ("I", Col("T.I")),
            ("V", Arith("*", Col("T.V"), Const(10.0)))])
        out = db.query(plan)
        assert np.allclose(out["V"], [10, 20, 30])

    def test_project_scalar_broadcast(self, db):
        load(db, "T", np.ones(10))
        plan = Project(Scan("T"), [("C", Const(7.0))])
        out = db.query(plan)
        assert np.allclose(out["C"], np.full(10, 7.0))

    def test_values_relation(self, db):
        plan = Values({"I": np.asarray([1, 2]),
                       "V": np.asarray([5.0, 6.0])},
                      VEC, name="S")
        out = db.query(plan)
        assert np.allclose(out["S.V"], [5.0, 6.0])

    def test_limit_stops_early(self, db):
        load(db, "T", np.arange(100_000, dtype=float))
        db.pool.clear()
        db.reset_stats()
        out = db.query(Limit(Scan("T"), 10))
        assert out["T.V"].shape[0] == 10
        # Only the first scan batch should have been read.
        assert db.io_stats.reads <= 20

    def test_limit_zero(self, db):
        load(db, "T", np.ones(10))
        out = db.query(Limit(Scan("T"), 0))
        assert out["T.V"].shape[0] == 0


class TestSortHelpers:
    def test_lexsort_batch(self):
        batch = {"a": np.asarray([2, 1, 2, 1]),
                 "b": np.asarray([1, 2, 0, 1])}
        order = lexsort_batch(batch, ["a", "b"])
        assert batch["a"][order].tolist() == [1, 1, 2, 2]
        assert batch["b"][order].tolist() == [1, 2, 0, 1]

    def test_lex_leq(self):
        cols = [np.asarray([1, 1, 2, 3]), np.asarray([5, 9, 0, 0])]
        mask = lex_leq(cols, (1, 9))
        assert mask.tolist() == [True, True, False, False]

    def test_lex_leq_equal_bound(self):
        cols = [np.asarray([4])]
        assert lex_leq(cols, (4,)).tolist() == [True]


class TestExternalSort:
    def test_in_memory_sort(self, db, rng):
        values = rng.standard_normal(1000)
        load(db, "T", values)
        out = db.query(Sort(Scan("T"), ["T.V"]))
        assert np.allclose(out["T.V"], np.sort(values))

    def test_spilling_sort(self, rng):
        """Input much larger than work_mem must spill and still sort."""
        db = Database(memory_bytes=4 * 1024 * 1024,
                      work_mem_bytes=64 * 1024)
        values = rng.standard_normal(200_000)
        load(db, "T", values)
        phys = db.physical_plan(Sort(Scan("T"), ["T.V"]))
        batches = list(phys.execute(db.ctx))
        out = np.concatenate([b["T.V"] for b in batches])
        assert np.allclose(out, np.sort(values))
        sort_op = phys
        assert isinstance(sort_op, ExternalSortOp)
        assert sort_op.spilled_runs > 1

    def test_spill_io_counted(self, rng):
        db = Database(memory_bytes=4 * 1024 * 1024,
                      work_mem_bytes=64 * 1024)
        values = rng.standard_normal(200_000)
        load(db, "T", values)
        db.pool.clear()
        db.reset_stats()
        db.query(Sort(Scan("T"), ["T.V"]))
        # Must at least write and re-read every spilled run block.
        table_pages = db.table("T").num_pages
        assert db.io_stats.writes >= table_pages // 2

    def test_multikey_sort(self, db, rng):
        n = 5000
        db.load_table("T2", Schema.of(("A", "INT"), ("B", "INT")), {
            "A": rng.integers(0, 10, n),
            "B": rng.integers(0, 1000, n)})
        out = db.query(Sort(Scan("T2"), ["T2.A", "T2.B"]))
        a, b = out["T2.A"], out["T2.B"]
        packed = a * 10_000 + b
        assert np.all(np.diff(packed) >= 0)

    def test_sort_skipped_when_already_sorted(self, db):
        load(db, "T", np.ones(100))
        phys = db.physical_plan(Sort(Scan("T"), ["T.I"]))
        # Table is clustered on I: plan must not add a sort operator.
        assert not isinstance(phys, ExternalSortOp)


class TestAggregation:
    def test_scalar_aggregates(self, db, rng):
        values = rng.standard_normal(10_000)
        load(db, "T", values)
        plan = GroupAgg(Scan("T"), [], [
            ("s", "SUM", Col("T.V")),
            ("c", "COUNT", Col("T.V")),
            ("m", "AVG", Col("T.V")),
            ("lo", "MIN", Col("T.V")),
            ("hi", "MAX", Col("T.V"))])
        out = db.query(plan)
        assert out["s"][0] == pytest.approx(values.sum())
        assert out["c"][0] == 10_000
        assert out["m"][0] == pytest.approx(values.mean())
        assert out["lo"][0] == pytest.approx(values.min())
        assert out["hi"][0] == pytest.approx(values.max())

    def test_grouped_sum(self, db, rng):
        n = 20_000
        groups = rng.integers(0, 57, n)
        values = rng.standard_normal(n)
        db.load_table("G", Schema.of(("K", "INT"), ("V", "DOUBLE")), {
            "K": groups, "V": values})
        plan = GroupAgg(Scan("G"), ["G.K"],
                        [("total", "SUM", Col("G.V"))])
        out = db.query(plan)
        assert out["K"].shape[0] == 57
        for k in (0, 23, 56):
            got = out["total"][out["K"] == k][0]
            assert got == pytest.approx(values[groups == k].sum())

    def test_group_spanning_batches(self, db):
        """One giant group across many pages must aggregate once."""
        n = 30_000
        db.load_table("G", Schema.of(("K", "INT"), ("V", "DOUBLE")), {
            "K": np.zeros(n, dtype=np.int64),
            "V": np.ones(n)})
        plan = GroupAgg(Scan("G"), ["G.K"],
                        [("total", "SUM", Col("G.V"))])
        out = db.query(plan)
        assert out["K"].shape[0] == 1
        assert out["total"][0] == pytest.approx(n)

    def test_count_and_avg_per_group(self, db, rng):
        n = 5000
        groups = np.sort(rng.integers(0, 8, n))
        values = rng.standard_normal(n)
        db.load_table("G", Schema.of(("K", "INT"), ("V", "DOUBLE")), {
            "K": groups, "V": values})
        plan = GroupAgg(Scan("G"), ["G.K"], [
            ("c", "COUNT", Col("G.V")),
            ("m", "AVG", Col("G.V"))])
        out = db.query(plan)
        for i, k in enumerate(out["K"]):
            mask = groups == k
            assert out["c"][i] == mask.sum()
            assert out["m"][i] == pytest.approx(values[mask].mean())

    def test_unknown_aggregate_rejected(self, db):
        load(db, "T", np.ones(5))
        with pytest.raises(ValueError):
            GroupAgg(Scan("T"), [], [("x", "MEDIAN", Col("T.V"))])


class TestExplain:
    def test_explain_is_readable(self, db):
        load(db, "T", np.ones(10))
        text = db.explain(Filter(Scan("T"),
                                 Cmp(">", Col("T.V"), Const(0))))
        assert "SeqScan" in text
