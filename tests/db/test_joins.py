"""Tests for merge, hash (grace), and index-nested-loop joins."""

import numpy as np
import pytest

from repro.db import (Arith, Col, Database, Join, Project, Scan, Schema)
from repro.db.executor import SeqScan
from repro.db.joins import (HashJoin, IndexNestedLoopJoin, MergeJoin,
                            expand_ranges)
from repro.db.executor import run_to_batch

VEC = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))


@pytest.fixture
def db():
    return Database(memory_bytes=2 * 1024 * 1024,
                    work_mem_bytes=128 * 1024)


def load(db, name, values, keys=None):
    n = len(values)
    keys = keys if keys is not None else np.arange(1, n + 1)
    return db.load_table(name, VEC, {
        "I": np.asarray(keys, dtype=np.int64),
        "V": np.asarray(values, dtype=np.float64)})


class TestExpandRanges:
    def test_basic(self):
        out = expand_ranges(np.asarray([0, 10]), np.asarray([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty(self):
        assert expand_ranges(np.asarray([5]), np.asarray([0])).size == 0


class TestMergeJoin:
    def test_aligned_vectors(self, db, rng):
        x = rng.standard_normal(30_000)
        y = rng.standard_normal(30_000)
        load(db, "X", x)
        load(db, "Y", y)
        left = SeqScan(db.table("X"), "X")
        right = SeqScan(db.table("Y"), "Y")
        op = MergeJoin(left, right, "X.I", "Y.I")
        out = run_to_batch(op, db.ctx)
        order = np.argsort(out["X.I"])
        assert np.allclose(out["X.V"][order], x)
        assert np.allclose(out["Y.V"][order], y)

    def test_partial_overlap(self, db):
        load(db, "A", np.arange(100, dtype=float),
             keys=np.arange(1, 101))
        load(db, "B", np.arange(50, dtype=float),
             keys=np.arange(51, 101))
        op = MergeJoin(SeqScan(db.table("A"), "A"),
                       SeqScan(db.table("B"), "B"), "A.I", "B.I")
        out = run_to_batch(op, db.ctx)
        assert out["A.I"].shape[0] == 50
        assert set(out["A.I"].tolist()) == set(range(51, 101))

    def test_empty_side(self, db):
        load(db, "A", np.arange(10, dtype=float))
        load(db, "B", np.empty(0))
        op = MergeJoin(SeqScan(db.table("A"), "A"),
                       SeqScan(db.table("B"), "B"), "A.I", "B.I")
        out = run_to_batch(op, db.ctx)
        assert out["A.I"].shape[0] == 0

    def test_merge_join_is_pipelined(self, db, rng):
        """Merge join spills nothing: I/O equals the two input scans."""
        x = rng.standard_normal(50_000)
        load(db, "X", x)
        load(db, "Y", x)
        db.flush()
        db.pool.clear()
        db.reset_stats()
        op = MergeJoin(SeqScan(db.table("X"), "X"),
                       SeqScan(db.table("Y"), "Y"), "X.I", "Y.I")
        for _ in op.execute(db.ctx):
            pass
        pages = db.table("X").num_pages + db.table("Y").num_pages
        assert db.io_stats.reads == pages
        assert db.io_stats.writes == 0


class TestHashJoin:
    def test_in_memory(self, db, rng):
        x = rng.standard_normal(5000)
        sample = rng.choice(np.arange(1, 5001), 100, replace=False)
        load(db, "X", x)
        load(db, "S", sample.astype(float))
        probe = SeqScan(db.table("X"), "X")
        build = SeqScan(db.table("S"), "S")
        op = HashJoin(probe, build, "X.I", "S.V")
        out = run_to_batch(op, db.ctx)
        assert out["X.I"].shape[0] == 100
        assert np.allclose(np.sort(out["X.V"]),
                           np.sort(x[np.sort(sample) - 1]))

    def test_duplicate_keys_both_sides(self, db):
        db.load_table("L", Schema.of(("K", "INT"), ("V", "DOUBLE")), {
            "K": np.asarray([1, 1, 2]), "V": np.asarray([1., 2., 3.])})
        db.load_table("R", Schema.of(("K", "INT"), ("W", "DOUBLE")), {
            "K": np.asarray([1, 1, 3]), "W": np.asarray([10., 20., 30.])})
        op = HashJoin(SeqScan(db.table("L"), "L"),
                      SeqScan(db.table("R"), "R"), "L.K", "R.K")
        out = run_to_batch(op, db.ctx)
        # keys 1x1 -> 2*2 = 4 rows
        assert out["L.K"].shape[0] == 4

    def test_grace_partitioning(self, rng):
        """Build side exceeding work_mem spills partitions and still joins."""
        db = Database(memory_bytes=4 * 1024 * 1024,
                      work_mem_bytes=32 * 1024)
        n = 100_000
        x = rng.standard_normal(n)
        load(db, "X", x)
        load(db, "Y", x * 2)
        op = HashJoin(SeqScan(db.table("X"), "X"),
                      SeqScan(db.table("Y"), "Y"), "X.I", "Y.I")
        db.pool.clear()
        db.reset_stats()
        total = 0
        checked = False
        for batch in op.execute(db.ctx):
            total += batch["X.I"].shape[0]
            if not checked:
                assert np.allclose(batch["Y.V"], batch["X.V"] * 2)
                checked = True
        assert total == n
        assert op.partitions_used > 0
        assert db.io_stats.writes > 0  # partitions hit the device

    def test_no_matches(self, db):
        load(db, "A", np.ones(10), keys=np.arange(1, 11))
        load(db, "B", np.ones(10), keys=np.arange(100, 110))
        op = HashJoin(SeqScan(db.table("A"), "A"),
                      SeqScan(db.table("B"), "B"), "A.I", "B.I")
        out = run_to_batch(op, db.ctx)
        assert out["A.I"].shape[0] == 0


class TestIndexNestedLoopJoin:
    def test_probe_values(self, db, rng):
        x = rng.standard_normal(50_000)
        load(db, "X", x)
        sample = np.sort(rng.choice(np.arange(1, 50_001), 100,
                                    replace=False))
        load(db, "S", sample.astype(float))
        outer = SeqScan(db.table("S"), "S")
        index = db.catalog.index_on("X")
        op = IndexNestedLoopJoin(outer, db.table("X"), index, "X", "S.V")
        out = run_to_batch(op, db.ctx)
        assert np.allclose(out["X.V"], x[sample - 1])

    def test_io_is_tiny_versus_scan(self, db, rng):
        """The selective-evaluation property: probes << full scan."""
        x = rng.standard_normal(200_000)
        load(db, "X", x)
        sample = np.sort(rng.choice(np.arange(1, 200_001), 100,
                                    replace=False))
        load(db, "S", sample.astype(float))
        db.flush()
        db.pool.clear()
        db.reset_stats()
        outer = SeqScan(db.table("S"), "S")
        index = db.catalog.index_on("X")
        op = IndexNestedLoopJoin(outer, db.table("X"), index, "X", "S.V")
        for _ in op.execute(db.ctx):
            pass
        probe_io = db.io_stats.total
        scan_pages = db.table("X").num_pages
        assert probe_io < scan_pages / 2

    def test_missing_probe_keys_dropped(self, db):
        load(db, "X", np.arange(10, dtype=float))
        load(db, "S", np.asarray([5.0, 99.0]))
        outer = SeqScan(db.table("S"), "S")
        index = db.catalog.index_on("X")
        op = IndexNestedLoopJoin(outer, db.table("X"), index, "X", "S.V")
        out = run_to_batch(op, db.ctx)
        assert out["X.I"].tolist() == [5]


class TestLogicalJoinPlans:
    def test_join_plan_correctness(self, db, rng):
        x = rng.standard_normal(2000)
        y = rng.standard_normal(2000)
        load(db, "X", x)
        load(db, "Y", y)
        plan = Project(
            Join(Scan("X"), Scan("Y"), ["X.I"], ["Y.I"]),
            [("I", Col("X.I")),
             ("V", Arith("+", Col("X.V"), Col("Y.V")))])
        out = db.query(plan)
        order = np.argsort(out["I"])
        assert np.allclose(out["V"][order], x + y)
