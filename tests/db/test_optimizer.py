"""Tests for the optimizer: view expansion, flattening, plan choice.

These verify the paper's §4 claims structurally: composed views flatten into
one query, self-joins of the same base table on the primary key collapse
(the ``FROM X, Y, S`` form), a tiny driving table selects the
index-nested-loop plan, aligned scans select merge join, and matrix multiply
gets the hash-join + sort + aggregate plan.
"""

import numpy as np
import pytest

from repro.db import (Arith, Cmp, Col, Const, Database, Filter, Func,
                      GroupAgg, Join, Project, Scan, Schema)
from repro.db.executor import (ExternalSortOp, FilterOp, IndexRangeScan,
                               SeqScan, SortAggOp)
from repro.db.joins import HashJoin, IndexNestedLoopJoin, MergeJoin
from repro.db.optimizer import expand_views, flatten
from repro.db.plan import walk

VEC = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))
MAT = Schema.of(("I", "INT"), ("J", "INT"), ("V", "DOUBLE"),
                primary_key=("I", "J"))


@pytest.fixture
def db(rng):
    db = Database(memory_bytes=8 * 1024 * 1024)
    # Large enough that 100 index probes beat rescanning the table under
    # the optimizer's random_page_cost model (the Figure-1 regime).
    n = 600_000
    for name in ("X", "Y"):
        db.load_table(name, VEC, {
            "I": np.arange(1, n + 1, dtype=np.int64),
            "V": rng.standard_normal(n)})
    sample = np.sort(rng.choice(np.arange(1, n + 1), 100, replace=False))
    db.load_table("S", VEC, {
        "I": np.arange(1, 101, dtype=np.int64),
        "V": sample.astype(np.float64)})
    return db


def _d_view_plan():
    """d = sqrt((x-1)^2) + sqrt((y-2)^2), built from two sub-views."""
    expr = Arith(
        "+",
        Func("SQRT", Func("POW", Arith("-", Col("X.V"), Const(1.0)),
                          Const(2.0))),
        Func("SQRT", Func("POW", Arith("-", Col("Y.V"), Const(2.0)),
                          Const(2.0))))
    return Project(Join(Scan("X"), Scan("Y"), ["X.I"], ["Y.I"]),
                   [("I", Col("X.I")), ("V", expr)])


def _ops(phys):
    out = []
    stack = [phys]
    while stack:
        node = stack.pop()
        out.append(type(node).__name__)
        stack.extend(getattr(node, "children", ()))
    return out


class TestViewExpansion:
    def test_expansion_inlines_definition(self, db):
        db.create_view("D", _d_view_plan())
        expanded = expand_views(Scan("D"), db.catalog)
        names = [n.name for n in walk(expanded)
                 if isinstance(n, Scan)]
        assert set(names) == {"X", "Y"}

    def test_self_join_of_view_gets_unique_aliases(self, db):
        db.create_view("D", _d_view_plan())
        two = Join(Scan("D", "D1"), Scan("D", "D2"),
                   ["D1.I"], ["D2.I"])
        expanded = expand_views(two, db.catalog)
        aliases = [n.alias for n in walk(expanded)
                   if isinstance(n, Scan)]
        assert len(aliases) == len(set(aliases)) == 4

    def test_nested_views_expand_recursively(self, db):
        db.create_view("D", _d_view_plan())
        db.create_view("E", Project(Scan("D"), [
            ("I", Col("D.I")),
            ("V", Arith("*", Col("D.V"), Const(2.0)))]))
        expanded = expand_views(Scan("E"), db.catalog)
        names = {n.name for n in walk(expanded) if isinstance(n, Scan)}
        assert names == {"X", "Y"}


class TestFlatten:
    def test_spj_block_shape(self, db):
        db.create_view("D", _d_view_plan())
        expanded = expand_views(Scan("D"), db.catalog)
        block = flatten(expanded, db.catalog)
        assert block is not None
        assert len(block.sources) == 2
        assert len(block.conds) == 1
        assert [name for name, _ in block.outputs] == ["D.I", "D.V"]

    def test_groupagg_does_not_flatten(self, db):
        plan = GroupAgg(Scan("X"), [], [("s", "SUM", Col("X.V"))])
        assert flatten(plan, db.catalog) is None


class TestPlanChoices:
    def test_full_evaluation_uses_merge_join(self, db):
        db.create_view("D", _d_view_plan())
        phys = db.physical_plan(Scan("D"))
        assert "MergeJoin" in _ops(phys)
        assert "HashJoin" not in _ops(phys)

    def test_selective_evaluation_uses_inlj(self, db):
        db.create_view("D", _d_view_plan())
        z = Project(Join(Scan("D"), Scan("S"), ["D.I"], ["S.V"]),
                    [("I", Col("S.I")), ("V", Col("D.V"))])
        phys = db.physical_plan(z)
        ops = _ops(phys)
        assert ops.count("IndexNestedLoopJoin") == 2
        assert "MergeJoin" not in ops

    def test_inlj_outer_is_the_sample(self, db):
        db.create_view("D", _d_view_plan())
        z = Project(Join(Scan("D"), Scan("S"), ["D.I"], ["S.V"]),
                    [("I", Col("S.I")), ("V", Col("D.V"))])
        phys = db.physical_plan(z)
        # Walk to the deepest scan: it must be S.
        node = phys
        while getattr(node, "children", ()):
            node = node.children[0]
        assert isinstance(node, SeqScan)
        assert node.table.name == "S"

    def test_matmul_plan_is_hash_join_sort_aggregate(self, db, rng):
        for name, (r, c) in (("A", (40, 30)), ("B", (30, 20))):
            ii, jj = np.meshgrid(np.arange(1, r + 1),
                                 np.arange(1, c + 1), indexing="ij")
            db.load_table(name, MAT, {
                "I": ii.ravel(), "J": jj.ravel(),
                "V": rng.standard_normal(r * c)})
        mm = GroupAgg(Join(Scan("A"), Scan("B"), ["A.J"], ["B.I"]),
                      ["A.I", "B.J"],
                      [("V", "SUM", Arith("*", Col("A.V"), Col("B.V")))])
        ops = _ops(db.physical_plan(mm))
        assert "HashJoin" in ops
        assert "ExternalSortOp" in ops
        assert "SortAggOp" in ops

    def test_pk_range_filter_uses_index_scan(self, db):
        plan = Filter(Scan("X"), Cmp("<=", Col("X.I"), Const(10)))
        ops = _ops(db.physical_plan(plan))
        assert "IndexRangeScan" in ops

    def test_wide_range_prefers_seq_scan(self, db):
        plan = Filter(Scan("X"),
                      Cmp("<=", Col("X.I"), Const(580_000)))
        ops = _ops(db.physical_plan(plan))
        assert "IndexRangeScan" not in ops

    def test_non_key_filter_stays_filter(self, db):
        plan = Filter(Scan("X"), Cmp(">", Col("X.V"), Const(0.0)))
        ops = _ops(db.physical_plan(plan))
        assert "FilterOp" in ops
        assert "IndexRangeScan" not in ops


class TestSelfJoinElimination:
    def test_same_table_twice_collapses(self, db):
        """x + x must scan X once, not self-join it."""
        plan = Project(
            Join(Scan("X", "E1"), Scan("X", "E2"), ["E1.I"], ["E2.I"]),
            [("I", Col("E1.I")),
             ("V", Arith("+", Col("E1.V"), Col("E2.V")))])
        phys = db.physical_plan(plan)
        scans = [o for o in _ops(phys) if o == "SeqScan"]
        assert len(scans) == 1
        out = db.query(plan)
        x = np.concatenate([b["V"] for b in db.table("X").scan()])
        order = np.argsort(out["I"])
        assert np.allclose(out["V"][order], 2 * x)

    def test_example1_expansion_scans_each_input_once(self, db):
        """The paper's expanded query is FROM X, Y, S — one alias each."""
        expr1 = Func("SQRT", Func("POW", Arith("-", Col("X.V"),
                                               Const(0.0)), Const(2.0)))
        expr2 = Func("SQRT", Func("POW", Arith("-", Col("X.V"),
                                               Const(9.0)), Const(2.0)))
        v1 = Project(Scan("X"), [("I", Col("X.I")), ("V", expr1)])
        v2 = Project(Scan("X"), [("I", Col("X.I")), ("V", expr2)])
        db.create_view("S1", v1)
        db.create_view("S2", v2)
        d = Project(Join(Scan("S1"), Scan("S2"), ["S1.I"], ["S2.I"]),
                    [("I", Col("S1.I")),
                     ("V", Arith("+", Col("S1.V"), Col("S2.V")))])
        phys = db.physical_plan(d)
        scans = [o for o in _ops(phys) if o == "SeqScan"]
        assert len(scans) == 1  # X referenced twice -> single scan


class TestNestedViewAliasCollisions:
    def test_sibling_view_bodies_reusing_aliases(self, db, rng):
        """Regression (found by fuzzing): two view bodies both using the
        alias E1 must not collide after inlining — the Rename prefixes of
        nested expansions need freshening, not just Scan aliases."""
        v1 = Project(Scan("X", "E1"), [
            ("I", Col("E1.I")),
            ("V", Arith("+", Col("E1.V"), Const(1.0)))])
        db.create_view("W1", v1)
        # W2's body scans the VIEW W1 under alias E1 and the TABLE Y
        # under alias E2 — the inner expansion of W1 reintroduces an
        # E1-prefixed namespace beside the Scan alias.
        v2 = Project(
            Join(Scan("W1", "E1"), Scan("Y", "E2"),
                 ["E1.I"], ["E2.I"]),
            [("I", Col("E1.I")),
             ("V", Arith("*", Col("E1.V"), Col("E2.V")))])
        db.create_view("W2", v2)
        # W3 composes once more, reusing E1 yet again.
        v3 = Project(Scan("W2", "E1"), [
            ("I", Col("E1.I")),
            ("V", Arith("-", Col("E1.V"), Const(2.0)))])
        db.create_view("W3", v3)
        out = db.query(Scan("W3"))
        x = np.concatenate([b["V"] for b in db.table("X").scan()])
        y = np.concatenate([b["V"] for b in db.table("Y").scan()])
        order = np.argsort(out["W3.I"])
        assert np.allclose(out["W3.V"][order], (x + 1) * y - 2)


class TestCorrectnessUnderOptimization:
    def test_selective_equals_full(self, db, rng):
        """The INLJ plan and the merge-join plan agree on values."""
        db.create_view("D", _d_view_plan())
        z = Project(Join(Scan("D"), Scan("S"), ["D.I"], ["S.V"]),
                    [("I", Col("S.I")), ("V", Col("D.V"))])
        selective = db.query(z)
        full = db.query(Scan("D"))
        s_vals = db.query(Scan("S"))["S.V"].astype(int)
        d_by_i = full["D.V"][np.argsort(full["D.I"])]
        expect = d_by_i[np.sort(s_vals) - 1]
        got = selective["V"][np.argsort(selective["I"])]
        assert np.allclose(np.sort(got), np.sort(expect))
