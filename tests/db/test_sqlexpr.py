"""Tests for scalar SQL expressions: evaluation, SQL text, renaming."""

import numpy as np
import pytest

from repro.db import (And, Arith, CaseWhen, Cmp, Col, Const, Func, InSet,
                      Not, Or, conjoin, split_conjuncts)


@pytest.fixture
def batch():
    return {
        "E1.I": np.arange(1, 6, dtype=np.int64),
        "E1.V": np.asarray([1.0, 4.0, 9.0, 16.0, 25.0]),
        "E2.V": np.asarray([1.0, 2.0, 3.0, 4.0, 5.0]),
    }


class TestEvaluation:
    def test_column_resolution_exact(self, batch):
        assert np.array_equal(Col("E1.V").eval(batch), batch["E1.V"])

    def test_column_resolution_bare_unique(self, batch):
        assert np.array_equal(Col("I").eval(batch), batch["E1.I"])

    def test_column_resolution_ambiguous(self, batch):
        with pytest.raises(KeyError):
            Col("V").eval(batch)

    def test_column_missing(self, batch):
        with pytest.raises(KeyError):
            Col("E3.W").eval(batch)

    def test_arith(self, batch):
        expr = Arith("+", Col("E1.V"), Col("E2.V"))
        assert np.allclose(expr.eval(batch), [2, 6, 12, 20, 30])

    def test_division_produces_floats(self, batch):
        expr = Arith("/", Col("E1.V"), Const(2))
        assert np.allclose(expr.eval(batch), [0.5, 2, 4.5, 8, 12.5])

    def test_sqrt_pow(self, batch):
        expr = Func("SQRT", Col("E1.V"))
        assert np.allclose(expr.eval(batch), [1, 2, 3, 4, 5])
        expr2 = Func("POW", Col("E2.V"), Const(2.0))
        assert np.allclose(expr2.eval(batch), batch["E1.V"])

    def test_function_arity_checked(self):
        with pytest.raises(ValueError):
            Func("SQRT", Const(1.0), Const(2.0))

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            Func("SIN", Const(0.0))

    def test_comparison(self, batch):
        expr = Cmp(">", Col("E1.V"), Const(5.0))
        assert expr.eval(batch).tolist() == [False, False, True, True,
                                             True]

    def test_and_or_not(self, batch):
        gt = Cmp(">", Col("E1.V"), Const(3.0))
        lt = Cmp("<", Col("E1.V"), Const(20.0))
        both = And(gt, lt)
        assert both.eval(batch).tolist() == [False, True, True, True,
                                             False]
        either = Or(Cmp("<", Col("E1.V"), Const(2.0)),
                    Cmp(">", Col("E1.V"), Const(10.0)))
        assert either.eval(batch).tolist() == [True, False, False, True,
                                               True]
        inv = Not(gt)
        assert inv.eval(batch).tolist() == [True, False, False, False,
                                            False]

    def test_case_when(self, batch):
        expr = CaseWhen(Cmp(">", Col("E1.V"), Const(10.0)),
                        Const(10.0), Col("E1.V"))
        assert np.allclose(expr.eval(batch), [1, 4, 9, 10, 10])

    def test_in_set(self, batch):
        expr = InSet(Col("E1.I"), np.asarray([2, 5]))
        assert expr.eval(batch).tolist() == [False, True, False, False,
                                             True]

    def test_operator_sugar(self, batch):
        expr = (Col("E1.V") + Col("E2.V")) * Const(2.0)
        assert np.allclose(expr.eval(batch), [4, 12, 24, 40, 60])


class TestSQLText:
    def test_arith_sql(self):
        expr = Arith("+", Col("E1.V"), Const(1.5))
        assert expr.to_sql() == "(E1.V + 1.5)"

    def test_int_valued_floats_rendered_as_ints(self):
        assert Const(2.0).to_sql() == "2"

    def test_nested_sql(self):
        expr = Func("SQRT",
                    Arith("+",
                          Func("POW", Arith("-", Col("X.V"), Const(3.0)),
                               Const(2.0)),
                          Func("POW", Arith("-", Col("Y.V"), Const(4.0)),
                               Const(2.0))))
        sql = expr.to_sql()
        assert sql == ("SQRT((POW((X.V - 3), 2) + POW((Y.V - 4), 2)))")

    def test_case_when_sql(self):
        expr = CaseWhen(Cmp(">", Col("B.V"), Const(100)), Const(100),
                        Col("B.V"))
        assert expr.to_sql() == \
            "CASE WHEN B.V > 100 THEN 100 ELSE B.V END"

    def test_inset_sql_truncates(self):
        expr = InSet(Col("I"), np.arange(20))
        assert "..." in expr.to_sql()


class TestRenameAndConjuncts:
    def test_rename_columns(self, batch):
        expr = Arith("+", Col("A.V"), Col("B.V"))
        renamed = expr.rename_columns({"A.V": "E1.V", "B.V": "E2.V"})
        assert np.allclose(renamed.eval(batch), [2, 6, 12, 20, 30])

    def test_rename_is_pure(self):
        expr = Col("A.V")
        expr.rename_columns({"A.V": "B.V"})
        assert expr.name == "A.V"

    def test_split_conjuncts_flattens(self):
        a = Cmp("=", Col("x"), Const(1))
        b = Cmp("=", Col("y"), Const(2))
        c = Cmp("=", Col("z"), Const(3))
        parts = split_conjuncts(And(a, And(b, c)))
        assert len(parts) == 3

    def test_conjoin_inverse(self):
        a = Cmp("=", Col("x"), Const(1))
        b = Cmp("=", Col("y"), Const(2))
        combined = conjoin([a, b])
        assert len(split_conjuncts(combined)) == 2
        assert conjoin([]) is None
        assert conjoin([a]) is a

    def test_columns_collection(self):
        expr = And(Cmp("=", Col("X.I"), Col("Y.I")),
                   Cmp(">", Func("ABS", Col("X.V")), Const(0)))
        assert expr.columns() == {"X.I", "Y.I", "X.V"}
