"""Tests for heap tables: loading, scanning, random access, updates."""

import numpy as np
import pytest

from repro.db import Database, Schema

VEC = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))


@pytest.fixture
def db():
    return Database(memory_bytes=2 * 1024 * 1024)


def load_vector(db, name, values, build_index=False):
    n = len(values)
    return db.load_table(name, VEC, {
        "I": np.arange(1, n + 1, dtype=np.int64),
        "V": np.asarray(values, dtype=np.float64),
    }, build_index=build_index)


class TestLoadScan:
    def test_roundtrip(self, db, rng):
        values = rng.standard_normal(10_000)
        table = load_vector(db, "T", values)
        out = np.concatenate([b["V"] for b in table.scan()])
        assert np.allclose(out, values)

    def test_row_count(self, db):
        table = load_vector(db, "T", np.arange(1234, dtype=float))
        assert table.row_count == 1234

    def test_rows_per_page(self, db):
        table = load_vector(db, "T", np.ones(10))
        # 2 columns x 8 bytes = 16 bytes/row, 8192-byte pages.
        assert table.rows_per_page == 512

    def test_page_count_matches_rows(self, db):
        table = load_vector(db, "T", np.ones(1025))
        assert table.num_pages == 3  # 512 + 512 + 1

    def test_clustered_flag_set_by_load(self, db):
        table = load_vector(db, "T", np.ones(10))
        assert table.clustered_on == ("I",)

    def test_int_column_dtype_preserved(self, db):
        table = load_vector(db, "T", np.ones(10))
        batch = next(table.scan())
        assert batch["I"].dtype == np.int64
        assert batch["V"].dtype == np.float64

    def test_missing_column_rejected(self, db):
        table = db.create_table("T", VEC)
        with pytest.raises(KeyError):
            table.append_batch({"I": np.asarray([1])})

    def test_ragged_batch_rejected(self, db):
        table = db.create_table("T", VEC)
        with pytest.raises(ValueError):
            table.append_batch({"I": np.asarray([1, 2]),
                                "V": np.asarray([1.0])})

    def test_incremental_append_across_page_boundaries(self, db):
        table = db.create_table("T", VEC)
        total = 0
        for k in range(1, 40):  # irregular batch sizes
            table.append_batch({
                "I": np.arange(total + 1, total + k + 1),
                "V": np.full(k, float(k)),
            })
            total += k
        table.finish_append()
        assert table.row_count == total
        out = np.concatenate([b["V"] for b in table.scan()])
        assert out.shape[0] == total

    def test_empty_batch_ignored(self, db):
        table = db.create_table("T", VEC)
        table.append_batch({"I": np.empty(0, np.int64),
                            "V": np.empty(0)})
        table.finish_append()
        assert table.row_count == 0


class TestFetchRows:
    def test_fetch_specific_rows(self, db, rng):
        values = rng.standard_normal(5000)
        table = load_vector(db, "T", values)
        ids = np.asarray([0, 4999, 1234, 512])
        out = table.fetch_rows(ids)
        assert np.allclose(out["V"], values[ids])

    def test_fetch_preserves_request_order(self, db):
        table = load_vector(db, "T", np.arange(2000, dtype=float))
        ids = np.asarray([1500, 3, 700])
        out = table.fetch_rows(ids)
        assert np.allclose(out["V"], [1500.0, 3.0, 700.0])

    def test_fetch_touches_one_page_per_distinct_page(self, db, rng):
        values = rng.standard_normal(5000)
        table = load_vector(db, "T", values)
        db.pool.clear()
        db.reset_stats()
        table.fetch_rows(np.asarray([0, 1, 2, 3]))  # same page
        assert db.io_stats.reads == 1

    def test_fetch_out_of_range(self, db):
        table = load_vector(db, "T", np.ones(10))
        with pytest.raises(IndexError):
            table.fetch_rows(np.asarray([10]))


class TestUpdateRows:
    def test_update_values(self, db, rng):
        values = rng.standard_normal(3000)
        table = load_vector(db, "T", values.copy())
        ids = np.asarray([5, 600, 2999])
        table.update_rows(ids, {"V": np.asarray([1.0, 2.0, 3.0])})
        out = np.concatenate([b["V"] for b in table.scan()])
        expect = values.copy()
        expect[ids] = [1.0, 2.0, 3.0]
        assert np.allclose(out, expect)

    def test_update_unknown_column(self, db):
        table = load_vector(db, "T", np.ones(10))
        with pytest.raises(KeyError):
            table.update_rows(np.asarray([0]), {"W": np.asarray([1.0])})

    def test_update_costs_one_page_rmw(self, db):
        table = load_vector(db, "T", np.ones(5000))
        db.flush()
        db.pool.clear()
        db.reset_stats()
        table.update_rows(np.asarray([0, 1]), {"V": np.asarray([2.0, 3.0])})
        db.flush()
        assert db.io_stats.reads == 1
        assert db.io_stats.writes == 1

    def test_update_empty(self, db):
        table = load_vector(db, "T", np.ones(10))
        table.update_rows(np.empty(0, np.int64), {"V": np.empty(0)})


class TestScanIO:
    def test_cold_scan_costs_table_pages(self, db, rng):
        values = rng.standard_normal(20_000)
        table = load_vector(db, "T", values)
        db.flush()
        db.pool.clear()
        db.reset_stats()
        for _ in table.scan():
            pass
        assert db.io_stats.reads == table.num_pages

    def test_drop_frees_pages(self, db):
        table = load_vector(db, "T", np.ones(5000))
        db.flush()
        before = db.device.resident_blocks
        db.drop("T")
        assert db.device.resident_blocks < before
