"""Tests for the B+tree index, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import BPlusTree, KeyCodec
from repro.storage import BlockDevice, BufferPool, PageFile


def make_tree(pool_blocks: int = 64) -> BPlusTree:
    device = BlockDevice(block_size=8192)
    pool = BufferPool(device, pool_blocks)
    return BPlusTree(PageFile(device, "idx"), pool)


class TestBulkLoad:
    def test_point_lookups(self):
        tree = make_tree()
        keys = np.arange(0, 100_000, 3, dtype=np.int64)
        tree.bulk_load(keys, keys * 10)
        assert tree.search(3) == 30
        assert tree.search(99_999) == 999_990
        assert tree.search(4) is None

    def test_empty_tree(self):
        tree = make_tree()
        tree.bulk_load(np.empty(0, np.int64), np.empty(0, np.int64))
        assert tree.search(1) is None
        assert list(tree.items()) == []

    def test_single_entry(self):
        tree = make_tree()
        tree.bulk_load(np.asarray([42]), np.asarray([7]))
        assert tree.search(42) == 7
        assert tree.height == 1

    def test_height_grows_logarithmically(self):
        small = make_tree()
        small.bulk_load(np.arange(100), np.arange(100))
        big = make_tree(256)
        big.bulk_load(np.arange(200_000), np.arange(200_000))
        assert small.height == 1
        assert 2 <= big.height <= 3

    def test_unsorted_keys_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load(np.asarray([3, 1, 2]), np.asarray([0, 0, 0]))

    def test_duplicate_keys_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load(np.asarray([1, 1]), np.asarray([0, 0]))


class TestRangeScan:
    def test_full_scan_in_order(self):
        tree = make_tree()
        keys = np.arange(0, 5000, 7, dtype=np.int64)
        tree.bulk_load(keys, keys + 1)
        out_keys = np.concatenate([k for k, _ in tree.range_scan()])
        assert np.array_equal(out_keys, keys)

    def test_bounded_range(self):
        tree = make_tree()
        keys = np.arange(1000, dtype=np.int64)
        tree.bulk_load(keys, keys)
        got = np.concatenate(
            [k for k, _ in tree.range_scan(100, 200)])
        assert np.array_equal(got, np.arange(100, 201))

    def test_range_outside_keyspace(self):
        tree = make_tree()
        tree.bulk_load(np.arange(10), np.arange(10))
        assert list(tree.range_scan(100, 200)) == []

    def test_open_ended_ranges(self):
        tree = make_tree()
        tree.bulk_load(np.arange(100), np.arange(100))
        low = np.concatenate([k for k, _ in tree.range_scan(None, 5)])
        high = np.concatenate([k for k, _ in tree.range_scan(95, None)])
        assert np.array_equal(low, np.arange(6))
        assert np.array_equal(high, np.arange(95, 100))


class TestInsert:
    def test_insert_into_empty(self):
        tree = make_tree()
        tree.insert(5, 50)
        assert tree.search(5) == 50

    def test_insert_updates_existing(self):
        tree = make_tree()
        tree.bulk_load(np.asarray([1, 2, 3]), np.asarray([10, 20, 30]))
        tree.insert(2, 99)
        assert tree.search(2) == 99
        assert tree.entry_count == 3

    def test_inserts_cause_splits(self):
        tree = make_tree(128)
        for k in range(2000):
            tree.insert(k, k * 2)
        assert tree.height >= 2
        for k in (0, 999, 1999):
            assert tree.search(k) == k * 2

    def test_reverse_order_inserts(self):
        tree = make_tree(128)
        for k in range(1500, 0, -1):
            tree.insert(k, k)
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)


class TestBatchProbes:
    def test_search_batch(self):
        tree = make_tree()
        keys = np.arange(0, 10_000, 2, dtype=np.int64)
        tree.bulk_load(keys, keys // 2)
        probes = np.asarray([0, 1, 5000, 9998, 12345])
        found, values = tree.search_batch(probes)
        assert found.tolist() == [True, False, True, True, False]
        assert values[0] == 0
        assert values[2] == 2500

    def test_probe_io_bounded_by_height(self):
        """100 probes cost at most 100 x height page reads when cold."""
        device = BlockDevice(block_size=8192)
        pool = BufferPool(device, 512)
        tree = BPlusTree(PageFile(device, "idx"), pool)
        keys = np.arange(1_000_000, dtype=np.int64)
        tree.bulk_load(keys, keys)
        pool.clear()
        device.reset_stats()
        probes = np.linspace(0, 999_999, 100).astype(np.int64)
        tree.search_batch(probes)
        assert device.stats.reads <= 100 * tree.height


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300,
                unique=True))
@settings(max_examples=40, deadline=None)
def test_bulk_load_retrieves_everything(keys):
    tree = make_tree(256)
    arr = np.asarray(sorted(keys), dtype=np.int64)
    tree.bulk_load(arr, arr * 3)
    for k in keys:
        assert tree.search(k) == k * 3
    assert [k for k, _ in tree.items()] == sorted(keys)


@given(st.lists(st.integers(0, 5000), min_size=1, max_size=150,
                unique=True))
@settings(max_examples=30, deadline=None)
def test_insert_matches_bulk_load(keys):
    """Inserting one by one yields the same map as bulk loading."""
    tree = make_tree(256)
    for k in keys:
        tree.insert(k, k + 7)
    assert sorted((k, v) for k, v in tree.items()) == \
        sorted((k, k + 7) for k in keys)


class TestKeyCodec:
    def test_pack_unpack_roundtrip(self):
        codec = KeyCodec((100, 200))
        i = np.asarray([1, 99, 50])
        j = np.asarray([0, 199, 100])
        packed = codec.pack(i, j)
        ui, uj = codec.unpack(packed)
        assert np.array_equal(ui, i)
        assert np.array_equal(uj, j)

    def test_pack_preserves_lex_order(self):
        codec = KeyCodec((1000, 1000))
        a = codec.pack(np.asarray([1]), np.asarray([999]))[0]
        b = codec.pack(np.asarray([2]), np.asarray([0]))[0]
        assert a < b

    def test_arity_checked(self):
        codec = KeyCodec((10, 10))
        with pytest.raises(ValueError):
            codec.pack(np.asarray([1]))

    def test_oversized_keyspace_rejected(self):
        with pytest.raises(ValueError):
            KeyCodec((2 ** 32, 2 ** 32))
