"""Tests for the Database facade: DDL, views, materialization, accounting."""

import numpy as np
import pytest

from repro.db import (Arith, Col, Const, Database, Project, Scan,
                      Schema, Sort)

VEC = Schema.of(("I", "INT"), ("V", "DOUBLE"), primary_key=("I",))


@pytest.fixture
def db():
    return Database(memory_bytes=2 * 1024 * 1024)


def load(db, name, values):
    n = len(values)
    return db.load_table(name, VEC, {
        "I": np.arange(1, n + 1, dtype=np.int64),
        "V": np.asarray(values, dtype=np.float64)})


class TestDDL:
    def test_duplicate_names_rejected(self, db):
        load(db, "T", np.ones(10))
        with pytest.raises(ValueError):
            db.create_table("T", VEC)

    def test_view_name_collision_rejected(self, db):
        load(db, "T", np.ones(10))
        with pytest.raises(ValueError):
            db.create_view("T", Scan("T"))

    def test_drop_table(self, db):
        load(db, "T", np.ones(10))
        db.drop("T")
        with pytest.raises(KeyError):
            db.table("T")

    def test_drop_unknown(self, db):
        with pytest.raises(KeyError):
            db.drop("nope")

    def test_index_built_on_load(self, db):
        load(db, "T", np.ones(100))
        index = db.catalog.index_on("T")
        assert index is not None
        assert index.tree.entry_count == 100

    def test_load_without_index(self, db):
        db.load_table("T", VEC, {
            "I": np.arange(1, 11), "V": np.ones(10)}, build_index=False)
        assert db.catalog.index_on("T") is None


class TestViews:
    def test_view_queryable(self, db, rng):
        values = rng.standard_normal(1000)
        load(db, "T", values)
        db.create_view("W", Project(Scan("T"), [
            ("I", Col("T.I")),
            ("V", Arith("*", Col("T.V"), Const(3.0)))]))
        out = db.query(Scan("W"))
        order = np.argsort(out["W.I"])
        assert np.allclose(out["W.V"][order], values * 3)

    def test_view_sql_rendering(self, db):
        load(db, "T", np.ones(5))
        db.create_view("W", Project(Scan("T"), [
            ("I", Col("T.I")),
            ("V", Arith("+", Col("T.V"), Const(1.0)))]))
        sql = db.view_sql("W")
        assert sql.startswith("CREATE VIEW W AS")
        assert "(T.V + 1)" in sql

    def test_views_compose(self, db, rng):
        values = rng.standard_normal(500)
        load(db, "T", values)
        db.create_view("W1", Project(Scan("T"), [
            ("I", Col("T.I")),
            ("V", Arith("+", Col("T.V"), Const(1.0)))]))
        db.create_view("W2", Project(Scan("W1"), [
            ("I", Col("W1.I")),
            ("V", Arith("*", Col("W1.V"), Const(2.0)))]))
        out = db.query(Scan("W2"))
        order = np.argsort(out["W2.I"])
        assert np.allclose(out["W2.V"][order], (values + 1) * 2)

    def test_schema_of_view(self, db):
        load(db, "T", np.ones(5))
        db.create_view("W", Project(Scan("T"), [
            ("I", Col("T.I")), ("V", Col("T.V"))]))
        schema = db.catalog.schema_of("W")
        assert schema.names == ["I", "V"]


class TestMaterialize:
    def test_ctas_roundtrip(self, db, rng):
        values = rng.standard_normal(2000)
        load(db, "T", values)
        plan = Project(Scan("T"), [
            ("I", Col("T.I")),
            ("V", Arith("-", Col("T.V"), Const(5.0)))])
        table = db.materialize(plan, "OUT")
        out = np.concatenate([b["V"] for b in table.scan()])
        assert np.allclose(np.sort(out), np.sort(values - 5))

    def test_materialize_with_index_sorted_input(self, db, rng):
        values = rng.standard_normal(2000)
        load(db, "T", values)
        table = db.materialize(Scan("T"), "OUT", build_index=True,
                               primary_key=("I",))
        assert table.clustered_on == ("I",)
        index = db.catalog.index_on("OUT")
        assert index.tree.entry_count == 2000

    def test_materialize_with_index_unsorted_input(self, db, rng):
        """Out-of-key-order output gets an index but no clustering."""
        values = rng.standard_normal(2000)
        load(db, "T", values)
        # Sorting by V produces I out of order.
        plan = Sort(Project(Scan("T"), [("I", Col("T.I")),
                                        ("V", Col("T.V"))]), ["V"])
        table = db.materialize(plan, "OUT", build_index=True,
                               primary_key=("I",))
        assert table.clustered_on == ()
        index = db.catalog.index_on("OUT")
        found, rows = index.tree.search_batch(np.asarray([1, 2000]))
        assert found.all()

    def test_duplicate_key_index_rejected(self, db):
        db.load_table("T", Schema.of(("I", "INT"), ("V", "DOUBLE")), {
            "I": np.asarray([1, 1]), "V": np.asarray([1.0, 2.0])},
            build_index=False)
        with pytest.raises(ValueError):
            db.materialize(Scan("T"), "OUT", build_index=True,
                           primary_key=("I",))

    def test_materialization_io_counted(self, db, rng):
        values = rng.standard_normal(50_000)
        load(db, "T", values)
        db.flush()
        db.pool.clear()
        db.reset_stats()
        db.materialize(Scan("T"), "OUT")
        db.flush()
        pages = db.table("T").num_pages
        assert db.io_stats.reads >= pages
        assert db.io_stats.writes >= pages


class TestAccounting:
    def test_reset_stats(self, db, rng):
        load(db, "T", rng.standard_normal(10_000))
        db.reset_stats()
        assert db.io_stats.total == 0

    def test_query_below_pool_size_is_free_when_cached(self, db, rng):
        values = rng.standard_normal(1000)
        load(db, "T", values)
        db.query(Scan("T"))          # warm the pool
        db.reset_stats()
        db.query(Scan("T"))          # fully cached
        assert db.io_stats.total == 0

    def test_temp_tables_dropped(self, db):
        temp = db.create_temp_table(VEC)
        temp.load({"I": np.arange(1, 11), "V": np.ones(10)})
        db.drop_temp_table(temp)
        assert temp.row_count == 0
