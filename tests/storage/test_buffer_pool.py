"""Unit tests for the buffer pool and replacement policies."""

import numpy as np
import pytest

from repro.storage import BlockDevice, BufferPool, make_policy


def _fill_device(dev: BlockDevice, n: int) -> list[int]:
    first = dev.allocate(n)
    for i in range(n):
        dev.write_floats(first + i, np.full(dev.block_size // 8, float(i)))
    return list(range(first, first + n))


class TestBasics:
    def test_hit_costs_no_io(self, device):
        blocks = _fill_device(device, 2)
        pool = BufferPool(device, 4)
        pool.get(blocks[0])
        before = device.stats.total
        pool.get(blocks[0])
        assert device.stats.total == before
        assert pool.stats.hits == 1

    def test_miss_reads_device(self, device):
        blocks = _fill_device(device, 1)
        pool = BufferPool(device, 4)
        before = device.stats.reads
        pool.get(blocks[0])
        assert device.stats.reads == before + 1

    def test_capacity_never_exceeded(self, device):
        blocks = _fill_device(device, 32)
        pool = BufferPool(device, 8)
        for bid in blocks:
            pool.get(bid)
            assert pool.resident <= 8

    def test_invalid_capacity(self, device):
        with pytest.raises(ValueError):
            BufferPool(device, 0)

    def test_put_skips_read(self, device):
        dev_blocks = _fill_device(device, 1)
        pool = BufferPool(device, 4)
        before = device.stats.reads
        pool.put(dev_blocks[0], np.zeros(device.block_size, np.uint8))
        assert device.stats.reads == before


class TestDirtyWriteback:
    def test_dirty_page_written_on_eviction(self, device):
        blocks = _fill_device(device, 3)
        pool = BufferPool(device, 2)
        pool.get(blocks[0], for_write=True)
        writes_before = device.stats.writes
        pool.get(blocks[1])
        pool.get(blocks[2])  # evicts block 0, which is dirty
        assert device.stats.writes == writes_before + 1

    def test_clean_page_eviction_is_free(self, device):
        blocks = _fill_device(device, 3)
        pool = BufferPool(device, 2)
        pool.get(blocks[0])
        writes_before = device.stats.writes
        pool.get(blocks[1])
        pool.get(blocks[2])
        assert device.stats.writes == writes_before

    def test_flush_persists_changes(self, device):
        blocks = _fill_device(device, 1)
        pool = BufferPool(device, 2)
        frame = pool.get(blocks[0], for_write=True)
        frame[:8] = 255
        pool.flush_all()
        pool.invalidate(blocks[0])
        assert pool.get(blocks[0])[0] == 255

    def test_mark_dirty_requires_residency(self, device):
        blocks = _fill_device(device, 1)
        pool = BufferPool(device, 2)
        with pytest.raises(KeyError):
            pool.mark_dirty(blocks[0])


class TestPinning:
    def test_pinned_frame_survives_pressure(self, device):
        blocks = _fill_device(device, 10)
        pool = BufferPool(device, 2)
        pool.get(blocks[0])
        pool.pin(blocks[0])
        for bid in blocks[1:]:
            pool.get(bid)
        # block 0 must still be resident (hit, no device read)
        reads_before = device.stats.reads
        pool.get(blocks[0])
        assert device.stats.reads == reads_before
        pool.unpin(blocks[0])

    def test_all_pinned_raises(self, device):
        blocks = _fill_device(device, 3)
        pool = BufferPool(device, 2)
        pool.get(blocks[0])
        pool.pin(blocks[0])
        pool.get(blocks[1])
        pool.pin(blocks[1])
        with pytest.raises(RuntimeError):
            pool.get(blocks[2])

    def test_pin_nonresident_raises(self, device):
        blocks = _fill_device(device, 1)
        pool = BufferPool(device, 2)
        with pytest.raises(KeyError):
            pool.pin(blocks[0])


class TestPolicies:
    def test_lru_evicts_least_recent(self, device):
        blocks = _fill_device(device, 3)
        pool = BufferPool(device, 2, policy="lru")
        pool.get(blocks[0])
        pool.get(blocks[1])
        pool.get(blocks[0])       # 1 is now least recent
        pool.get(blocks[2])       # evicts 1
        reads_before = device.stats.reads
        pool.get(blocks[0])       # hit
        assert device.stats.reads == reads_before
        pool.get(blocks[1])       # miss
        assert device.stats.reads == reads_before + 1

    def test_clock_gives_second_chance(self, device):
        blocks = _fill_device(device, 4)
        pool = BufferPool(device, 2, policy="clock")
        for bid in blocks:
            pool.get(bid)
        assert pool.resident == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("mru")

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_scan_workload_correctness(self, device, policy):
        """Any policy must return correct data under heavy churn."""
        blocks = _fill_device(device, 64)
        pool = BufferPool(device, 4, policy=policy)
        for _rep in range(2):
            for i, bid in enumerate(blocks):
                frame = pool.get(bid)
                assert frame.view(np.float64)[0] == float(i)

    def test_clear_flushes_and_empties(self, device):
        blocks = _fill_device(device, 2)
        pool = BufferPool(device, 4)
        frame = pool.get(blocks[0], for_write=True)
        frame[:8] = 7
        pool.clear()
        assert pool.resident == 0
        assert device.read_block(blocks[0])[0] == 7

    def test_hit_rate(self, device):
        blocks = _fill_device(device, 1)
        pool = BufferPool(device, 2)
        pool.get(blocks[0])
        pool.get(blocks[0])
        pool.get(blocks[0])
        assert pool.stats.hit_rate == pytest.approx(2 / 3)


class TestPrefetchEdgeCases:
    def test_prefetch_resident_pages_is_free(self, device):
        blocks = _fill_device(device, 4)
        pool = BufferPool(device, 8)
        for bid in blocks:
            pool.get(bid)
        before = device.stats.reads
        assert pool.prefetch(blocks) == 0
        assert device.stats.reads == before
        assert pool.stats.prefetched == 0

    def test_prefetch_mixed_fetches_only_missing(self, device):
        blocks = _fill_device(device, 6)
        pool = BufferPool(device, 8)
        pool.get(blocks[0])
        pool.get(blocks[1])
        before = device.stats.reads
        assert pool.prefetch(blocks) == 4
        assert device.stats.reads == before + 4

    def test_prefetch_then_get_is_a_hit(self, device):
        blocks = _fill_device(device, 4)
        pool = BufferPool(device, 8)
        pool.prefetch(blocks)
        before = device.stats.reads
        frame = pool.get(blocks[2])
        assert device.stats.reads == before
        assert frame.view(np.float64)[0] == 2.0
        assert pool.stats.readahead_hits == 1
        assert device.stats.readahead_hits == 1

    def test_prefetch_never_evicts_pinned_frames(self, device):
        """Prefetch racing eviction: pins win, hint is clipped."""
        blocks = _fill_device(device, 12)
        pool = BufferPool(device, 4)
        for bid in blocks[:3]:
            pool.get(bid)
            pool.pin(bid)
        # Room for one demand fault only: the hint must clip to nothing
        # rather than raise or touch a pinned frame.
        assert pool.prefetch(blocks[3:]) == 0
        reads_before = device.stats.reads
        for bid in blocks[:3]:
            pool.get(bid)
        assert device.stats.reads == reads_before

    def test_prefetch_with_one_pin_keeps_demand_room(self, device):
        blocks = _fill_device(device, 10)
        pool = BufferPool(device, 4)
        pool.get(blocks[0])
        pool.pin(blocks[0])
        # capacity 4, 1 pinned, 1 frame reserved for demand -> 2 fetched.
        assert pool.prefetch(blocks[1:]) == 2
        assert pool.resident <= 4
        # The pinned frame survived and a demand fault still fits.
        pool.get(blocks[9])
        reads_before = device.stats.reads
        pool.get(blocks[0])
        assert device.stats.reads == reads_before

    def test_prefetch_disabled_scheduler_is_noop(self, device):
        blocks = _fill_device(device, 4)
        pool = BufferPool(device, 8)
        pool.scheduler.enabled = False
        assert pool.prefetch(blocks) == 0
        assert device.stats.reads == 0

    def test_wasted_prefetch_is_counted(self, device):
        blocks = _fill_device(device, 8)
        pool = BufferPool(device, 4)
        pool.prefetch(blocks[:3])
        # A scan of other blocks evicts the prefetched frames unused.
        for bid in blocks[3:]:
            pool.get(bid)
        assert pool.stats.prefetch_wasted == 3

    def test_put_cancels_prefetched_status(self, device):
        blocks = _fill_device(device, 2)
        pool = BufferPool(device, 4)
        pool.prefetch(blocks)
        pool.put(blocks[0], np.zeros(device.block_size, np.uint8))
        pool.get(blocks[0])
        assert pool.stats.readahead_hits == 0

    def test_prefetch_larger_than_capacity_is_truncated(self, device):
        """A footprint bigger than the pool clips, never thrashes.

        Sparse kernels announce whole tile footprints that can exceed a
        small pool; the contract is: fetch only what fits (capacity
        minus the reserved demand frame), keep residency bounded, and
        count exactly the fetched blocks as reads.
        """
        blocks = _fill_device(device, 32)
        pool = BufferPool(device, 8)
        fetched = pool.prefetch(blocks)
        assert fetched == 7          # capacity 8 minus one demand frame
        assert pool.resident <= 8
        assert device.stats.reads == 7
        # The surviving prefix is resident: reading it costs nothing.
        before = device.stats.reads
        for bid in blocks[:fetched]:
            pool.get(bid)
        assert device.stats.reads == before
        assert pool.stats.readahead_hits == fetched

    def test_oversized_prefetch_never_evicts_earlier_prefetch(self, device):
        """With unread prefetched frames filling the pool, a second
        oversized hint must back off entirely instead of cannibalizing
        the blocks the first hint promised."""
        blocks = _fill_device(device, 24)
        pool = BufferPool(device, 8)
        assert pool.prefetch(blocks[:16]) == 7
        before = device.stats.reads
        assert pool.prefetch(blocks[16:]) == 0
        assert device.stats.reads == before
        assert pool.stats.prefetch_wasted == 0


class TestClockPinnedVictims:
    def test_victim_when_all_but_one_pinned(self, device):
        """CLOCK must find the single unpinned frame, however many spins
        of the hand that takes, and never evict a pinned one."""
        blocks = _fill_device(device, 6)
        pool = BufferPool(device, 4, policy="clock")
        for bid in blocks[:4]:
            pool.get(bid)
        for bid in blocks[:3]:
            pool.pin(bid)
        pool.get(blocks[4])  # must evict blocks[3], the only unpinned
        reads_before = device.stats.reads
        for bid in blocks[:3]:
            pool.get(bid)  # pinned frames: all hits
        assert device.stats.reads == reads_before
        pool.get(blocks[3])  # was evicted: a miss
        assert device.stats.reads == reads_before + 1

    def test_repeated_eviction_through_one_unpinned_slot(self, device):
        blocks = _fill_device(device, 16)
        pool = BufferPool(device, 4, policy="clock")
        for bid in blocks[:4]:
            pool.get(bid)
        for bid in blocks[:3]:
            pool.pin(bid)
        for bid in blocks[4:]:
            pool.get(bid)
            assert pool.resident <= 4
        for bid in blocks[:3]:
            pool.pin(bid)   # still resident, pin again (refcount)
            pool.unpin(bid)

    def test_clock_all_pinned_raises_on_prefetchless_get(self, device):
        blocks = _fill_device(device, 5)
        pool = BufferPool(device, 4, policy="clock")
        for bid in blocks[:4]:
            pool.get(bid)
            pool.pin(bid)
        with pytest.raises(RuntimeError):
            pool.get(blocks[4])


class TestGetManyEvictionRace:
    def test_resident_block_evicted_by_installs_is_refetched(self, device):
        """A block resident when the misses were collected can be evicted
        while installing them; get_many must fault it back in, not crash."""
        blocks = _fill_device(device, 6)
        pool = BufferPool(device, 4)
        pool.get(blocks[0])
        frames = pool.get_many(blocks[1:] + [blocks[0]])
        values = [f.view(np.float64)[0] for f in frames]
        assert values == [1.0, 2.0, 3.0, 4.0, 5.0, 0.0]
