"""Tile codecs: wire-format round-trips, store integration, zero-copy.

The compression layer's contracts, from the bottom up: every codec
round-trips its own payloads (bitwise for the lossless ones, within
float32 tolerance for the downcast), the tile store charges logical vs
compressed bytes and survives reopen with per-matrix dtype/codec, and
the ``zero_copy`` opt-in hands out read-only mmap views exactly when
its guards hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import (ArrayStore, CODECS, DeltaZstdCodec,
                           Float32Codec, IOSTATS_SCHEMA_KEYS, RawCodec,
                           StorageConfig, TileCodec, get_codec,
                           register_codec)

FILE_MODES = ("mmap", "pread")


def _store(codec="raw", dtype="float64", backend="memory", **kw):
    return ArrayStore(storage=StorageConfig(
        backend=backend, memory_bytes=16 * 8192, codec=codec,
        dtype=dtype, **kw))


# ----------------------------------------------------------------------
# Codec wire format
# ----------------------------------------------------------------------
class TestCodecRoundtrip:
    SAMPLES = [
        np.arange(512, dtype=np.float64),
        np.zeros(1024, dtype=np.float64),
        np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324,
                  np.finfo(np.float64).max, np.finfo(np.float64).min]),
        np.random.default_rng(0).standard_normal(777),
    ]

    @pytest.mark.parametrize("name", ["raw", "delta+zstd"])
    def test_lossless_bitwise(self, name):
        codec = get_codec(name)
        assert codec.lossless
        for sample in self.SAMPLES:
            payload = codec.encode_tile(sample)
            back = codec.decode_tile(payload, sample.dtype,
                                     sample.size)
            # view-compare bit patterns: NaN != NaN under ==
            assert np.array_equal(back.view(np.uint64),
                                  sample.view(np.uint64))

    def test_delta_zstd_float32_payloads(self):
        codec = get_codec("delta+zstd")
        sample = np.arange(600, dtype=np.float32) / 3
        back = codec.decode_tile(codec.encode_tile(sample),
                                 sample.dtype, sample.size)
        assert np.array_equal(back.view(np.uint32),
                              sample.view(np.uint32))

    def test_delta_zstd_compresses_smooth_data(self):
        codec = get_codec("delta+zstd")
        smooth = np.arange(4096, dtype=np.float64)
        assert len(codec.encode_tile(smooth)) < smooth.nbytes / 2

    def test_float32_downcast_lossy_tolerance(self):
        codec = get_codec("float32-downcast")
        assert not codec.lossless
        sample = np.random.default_rng(1).standard_normal(500)
        payload = codec.encode_tile(sample)
        assert len(payload) == sample.size * 4
        back = codec.decode_tile(payload, np.dtype(np.float64),
                                 sample.size)
        assert back.dtype == np.float64
        assert np.array_equal(back,
                              sample.astype(np.float32)
                              .astype(np.float64))


class TestRegistry:
    def test_aliases(self):
        assert get_codec("zstd").name == "delta+zstd"
        assert get_codec("delta").name == "delta+zstd"
        assert get_codec("none").name == "raw"
        assert get_codec("float32").name == "float32-downcast"

    def test_instance_passthrough(self):
        codec = RawCodec()
        assert get_codec(codec) is codec

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown tile codec"):
            get_codec("lz77")

    def test_register_custom(self):
        class XorCodec(TileCodec):
            name = "xor-test"
            ratio_estimate = 1.0
            lossless = True

            def encode_tile(self, tile):
                return bytes(b ^ 0xFF
                             for b in np.ascontiguousarray(tile)
                             .tobytes())

            def decode_tile(self, payload, dtype, count):
                return np.frombuffer(
                    bytes(b ^ 0xFF for b in payload),
                    dtype=dtype, count=count)

        try:
            register_codec(XorCodec(), "xor")
            assert get_codec("xor").name == "xor-test"
            data = np.arange(64, dtype=np.float64).reshape(8, 8)
            with _store(codec="xor-test") as store:
                mat = store.matrix_from_numpy(data)
                assert np.array_equal(mat.to_numpy(), data)
        finally:
            from repro.storage import codecs as codecs_mod
            CODECS.pop("xor-test", None)
            codecs_mod._ALIASES.pop("xor-test", None)
            codecs_mod._ALIASES.pop("xor", None)

    def test_builtin_classes_exported(self):
        assert isinstance(get_codec("raw"), RawCodec)
        assert isinstance(get_codec("delta+zstd"), DeltaZstdCodec)
        assert isinstance(get_codec("float32-downcast"), Float32Codec)


# ----------------------------------------------------------------------
# Store integration: accounting, fallback, read-modify-write
# ----------------------------------------------------------------------
class TestCompressedStore:
    def test_roundtrip_and_byte_accounting(self):
        # 64 x 64 tiles span 4 pages each, so the codec has multi-page
        # frames to shrink (a single-page tile can't read fewer pages).
        data = np.arange(128 * 128, dtype=np.float64).reshape(128, 128)
        with _store(codec="delta+zstd") as store:
            mat = store.create_matrix(data.shape,
                                      tile_shape=(64, 64)) \
                .from_numpy(data)
            store.pool.clear()
            store.tile_cache.clear()
            store.reset_stats()
            assert np.array_equal(mat.to_numpy(), data)
            stats = store.device.stats
            assert stats.bytes_logical > 0
            assert 0 < stats.bytes_compressed < stats.bytes_logical
            assert 0 < stats.compression_ratio < 1
            assert stats.reads < stats.bytes_logical // 8192

    def test_raw_codec_charges_equal_bytes(self):
        data = np.random.default_rng(2).standard_normal((64, 64))
        with _store(codec="raw") as store:
            mat = store.matrix_from_numpy(data)
            assert np.array_equal(mat.to_numpy(), data)
            assert store.device.stats.compression_ratio == 1.0

    def test_incompressible_tile_falls_back_to_raw(self):
        # Random mantissas do not compress: the tile directory records
        # the raw-fallback sentinel and the data still round-trips.
        rng = np.random.default_rng(3)
        arr = rng.standard_normal((64, 64))
        with _store(codec="delta+zstd") as store:
            mat = store.matrix_from_numpy(arr)
            assert np.array_equal(mat.to_numpy(), arr)

    def test_read_modify_write_on_compressed(self):
        data = np.arange(100 * 100, dtype=np.float64).reshape(100, 100)
        with _store(codec="delta+zstd") as store:
            mat = store.matrix_from_numpy(data)
            patch = -np.ones((7, 9))
            mat.write_submatrix(13, 21, patch)
            expect = data.copy()
            expect[13:20, 21:30] = patch
            assert np.array_equal(mat.to_numpy(), expect)

    def test_unwritten_tiles_read_as_zeros_without_io(self):
        with _store(codec="delta+zstd") as store:
            mat = store.create_matrix((96, 96))
            store.reset_stats()
            assert np.array_equal(mat.to_numpy(), np.zeros((96, 96)))
            assert store.device.stats.reads == 0

    def test_float32_store_packs_twice_the_scalars(self):
        with _store(dtype="float32") as f32, _store() as f64:
            a32 = f32.create_matrix((200, 200), layout="square")
            a64 = f64.create_matrix((200, 200), layout="square")
            # Square tiles round sqrt(scalars) down, so compare the
            # budget they were cut from, not the exact tile area.
            assert (a32.tile_shape[0] * a32.tile_shape[1]
                    > a64.tile_shape[0] * a64.tile_shape[1])
            assert f32.matrix_scalars_per_block \
                == 2 * f64.matrix_scalars_per_block

    def test_float32_roundtrip_exact_for_representable(self):
        data = np.arange(80 * 80, dtype=np.float64).reshape(80, 80)
        with _store(dtype="float32") as store:
            mat = store.matrix_from_numpy(data)
            assert mat.dtype == np.float32
            out = mat.to_numpy()
            assert out.dtype == np.float32
            assert np.array_equal(out.astype(np.float64), data)

    def test_io_ratio_estimate_sources(self):
        with _store(codec="delta+zstd") as store:
            # No traffic yet: the codec's static estimate.
            assert store.io_ratio_estimate() \
                == get_codec("delta+zstd").ratio_estimate
            data = np.arange(120 * 120, dtype=np.float64) \
                .reshape(120, 120)
            mat = store.matrix_from_numpy(data)
            store.pool.clear()
            store.tile_cache.clear()
            store.reset_stats()
            mat.to_numpy()
            # Measured traffic exists: the estimate tracks it.
            measured = store.device.stats.compression_ratio
            assert store.io_ratio_estimate() == pytest.approx(
                min(1.0, measured))

    def test_tile_cache_counts_hits(self):
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        with _store(codec="delta+zstd") as store:
            mat = store.matrix_from_numpy(data)
            store.tile_cache.clear()
            mat.to_numpy()
            misses = store.tile_cache.misses
            assert misses > 0
            mat.to_numpy()
            assert store.tile_cache.hits >= misses
            assert store.tile_cache.misses == misses

    def test_schema_v3_keys(self):
        assert "compression_ratio" in IOSTATS_SCHEMA_KEYS
        with _store() as store:
            d = store.device.stats.as_dict()
            assert d["schema_version"] == 3
            assert d["compression_ratio"] == 1.0


# ----------------------------------------------------------------------
# Persistence: codec + dtype survive reopen
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", FILE_MODES)
class TestCompressedPersistence:
    def test_compressed_matrix_survives_reopen(self, tmp_path, mode):
        path = tmp_path / "riot.db"
        cfg = StorageConfig(backend=mode, path=path,
                            memory_bytes=16 * 8192,
                            codec="delta+zstd")
        data = np.arange(130 * 70, dtype=np.float64).reshape(130, 70)
        with ArrayStore(storage=cfg) as store:
            store.matrix_from_numpy(data, name="C")
        with ArrayStore(storage=cfg) as store:
            mat = store.open_matrix("C")
            assert mat.codec.name == "delta+zstd"
            assert np.array_equal(mat.to_numpy(), data)

    def test_per_matrix_codec_and_dtype_survive(self, tmp_path, mode):
        path = tmp_path / "riot.db"
        cfg = StorageConfig(backend=mode, path=path,
                            memory_bytes=16 * 8192)
        data = np.arange(90 * 90, dtype=np.float64).reshape(90, 90)
        with ArrayStore(storage=cfg) as store:
            store.matrix_from_numpy(data, name="Z",
                                    codec="delta+zstd")
            store.matrix_from_numpy(data, name="F",
                                    dtype="float32")
            store.matrix_from_numpy(data, name="R")
        with ArrayStore(storage=cfg) as store:
            z = store.open_matrix("Z")
            f = store.open_matrix("F")
            r = store.open_matrix("R")
            assert z.codec.name == "delta+zstd"
            assert f.dtype == np.float32
            assert r.codec.name == "raw" and r.dtype == np.float64
            assert np.array_equal(z.to_numpy(), data)
            assert np.array_equal(
                f.to_numpy().astype(np.float64), data)
            assert np.array_equal(r.to_numpy(), data)

    def test_reopened_compressed_matrix_is_writable(self, tmp_path,
                                                    mode):
        path = tmp_path / "riot.db"
        cfg = StorageConfig(backend=mode, path=path,
                            memory_bytes=16 * 8192,
                            codec="delta+zstd")
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        with ArrayStore(storage=cfg) as store:
            store.matrix_from_numpy(data, name="W")
        with ArrayStore(storage=cfg) as store:
            mat = store.open_matrix("W")
            mat.write_submatrix(0, 0, np.full((3, 3), -1.0))
        with ArrayStore(storage=cfg) as store:
            expect = data.copy()
            expect[:3, :3] = -1.0
            assert np.array_equal(
                store.open_matrix("W").to_numpy(), expect)


# ----------------------------------------------------------------------
# Zero-copy views
# ----------------------------------------------------------------------
class TestZeroCopy:
    def _zc_store(self, tmp_path, **kw):
        return ArrayStore(storage=StorageConfig(
            backend="mmap", path=tmp_path / "zc.db",
            memory_bytes=16 * 8192, zero_copy=True, **kw))

    def test_view_is_read_only_and_non_owning(self, tmp_path):
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        with self._zc_store(tmp_path) as store:
            if store.storage.sanitize:
                pytest.skip("zero-copy views are disabled under the "
                            "storage sanitizers (documented trade)")
            mat = store.matrix_from_numpy(data)
            store.flush()
            th, tw = mat.tile_shape
            view = mat.read_submatrix_view(0, min(th, 64),
                                           0, min(tw, 64))
            assert not view.flags.writeable
            assert not view.flags.owndata
            assert np.array_equal(
                view, data[:min(th, 64), :min(tw, 64)])

    def test_dirty_frames_fall_back_to_copy(self, tmp_path):
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        with self._zc_store(tmp_path) as store:
            mat = store.matrix_from_numpy(data)
            # No flush: the tile's frames are dirty in the pool, so
            # the mmap pages are stale and the guard must refuse.
            th, tw = mat.tile_shape
            r1, c1 = min(th, 64), min(tw, 64)
            view = mat.read_submatrix_view(0, r1, 0, c1)
            assert view.flags.writeable  # fresh copy, not the mapping
            assert np.array_equal(view, data[:r1, :c1])

    def test_compressed_matrix_falls_back(self, tmp_path):
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        with self._zc_store(tmp_path, codec="delta+zstd") as store:
            mat = store.matrix_from_numpy(data)
            store.flush()
            th, tw = mat.tile_shape
            r1, c1 = min(th, 64), min(tw, 64)
            view = mat.read_submatrix_view(0, r1, 0, c1)
            assert view.flags.writeable
            assert np.array_equal(view, data[:r1, :c1])

    def test_unaligned_rectangle_falls_back(self, tmp_path):
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        with self._zc_store(tmp_path) as store:
            mat = store.matrix_from_numpy(data)
            store.flush()
            view = mat.read_submatrix_view(1, 9, 1, 9)
            assert view.flags.writeable
            assert np.array_equal(view, data[1:9, 1:9])

    def test_opt_out_by_default(self, tmp_path):
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        cfg = StorageConfig(backend="mmap", path=tmp_path / "off.db",
                            memory_bytes=16 * 8192)
        with ArrayStore(storage=cfg) as store:
            mat = store.matrix_from_numpy(data)
            store.flush()
            th, tw = mat.tile_shape
            view = mat.read_submatrix_view(0, min(th, 64),
                                           0, min(tw, 64))
            assert view.flags.writeable


# ----------------------------------------------------------------------
# StorageConfig plumbing
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_url_params(self, tmp_path):
        cfg = StorageConfig.from_url(
            f"file://{tmp_path}/u.db?codec=zstd&dtype=float32"
            f"&zero_copy=1")
        assert cfg.codec == "delta+zstd"  # canonicalized
        assert cfg.dtype == "float32" and cfg.itemsize == 4
        assert cfg.zero_copy is True

    def test_bad_codec_and_dtype_rejected(self):
        with pytest.raises(ValueError, match="unknown tile codec"):
            StorageConfig(codec="nope")
        with pytest.raises(ValueError, match="dtype"):
            StorageConfig(dtype="float16")

    def test_itemsize_default(self):
        assert StorageConfig().itemsize == 8
