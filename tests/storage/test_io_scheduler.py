"""Unit tests for the prefetching I/O scheduler and batched device I/O."""

import numpy as np
import pytest

from repro.storage import (ArrayStore, BlockDevice, BufferPool, IOScheduler,
                           coalesce_runs)


def _fill(dev: BlockDevice, n: int) -> list[int]:
    first = dev.allocate(n)
    for i in range(n):
        dev.write_floats(first + i, np.full(dev.block_size // 8, float(i)))
    return list(range(first, first + n))


class TestCoalesceRuns:
    def test_adjacent_ids_form_one_run(self):
        assert coalesce_runs([3, 4, 5, 6]) == [(3, 4)]

    def test_gaps_split_runs(self):
        assert coalesce_runs([1, 2, 9, 10, 20]) == [(1, 2), (9, 2), (20, 1)]

    def test_descending_ids_never_coalesce(self):
        assert coalesce_runs([5, 4, 3]) == [(5, 1), (4, 1), (3, 1)]

    def test_empty(self):
        assert coalesce_runs([]) == []


class TestBatchedDeviceIO:
    def test_read_blocks_matches_per_block_reads(self, device):
        blocks = _fill(device, 8)
        batched = device.read_blocks(blocks)
        single = [device.read_block(b) for b in blocks]
        for got, want in zip(batched, single):
            assert np.array_equal(got, want)

    def test_read_blocks_charges_block_totals(self, device):
        blocks = _fill(device, 8)
        device.reset_stats()
        device.read_blocks(blocks)
        # 8 blocks moved in 1 call: totals stay truthful, calls shrink.
        assert device.stats.reads == 8
        assert device.stats.read_calls == 1
        assert device.stats.coalesced_ios == 7

    def test_read_blocks_with_gap_costs_two_calls(self, device):
        blocks = _fill(device, 10)
        device.reset_stats()
        device.read_blocks(blocks[:3] + blocks[6:])
        assert device.stats.reads == 7
        assert device.stats.read_calls == 2

    def test_run_interior_is_sequential(self, device):
        blocks = _fill(device, 8)
        device.reset_stats()
        device.read_blocks(blocks)
        assert device.stats.seq_reads == 7
        assert device.stats.rand_reads == 1

    def test_write_blocks_roundtrip_and_accounting(self, device):
        blocks = _fill(device, 4)
        device.reset_stats()
        payload = [(b, np.full(device.block_size, i, dtype=np.uint8))
                   for i, b in enumerate(blocks)]
        device.write_blocks(payload)
        assert device.stats.writes == 4
        assert device.stats.write_calls == 1
        for i, b in enumerate(blocks):
            assert device.read_block(b)[0] == i

    def test_read_blocks_checks_range(self, device):
        with pytest.raises(IndexError):
            device.read_blocks([0])

    def test_single_block_ops_count_one_call(self, device):
        blocks = _fill(device, 1)
        device.reset_stats()
        device.read_block(blocks[0])
        assert device.stats.read_calls == 1
        assert device.stats.coalesced_ios == 0


class TestReadaheadDetection:
    def test_no_speculation_below_min_run(self, device):
        _fill(device, 32)
        sched = IOScheduler(device, readahead_window=8, min_run=2)
        assert sched.on_demand(0, miss=True) == []

    def test_sequential_run_triggers_window(self, device):
        _fill(device, 32)
        sched = IOScheduler(device, readahead_window=8, min_run=2)
        sched.on_demand(0, miss=True)
        assert sched.on_demand(1, miss=True) == list(range(2, 10))

    def test_random_accesses_reset_run(self, device):
        _fill(device, 32)
        sched = IOScheduler(device, readahead_window=8, min_run=2)
        sched.on_demand(0, miss=True)
        sched.on_demand(17, miss=True)
        assert sched.on_demand(18, miss=True) == list(range(19, 27))

    def test_window_clamped_to_allocation(self, device):
        _fill(device, 4)
        sched = IOScheduler(device, readahead_window=8, min_run=2)
        sched.on_demand(0, miss=True)
        assert sched.on_demand(1, miss=True) == [2, 3]

    def test_hit_at_mark_extends_readahead(self, device):
        _fill(device, 64)
        sched = IOScheduler(device, readahead_window=8, min_run=2)
        sched.on_demand(0, miss=True)
        ahead = sched.on_demand(1, miss=True)
        for bid in range(2, ahead[-1]):
            assert sched.on_demand(bid, miss=False) == []
        nxt = sched.on_demand(ahead[-1], miss=False)
        assert nxt and nxt[0] == ahead[-1] + 1

    def test_window_zero_never_speculates(self, device):
        _fill(device, 32)
        sched = IOScheduler(device, readahead_window=0)
        sched.on_demand(0, miss=True)
        assert sched.on_demand(1, miss=True) == []

    def test_invalid_parameters(self, device):
        with pytest.raises(ValueError):
            IOScheduler(device, readahead_window=-1)
        with pytest.raises(ValueError):
            IOScheduler(device, min_run=0)


class TestPoolReadahead:
    def test_sequential_scan_coalesces_calls(self, device):
        blocks = _fill(device, 32)
        pool = BufferPool(device, 16, readahead_window=8)
        device.reset_stats()
        for bid in blocks:
            pool.get(bid)
        assert device.stats.reads == 32
        assert device.stats.read_calls < 32 // 2
        assert device.stats.readahead_hits > 0

    def test_prefetched_blocks_counted(self, device):
        blocks = _fill(device, 32)
        pool = BufferPool(device, 16, readahead_window=8)
        device.reset_stats()
        for bid in blocks:
            pool.get(bid)
        assert device.stats.prefetched > 0
        assert pool.stats.prefetched == device.stats.prefetched

    def test_data_identical_with_and_without_readahead(self, device):
        blocks = _fill(device, 32)
        plain = BufferPool(device, 8)
        ra = BufferPool(device, 8, readahead_window=8)
        for bid in blocks:
            assert np.array_equal(plain.get(bid), ra.get(bid))

    def test_disabled_scheduler_reads_per_block(self, device):
        blocks = _fill(device, 16)
        pool = BufferPool(device, 8, readahead_window=8)
        pool.scheduler.enabled = False
        device.reset_stats()
        for bid in blocks:
            pool.get(bid)
        assert device.stats.read_calls == 16
        assert device.stats.prefetched == 0

    def test_get_many_coalesces_misses(self, device):
        blocks = _fill(device, 8)
        pool = BufferPool(device, 16)
        device.reset_stats()
        frames = pool.get_many(blocks)
        assert device.stats.reads == 8
        assert device.stats.read_calls == 1
        assert pool.stats.misses == 8
        for i, frame in enumerate(frames):
            assert frame.view(np.float64)[0] == float(i)

    def test_get_many_counts_hits(self, device):
        blocks = _fill(device, 4)
        pool = BufferPool(device, 16)
        pool.get_many(blocks)
        device.reset_stats()
        pool.get_many(blocks)
        assert device.stats.reads == 0
        assert pool.stats.hits == 4

    def test_flush_all_coalesces_writebacks(self, device):
        blocks = _fill(device, 8)
        pool = BufferPool(device, 16)
        for bid in blocks:
            pool.get(bid, for_write=True)
        device.reset_stats()
        pool.flush_all()
        assert device.stats.writes == 8
        assert device.stats.write_calls == 1


class TestStatsContract:
    def test_snapshot_delta_cover_new_counters(self, device):
        blocks = _fill(device, 8)
        pool = BufferPool(device, 8, readahead_window=4)
        snap = device.stats.snapshot()
        for bid in blocks:
            pool.get(bid)
        delta = device.stats.delta(snap)
        assert delta.reads == 8
        assert delta.read_calls == delta.reads - delta.coalesced_ios
        assert delta.prefetched > 0

    def test_store_level_totals_invariant(self):
        """Scheduler on/off must not change block totals on a scan."""
        totals = {}
        for enabled in (False, True):
            store = ArrayStore(memory_bytes=16 * 8192, scheduler=enabled)
            vec = store.create_vector(64 * 1024)
            vec.from_numpy(np.arange(64 * 1024, dtype=np.float64))
            store.pool.clear()
            store.reset_stats()
            vec.to_numpy()
            totals[enabled] = store.device.stats.total
        assert totals[True] == totals[False]

    def test_streaming_totals_invariant_under_tight_pool(self):
        """Multi-source fused streaming in a small pool: prefetch must
        not evict its own window before use (no wasted prefetch, no
        inflated block totals — the bug a fixed-size lookahead had)."""
        from repro.core.evaluator import Evaluator
        from repro.core.expr import ArrayInput, Map

        results = {}
        for enabled in (False, True):
            store = ArrayStore(memory_bytes=32 * 8192, scheduler=enabled)
            n = 200_000
            x = store.vector_from_numpy(np.arange(n, dtype=np.float64))
            y = store.vector_from_numpy(np.ones(n))
            store.pool.clear()
            store.reset_stats()
            out = Evaluator(store).force(
                Map("+", ArrayInput(x), ArrayInput(y)))
            results[enabled] = (store.device.stats.reads,
                                store.pool.stats.prefetch_wasted,
                                out.to_numpy())
        assert results[True][0] == results[False][0]
        assert results[True][1] == 0
        assert np.array_equal(results[True][2], results[False][2])


class TestFetchPrefetchAccounting:
    def test_speculative_charge_dedups_against_demand(self, device):
        """A block both demanded and speculated must count once: the
        old code charged ``n_speculative`` from the pre-dedup list, so
        overlapping ids inflated ``stats.prefetched``."""
        blocks = _fill(device, 8)
        sched = IOScheduler(device)
        device.reset_stats()
        # Demand blocks[0:2]; speculate blocks[1:4] — one id overlaps.
        sched.fetch(blocks[:2] + blocks[1:4], n_speculative=3)
        assert device.stats.prefetched == 2
        assert device.stats.reads == 4  # dedup'd block totals

    def test_duplicate_speculative_ids_count_once(self, device):
        blocks = _fill(device, 8)
        sched = IOScheduler(device)
        device.reset_stats()
        sched.fetch([blocks[0], blocks[3], blocks[3]], n_speculative=2)
        assert device.stats.prefetched == 1

    def test_disjoint_speculation_charged_in_full(self, device):
        blocks = _fill(device, 8)
        sched = IOScheduler(device)
        device.reset_stats()
        sched.fetch(blocks[:1] + blocks[4:7], n_speculative=3)
        assert device.stats.prefetched == 3


class TestSchedulerEvictionRaces:
    def test_clock_readahead_never_orphans_dirty_blocks(self, device):
        """Speculative installs must not evict the just-demanded frame:
        with CLOCK that used to leave a dirty id with no frame behind,
        crashing the next flush."""
        first = device.allocate(32)
        for i in range(32):
            device.write_floats(first + i,
                                np.full(device.block_size // 8, float(i)))
        pool = BufferPool(device, 3, policy="clock", readahead_window=3)
        rng = np.random.default_rng(0)
        for _ in range(2000):
            pool.get(first + int(rng.integers(0, 32)), for_write=True)
            assert not (pool._dirty - set(pool._frames))
        pool.flush_all()

    def test_matmul_hint_in_undersized_pool_keeps_totals(self):
        """Nested hints (matmul announcing a submatrix whose tiles then
        announce themselves) in a pool far smaller than the announced
        footprint: prefetch budgeting must not double-read blocks."""
        from repro.linalg import square_tile_matmul

        def run(enabled):
            rng = np.random.default_rng(1)
            a_np = rng.standard_normal((192, 192))
            b_np = rng.standard_normal((192, 192))
            store = ArrayStore(memory_bytes=4 * 8192, scheduler=enabled)
            a = store.matrix_from_numpy(a_np, layout="square")
            b = store.matrix_from_numpy(b_np, layout="square")
            store.pool.clear()
            store.reset_stats()
            out = square_tile_matmul(store, a, b, 48 * 1024)
            store.flush()
            return (store.device.stats.reads,
                    store.pool.stats.prefetch_wasted, out.to_numpy())

        # reads equal, nothing wasted, results bitwise identical
        on, off = run(True), run(False)
        assert on[0] == off[0]
        assert on[1] == 0
        assert np.array_equal(on[2], off[2])
