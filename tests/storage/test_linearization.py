"""Tests for tile linearization curves, incl. hypothesis bijection checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (ColMajor, Hilbert, RowMajor, ZOrder,
                           linearization_names, make_linearization)

CURVES = [RowMajor, ColMajor, ZOrder, Hilbert]


@pytest.mark.parametrize("cls", CURVES)
class TestBijection:
    def test_roundtrip_small(self, cls):
        lin = cls(5, 7)
        for ti in range(5):
            for tj in range(7):
                assert lin.coords(lin.index(ti, tj)) == (ti, tj)

    def test_dense_range(self, cls):
        lin = cls(4, 6)
        positions = sorted(lin.index(i, j)
                           for i in range(4) for j in range(6))
        assert positions == list(range(24))

    def test_out_of_range_rejected(self, cls):
        lin = cls(3, 3)
        with pytest.raises(IndexError):
            lin.index(3, 0)
        with pytest.raises(IndexError):
            lin.index(0, -1)

    def test_invalid_grid(self, cls):
        with pytest.raises(ValueError):
            cls(0, 5)


@pytest.mark.parametrize("cls", CURVES)
@pytest.mark.parametrize("grid", [(1, 9), (9, 1), (1, 1), (1, 2), (2, 1)])
class TestDegenerateGrids:
    """1xN / Nx1 / single-tile grids: the curves must stay bijective.

    These shapes show up constantly in practice — vectors stored as
    matrices, single-tile matrices, skinny sparse-tile grids — and the
    power-of-two padding in Z-order/Hilbert makes them easy to break.
    """

    def test_roundtrip_every_position(self, cls, grid):
        rows, cols = grid
        lin = cls(rows, cols)
        for pos in range(rows * cols):
            ti, tj = lin.coords(pos)
            assert 0 <= ti < rows and 0 <= tj < cols
            assert lin.index(ti, tj) == pos

    def test_dense_position_range(self, cls, grid):
        rows, cols = grid
        lin = cls(rows, cols)
        positions = sorted(lin.index(i, j)
                           for i in range(rows) for j in range(cols))
        assert positions == list(range(rows * cols))

    def test_out_of_grid_rejected(self, cls, grid):
        rows, cols = grid
        lin = cls(rows, cols)
        with pytest.raises(IndexError):
            lin.index(rows, 0)
        with pytest.raises(IndexError):
            lin.index(0, cols)


@given(rows=st.integers(1, 12), cols=st.integers(1, 12),
       name=st.sampled_from(["row", "col", "zorder", "hilbert"]))
@settings(max_examples=60, deadline=None)
def test_bijection_property(rows, cols, name):
    lin = make_linearization(name, rows, cols)
    seen = set()
    for ti in range(rows):
        for tj in range(cols):
            pos = lin.index(ti, tj)
            assert 0 <= pos < rows * cols
            assert pos not in seen
            seen.add(pos)
            assert lin.coords(pos) == (ti, tj)


class TestOrderProperties:
    def test_row_major_order(self):
        lin = RowMajor(3, 4)
        assert lin.index(0, 0) == 0
        assert lin.index(0, 3) == 3
        assert lin.index(1, 0) == 4

    def test_col_major_order(self):
        lin = ColMajor(3, 4)
        assert lin.index(0, 0) == 0
        assert lin.index(2, 0) == 2
        assert lin.index(0, 1) == 3

    def test_zorder_interleaves(self):
        lin = ZOrder(4, 4)
        # Z-order on a 4x4 grid: (0,0)=0, (1,0)=1, (0,1)=2, (1,1)=3
        assert lin.index(0, 0) == 0
        assert lin.index(1, 0) == 1
        assert lin.index(0, 1) == 2
        assert lin.index(1, 1) == 3

    def test_hilbert_adjacency(self):
        """Consecutive Hilbert positions are grid neighbours."""
        lin = Hilbert(8, 8)
        prev = lin.coords(0)
        for pos in range(1, 64):
            cur = lin.coords(pos)
            dist = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert dist == 1, f"positions {pos-1}->{pos} not adjacent"
            prev = cur

    def test_zorder_not_always_adjacent(self):
        """Z-order jumps (that's why Hilbert exists)."""
        lin = ZOrder(8, 8)
        jumps = 0
        prev = lin.coords(0)
        for pos in range(1, 64):
            cur = lin.coords(pos)
            if abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) > 1:
                jumps += 1
            prev = cur
        assert jumps > 0


def _locality_score(lin, rows: int, cols: int, window: int = 4) -> float:
    """Mean linear distance between horizontally adjacent tiles."""
    dists = []
    for i in range(rows):
        for j in range(cols - 1):
            dists.append(abs(lin.index(i, j + 1) - lin.index(i, j)))
    return float(np.mean(dists))


class TestLocality:
    def test_hilbert_beats_colmajor_for_row_walks(self):
        """Space-filling curves keep neighbours closer than the 'wrong'
        canonical order — the §5 motivation for advanced linearization."""
        rows = cols = 16
        hilbert = _locality_score(Hilbert(rows, cols), rows, cols)
        col = _locality_score(ColMajor(rows, cols), rows, cols)
        assert hilbert < col

    def test_names_listed(self):
        assert set(linearization_names()) == {
            "row", "col", "zorder", "hilbert"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_linearization("peano", 2, 2)
