"""Concurrency stress tests for the thread-safe buffer pool.

N threads hammer pin/unpin/prefetch/get/eviction on one pool and the
invariants that the parallel plan executor depends on must hold: pin
counts drain to zero, residency never exceeds capacity, no IOStats or
PoolStats increment is lost, and data read back is what was written.
The suite also runs under ``REPRO_SANITIZE=1`` in the CI parallel job.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BlockDevice, BufferPool


def _fill_device(dev: BlockDevice, n: int) -> list[int]:
    first = dev.allocate(n)
    for i in range(n):
        dev.write_floats(first + i,
                         np.full(dev.block_size // 8, float(i)))
    return list(range(first, first + n))


def _run_threads(workers) -> None:
    """Start, join, and re-raise the first worker failure."""
    errors: list[BaseException] = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestConcurrentReads:
    def test_no_lost_stats_increments(self, device):
        # Pool big enough that nothing evicts: each of the 64 blocks
        # must miss exactly once no matter how 8 threads interleave —
        # a lost or double increment shows up in the exact totals.
        nblocks, nthreads = 64, 8
        blocks = _fill_device(device, nblocks)
        pool = BufferPool(device, nblocks + 4)
        baseline_reads = device.stats.reads

        def reader():
            for bid in blocks:
                pool.get(bid)

        _run_threads([reader] * nthreads)
        assert pool.stats.misses == nblocks
        assert pool.stats.hits == nblocks * (nthreads - 1)
        assert device.stats.reads - baseline_reads == nblocks
        assert pool.resident == nblocks

    def test_values_correct_under_eviction_pressure(self, device):
        nblocks = 48
        blocks = _fill_device(device, nblocks)
        pool = BufferPool(device, 6)

        def reader(stride: int):
            def run():
                for i in range(nblocks):
                    pick = (i * stride) % nblocks
                    frame = pool.get(blocks[pick])
                    assert frame.view(np.float64)[0] == float(pick)
            return run

        _run_threads([reader(s) for s in (1, 3, 5, 7)])
        assert pool.resident <= 6

    def test_pins_drain_to_zero(self, device):
        nblocks = 16
        blocks = _fill_device(device, nblocks)
        pool = BufferPool(device, nblocks + 2)

        def pinner():
            for _ in range(50):
                for bid in blocks:
                    pool.get(bid)
                    pool.pin(bid)
                    pool.unpin(bid)

        _run_threads([pinner] * 6)
        assert pool._pinned == {}

    def test_concurrent_prefetch_and_demand(self, device):
        nblocks = 32
        blocks = _fill_device(device, nblocks)
        pool = BufferPool(device, nblocks + 2)
        baseline_reads = device.stats.reads

        def prefetcher():
            for i in range(0, nblocks, 8):
                pool.prefetch(blocks[i:i + 8])

        def reader():
            for bid in blocks:
                pool.get(bid)

        _run_threads([prefetcher, reader, prefetcher, reader])
        # Every block crossed the device exactly once: prefetch and
        # demand fetches are serialized by the pool lock, and a
        # resident block is never re-fetched.
        assert device.stats.reads - baseline_reads == nblocks


class TestConcurrentWrites:
    def test_disjoint_puts_then_flush_readback(self, device):
        nthreads, per_thread = 4, 12
        first = device.allocate(nthreads * per_thread)
        pool = BufferPool(device, nthreads * per_thread + 2)
        width = device.block_size

        def writer(t: int):
            def run():
                for i in range(per_thread):
                    bid = first + t * per_thread + i
                    pool.put(bid, np.full(width, t * 16 + i,
                                          dtype=np.uint8))
            return run

        _run_threads([writer(t) for t in range(nthreads)])
        pool.flush_all()
        pool.clear()
        for t in range(nthreads):
            for i in range(per_thread):
                bid = first + t * per_thread + i
                assert device.read_block(bid)[0] == t * 16 + i

    def test_latched_mutation_then_flush(self, device):
        blocks = _fill_device(device, 4)
        pool = BufferPool(device, 8)
        buf = pool.get(blocks[0], for_write=True)
        with pool.latched(blocks[0]):
            buf.view(np.float64)[:] = 7.0
        pool.flush(blocks[0])
        assert device.read_floats(blocks[0])[0] == 7.0


@settings(max_examples=15, deadline=None)
@given(capacity=st.integers(min_value=4, max_value=24),
       nthreads=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=2**16))
def test_property_invariants_under_random_interleaving(
        capacity, nthreads, seed):
    device = BlockDevice(block_size=8192)
    nblocks = 40
    blocks = _fill_device(device, nblocks)
    pool = BufferPool(device, capacity)
    rng = np.random.default_rng(seed)
    plans = [rng.integers(0, nblocks, size=60).tolist()
             for _ in range(nthreads)]
    # Bound simultaneous pins so the pool can never be fully pinned
    # (an exhausted pool is a caller bug, not an interleaving one).
    max_held = max(0, (capacity - 2) // nthreads)
    gets_done = [0] * nthreads

    def worker(w: int, plan: list[int]):
        def run():
            held: list[int] = []
            for j, pick in enumerate(plan):
                bid = blocks[pick]
                if j % 7 == 3 and len(held) < max_held:
                    # get+pin must be atomic under eviction pressure:
                    # compose them under the pool's public lock.
                    with pool.lock:
                        pool.get(bid)
                        pool.pin(bid)
                    gets_done[w] += 1
                    held.append(bid)
                elif j % 7 == 6 and held:
                    pool.unpin(held.pop())
                else:
                    frame = pool.get(bid)
                    gets_done[w] += 1
                    assert frame.view(np.float64)[0] == float(pick)
            for bid in held:
                pool.unpin(bid)
        return run

    _run_threads([worker(w, p) for w, p in enumerate(plans)])
    assert pool._pinned == {}
    assert pool.resident <= capacity
    # Conservation: every get is exactly one hit or one miss — none
    # lost, none double-counted, even with eviction in the mix.
    assert pool.stats.accesses == sum(gets_done)


def test_pool_lock_is_reentrant(device):
    pool = BufferPool(device, 4)
    # Re-entrancy is part of the contract: sanitizer overrides and
    # nested internal calls re-acquire freely.
    with pool.lock:
        with pool.lock:
            blocks = _fill_device(device, 1)
            pool.get(blocks[0])
