"""Tests for the tiled array store (vectors, matrices, gather/scatter)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import ArrayStore, tile_shape_for_layout


class TestTiledVector:
    def test_roundtrip(self, store, rng):
        data = rng.standard_normal(5000)
        vec = store.vector_from_numpy(data)
        assert np.allclose(vec.to_numpy(), data)

    def test_partial_last_chunk(self, store):
        vec = store.create_vector(1500, chunk=1024)
        assert vec.num_chunks == 2
        lo, hi = vec.chunk_bounds(1)
        assert (lo, hi) == (1024, 1500)

    def test_chunk_write_validates_length(self, store):
        vec = store.create_vector(100, chunk=64)
        with pytest.raises(ValueError):
            vec.write_chunk(0, np.zeros(10))

    def test_scan_order(self, store):
        data = np.arange(3000, dtype=np.float64)
        vec = store.vector_from_numpy(data)
        seen = [lo for lo, _ in vec.scan()]
        assert seen == sorted(seen)

    def test_gather_touches_only_needed_chunks(self, tiny_store, rng):
        data = rng.standard_normal(100_000)
        vec = tiny_store.vector_from_numpy(data)
        tiny_store.pool.clear()
        tiny_store.reset_stats()
        idx = np.asarray([5, 6, 7, 2048, 2049])  # two chunks
        out = vec.gather(idx)
        assert np.allclose(out, data[idx])
        assert tiny_store.device.stats.reads == 2

    def test_gather_empty(self, store):
        vec = store.create_vector(10)
        assert vec.gather(np.asarray([], dtype=np.int64)).size == 0

    def test_gather_out_of_range(self, store):
        vec = store.create_vector(10)
        with pytest.raises(IndexError):
            vec.gather(np.asarray([10]))

    def test_scatter_roundtrip(self, store, rng):
        data = rng.standard_normal(10_000)
        vec = store.vector_from_numpy(data.copy())
        idx = rng.choice(10_000, size=50, replace=False)
        vals = rng.standard_normal(50)
        vec.scatter(idx, vals)
        expect = data.copy()
        expect[idx] = vals
        assert np.allclose(vec.to_numpy(), expect)

    def test_scatter_shape_mismatch(self, store):
        vec = store.create_vector(10)
        with pytest.raises(ValueError):
            vec.scatter(np.asarray([1, 2]), np.asarray([1.0]))

    def test_chunk_larger_than_page_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_vector(10, chunk=store.scalars_per_block + 1)

    def test_drop_releases_blocks(self, store):
        vec = store.vector_from_numpy(np.ones(5000))
        store.flush()
        resident_before = store.device.resident_blocks
        vec.drop()
        assert store.device.resident_blocks < resident_before

    @given(n=st.integers(1, 4000), chunk=st.integers(1, 1024))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n, chunk):
        store = ArrayStore(memory_bytes=1 << 20)
        data = np.arange(n, dtype=np.float64) * 0.5
        vec = store.create_vector(n, chunk=chunk)
        vec.from_numpy(data)
        assert np.allclose(vec.to_numpy(), data)


class TestTiledMatrix:
    @pytest.mark.parametrize("layout", ["row", "col", "square"])
    def test_roundtrip_layouts(self, store, rng, layout):
        data = rng.standard_normal((100, 60))
        mat = store.matrix_from_numpy(data, layout=layout)
        assert np.allclose(mat.to_numpy(), data)

    @pytest.mark.parametrize("linearization",
                             ["row", "col", "zorder", "hilbert"])
    def test_roundtrip_linearizations(self, store, rng, linearization):
        data = rng.standard_normal((90, 90))
        mat = store.matrix_from_numpy(data, layout="square",
                                      linearization=linearization)
        assert np.allclose(mat.to_numpy(), data)

    def test_tile_bounds_clip_at_edges(self, store):
        mat = store.create_matrix((100, 70), tile_shape=(32, 32))
        r0, r1, c0, c1 = mat.tile_bounds(3, 2)
        assert (r0, r1, c0, c1) == (96, 100, 64, 70)

    def test_submatrix_read(self, store, rng):
        data = rng.standard_normal((128, 128))
        mat = store.matrix_from_numpy(data, layout="square")
        sub = mat.read_submatrix(10, 75, 20, 100)
        assert np.allclose(sub, data[10:75, 20:100])

    def test_submatrix_write_partial_tiles(self, store, rng):
        data = rng.standard_normal((96, 96))
        mat = store.matrix_from_numpy(data.copy(), layout="square")
        patch = rng.standard_normal((20, 30))
        mat.write_submatrix(5, 50, patch)
        expect = data.copy()
        expect[5:25, 50:80] = patch
        assert np.allclose(mat.to_numpy(), expect)

    def test_tile_write_validates_shape(self, store):
        mat = store.create_matrix((64, 64), tile_shape=(32, 32))
        with pytest.raises(ValueError):
            mat.write_tile(0, 0, np.zeros((16, 16)))

    def test_out_of_range_tile(self, store):
        mat = store.create_matrix((64, 64), tile_shape=(32, 32))
        with pytest.raises(IndexError):
            mat.read_tile(2, 0)

    def test_tiles_iterate_in_disk_order(self, store):
        mat = store.create_matrix((64, 64), tile_shape=(32, 32),
                                  linearization="col")
        order = list(mat.tiles())
        assert order == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_multi_page_tiles(self, store, rng):
        """64x64 tiles of float64 are 4 pages each."""
        data = rng.standard_normal((128, 128))
        mat = store.create_matrix((128, 128), tile_shape=(64, 64))
        mat.from_numpy(data)
        assert mat.pages_per_tile == 4
        assert np.allclose(mat.to_numpy(), data)

    def test_reading_tile_costs_its_pages(self, tiny_store, rng):
        data = rng.standard_normal((128, 128))
        mat = tiny_store.create_matrix((128, 128), tile_shape=(64, 64))
        mat.from_numpy(data)
        tiny_store.pool.clear()
        tiny_store.reset_stats()
        mat.read_tile(0, 0)
        assert tiny_store.device.stats.reads == mat.pages_per_tile

    @given(rows=st.integers(1, 80), cols=st.integers(1, 80),
           th=st.integers(1, 32), tw=st.integers(1, 32))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rows, cols, th, tw):
        store = ArrayStore(memory_bytes=1 << 21)
        data = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        mat = store.create_matrix((rows, cols), tile_shape=(th, tw))
        mat.from_numpy(data)
        assert np.allclose(mat.to_numpy(), data)


class TestTileShapeForLayout:
    def test_row_layout_packs_short_rows(self):
        assert tile_shape_for_layout("row", (100, 256), 1024) == (4, 256)

    def test_row_layout_wide_matrix(self):
        assert tile_shape_for_layout("row", (100, 5000), 1024) == (1, 1024)

    def test_col_layout_packs_short_columns(self):
        assert tile_shape_for_layout("col", (256, 100), 1024) == (256, 4)

    def test_square_layout(self):
        assert tile_shape_for_layout("square", (5000, 5000), 1024) == \
            (32, 32)

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            tile_shape_for_layout("diagonal", (10, 10), 1024)

    @pytest.mark.parametrize("layout", ["row", "col", "square"])
    @pytest.mark.parametrize("shape", [(0, 5), (5, 0), (0, 0), (-1, 5)])
    def test_zero_sized_shape_raises_clearly(self, layout, shape):
        """A degenerate shape must raise ValueError, not ZeroDivisionError
        (the row/col branches divide by the opposite dimension)."""
        with pytest.raises(ValueError, match="zero- or negative-sized"):
            tile_shape_for_layout(layout, shape, 1024)

    def test_zero_block_raises_clearly(self):
        with pytest.raises(ValueError, match="scalars_per_block"):
            tile_shape_for_layout("square", (10, 10), 0)

    def test_create_matrix_zero_shape_raises_clearly(self):
        """The ArrayStore path reaches tile_shape_for_layout before the
        TiledMatrix constructor; it must fail just as clearly."""
        from repro.storage import ArrayStore
        store = ArrayStore(memory_bytes=8 * 8192)
        with pytest.raises(ValueError):
            store.create_matrix((0, 5))


class TestArrayStore:
    def test_fresh_names_unique(self, store):
        a = store.create_vector(10)
        b = store.create_vector(10)
        assert a.name != b.name

    def test_io_stats_counts_cold_reads(self, tiny_store, rng):
        data = rng.standard_normal(50_000)
        vec = tiny_store.vector_from_numpy(data)
        tiny_store.pool.clear()
        tiny_store.reset_stats()
        vec.to_numpy()
        expected_blocks = vec.num_chunks
        assert tiny_store.device.stats.reads == expected_blocks
