"""Tests for page files over the block device."""

import numpy as np
import pytest

from repro.storage import PageFile


class TestAllocation:
    def test_pages_numbered_from_zero(self, device):
        pf = PageFile(device)
        assert pf.allocate_page() == 0
        assert pf.allocate_page() == 1
        assert pf.num_pages == 2

    def test_extent_allocation_keeps_scans_sequential(self, device):
        """Pages allocated in a run map to consecutive device blocks."""
        pf = PageFile(device)
        pages = pf.allocate_pages(32)
        blocks = [pf.block_of(p) for p in pages]
        assert blocks == list(range(blocks[0], blocks[0] + 32))

    def test_two_files_interleaved_allocation(self, device):
        """Interleaved growth must not corrupt either file's mapping."""
        f1, f2 = PageFile(device, "a"), PageFile(device, "b")
        for _ in range(100):
            f1.allocate_page()
            f2.allocate_page()
        all_blocks = ([f1.block_of(p) for p in range(100)]
                      + [f2.block_of(p) for p in range(100)])
        assert len(set(all_blocks)) == 200

    def test_freed_pages_recycled(self, device):
        pf = PageFile(device)
        pages = pf.allocate_pages(4)
        pf.free_page(pages[1])
        assert pf.allocate_page() == pages[1]


class TestIO:
    def test_roundtrip(self, device):
        pf = PageFile(device)
        page = pf.allocate_page()
        data = np.arange(device.block_size, dtype=np.uint8) % 199
        pf.write_page(page, data)
        assert np.array_equal(pf.read_page(page), data)

    def test_out_of_range(self, device):
        pf = PageFile(device)
        with pytest.raises(IndexError):
            pf.read_page(0)

    def test_sequential_scan_is_sequential_io(self, device):
        pf = PageFile(device)
        pages = pf.allocate_pages(16)
        for p in pages:
            pf.write_page(p, np.zeros(8, dtype=np.uint8))
        device.reset_stats()
        for p in pages:
            pf.read_page(p)
        assert device.stats.seq_reads >= 15

    def test_drop_frees_device_blocks(self, device):
        pf = PageFile(device)
        pages = pf.allocate_pages(4)
        for p in pages:
            pf.write_page(p, np.ones(8, dtype=np.uint8))
        resident = device.resident_blocks
        pf.drop()
        assert device.resident_blocks == resident - 4
        assert pf.num_pages == 0
