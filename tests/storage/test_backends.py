"""Storage backends: file devices, the config API, and equivalence.

The contract under test is the PR-6 redesign: every subsystem builds
its device through :func:`repro.storage.create_device` from a
:class:`repro.storage.StorageConfig`, and the file backends (``mmap``,
``pread``) are *accounting-identical* to the in-memory simulator — any
access sequence produces the same simulated block counts, with the
real-hardware counters (``read_ns``/``bytes_*``/``syscalls``) layered
on top.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (ArrayStore, BACKENDS, BlockDevice,
                           FileBlockDevice, IO_SCHEMA_VERSION,
                           StorageConfig, create_device, parse_memory)

FILE_MODES = ("mmap", "pread")


def _payload(n_blocks, block_size=8192, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n_blocks, block_size),
                        dtype=np.uint8)


# ----------------------------------------------------------------------
# FileBlockDevice: physical behaviour per mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", FILE_MODES)
class TestFileBlockDevice:
    def test_roundtrip_coalesced(self, tmp_path, mode):
        dev = FileBlockDevice(tmp_path / "pages.db", mode=mode)
        first = dev.allocate(5)
        data = _payload(5)
        dev.write_blocks((first + i, data[i]) for i in range(5))
        out = dev.read_blocks(range(first, first + 5))
        for got, want in zip(out, data):
            assert np.array_equal(got, want)
        dev.close()

    def test_reads_are_private_copies(self, tmp_path, mode):
        """Mutating a returned block must not touch the page file."""
        dev = FileBlockDevice(tmp_path / "pages.db", mode=mode)
        bid = dev.allocate(1)
        dev.write_block(bid, _payload(1)[0])
        copy = dev.read_block(bid)
        copy[:] = 0
        assert np.array_equal(dev.read_block(bid), _payload(1)[0])
        dev.close()

    def test_unwritten_blocks_read_as_zero(self, tmp_path, mode):
        dev = FileBlockDevice(tmp_path / "pages.db", mode=mode)
        bid = dev.allocate(2)
        assert not dev.read_block(bid + 1).any()
        dev.close()

    def test_wallclock_and_byte_counters(self, tmp_path, mode):
        dev = FileBlockDevice(tmp_path / "pages.db", mode=mode)
        first = dev.allocate(4)
        data = _payload(4)
        dev.write_blocks((first + i, data[i]) for i in range(4))
        dev.read_blocks(range(first, first + 4))
        s = dev.stats
        assert s.reads == 4 and s.writes == 4
        assert s.bytes_read == 4 * 8192
        assert s.bytes_written == 4 * 8192
        assert s.read_ns > 0 and s.write_ns > 0
        assert s.seconds == pytest.approx(
            (s.read_ns + s.write_ns) / 1e9)
        if mode == "pread":
            # one coalesced run each way = one syscall each way
            assert s.syscalls == 2
        else:
            assert s.syscalls == 0  # memcpys against the mapping
        dev.close()

    def test_reopen_with_sidecar_restores_manifest(self, tmp_path,
                                                   mode):
        path = tmp_path / "pages.db"
        dev = FileBlockDevice(path, mode=mode)
        bid = dev.allocate(3)
        data = _payload(3)
        dev.write_blocks((bid + i, data[i]) for i in range(3))
        dev.manifest["hello"] = {"first": bid}
        cursor = dev.allocated_blocks
        dev.close()

        again = FileBlockDevice(path, mode=mode)
        assert again.manifest == {"hello": {"first": bid}}
        assert again.allocated_blocks == cursor
        assert np.array_equal(again.read_block(bid), data[0])
        again.close()

    def test_reopen_raw_file_without_sidecar(self, tmp_path, mode):
        path = tmp_path / "pages.db"
        dev = FileBlockDevice(path, mode=mode)
        bid = dev.allocate(1)
        dev.write_block(bid, _payload(1)[0])
        dev.close()
        os.unlink(str(path) + ".meta")

        again = FileBlockDevice(path, mode=mode)
        # allocation cursor lands past every existing file block
        fresh = again.allocate(1)
        assert fresh * again.block_size >= os.path.getsize(path) or \
            fresh > bid
        assert np.array_equal(again.read_block(bid), _payload(1)[0])
        again.close()

    def test_block_size_mismatch_rejected(self, tmp_path, mode):
        path = tmp_path / "pages.db"
        FileBlockDevice(path, mode=mode, block_size=8192).close()
        with pytest.raises(ValueError, match="block_size"):
            FileBlockDevice(path, mode=mode, block_size=4096)

    def test_temporary_file_removed_on_close(self, mode):
        dev = FileBlockDevice(path=None, mode=mode)
        path = dev.path
        bid = dev.allocate(1)
        dev.write_block(bid, _payload(1)[0])
        assert os.path.exists(path)
        dev.close()
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".meta")

    def test_close_is_idempotent(self, tmp_path, mode):
        dev = FileBlockDevice(tmp_path / "pages.db", mode=mode)
        dev.close()
        dev.close()


class TestFileDeviceExtras:
    def test_block_view_zero_copy(self, tmp_path):
        dev = FileBlockDevice(tmp_path / "pages.db", mode="mmap")
        bid = dev.allocate(1)
        data = _payload(1)[0]
        dev.write_block(bid, data)
        before = dev.stats.snapshot()
        view = dev.block_view(bid)
        assert np.array_equal(view, data)
        assert not view.flags.writeable
        # outside the accounting contract by design
        assert dev.stats.snapshot().as_dict() == before.as_dict()
        dev.close()

    def test_block_view_requires_mmap(self, tmp_path):
        dev = FileBlockDevice(tmp_path / "pages.db", mode="pread")
        dev.allocate(1)
        with pytest.raises(ValueError, match="mmap"):
            dev.block_view(0)
        dev.close()

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mmap|pread"):
            FileBlockDevice(tmp_path / "x.db", mode="sync")

    def test_sync_counts_syscalls(self, tmp_path):
        dev = FileBlockDevice(tmp_path / "pages.db", mode="pread")
        bid = dev.allocate(1)
        dev.write_block(bid, _payload(1)[0])
        before = dev.stats.syscalls
        dev.sync()
        assert dev.stats.syscalls > before
        dev.close()

    def test_fsync_flag_on_writes(self, tmp_path):
        dev = FileBlockDevice(tmp_path / "pages.db", mode="pread",
                              fsync=True)
        bid = dev.allocate(1)
        dev.write_block(bid, _payload(1)[0])
        assert dev.stats.syscalls >= 2  # pwrite + fsync barrier
        dev.close()

    def test_direct_mode_roundtrip_or_fallback(self, tmp_path):
        """O_DIRECT is best-effort: where the filesystem refuses it the
        device falls back to buffered pread with identical results."""
        dev = FileBlockDevice(tmp_path / "pages.db", mode="pread",
                              direct=True)
        first = dev.allocate(3)
        data = _payload(3)
        dev.write_blocks((first + i, data[i]) for i in range(3))
        out = dev.read_blocks(range(first, first + 3))
        for got, want in zip(out, data):
            assert np.array_equal(got, want)
        dev.close()


# ----------------------------------------------------------------------
# StorageConfig / parse_memory / URL form / factory
# ----------------------------------------------------------------------
class TestParseMemory:
    @pytest.mark.parametrize("text,expect", [
        (1234, 1234), ("1234", 1234), ("64KiB", 64 * 1024),
        ("64kb", 64_000), ("1.5MiB", 3 * 512 * 1024),
        ("2GiB", 2 * 1024 ** 3), ("8 MiB", 8 * 1024 ** 2),
    ])
    def test_values(self, text, expect):
        assert parse_memory(text) == expect

    @pytest.mark.parametrize("bad", ["", "MiB", "12XB", "1.2.3MB"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_memory(bad)


class TestStorageConfig:
    def test_defaults_are_memory_backend(self):
        cfg = StorageConfig()
        assert cfg.backend == "memory" and cfg.path is None
        assert isinstance(create_device(cfg), BlockDevice)

    def test_memory_string_accepted(self):
        assert StorageConfig(memory_bytes="1MiB").memory_bytes == 1 << 20

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            StorageConfig(backend="tape")

    def test_with_options_returns_copy(self):
        cfg = StorageConfig()
        other = cfg.with_options(block_size=4096)
        assert other.block_size == 4096
        assert cfg.block_size != 4096 or cfg is not other

    @pytest.mark.parametrize("url", [None, "", "memory://", ":memory:"])
    def test_url_memory_forms(self, url):
        assert StorageConfig.from_url(url).backend == "memory"

    def test_url_bare_path_is_mmap(self, tmp_path):
        cfg = StorageConfig.from_url(tmp_path / "riot.db")
        assert cfg.backend == "mmap"
        assert cfg.path == str(tmp_path / "riot.db")

    def test_url_file_with_params(self):
        cfg = StorageConfig.from_url(
            "file:///tmp/riot.db?mode=pread&fsync=1&block_size=4096"
            "&readahead=8&policy=clock")
        assert cfg.backend == "pread" and cfg.path == "/tmp/riot.db"
        assert cfg.fsync and cfg.block_size == 4096
        assert cfg.readahead_window == 8 and cfg.policy == "clock"

    def test_url_memory_override(self):
        cfg = StorageConfig.from_url("file:///tmp/r.db", memory="64MiB")
        assert cfg.memory_bytes == 64 << 20

    def test_url_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            StorageConfig.from_url("file:///tmp/r.db?compression=zstd")

    def test_url_remote_host_rejected(self):
        with pytest.raises(ValueError, match="local"):
            StorageConfig.from_url("file://nas/share/r.db")

    def test_url_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            StorageConfig.from_url("s3://bucket/r.db")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_factory_covers_every_backend(self, backend, tmp_path):
        cfg = StorageConfig(
            backend=backend,
            path=None if backend == "memory" else tmp_path / "p.db")
        dev = create_device(cfg)
        assert dev.backend == backend
        bid = dev.allocate(1)
        dev.write_block(bid, _payload(1)[0])
        assert np.array_equal(dev.read_block(bid), _payload(1)[0])
        dev.close()


class TestArrayStoreBudget:
    def test_below_minimum_raises_with_actual_minimum(self):
        with pytest.raises(ValueError) as err:
            ArrayStore(memory_bytes=3 * 8192, block_size=8192)
        assert "4 blocks" in str(err.value)
        assert str(4 * 8192) in str(err.value)

    def test_exact_minimum_accepted(self):
        store = ArrayStore(memory_bytes=4 * 8192, block_size=8192)
        assert store.pool.capacity == 4

    def test_no_silent_flooring(self):
        """The old max(4, ...) floor is gone: a budget that fits is
        honoured exactly."""
        store = ArrayStore(memory_bytes=7 * 8192, block_size=8192)
        assert store.pool.capacity == 7


# ----------------------------------------------------------------------
# Cross-backend equivalence (the tentpole acceptance property)
# ----------------------------------------------------------------------
SIM_KEYS = ("seq_reads", "rand_reads", "seq_writes", "rand_writes",
            "read_calls", "write_calls", "coalesced_ios",
            "prefetched", "readahead_hits")


def _sim_counts(stats):
    d = stats.as_dict()
    return {k: d[k] for k in SIM_KEYS}


def _run_workload(backend, pattern, m, k, n, seed):
    """Force one DAG on a 6-block pool; return (values, sim counts)."""
    from repro.core import RiotSession
    cfg = StorageConfig(backend=backend, memory_bytes=6 * 8192,
                        block_size=8192)
    with RiotSession(storage=cfg) as s:
        g = np.random.default_rng(seed)
        a = s.matrix(g.standard_normal((m, k)))
        b = s.matrix(g.standard_normal((k, n)))
        c = s.matrix(g.standard_normal((m, n)))
        if pattern == "mm":
            out = a @ b
        elif pattern == "epilogue":
            out = (a @ b) * 0.5 + c
        elif pattern == "crossprod":
            out = a.T @ a
        else:  # chain
            out = (a @ b) @ c.T
        values = np.asarray(s.values(out))
        counts = _sim_counts(s.io_stats)
    return values, counts


@given(pattern=st.sampled_from(["mm", "epilogue", "crossprod",
                                "chain"]),
       m=st.integers(33, 150), k=st.integers(33, 150),
       n=st.integers(33, 150), seed=st.integers(0, 2 ** 16))
@settings(max_examples=10, deadline=None)
def test_backends_bitwise_identical_and_same_block_counts(
        pattern, m, k, n, seed):
    """Same DAG, same pool budget, three backends: the answers are
    bitwise identical and the *simulated* block counters agree exactly
    — the file devices only override the physical primitives, never
    the accounting."""
    ref_vals, ref_counts = _run_workload("memory", pattern, m, k, n,
                                         seed)
    for backend in FILE_MODES:
        vals, counts = _run_workload(backend, pattern, m, k, n, seed)
        assert np.array_equal(ref_vals, vals), backend
        assert counts == ref_counts, backend


@given(n=st.integers(300, 1200), seed=st.integers(0, 2 ** 16))
@settings(max_examples=10, deadline=None)
def test_vector_pipeline_identical_across_backends(n, seed):
    data = np.random.default_rng(seed).standard_normal(n)

    def run(backend):
        from repro.core import RiotSession
        cfg = StorageConfig(backend=backend, memory_bytes=4 * 8192,
                            block_size=8192)
        with RiotSession(storage=cfg) as s:
            x = s.vector(data)
            out = ((x - 3.0) ** 2.0).sqrt()[1: max(2, n // 2)]
            return np.asarray(s.values(out)), \
                _sim_counts(s.io_stats)

    ref = run("memory")
    for backend in FILE_MODES:
        vals, counts = run(backend)
        assert np.array_equal(ref[0], vals)
        assert ref[1] == counts


# ----------------------------------------------------------------------
# Persistence through the ArrayStore
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", FILE_MODES)
class TestPersistence:
    def test_arrays_survive_reopen(self, tmp_path, mode):
        path = tmp_path / "riot.db"
        cfg = StorageConfig(backend=mode, path=path,
                            memory_bytes=16 * 8192)
        rng = np.random.default_rng(5)
        mat = rng.standard_normal((70, 40))
        vec = rng.standard_normal(2500)
        with ArrayStore(storage=cfg) as store:
            store.matrix_from_numpy(mat, name="M",
                                    linearization="col")
            store.vector_from_numpy(vec, name="v")
        assert path.exists()

        with ArrayStore(storage=cfg) as store:
            assert sorted(store.stored_names()) == ["M", "v"]
            m2 = store.open_matrix("M")
            assert m2.linearization.name == "col"
            assert np.array_equal(m2.to_numpy(), mat)
            assert np.array_equal(store.open_vector("v").to_numpy(),
                                  vec)

    def test_wrong_kind_and_missing_names(self, tmp_path, mode):
        cfg = StorageConfig(backend=mode, path=tmp_path / "r.db",
                            memory_bytes=16 * 8192)
        with ArrayStore(storage=cfg) as store:
            store.vector_from_numpy(np.arange(10.0), name="v")
        with ArrayStore(storage=cfg) as store:
            with pytest.raises(KeyError, match="matrix"):
                store.open_matrix("v")
            with pytest.raises(KeyError, match="nope"):
                store.open_vector("nope")

    def test_temp_store_leaves_nothing_behind(self, mode):
        cfg = StorageConfig(backend=mode, memory_bytes=16 * 8192)
        store = ArrayStore(storage=cfg)
        store.vector_from_numpy(np.arange(100.0), name="v")
        path = store.device.path
        assert os.path.exists(path)
        store.close()
        store.close()  # idempotent
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".meta")


def test_schema_version_in_stats_dict(tmp_path):
    dev = FileBlockDevice(tmp_path / "p.db", mode="pread")
    d = dev.stats.as_dict()
    assert d["schema_version"] == IO_SCHEMA_VERSION
    for key in ("read_ns", "write_ns", "bytes_read", "bytes_written",
                "syscalls", "seconds"):
        assert key in d
    dev.close()
