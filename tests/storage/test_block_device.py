"""Unit tests for the simulated block device and I/O accounting."""

import numpy as np
import pytest

from repro.storage import BlockDevice, IOStats, SimClock


class TestAllocation:
    def test_allocate_returns_consecutive_ids(self):
        dev = BlockDevice()
        first = dev.allocate(4)
        second = dev.allocate(2)
        assert second == first + 4

    def test_allocate_rejects_nonpositive(self):
        dev = BlockDevice()
        with pytest.raises(ValueError):
            dev.allocate(0)

    def test_allocation_charges_no_io(self):
        dev = BlockDevice()
        dev.allocate(100)
        assert dev.stats.total == 0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockDevice(block_size=0)


class TestReadWrite:
    def test_roundtrip(self):
        dev = BlockDevice()
        bid = dev.allocate()
        data = np.arange(dev.block_size, dtype=np.uint8) % 251
        dev.write_block(bid, data)
        assert np.array_equal(dev.read_block(bid), data)

    def test_unwritten_block_reads_zeros(self):
        dev = BlockDevice()
        bid = dev.allocate()
        assert not dev.read_block(bid).any()

    def test_short_write_zero_pads(self):
        dev = BlockDevice()
        bid = dev.allocate()
        dev.write_block(bid, np.asarray([1, 2, 3], dtype=np.uint8))
        out = dev.read_block(bid)
        assert out[0] == 1 and out[3] == 0

    def test_oversized_write_rejected(self):
        dev = BlockDevice(block_size=16)
        bid = dev.allocate()
        with pytest.raises(ValueError):
            dev.write_block(bid, np.zeros(17, dtype=np.uint8))

    def test_out_of_range_access(self):
        dev = BlockDevice()
        with pytest.raises(IndexError):
            dev.read_block(0)
        bid = dev.allocate()
        with pytest.raises(IndexError):
            dev.read_block(bid + 1)

    def test_float_roundtrip(self):
        dev = BlockDevice()
        bid = dev.allocate()
        values = np.linspace(0.0, 1.0, dev.block_size // 8)
        dev.write_floats(bid, values)
        assert np.allclose(dev.read_floats(bid), values)

    def test_write_copies_input(self):
        dev = BlockDevice()
        bid = dev.allocate()
        data = np.ones(dev.block_size, dtype=np.uint8)
        dev.write_block(bid, data)
        data[:] = 0
        assert dev.read_block(bid)[0] == 1


class TestSeqRandClassification:
    def test_ascending_run_is_sequential(self):
        dev = BlockDevice()
        first = dev.allocate(10)
        for bid in range(first, first + 10):
            dev.read_block(bid)
        # First access is random (no predecessor), rest sequential.
        assert dev.stats.rand_reads == 1
        assert dev.stats.seq_reads == 9

    def test_strided_access_is_random(self):
        dev = BlockDevice()
        first = dev.allocate(10)
        for bid in range(first, first + 10, 2):
            dev.read_block(bid)
        assert dev.stats.seq_reads == 0
        assert dev.stats.rand_reads == 5

    def test_classification_spans_read_write(self):
        dev = BlockDevice()
        first = dev.allocate(2)
        dev.write_block(first, np.zeros(8, dtype=np.uint8))
        dev.read_block(first + 1)  # sequential after the write
        assert dev.stats.seq_reads == 1


class TestStats:
    def test_snapshot_and_delta(self):
        dev = BlockDevice()
        first = dev.allocate(4)
        dev.read_block(first)
        snap = dev.stats.snapshot()
        dev.read_block(first + 1)
        dev.write_block(first + 2, np.zeros(1, dtype=np.uint8))
        delta = dev.stats.delta(snap)
        assert delta.reads == 1
        assert delta.writes == 1

    def test_merged(self):
        a = IOStats(seq_reads=1, rand_reads=2, seq_writes=3, rand_writes=4)
        b = IOStats(seq_reads=10, rand_reads=20, seq_writes=30,
                    rand_writes=40)
        m = a.merged(b)
        assert (m.seq_reads, m.rand_reads, m.seq_writes,
                m.rand_writes) == (11, 22, 33, 44)

    def test_mb_total(self):
        stats = IOStats(seq_reads=128)  # 128 x 8 KB = 1 MB
        assert stats.mb_total(8192) == pytest.approx(1.0)

    def test_reset(self):
        dev = BlockDevice()
        bid = dev.allocate()
        dev.read_block(bid)
        dev.reset_stats()
        assert dev.stats.total == 0

    def test_free_releases_storage(self):
        dev = BlockDevice()
        bid = dev.allocate()
        dev.write_block(bid, np.ones(8, dtype=np.uint8))
        assert dev.resident_blocks == 1
        dev.free(bid)
        assert dev.resident_blocks == 0


class TestSimClock:
    def test_io_dominated_time(self):
        clock = SimClock()
        io = IOStats(seq_reads=100, rand_reads=10)
        secs = clock.seconds(io)
        assert secs == pytest.approx(100 * clock.seq_io_cost
                                     + 10 * clock.rand_io_cost)

    def test_random_io_costs_more(self):
        clock = SimClock()
        seq = clock.seconds(IOStats(seq_reads=100))
        rand = clock.seconds(IOStats(rand_reads=100))
        assert rand > seq * 10

    def test_cpu_charge_accumulates(self):
        clock = SimClock()
        clock.charge_cpu(1_000_000)
        clock.charge_cpu(1_000_000)
        assert clock.seconds(IOStats()) == pytest.approx(
            2_000_000 * clock.cpu_op_cost)
