"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import ArrayStore, BlockDevice, BufferPool


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20090104)


@pytest.fixture
def device() -> BlockDevice:
    return BlockDevice(block_size=8192)


@pytest.fixture
def small_pool(device: BlockDevice) -> BufferPool:
    """A deliberately tiny pool (8 frames) so evictions actually happen."""
    return BufferPool(device, capacity_blocks=8)


@pytest.fixture
def store() -> ArrayStore:
    return ArrayStore(memory_bytes=4 * 1024 * 1024)


@pytest.fixture
def tiny_store() -> ArrayStore:
    """A store whose pool holds only 16 blocks — forces real I/O."""
    return ArrayStore(memory_bytes=16 * 8192)
