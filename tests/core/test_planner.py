"""The cost-based physical planner: lowering, enumeration, execution.

Includes the PR's acceptance scenarios: with *no* hand-set kernel
hints, the planner's chosen plans for the OLS and sparse-chain
workloads move block totals within 10% of the hand-tuned paths the
earlier benchmarks established (crossprod + flagged multiply + pivoted
LU for OLS; right-deep SpGEMM/SpMM for the sparse chain).
"""

import numpy as np
import pytest

from repro.core import (Map, MatMul, OptimizerConfig, RiotSession,
                        Scalar, Solve, Transpose)
from repro.core.plan import (CrossprodOp, FusedEpilogueOp, LeafOp,
                             LUSolveOp, MapOp, SparseSpGEMMOp,
                             SparseSpMMOp, TileMatMulOp)
from repro.storage import StorageConfig


def session(level=2, mem=4 * 1024 * 1024, **cfg):
    return RiotSession(
        storage=StorageConfig(memory_bytes=mem, block_size=8192),
        config=OptimizerConfig(level=level, **cfg))


def ops_of(plan, kind):
    return [op for op in plan.ops() if isinstance(op, kind)]


class TestLowering:
    def test_leaf_and_stream(self, rng):
        s = session()
        x = s.vector(rng.standard_normal(5000))
        plan = s.plan(((x - 1.0) ** 2.0).node)
        root = plan.root
        assert isinstance(root, MapOp) and root.detail == "stream"
        assert any(isinstance(c, LeafOp) for c in root.children)
        assert root.predicted_io > 0

    def test_matmul_lowered_to_square_tile(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((64, 48)))
        b = s.matrix(rng.standard_normal((48, 32)))
        plan = s.plan((a @ b).node)
        assert isinstance(plan.root, TileMatMulOp)

    def test_solve_lowered_to_lu(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((32, 32)))
        b = s.vector(rng.standard_normal(32))
        plan = s.plan(Solve(a.node, b.node))
        assert isinstance(plan.root, LUSolveOp)
        assert plan.root.predicted_io > 0

    def test_shared_subplans_share_ops(self, rng):
        s = session(fuse_epilogues=False)
        a = s.matrix(rng.standard_normal((32, 32)))
        b = s.matrix(rng.standard_normal((32, 32)))
        p = MatMul(a.node, b.node)
        root = Map("+", Map("*", p, Scalar(2.0)), p)
        plan = s.plan(root)
        # One op for the shared product, in a DAG-shaped plan.
        assert len(ops_of(plan, TileMatMulOp)) == 1

    def test_region_with_all_consumers_inside_still_fuses(self, rng):
        """A product consumed twice, but only within one Map region,
        is still safe to fuse — the edge guard counts region-internal
        edges against whole-DAG edges."""
        s = session()
        a = s.matrix(rng.standard_normal((32, 32)))
        b = s.matrix(rng.standard_normal((32, 32)))
        p = MatMul(a.node, b.node)
        root = Map("+", Map("*", p, Scalar(2.0)), p)
        plan = s.plan(root)
        assert isinstance(plan.root, FusedEpilogueOp)
        p_np = a.values() @ b.values()
        assert np.allclose(s.values(root), 2.0 * p_np + p_np)


class TestKernelChoice:
    def test_sparse_wins_for_sparse_times_vector(self):
        s = session()
        A = s.random_sparse_matrix(512, 512, 0.005, seed=1)
        v = s.matrix(np.random.default_rng(0)
                     .standard_normal((512, 1)))
        plan = s.plan((A @ v).node)
        assert isinstance(plan.root, SparseSpMMOp)
        assert plan.root.alternatives  # dense alternative enumerated

    def test_pinned_dense_respected(self):
        s = session()
        A = s.random_sparse_matrix(512, 512, 0.005, seed=1)
        v = s.matrix(np.random.default_rng(0)
                     .standard_normal((512, 1)))
        plan = s.plan(MatMul(A.node, v.node, kernel="dense"))
        assert isinstance(plan.root, TileMatMulOp)
        assert "pinned" in plan.root.detail

    def test_pinned_sparse_respected(self):
        s = session()
        A = s.random_sparse_matrix(256, 256, 0.01, seed=1)
        B = s.random_sparse_matrix(256, 256, 0.01, seed=2)
        plan = s.plan(MatMul(A.node, B.node, kernel="sparse"))
        assert isinstance(plan.root, SparseSpGEMMOp)

    def test_level1_keeps_type_dispatch(self):
        """Heuristic level: a sparse-stored left operand runs the
        sparse kernel, no cost comparison, no alternatives."""
        s = session(level=1)
        A = s.random_sparse_matrix(512, 512, 0.005, seed=1)
        v = s.matrix(np.random.default_rng(0)
                     .standard_normal((512, 1)))
        plan = s.plan((A @ v).node)
        assert isinstance(plan.root, SparseSpMMOp)
        assert not plan.root.alternatives


class TestChainOrder:
    def test_dp_reorders_skewed_chain(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((100, 10)))
        b = s.matrix(rng.standard_normal((10, 100)))
        c = s.matrix(rng.standard_normal((100, 100)))
        plan = s.plan(((a @ b) @ c).node)
        assert "order=" in plan.root.detail
        assert any("program-order" in alt
                   for alt, _ in plan.root.alternatives)

    def test_chain_reorder_override_disables(self, rng):
        s = session(chain_reorder=False)
        a = s.matrix(rng.standard_normal((100, 10)))
        b = s.matrix(rng.standard_normal((10, 100)))
        c = s.matrix(rng.standard_normal((100, 100)))
        plan = s.plan(((a @ b) @ c).node)
        assert "order=" not in plan.root.detail

    def test_level1_keeps_program_order(self, rng):
        s = session(level=1)
        a = s.matrix(rng.standard_normal((100, 10)))
        b = s.matrix(rng.standard_normal((10, 100)))
        c = s.matrix(rng.standard_normal((100, 100)))
        plan = s.plan(((a @ b) @ c).node)
        assert "order=" not in plan.root.detail


class TestFuseVsMaterialize:
    def test_epilogue_fused_with_alternative_recorded(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((160, 64)))
        b = s.matrix(rng.standard_normal((64, 96)))
        c = s.matrix(rng.standard_normal((160, 96)))
        plan = s.plan((2.5 * (a @ b) + c).node)
        assert isinstance(plan.root, FusedEpilogueOp)
        (label, unfused_io), = plan.root.alternatives
        assert label == "materialize+map"
        assert plan.root.predicted_io < unfused_io

    def test_fusion_override_disables(self, rng):
        s = session(fuse_epilogues=False)
        a = s.matrix(rng.standard_normal((160, 64)))
        b = s.matrix(rng.standard_normal((64, 96)))
        c = s.matrix(rng.standard_normal((160, 96)))
        plan = s.plan((2.5 * (a @ b) + c).node)
        assert isinstance(plan.root, MapOp)
        assert len(ops_of(plan, TileMatMulOp)) == 1

    def test_shared_product_not_fused(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((40, 40)))
        b = s.matrix(rng.standard_normal((40, 40)))
        c = s.matrix(rng.standard_normal((40, 40)))
        p = MatMul(a.node, b.node)
        root = MatMul(Map("+", p, c.node), p)
        plan = s.plan(root)
        assert not ops_of(plan, FusedEpilogueOp)
        # ...and execution still runs the shared product exactly once.
        values = s.values(root)
        p_np = a.values() @ b.values()
        assert np.allclose(values, (p_np + c.values()) @ p_np)


class TestExecution:
    def test_execute_records_measured_io(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((96, 64)))
        b = s.matrix(rng.standard_normal((64, 96)))
        handle = a @ b
        plan = s.plan(handle.node)
        assert plan.total_measured is None
        s.store.pool.clear()
        s.reset_stats()
        handle.force()
        assert plan.executed
        assert plan.total_measured is not None
        assert plan.total_measured > 0

    def test_explain_shows_predicted_then_measured(self, rng):
        s = session()
        a = s.matrix(rng.standard_normal((96, 64)))
        b = s.matrix(rng.standard_normal((64, 96)))
        handle = a @ b
        before = s.explain(handle)
        assert "predicted ~" in before
        assert "measured" not in before.split("physical plan")[1]
        handle.force()
        after = s.explain(handle)
        assert "| measured" in after

    def test_level0_explains_fallback(self, rng):
        s = session(level=0)
        a = s.matrix(rng.standard_normal((16, 16)))
        text = s.explain((a @ a).node)
        assert "expression-tree dispatch" in text


class TestAcceptanceOLS:
    def test_planner_matches_hand_tuned_ols_within_10pct(self):
        """solve(t(X) X, t(X) y) with no kernel hints: the planner must
        pick crossprod + flagged multiply + LU and land within 10% of
        the hand-coded ``ols_out_of_core`` block total (PR 4)."""
        from repro.workloads.regression import (generate_problem,
                                                ols_out_of_core)
        prob = generate_problem(512, 128, seed=3)
        beta_ref, stats = ols_out_of_core(prob,
                                          memory_scalars=96 * 1024)
        hand = stats.total

        s = session(mem=96 * 1024 * 8)
        X = s.matrix(prob.x, name="X")
        y = s.matrix(prob.y.reshape(-1, 1), name="y")
        node = Solve(MatMul(Transpose(X.node), X.node),
                     MatMul(Transpose(X.node), y.node))
        plan = s.plan(node)
        assert isinstance(plan.root, LUSolveOp)
        assert ops_of(plan, CrossprodOp), "X'X must run crossprod"
        flagged = ops_of(plan, TileMatMulOp)
        assert flagged and flagged[0].node.trans_a, \
            "X'y must run the flagged multiply"
        s.store.pool.clear()
        s.reset_stats()
        out = s.force(node)
        s.store.flush()
        assert np.allclose(out.to_numpy().ravel(), beta_ref,
                           atol=1e-8)
        measured = s.io_stats.total
        assert abs(measured - hand) <= 0.10 * hand, \
            f"planner {measured} vs hand-coded {hand} blocks"


class TestAcceptanceSparseChain:
    def test_planner_matches_nnz_aware_chain_within_10pct(self):
        """(A B) v with sparse A, B and no hints: right-deep sparse
        plan, block total within 10% of the legacy rewriter path
        (PR 2)."""
        n, density = 512, 0.005

        def build(s):
            A = s.random_sparse_matrix(n, n, density, seed=1)
            B = s.random_sparse_matrix(n, n, density, seed=2)
            v = s.matrix(np.random.default_rng(3)
                         .standard_normal((n, 1)))
            return ((A @ B) @ v).node

        s = RiotSession(
            storage=StorageConfig(memory_bytes=24 * 8192))
        node = build(s)
        plan = s.plan(node)
        assert isinstance(plan.root, SparseSpMMOp)
        assert "order=" in plan.root.detail  # right-deep via the DP
        assert ops_of(plan, SparseSpMMOp)
        s.store.pool.clear()
        s.reset_stats()
        got = s.force(node)
        s.store.flush()
        planned = s.io_stats.total

        legacy = RiotSession(
            storage=StorageConfig(memory_bytes=24 * 8192))
        legacy_node = build(legacy)
        optimized = legacy.optimize(legacy_node)  # PR-2 rewriter path
        legacy.store.pool.clear()
        legacy.reset_stats()
        ref = legacy.evaluator.force(optimized, {})
        legacy.store.flush()
        baseline = legacy.io_stats.total

        assert np.allclose(got.to_numpy(), ref.to_numpy())
        assert abs(planned - baseline) <= 0.10 * baseline, \
            f"planner {planned} vs legacy {baseline} blocks"


class TestLevels:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_each_level_correct_on_mixed_dag(self, rng, level):
        s = session(level=level)
        x_np = rng.standard_normal((64, 48))
        y_np = rng.standard_normal((48, 32))
        c_np = rng.standard_normal((64, 32))
        a, b = s.matrix(x_np), s.matrix(y_np)
        c = s.matrix(c_np)
        plan_handle = (a @ b) * 0.5 + c
        assert np.allclose(plan_handle.values(),
                           0.5 * (x_np @ y_np) + c_np)


class TestChainReorderInteractions:
    """Chains are reordered as a plan-time prepass over the whole
    logical DAG, so every consumer — fusion, crossprod, reductions —
    sees the DP-chosen structure and execution memos never dangle."""

    def _skewed(self, s, rng):
        a = s.matrix(rng.standard_normal((200, 30)), name="A")
        b = s.matrix(rng.standard_normal((30, 400)), name="B")
        c = s.matrix(rng.standard_normal((400, 20)), name="C")
        return a, b, c

    def test_crossprod_over_reorderable_chain_executes(self, rng):
        from repro.core import Crossprod
        s = session(mem=48 * 1024 * 8)
        a, b, c = self._skewed(s, rng)
        node = Crossprod(MatMul(MatMul(a.node, b.node), c.node))
        plan = s.plan(node)
        assert "order=" in plan.signature()
        out = s.force(node)
        ref = a.values() @ b.values() @ c.values()
        assert np.allclose(out.to_numpy(), ref.T @ ref)

    def test_reduce_over_reorderable_chain_executes(self, rng):
        from repro.core import Reduce
        s = session(mem=48 * 1024 * 8)
        a, b, c = self._skewed(s, rng)
        node = Reduce("sum", MatMul(MatMul(a.node, b.node), c.node))
        got = s.force(node)
        ref = (a.values() @ b.values() @ c.values()).sum()
        assert np.isclose(got, ref)

    def test_epilogue_fuses_with_reordered_head(self, rng):
        """A Map fed by a >=3-factor chain fuses with the *DP-chosen*
        top product, not the program-order one — the plan both
        reorders and fuses, like the old rewriter+runtime pair did."""
        from repro.core.plan import FusedEpilogueOp
        s = session(mem=48 * 1024 * 8)
        a, b, c = self._skewed(s, rng)
        d = s.matrix(rng.standard_normal((200, 20)), name="D")
        node = Map("+", MatMul(MatMul(a.node, b.node), c.node),
                   d.node)
        plan = s.plan(node)
        assert isinstance(plan.root, FusedEpilogueOp)
        assert "order=" in plan.root.detail
        out = s.force(node)
        ref = a.values() @ b.values() @ c.values() + d.values()
        assert np.allclose(out.to_numpy(), ref)


class TestMispinnedKernel:
    def test_sparse_pin_on_dense_operands_runs_dense(self, rng):
        """A kernel=\"sparse\" pin without a sparse-stored operand has
        no sparse kernel to run; the plan falls back to dense lowering
        exactly like the evaluator's type dispatch always did."""
        s = session()
        a = s.matrix(rng.standard_normal((32, 32)))
        b = s.matrix(rng.standard_normal((32, 32)))
        node = MatMul(a.node, b.node, kernel="sparse")
        plan = s.plan(node)
        assert isinstance(plan.root, TileMatMulOp)
        out = s.force(node)
        assert np.allclose(out.to_numpy(), a.values() @ b.values())
