"""Tests for the expression DAG: construction, shapes, utilities."""

import numpy as np
import pytest

from repro.core import (ArrayInput, Map, MatMul, Range, Reduce, Scalar,
                        Subscript, SubscriptAssign, Transpose, count_nodes,
                        render, to_dot, walk)


def vec(n, name="v"):
    return ArrayInput(np.zeros(n), name=name)


def mat(r, c, name="m"):
    return ArrayInput(np.zeros((r, c)), name=name)


class TestShapes:
    def test_scalar(self):
        assert Scalar(3.0).shape == ()
        assert Scalar(3.0).size == 1

    def test_range_shape(self):
        assert Range(1, 10).shape == (10,)
        assert Range(5, 5).shape == (1,)

    def test_descending_range_rejected(self):
        with pytest.raises(ValueError):
            Range(10, 1)

    def test_map_broadcast_scalar(self):
        node = Map("+", vec(100), Scalar(1.0))
        assert node.shape == (100,)

    def test_map_nonconformable(self):
        with pytest.raises(ValueError):
            Map("+", vec(10), vec(20))

    def test_map_unknown_op(self):
        with pytest.raises(ValueError):
            Map("avg", vec(10))

    def test_map_arity_checked(self):
        with pytest.raises(ValueError):
            Map("sqrt", vec(10), vec(10))

    def test_subscript_shape_is_index_shape(self):
        node = Subscript(vec(1000), Range(1, 10))
        assert node.shape == (10,)

    def test_subscript_requires_vector(self):
        with pytest.raises(ValueError):
            Subscript(mat(3, 3), Range(1, 2))

    def test_subscript_assign_shape(self):
        base = vec(50)
        mask = Map(">", base, Scalar(0.0))
        node = SubscriptAssign(base, mask, Scalar(1.0),
                               logical_mask=True)
        assert node.shape == (50,)

    def test_logical_mask_must_align(self):
        with pytest.raises(ValueError):
            SubscriptAssign(vec(50), vec(10), Scalar(1.0),
                            logical_mask=True)

    def test_matmul_shape(self):
        node = MatMul(mat(4, 7), mat(7, 3))
        assert node.shape == (4, 3)

    def test_matmul_nonconformable(self):
        with pytest.raises(ValueError):
            MatMul(mat(4, 7), mat(6, 3))

    def test_transpose_shape(self):
        assert Transpose(mat(4, 7)).shape == (7, 4)

    def test_reduce_is_scalar(self):
        assert Reduce("sum", vec(100)).shape == ()

    def test_reduce_unknown_op(self):
        with pytest.raises(ValueError):
            Reduce("median", vec(10))


class TestDAGUtilities:
    def test_walk_visits_shared_nodes_once(self):
        x = vec(10)
        sq = Map("pow", x, Scalar(2.0))
        expr = Map("+", sq, sq)  # shared subtree
        nodes = list(walk(expr))
        assert len(nodes) == 4  # x, 2.0, pow, +

    def test_count_nodes(self):
        x = vec(10)
        assert count_nodes(Map("+", x, x)) == 2

    def test_render_marks_shared(self):
        x = vec(10)
        sq = Map("pow", x, Scalar(2.0))
        text = render(Map("+", sq, sq))
        assert "(shared)" in text

    def test_to_dot_is_valid_graphviz(self):
        node = Map("+", vec(5), Scalar(1.0))
        dot = to_dot(node)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot

    def test_with_children_rebuilds(self):
        a, b = vec(5), vec(5)
        node = Map("+", a, b)
        c = vec(5)
        rebuilt = node.with_children((a, c))
        assert rebuilt.children == (a, c)
        assert rebuilt.op == "+"

    def test_array_input_from_tiled_vector(self, store):
        tv = store.vector_from_numpy(np.ones(100))
        node = ArrayInput(tv)
        assert node.shape == (100,)

    def test_array_input_rejects_garbage(self):
        with pytest.raises(TypeError):
            ArrayInput("not an array")
