"""Tests for the DAG rewriter — the Figure-2 optimization and friends."""

import numpy as np

from repro.core import (ArrayInput, Map, MatMul, Range, Rewriter, Scalar,
                        Subscript, SubscriptAssign, count_nodes, optimize,
                        walk)


def vec(n, name="v"):
    return ArrayInput(np.arange(n, dtype=float), name=name)


def mat(r, c):
    return ArrayInput(np.zeros((r, c)))


class TestSubscriptPushdown:
    def test_push_through_map(self):
        """f(x, y)[s] -> f(x[s], y[s])."""
        x, y = vec(100, "x"), vec(100, "y")
        expr = Subscript(Map("+", x, y), Range(1, 5))
        out = optimize(expr)
        assert isinstance(out, Map)
        assert all(isinstance(c, Subscript) for c in out.children)

    def test_scalar_children_not_subscripted(self):
        x = vec(100)
        expr = Subscript(Map("+", x, Scalar(5.0)), Range(1, 5))
        out = optimize(expr)
        assert isinstance(out, Map)
        assert isinstance(out.children[1], Scalar)

    def test_push_through_nested_maps_to_leaves(self):
        x = vec(100)
        expr = Subscript(
            Map("sqrt", Map("pow", Map("-", x, Scalar(1.0)),
                            Scalar(2.0))),
            Range(1, 10))
        out = optimize(expr)
        # The subscript must now sit directly on the input.
        subs = [n for n in walk(out) if isinstance(n, Subscript)]
        assert len(subs) == 1
        assert isinstance(subs[0].src, ArrayInput)

    def test_figure2_pushdown(self):
        """The paper's headline rewrite: (b with b[mask]<-100)[1:10]."""
        a = vec(1000, "a")
        b = Map("pow", a, Scalar(2.0))
        mask = Map(">", b, Scalar(100.0))
        modified = SubscriptAssign(b, mask, Scalar(100.0),
                                   logical_mask=True)
        expr = Subscript(modified, Range(1, 10))
        out = optimize(expr)
        # Result shape: ifelse(mask[1:10-ish], 100, b[1:10]) with the
        # subscript pushed all the way onto `a`.
        assert isinstance(out, Map) and out.op == "ifelse"
        assign_nodes = [n for n in walk(out)
                        if isinstance(n, SubscriptAssign)]
        assert not assign_nodes
        subs = [n for n in walk(out) if isinstance(n, Subscript)]
        assert subs, "selection must survive as a gather"
        for s in subs:
            assert isinstance(s.src, ArrayInput)

    def test_figure2_rewrite_preserves_semantics(self):
        values = np.linspace(0, 20, 500)
        a = ArrayInput(values, name="a")
        b = Map("pow", a, Scalar(2.0))
        mask = Map(">", b, Scalar(100.0))
        modified = SubscriptAssign(b, mask, Scalar(100.0),
                                   logical_mask=True)
        expr = Subscript(modified, Range(1, 10))
        out = optimize(expr)
        got = _eval_numpy(out)
        expect = np.minimum(values ** 2, 100.0)[:10]
        assert np.allclose(got, expect)

    def test_subscript_of_range_is_arithmetic(self):
        expr = Subscript(Range(5, 100), Range(1, 3))
        out = optimize(expr)
        assert not any(isinstance(n, Subscript) for n in walk(out))
        assert np.allclose(_eval_numpy(out), [5, 6, 7])

    def test_subscript_of_unit_range_is_identity(self):
        idx = vec(3, "idx")
        expr = Subscript(Range(1, 100), idx)
        out = optimize(expr)
        assert out is idx

    def test_subscript_composition(self):
        x = vec(100, "x")
        i1 = vec(10, "i1")
        expr = Subscript(Subscript(x, i1), Range(1, 2))
        out = optimize(expr)
        # x[i1][1:2] -> x[i1[1:2]]
        assert isinstance(out, Subscript)
        assert out.src is x or isinstance(out.src, ArrayInput)

    def test_pushdown_disabled_leaves_dag_alone(self):
        x = vec(100)
        expr = Subscript(Map("+", x, Scalar(1.0)), Range(1, 5))
        out = Rewriter(enable_pushdown=False).optimize(expr)
        assert isinstance(out, Subscript)


class TestConstantFolding:
    def test_scalar_subtree_folds(self):
        expr = Map("+", Scalar(2.0), Map("*", Scalar(3.0), Scalar(4.0)))
        out = optimize(expr)
        assert isinstance(out, Scalar)
        assert out.value == 14.0

    def test_mixed_subtree_partially_folds(self):
        x = vec(10)
        expr = Map("*", x, Map("+", Scalar(1.0), Scalar(1.0)))
        out = optimize(expr)
        assert isinstance(out.children[1], Scalar)
        assert out.children[1].value == 2.0


class TestCSE:
    def test_identical_subtrees_merged(self):
        """Example 1 builds (x-xs) twice in separate trees; CSE shares."""
        x = vec(100, "x")
        t1 = Map("pow", Map("-", x, Scalar(1.0)), Scalar(2.0))
        t2 = Map("pow", Map("-", x, Scalar(1.0)), Scalar(2.0))
        expr = Map("+", t1, t2)
        out = optimize(expr)
        assert out.children[0] is out.children[1]

    def test_different_constants_not_merged(self):
        x = vec(100, "x")
        t1 = Map("-", x, Scalar(1.0))
        t2 = Map("-", x, Scalar(2.0))
        out = optimize(Map("+", t1, t2))
        assert out.children[0] is not out.children[1]

    def test_cse_reduces_node_count(self):
        x = vec(100, "x")
        t1 = Map("sqrt", Map("pow", x, Scalar(2.0)))
        t2 = Map("sqrt", Map("pow", x, Scalar(2.0)))
        expr = Map("+", t1, t2)
        assert count_nodes(optimize(expr)) < count_nodes(expr)


class TestChainReorder:
    def test_skewed_chain_reordered(self):
        """A(BC) beats (AB)C when A is wide (the Figure-3 skew)."""
        a, b, c = mat(100, 10), mat(10, 100), mat(100, 100)
        expr = MatMul(MatMul(a, b), c)
        rewriter = Rewriter()
        out = rewriter.optimize(expr)
        assert "chain-reorder" in rewriter.applied
        # New shape: A (BC)
        assert out.children[0] is a

    def test_already_optimal_untouched(self):
        a, b, c = mat(10, 100), mat(100, 10), mat(10, 10)
        expr = MatMul(MatMul(a, b), c)
        rewriter = Rewriter()
        out = rewriter.optimize(expr)
        assert "chain-reorder" not in rewriter.applied

    def test_two_factor_chain_untouched(self):
        a, b = mat(5, 6), mat(6, 7)
        rewriter = Rewriter()
        rewriter.optimize(MatMul(a, b))
        assert "chain-reorder" not in rewriter.applied

    def test_four_factor_chain(self):
        dims = [(50, 5), (5, 50), (50, 5), (5, 50)]
        mats = [mat(r, c) for r, c in dims]
        expr = MatMul(MatMul(MatMul(mats[0], mats[1]), mats[2]),
                      mats[3])
        out = Rewriter().optimize(expr)
        assert out.shape == (50, 50)

    def test_reorder_disabled(self):
        a, b, c = mat(100, 10), mat(10, 100), mat(100, 100)
        expr = MatMul(MatMul(a, b), c)
        rewriter = Rewriter(enable_chain_reorder=False)
        out = rewriter.optimize(expr)
        assert out.children[1] is c


class TestFixpoint:
    def test_idempotent(self):
        x = vec(100, "x")
        expr = Subscript(Map("+", x, Scalar(1.0)), Range(1, 5))
        rewriter = Rewriter()
        once = rewriter.optimize(expr)
        twice = rewriter.optimize(once)
        assert rewriter._signature(once) == rewriter._signature(twice)


def _eval_numpy(node):
    """Reference evaluation of a DAG over in-memory numpy inputs."""
    from repro.core.expr import (BINARY_OPS, TERNARY_OPS, UNARY_OPS,
                                 ArrayInput, Map, Range, Scalar,
                                 Subscript, SubscriptAssign)
    if isinstance(node, Scalar):
        return node.value
    if isinstance(node, Range):
        return np.arange(node.lo, node.hi + 1, dtype=float)
    if isinstance(node, ArrayInput):
        return np.asarray(node.data)
    if isinstance(node, Map):
        fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
        return fns[node.op](*(_eval_numpy(c) for c in node.children))
    if isinstance(node, Subscript):
        idx = np.asarray(_eval_numpy(node.index)).astype(int)
        return np.asarray(_eval_numpy(node.src))[idx - 1]
    if isinstance(node, SubscriptAssign):
        base = np.asarray(_eval_numpy(node.base)).copy()
        value = _eval_numpy(node.value)
        if node.logical_mask:
            mask = np.asarray(_eval_numpy(node.index)).astype(bool)
            base[mask] = value
        else:
            idx = np.asarray(_eval_numpy(node.index)).astype(int)
            base[idx - 1] = value
        return base
    raise NotImplementedError(type(node).__name__)
