"""Tests for the streaming evaluator over the tile store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RiotSession
from repro.storage import StorageConfig


@pytest.fixture
def session():
    return RiotSession(
        storage=StorageConfig(memory_bytes=2 * 1024 * 1024))


class TestStreaming:
    def test_fused_elementwise(self, session, rng):
        x = rng.standard_normal(50_000)
        v = session.vector(x)
        result = ((v - 1.0) ** 2.0).sqrt() + 5.0
        assert np.allclose(result.values(),
                           np.sqrt((x - 1) ** 2) + 5)

    def test_fusion_writes_no_intermediates(self, rng):
        """A 6-op expression must write only the result's chunks."""
        session = RiotSession(
            storage=StorageConfig(memory_bytes=64 * 8192))
        n = 200_000
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        vx, vy = session.vector(x), session.vector(y)
        d = (((vx - 1.0) ** 2.0) + ((vy - 2.0) ** 2.0)).sqrt()
        session.store.flush()
        session.reset_stats()
        d.force()
        session.store.flush()
        io = session.io_stats
        chunks = -(-n // session.store.scalars_per_block)
        # Reads: x and y once; writes: the single result.
        assert io.reads == pytest.approx(2 * chunks, abs=4)
        assert io.writes == pytest.approx(chunks, abs=4)

    def test_vector_scalar_broadcast(self, session, rng):
        x = rng.standard_normal(1000)
        v = session.vector(x)
        assert np.allclose((2.0 * v + 1.0).values(), 2 * x + 1)

    def test_range_never_stored(self, session):
        r = session.arange(1, 100_000)
        session.reset_stats()
        total = (r + 0.0).sum()
        assert total == pytest.approx(100_000 * 100_001 / 2)

    def test_comparison_produces_mask(self, session, rng):
        x = rng.standard_normal(5000)
        v = session.vector(x)
        mask = (v > 0.0).values()
        assert np.allclose(mask, (x > 0).astype(float))

    def test_ifelse(self, session, rng):
        x = rng.standard_normal(5000)
        v = session.vector(x)
        out = (v > 0.0).ifelse(1.0, -1.0).values()
        assert np.allclose(out, np.where(x > 0, 1.0, -1.0))


class TestSubscripts:
    def test_gather_values(self, session, rng):
        x = rng.standard_normal(50_000)
        v = session.vector(x)
        idx = np.sort(rng.choice(np.arange(1, 50_001), 200,
                                 replace=False))
        assert np.allclose(v[idx].values(), x[idx - 1])

    def test_slice_subscript(self, session, rng):
        x = rng.standard_normal(5000)
        v = session.vector(x)
        assert np.allclose(v[1:10].values(), x[:10])

    def test_selective_evaluation_io(self, rng):
        """d[s].values() touches ~|s| chunks, not the whole vector."""
        session = RiotSession(
            storage=StorageConfig(memory_bytes=32 * 8192))
        n = 1_000_000
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        vx, vy = session.vector(x), session.vector(y)
        d = (((vx - 1.0) ** 2.0) + ((vy - 2.0) ** 2.0)).sqrt()
        idx = np.sort(rng.choice(np.arange(1, n + 1), 100,
                                 replace=False))
        z = d[idx]
        session.store.flush()
        session.reset_stats()
        got = z.values()
        chunks = -(-n // session.store.scalars_per_block)
        assert session.io_stats.reads < chunks // 2
        ref = np.sqrt((x - 1) ** 2 + (y - 2) ** 2)
        assert np.allclose(got, ref[idx - 1])

    def test_no_rewrite_forces_full_vector(self, rng):
        """With optimization off, d[s] costs a full materialization."""
        session = RiotSession(storage=StorageConfig(
            memory_bytes=32 * 8192), optimize=False)
        n = 500_000
        x = rng.standard_normal(n)
        v = session.vector(x)
        d = (v - 1.0) ** 2.0
        idx = np.asarray([1, 2, 3])
        z = d[idx]
        session.store.flush()
        session.reset_stats()
        got = z.values()
        chunks = -(-n // session.store.scalars_per_block)
        assert session.io_stats.reads >= chunks  # read all of x
        assert np.allclose(got, (x[:3] - 1) ** 2)

    def test_mask_assign_streams(self, session, rng):
        x = rng.uniform(0, 20, 10_000)
        v = session.vector(x)
        capped = (v ** 2.0).assign((v ** 2.0) > 100.0, 100.0)
        assert np.allclose(capped.values(), np.minimum(x ** 2, 100))

    def test_positional_assign_scatter(self, session, rng):
        x = rng.standard_normal(10_000)
        v = session.vector(x)
        out = v.assign(np.asarray([1, 5000, 10_000]), 0.0)
        expect = x.copy()
        expect[[0, 4999, 9999]] = 0
        assert np.allclose(out.values(), expect)

    def test_assign_with_vector_value(self, session, rng):
        x = rng.standard_normal(1000)
        v = session.vector(x)
        repl = session.vector(np.asarray([7.0, 8.0]))
        out = v.assign(np.asarray([10, 20]), repl)
        expect = x.copy()
        expect[[9, 19]] = [7.0, 8.0]
        assert np.allclose(out.values(), expect)

    def test_assign_is_pure(self, session, rng):
        """The []<- operator returns new state; old handle unchanged."""
        x = rng.standard_normal(1000)
        v = session.vector(x)
        v2 = v.assign(v > 0.0, 0.0)
        v2.force()
        assert np.allclose(v.values(), x)


class TestReductions:
    def test_streamed_sum(self, session, rng):
        x = rng.standard_normal(100_000)
        v = session.vector(x)
        assert ((v * 2.0).sum()
                == pytest.approx(2 * x.sum(), rel=1e-9))

    def test_min_max_mean(self, session, rng):
        x = rng.standard_normal(10_000)
        v = session.vector(x)
        assert v.min() == pytest.approx(x.min())
        assert v.max() == pytest.approx(x.max())
        assert v.mean() == pytest.approx(x.mean())

    def test_reduction_of_expression_materializes_nothing(self, rng):
        session = RiotSession(
            storage=StorageConfig(memory_bytes=32 * 8192))
        n = 500_000
        x = rng.standard_normal(n)
        v = session.vector(x)
        session.store.flush()
        session.reset_stats()
        ((v - 1.0) ** 2.0).sum()
        io = session.io_stats
        chunks = -(-n // session.store.scalars_per_block)
        assert io.writes <= 2  # nothing materialized


class TestMatrices:
    def test_matmul(self, session, rng):
        a = rng.standard_normal((64, 48))
        b = rng.standard_normal((48, 32))
        ma, mb = session.matrix(a), session.matrix(b)
        assert np.allclose((ma @ mb).values(), a @ b)

    def test_chain_reordered_and_correct(self, session, rng):
        a = rng.standard_normal((80, 8))
        b = rng.standard_normal((8, 80))
        c = rng.standard_normal((80, 40))
        ma, mb, mc = (session.matrix(m) for m in (a, b, c))
        out = ((ma @ mb) @ mc).values()
        assert np.allclose(out, a @ b @ c)

    def test_matrix_elementwise(self, session, rng):
        a = rng.standard_normal((50, 50))
        b = rng.standard_normal((50, 50))
        ma, mb = session.matrix(a), session.matrix(b)
        assert np.allclose((ma + mb * 2.0).values(), a + 2 * b)

    def test_transpose(self, session, rng):
        a = rng.standard_normal((30, 70))
        assert np.allclose(session.matrix(a).T.values(), a.T)

    def test_matrix_reduction(self, session, rng):
        a = rng.standard_normal((40, 40))
        assert session.matrix(a).sum() == pytest.approx(a.sum())


class TestCaching:
    def test_force_caches_named_results(self, session, rng):
        x = rng.standard_normal(50_000)
        v = session.vector(x)
        d = (v - 1.0) ** 2.0
        d.force()
        session.store.flush()
        session.reset_stats()
        d.force()  # second force: cached, no recomputation
        assert session.io_stats.total == 0


class TestDensifiedCache:
    def test_cache_drains_after_every_force(self, rng):
        """The sparse->dense twin cache must not grow without bound
        across a session: it lives only for the duration of one
        evaluation, so no densified operand outlives its force()."""
        session = RiotSession(
            storage=StorageConfig(memory_bytes=4 << 20))
        evaluator = session.evaluator
        for seed in range(4):
            a = session.random_sparse_matrix(96, 96, 0.01, seed=seed)
            dense = session.matrix(rng.standard_normal((96, 96)))
            # Elementwise matrix op forces densification of `a`.
            (a + dense).force()
            assert len(evaluator._densified_cache) == 0

    def test_densify_still_memoized_within_one_force(self, rng):
        """One DAG using a sparse operand twice converts it once."""
        session = RiotSession(
            storage=StorageConfig(memory_bytes=4 << 20))
        a = session.random_sparse_matrix(128, 128, 0.02, seed=3)
        dense = session.matrix(rng.standard_normal((128, 128)))
        expr = (a + dense) * (a + 0.0)
        got = expr.values()
        a_np = session.values(a)
        d_np = session.values(dense)
        assert np.allclose(got, (a_np + d_np) * a_np)


@given(st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False), min_size=1, max_size=300),
       st.sampled_from(["+", "-", "*", "sqrtabs", "pow2"]))
@settings(max_examples=40, deadline=None)
def test_streaming_matches_numpy(xs, op):
    session = RiotSession(
        storage=StorageConfig(memory_bytes=1 << 20))
    arr = np.asarray(xs)
    v = session.vector(arr)
    if op == "+":
        got, want = (v + 3.5).values(), arr + 3.5
    elif op == "-":
        got, want = (v - 3.5).values(), arr - 3.5
    elif op == "*":
        got, want = (v * -2.0).values(), arr * -2.0
    elif op == "sqrtabs":
        got, want = v.abs().sqrt().values(), np.sqrt(np.abs(arr))
    else:
        got, want = (v ** 2.0).values(), arr ** 2.0
    assert np.allclose(got, want)
