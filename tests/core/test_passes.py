"""The logical pass pipeline: each pass independently, then composed."""

import numpy as np
import pytest

from repro.core import (ArrayInput, Crossprod, Inverse, Map, MatMul,
                        OptimizerConfig, Range, Scalar, Solve,
                        Subscript, Transpose, walk)
from repro.core.passes import (CSEPass, ChainReorderPass, FoldPass,
                               KernelSelectPass, PassContext, Pipeline,
                               PushdownPass, SolveRewritePass,
                               TransposePass, build_pipeline)


def vec(n, name="v"):
    return ArrayInput(np.arange(n, dtype=float), name=name)


def mat(r, c):
    return ArrayInput(np.zeros((r, c)))


def run_pass(p, node, **ctx_kwargs):
    ctx = PassContext(**ctx_kwargs)
    return p.run(node, ctx), ctx


class TestFoldPass:
    def test_folds_scalar_subtree(self):
        out, ctx = run_pass(FoldPass(),
                            Map("+", Scalar(2.0),
                                Map("*", Scalar(3.0), Scalar(4.0))))
        assert isinstance(out, Scalar) and out.value == 14.0
        assert "constant-fold" in ctx.applied

    def test_leaves_arrays_alone(self):
        x = vec(10)
        out, _ = run_pass(FoldPass(), Map("+", x, Scalar(1.0)))
        assert isinstance(out, Map)


class TestPushdownPass:
    def test_pushes_to_leaves_in_one_run(self):
        x = vec(100)
        expr = Subscript(
            Map("sqrt", Map("pow", Map("-", x, Scalar(1.0)),
                            Scalar(2.0))),
            Range(1, 10))
        out, ctx = run_pass(PushdownPass(), expr)
        subs = [n for n in walk(out) if isinstance(n, Subscript)]
        assert len(subs) == 1 and isinstance(subs[0].src, ArrayInput)
        assert any(r.startswith("pushdown-map") for r in ctx.applied)

    def test_only_fires_on_subscripts(self):
        x = vec(10)
        node = Map("+", x, Scalar(1.0))
        out, ctx = run_pass(PushdownPass(), node)
        assert out is node and ctx.applied == []


class TestSolveRewritePass:
    def test_inverse_times_matrix_becomes_solve(self):
        a, b = mat(8, 8), mat(8, 3)
        out, ctx = run_pass(SolveRewritePass(),
                            MatMul(Inverse(a), b))
        assert isinstance(out, Solve)
        assert "inv-to-solve" in ctx.applied

    def test_right_inverse_untouched(self):
        a, b = mat(8, 8), mat(8, 8)
        node = MatMul(b, Inverse(a))
        out, _ = run_pass(SolveRewritePass(), node)
        assert out is node


class TestTransposePass:
    def test_double_transpose_cancels(self):
        a = mat(5, 7)
        out, ctx = run_pass(TransposePass(), Transpose(Transpose(a)))
        assert out is a
        assert "transpose-cancel" in ctx.applied

    def test_absorbs_into_flags_and_recognizes_crossprod(self):
        a = mat(10, 4)
        out, ctx = run_pass(TransposePass(), MatMul(Transpose(a), a))
        assert isinstance(out, Crossprod) and out.t_first
        assert "transpose-absorb" in ctx.applied
        assert "crossprod" in ctx.applied

    def test_pushes_through_product(self):
        a, b = mat(5, 6), mat(6, 7)
        out, ctx = run_pass(TransposePass(),
                            Transpose(MatMul(a, b)))
        assert isinstance(out, MatMul)
        assert out.trans_a and out.trans_b
        assert out.children == (b, a)


class TestCSEPass:
    def test_merges_identical_subtrees(self):
        x = vec(100)
        t1 = Map("pow", Map("-", x, Scalar(1.0)), Scalar(2.0))
        t2 = Map("pow", Map("-", x, Scalar(1.0)), Scalar(2.0))
        out, ctx = run_pass(CSEPass(), Map("+", t1, t2))
        assert out.children[0] is out.children[1]
        assert "cse" in ctx.applied


class TestChainAndKernelPasses:
    def test_chain_reorder_pass(self):
        a, b, c = mat(100, 10), mat(10, 100), mat(100, 100)
        out, ctx = run_pass(ChainReorderPass(),
                            MatMul(MatMul(a, b), c))
        assert "chain-reorder" in ctx.applied
        assert out.children[0] is a

    def test_kernel_select_needs_sparse_storage(self):
        a, b = mat(64, 64), mat(64, 64)
        node = MatMul(a, b)
        out, ctx = run_pass(KernelSelectPass(), node)
        assert out is node and ctx.applied == []


class TestPipeline:
    def test_fixpoint_cascade_across_passes(self):
        """Fold exposes a pushdown, whose result CSE then shares —
        three different passes cooperating through the fixpoint loop."""
        x = vec(50, "x")
        body = Map("*", x, Map("+", Scalar(1.0), Scalar(1.0)))
        expr = Map("+", Subscript(body, Range(1, 5)),
                   Subscript(body, Range(1, 5)))
        pipe = Pipeline([FoldPass(), PushdownPass(), CSEPass()])
        ctx = PassContext()
        out = pipe.run(expr, ctx)
        assert out.children[0] is out.children[1]
        assert "constant-fold" in ctx.applied
        assert any(r.startswith("pushdown") for r in ctx.applied)

    def test_idempotent(self):
        from repro.core.passes import dag_signature
        x = vec(100)
        expr = Subscript(Map("+", x, Scalar(1.0)), Range(1, 5))
        pipe = build_pipeline(OptimizerConfig())
        ctx = PassContext()
        once = pipe.run(expr, ctx)
        twice = pipe.run(once, ctx)
        assert dag_signature(once) == dag_signature(twice)

    def test_sharing_preserved(self):
        x = vec(20)
        shared = Map("*", x, Scalar(3.0))
        expr = Map("+", Map("-", shared, Scalar(1.0)),
                   Map("abs", shared))
        pipe = build_pipeline(OptimizerConfig())
        out = pipe.run(expr, PassContext())
        muls = [n for n in walk(out)
                if isinstance(n, Map) and n.op == "*"]
        assert len(muls) == 1


class TestBuildPipeline:
    def test_level_zero_is_empty(self):
        pipe = build_pipeline(OptimizerConfig(level=0))
        assert pipe.passes == []

    def test_per_pass_override_disables(self):
        pipe = build_pipeline(OptimizerConfig(level=2, pushdown=False))
        names = [p.name for p in pipe.passes]
        assert "pushdown" not in names
        assert "fold" in names and "cse" in names

    def test_legacy_appends_physical_passes(self):
        names = [p.name for p in
                 build_pipeline(OptimizerConfig(), legacy=True).passes]
        assert "chain-reorder" in names and "kernel-select" in names
        names = [p.name for p in
                 build_pipeline(OptimizerConfig(), legacy=False).passes]
        assert "chain-reorder" not in names

    def test_level_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(level=7)


class TestSparsityAnalysis:
    def test_storage_map_marks_sparse_leaves_and_spgemm(self):
        from repro.core import RiotSession
        from repro.storage import StorageConfig
        from repro.core.passes import sparse_stored, storage_map
        s = RiotSession(
            storage=StorageConfig(memory_bytes=4 * 1024 * 1024))
        A = s.random_sparse_matrix(128, 128, 0.02, seed=1)
        B = s.random_sparse_matrix(128, 128, 0.02, seed=2)
        D = s.matrix(np.zeros((128, 128)))
        spgemm = MatMul(A.node, B.node)
        spmm = MatMul(A.node, D.node)
        root = Map("+", spgemm, spmm)
        info = storage_map(root)
        assert info[id(A.node)] and info[id(B.node)]
        assert not info[id(D.node)]
        # sparse x sparse stays sparse-stored; SpMM output is dense.
        assert info[id(spgemm)] and not info[id(spmm)]
        # One-walk analysis agrees with the recursive predicate.
        for node in (A.node, D.node, spgemm, spmm):
            assert info[id(node)] == sparse_stored(node)

    def test_dense_pin_breaks_sparse_storage(self):
        from repro.core import RiotSession
        from repro.storage import StorageConfig
        from repro.core.passes import sparse_stored
        s = RiotSession(
            storage=StorageConfig(memory_bytes=4 * 1024 * 1024))
        A = s.random_sparse_matrix(128, 128, 0.02, seed=1)
        B = s.random_sparse_matrix(128, 128, 0.02, seed=2)
        assert sparse_stored(MatMul(A.node, B.node))
        assert not sparse_stored(
            MatMul(A.node, B.node, kernel="dense"))
