"""Transpose elimination, Crossprod recognition, and epilogue fusion.

The rewrite identities are checked both structurally (no Transpose node
survives in plans that can absorb it; ``t(A) %*% A`` becomes Crossprod)
and numerically against numpy, including through the full session
pipeline with optimization on and off.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (Crossprod, Map, MatMul, RiotSession, Transpose,
                        walk)
from repro.storage import StorageConfig


def make_session(optimize=True, mem=4 * 1024 * 1024):
    return RiotSession(
        storage=StorageConfig(memory_bytes=mem, block_size=8192),
        optimize=optimize)


def no_transpose(node):
    return not any(isinstance(n, Transpose) for n in walk(node))


class TestIdentities:
    def test_double_transpose_cancels(self, rng):
        s = make_session()
        a = s.matrix(rng.standard_normal((20, 30)))
        out = s.optimize(Transpose(Transpose(a.node)))
        assert out is a.node

    def test_transpose_of_crossprod_is_identity(self, rng):
        s = make_session()
        a = s.matrix(rng.standard_normal((20, 30)))
        out = s.optimize(Transpose(Crossprod(a.node)))
        assert isinstance(out, Crossprod)

    def test_transpose_absorbed_into_flags(self, rng):
        s = make_session()
        a_np = rng.standard_normal((50, 30))
        b_np = rng.standard_normal((50, 20))
        a, b = s.matrix(a_np), s.matrix(b_np)
        plan = a.T @ b
        out = s.optimize(plan.node)
        assert isinstance(out, MatMul) and out.trans_a \
            and not out.trans_b
        assert no_transpose(out)
        assert np.allclose(plan.values(), a_np.T @ b_np)

    def test_transpose_pushed_through_product(self, rng):
        s = make_session()
        a_np = rng.standard_normal((40, 25))
        b_np = rng.standard_normal((25, 35))
        plan = (s.matrix(a_np) @ s.matrix(b_np)).T
        out = s.optimize(plan.node)
        assert isinstance(out, MatMul) and out.trans_a and out.trans_b
        assert no_transpose(out)
        assert np.allclose(plan.values(), (a_np @ b_np).T)

    def test_crossprod_recognized(self, rng):
        s = make_session()
        a_np = rng.standard_normal((60, 25))
        a = s.matrix(a_np)
        out = s.optimize((a.T @ a).node)
        assert isinstance(out, Crossprod) and out.t_first
        assert np.allclose((a.T @ a).values(), a_np.T @ a_np)

    def test_tcrossprod_recognized(self, rng):
        s = make_session()
        a_np = rng.standard_normal((25, 60))
        a = s.matrix(a_np)
        out = s.optimize((a @ a.T).node)
        assert isinstance(out, Crossprod) and not out.t_first
        assert np.allclose((a @ a.T).values(), a_np @ a_np.T)

    def test_sparse_operand_keeps_transpose(self):
        """No flagged sparse kernels exist: a transpose over a
        sparse-stored operand must survive for the densify fallback."""
        s = make_session()
        sp = s.random_sparse_matrix(64, 48, density=0.05, seed=1)
        d = s.matrix(np.ones((64, 32)))
        out = s.optimize((sp.T @ d).node)
        assert any(isinstance(n, Transpose) for n in walk(out))

    @given(m=st.integers(1, 30), l=st.integers(1, 30),
           n=st.integers(1, 30), lin=st.sampled_from(["row", "col"]))
    @settings(max_examples=15, deadline=None)
    def test_identity_property(self, m, l, n, lin):
        rng = np.random.default_rng(m * 3600 + l * 120 + n * 4)
        a_np = rng.standard_normal((l, m))
        b_np = rng.standard_normal((l, n))
        s = make_session()
        a = s.matrix(a_np, linearization=lin)
        b = s.matrix(b_np, linearization=lin)
        assert np.allclose((a.T @ b).values(), a_np.T @ b_np)
        assert np.allclose((a.T @ a).values(), a_np.T @ a_np)
        assert np.allclose((a @ a.T).values(), a_np @ a_np.T)


class TestCrossprodAPI:
    def test_matrix_methods(self, rng):
        s = make_session()
        a_np = rng.standard_normal((40, 25))
        b_np = rng.standard_normal((40, 30))
        a, b = s.matrix(a_np), s.matrix(b_np)
        assert isinstance(a.crossprod().node, Crossprod)
        assert np.allclose(a.crossprod().values(), a_np.T @ a_np)
        assert np.allclose(a.crossprod(b).values(), a_np.T @ b_np)
        assert np.allclose(a.tcrossprod().values(), a_np @ a_np.T)
        c_np = rng.standard_normal((30, 25))
        c = s.matrix(c_np)
        assert np.allclose(a.tcrossprod(c).values(), a_np @ c_np.T)

    def test_session_helpers(self, rng):
        s = make_session()
        a_np = rng.standard_normal((40, 25))
        a = s.matrix(a_np)
        assert np.allclose(s.crossprod(a).values(), a_np.T @ a_np)
        assert np.allclose(s.tcrossprod(a).values(), a_np @ a_np.T)

    def test_unoptimized_session_still_correct(self, rng):
        """Flags and Crossprod execute without the rewriter too."""
        s = make_session(optimize=False)
        a_np = rng.standard_normal((50, 30))
        a = s.matrix(a_np)
        assert np.allclose(a.crossprod().values(), a_np.T @ a_np)
        assert np.allclose((a.T @ a).values(), a_np.T @ a_np)


class TestTransposeFreeIO:
    def test_flagged_plan_beats_materialized_transpose(self, rng):
        """t(X) %*% X: the optimized plan must move fewer blocks than
        the unoptimized one, which stores t(X) first."""
        x_np = np.arange(512 * 128, dtype=float).reshape(512, 128)

        def run(optimize):
            s = make_session(optimize=optimize, mem=256 * 1024)
            x = s.matrix(x_np)
            plan = x.T @ x
            s.store.pool.clear()
            s.reset_stats()
            values = plan.values()
            s.store.flush()
            return s.io_stats.snapshot(), values

        opt_stats, opt_vals = run(True)
        raw_stats, raw_vals = run(False)
        assert np.allclose(opt_vals, raw_vals)
        assert opt_stats.total * 1.5 <= raw_stats.total

    def test_forced_bare_transpose_preserves_metadata(self, rng):
        """The materialization fallback keeps the source's
        linearization and carries its name."""
        s = make_session()
        a = s.matrix(rng.standard_normal((70, 40)),
                     linearization="col", name="design")
        out = s.force(a.T)
        assert out.linearization.name == "col"
        assert out.name == "t(design)"
        assert np.allclose(out.to_numpy(),
                           s.values(a.node).T)


class TestEpilogueFusion:
    def test_fused_epilogue_writes_product_once(self, rng):
        """alpha * (A %*% B) + C: the only writes are the final output
        blocks — zero blocks for the intermediate product."""
        a_np = rng.standard_normal((160, 64))
        b_np = rng.standard_normal((64, 96))
        c_np = rng.standard_normal((160, 96))
        s = make_session(mem=2 * 1024 * 1024)
        a, b, c = s.matrix(a_np), s.matrix(b_np), s.matrix(c_np)
        plan = 2.5 * (a @ b) + c
        s.store.pool.clear()
        s.reset_stats()
        values = plan.values()
        s.store.flush()
        out_blocks = 5 * 3  # ceil(160/32) x ceil(96/32) tiles, 1 page each
        assert s.io_stats.writes == out_blocks
        assert np.allclose(values, 2.5 * (a_np @ b_np) + c_np)

    def test_unfused_session_materializes_product(self, rng):
        a_np = rng.standard_normal((160, 64))
        b_np = rng.standard_normal((64, 96))
        c_np = rng.standard_normal((160, 96))
        s = make_session(optimize=False, mem=2 * 1024 * 1024)
        plan = (s.matrix(a_np) @ s.matrix(b_np)) + s.matrix(c_np)
        s.store.pool.clear()
        s.reset_stats()
        values = plan.values()
        s.store.flush()
        assert s.io_stats.writes == 2 * 5 * 3  # product + result
        assert np.allclose(values, a_np @ b_np + c_np)

    def test_fused_crossprod_epilogue(self, rng):
        a_np = rng.standard_normal((120, 64))
        c_np = rng.standard_normal((64, 64))
        s = make_session(mem=2 * 1024 * 1024)
        a, c = s.matrix(a_np), s.matrix(c_np)
        plan = (a.T @ a) * 0.5 + c
        s.store.pool.clear()
        s.reset_stats()
        values = plan.values()
        s.store.flush()
        assert s.io_stats.writes == 2 * 2  # only the 64x64 output
        assert np.allclose(values, 0.5 * (a_np.T @ a_np) + c_np)

    def test_shared_product_not_recomputed(self, rng):
        """A product with consumers outside the Map region must not be
        fused away from them."""
        a_np = rng.standard_normal((40, 40))
        b_np = rng.standard_normal((40, 40))
        c_np = rng.standard_normal((40, 40))
        s = make_session()
        p = MatMul(s.matrix(a_np).node, s.matrix(b_np).node)
        # p feeds a Map AND an outer MatMul in the same root DAG.
        root = MatMul(Map("+", p, s.matrix(c_np).node), p)
        values = s.values(root)
        p_np = a_np @ b_np
        assert np.allclose(values, (p_np + c_np) @ p_np)

    def test_shared_interior_map_runs_product_once(self, rng,
                                                   monkeypatch):
        """A product reached through an interior Map that *also* feeds
        a consumer outside the region must execute exactly once."""
        import repro.core.evaluator as ev_mod
        from repro.core import Reduce, Scalar
        calls = []
        orig = ev_mod.square_tile_matmul

        def counting(*args, **kwargs):
            calls.append(1)
            return orig(*args, **kwargs)

        monkeypatch.setattr(ev_mod, "square_tile_matmul", counting)
        a_np = rng.standard_normal((64, 64))
        b_np = rng.standard_normal((64, 64))
        c_np = rng.standard_normal((64, 64))
        s = make_session()
        p = MatMul(s.matrix(a_np).node, s.matrix(b_np).node)
        m = Map("*", p, Scalar(3.0))
        root = Map("*", Map("+", m, s.matrix(c_np).node),
                   Reduce("sum", Map("*", m, Scalar(2.0))))
        values = s.values(root)
        ref = (a_np @ b_np) * 3.0
        assert np.allclose(values, (ref + c_np) * (ref * 2.0).sum())
        assert len(calls) == 1

    def test_scalar_subtrees_fold_into_epilogue(self, rng):
        a_np = rng.standard_normal((64, 48))
        b_np = rng.standard_normal((48, 32))
        s = make_session()
        a, b = s.matrix(a_np), s.matrix(b_np)
        plan = ((a @ b) - 1.0) / 4.0
        assert np.allclose(plan.values(), (a_np @ b_np - 1.0) / 4.0)
