"""Unified node identity: CSE keys and fixpoint signatures agree.

Regression tests for the old split-brain bug where ``Rewriter._signature``
probed ``kernel``/``trans_a``/``trans_b`` via getattr on every node but
knew nothing about ``Crossprod.t_first`` or
``SubscriptAssign.logical_mask``, while ``_canon_key`` special-cased a
different set of attributes.  Both now derive from
``repro.core.passes.signatures``.
"""

import numpy as np

from repro.core import (ArrayInput, Crossprod, Map, MatMul, Range,
                        Scalar, SubscriptAssign, optimize, walk)
from repro.core.passes.signatures import (canon_key, dag_signature,
                                          node_attrs)


def mat(r, c, data=None):
    return ArrayInput(np.zeros((r, c)) if data is None else data)


def vec(n):
    return ArrayInput(np.arange(n, dtype=float))


class TestNodeAttrs:
    def test_matmul_attrs_include_kernel_and_flags(self):
        a, b = mat(8, 8), mat(8, 8)
        assert node_attrs(MatMul(a, b)) != \
            node_attrs(MatMul(a, b, trans_a=True))
        assert node_attrs(MatMul(a, b)) != \
            node_attrs(MatMul(a, b, kernel="dense"))
        assert node_attrs(MatMul(a, b, trans_a=True)) != \
            node_attrs(MatMul(a, b, trans_b=True))

    def test_crossprod_attrs_include_t_first(self):
        a = mat(8, 8)
        assert node_attrs(Crossprod(a, t_first=True)) != \
            node_attrs(Crossprod(a, t_first=False))

    def test_subscript_assign_attrs_include_mask_flag(self):
        base = vec(10)
        mask = Map(">", base, Scalar(0.0))
        assign = SubscriptAssign(base, mask, Scalar(1.0),
                                 logical_mask=True)
        idx = ArrayInput(np.asarray([1.0, 2.0]))
        positional = SubscriptAssign(base, idx, Scalar(1.0),
                                     logical_mask=False)
        assert node_attrs(assign) != node_attrs(positional)

    def test_scalar_and_range_attrs_carry_values(self):
        assert node_attrs(Scalar(1.0)) != node_attrs(Scalar(2.0))
        assert node_attrs(Range(1, 5)) != node_attrs(Range(2, 5))


class TestCanonKey:
    def test_flagged_vs_unflagged_matmul_never_merge(self):
        a, b = mat(8, 8), mat(8, 8)
        assert canon_key(MatMul(a, b)) != \
            canon_key(MatMul(a, b, trans_a=True))

    def test_same_structure_same_key(self):
        a, b = mat(8, 8), mat(8, 8)
        assert canon_key(MatMul(a, b, trans_a=True)) == \
            canon_key(MatMul(a, b, trans_a=True))

    def test_kernel_hint_distinguishes(self):
        a, b = mat(8, 8), mat(8, 8)
        assert canon_key(MatMul(a, b, kernel="dense")) != \
            canon_key(MatMul(a, b, kernel="auto"))


class TestDagSignature:
    def test_t_first_flip_changes_signature(self):
        """The old getattr-based signature was blind to t_first: a pass
        flipping only that attribute looked like a no-op to fixpoint
        detection."""
        a = mat(8, 8)
        assert dag_signature(Crossprod(a, t_first=True)) != \
            dag_signature(Crossprod(a, t_first=False))

    def test_mask_flag_flip_changes_signature(self):
        base = vec(4)
        idx = ArrayInput(np.asarray([1.0, 2.0, 3.0, 4.0]))
        masked = SubscriptAssign(base, Map(">", base, Scalar(0.0)),
                                 Scalar(1.0), logical_mask=True)
        # Rebuild with the same wiring but positional semantics.
        positional = SubscriptAssign(base, idx, Scalar(1.0),
                                     logical_mask=False)
        assert dag_signature(masked) != dag_signature(positional)

    def test_identical_rebuild_same_signature(self):
        a, b = mat(8, 4), mat(4, 8)
        s1 = dag_signature(Map("+", MatMul(a, b), Scalar(1.0)))
        s2 = dag_signature(Map("+", MatMul(a, b), Scalar(1.0)))
        assert s1 == s2


class TestCSERegression:
    def test_flagged_and_unflagged_products_survive_cse(self):
        """t(A) %*% B and A %*% B over the same operands must never be
        merged by CSE, whatever order the rewrites fire in."""
        rng = np.random.default_rng(0)
        a = mat(8, 8, rng.standard_normal((8, 8)))
        b = mat(8, 8, rng.standard_normal((8, 8)))
        plain = MatMul(a, b)
        flagged = MatMul(a, b, trans_a=True)
        out = optimize(Map("+", plain, flagged))
        assert out.children[0] is not out.children[1]
        muls = [n for n in walk(out) if isinstance(n, MatMul)]
        assert len(muls) == 2
        assert {m.trans_a for m in muls} == {True, False}

    def test_identical_flagged_products_do_merge(self):
        a = mat(8, 8)
        b = mat(8, 8)
        m1 = MatMul(a, b, trans_a=True)
        m2 = MatMul(a, b, trans_a=True)
        out = optimize(Map("+", m1, m2))
        assert out.children[0] is out.children[1]

    def test_crossprod_direction_never_merges(self):
        a = mat(8, 8)
        out = optimize(Map("+", Crossprod(a, t_first=True),
                           Crossprod(a, t_first=False)))
        assert out.children[0] is not out.children[1]
