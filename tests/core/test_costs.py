"""Tests for the analytic I/O cost models and the Figure-3 tables."""

import math

import pytest

from repro.core.costs import (GB_IN_SCALARS, bnlj_matmul_io,
                              chain_io, chain_io_lower_bound, fig3_dims,
                              fig3_strategy_costs, fig3a_rows, fig3b_rows,
                              matmul_io_lower_bound,
                              naive_colmajor_matmul_io, riotdb_matmul_io,
                              rowmajor_scan_matmul_io,
                              square_tile_matmul_io)
from repro.core.chain import in_order


M2GB = 2 * GB_IN_SCALARS


class TestSingleMultiply:
    def test_square_tile_tracks_lower_bound(self):
        """Optimal algorithm is within a constant (2*sqrt(3)) of the bound."""
        n, M, B = 100_000, M2GB, 1024
        lb = matmul_io_lower_bound(n, n, n, M, B)
        cost = square_tile_matmul_io(n, n, n, M, B)
        assert cost >= lb
        assert cost <= 4 * lb  # 2*sqrt(3) ~ 3.46 plus the write term

    def test_square_beats_bnlj_at_scale(self):
        """§5: 'For large matrices, this algorithm beats the one ...
        inspired by block nested-loop join.'"""
        n, M, B = 100_000, M2GB, 1024
        assert square_tile_matmul_io(n, n, n, M, B) < \
            bnlj_matmul_io(n, n, n, M, B)

    def test_bnlj_scales_with_extra_dimension_factor(self):
        """BNLJ cost carries the (n2+n3)/M factor the square tiles avoid."""
        M, B = M2GB, 1024
        r4 = bnlj_matmul_io(40_000, 40_000, 40_000, M, B)
        r8 = bnlj_matmul_io(80_000, 80_000, 80_000, M, B)
        # n^3 * n / M scaling: doubling n multiplies cost by ~16.
        assert r8 / r4 == pytest.approx(16, rel=0.2)

    def test_square_scaling_is_cubic(self):
        M, B = M2GB, 1024
        r4 = square_tile_matmul_io(40_000, 40_000, 40_000, M, B)
        r8 = square_tile_matmul_io(80_000, 80_000, 80_000, M, B)
        assert r8 / r4 == pytest.approx(8, rel=0.2)

    def test_more_memory_reduces_square_cost(self):
        n, B = 100_000, 1024
        two = square_tile_matmul_io(n, n, n, M2GB, B)
        four = square_tile_matmul_io(n, n, n, 2 * M2GB, B)
        # 1/sqrt(M) scaling -> factor ~sqrt(2).
        assert two / four == pytest.approx(math.sqrt(2), rel=0.05)

    def test_naive_is_catastrophic(self):
        """§3: column layout for both operands costs Theta(n1 n2 n3)."""
        n, B = 10_000, 1024
        naive = naive_colmajor_matmul_io(n, n, n, B)
        rowmajor = rowmajor_scan_matmul_io(n, n, n, B)
        assert naive / rowmajor == pytest.approx(B, rel=0.01)

    def test_riotdb_dwarfs_everything(self):
        n, M, B = 100_000, M2GB, 1024
        riot = riotdb_matmul_io(n, n, n, M, B)
        bnlj = bnlj_matmul_io(n, n, n, M, B)
        assert riot > 100 * bnlj


class TestChains:
    def test_chain_io_sums_pairwise(self):
        dims = [100, 50, 100, 100]
        per = lambda m, l, n: float(m * l * n)  # noqa: E731
        total = chain_io(dims, in_order(3), per)
        assert total == 100 * 50 * 100 + 100 * 100 * 100

    def test_chain_lower_bound_uses_optimal_multiplications(self):
        dims = [1000, 10, 1000, 1000]
        lb = chain_io_lower_bound(dims, M2GB, 1024)
        n_opt = 10 * 1000 * 1000 + 1000 * 10 * 1000
        assert lb == pytest.approx(
            n_opt / (1024 * math.sqrt(M2GB)))


class TestFigure3:
    def test_fig3a_strategy_ordering(self):
        """The paper's 'progression of improvements' must hold at every
        parameter setting of Figure 3(a)."""
        for n in (100_000, 120_000):
            for gb in (2, 4):
                costs = fig3_strategy_costs(n, 2.0, gb * GB_IN_SCALARS)
                assert costs["RIOT-DB"] > costs["BNLJ-Inspired"] > \
                    costs["Square/In-Order"] > costs["Square/Opt-Order"]

    def test_fig3a_magnitudes_match_paper(self):
        """Figure 3(a) y-axis spans 1e7..1e13; RIOT-DB sits at the top
        (~1e12-1e13) and the square strategies at 1e8-1e9."""
        costs = fig3_strategy_costs(100_000, 2.0, M2GB)
        assert 1e11 < costs["RIOT-DB"] < 1e14
        assert 1e8 < costs["BNLJ-Inspired"] < 1e10
        assert 1e7 < costs["Square/Opt-Order"] < 1e9

    def test_fig3b_gap_widens_with_skew(self):
        """§5: 'As s increases, the performance gap between
        Square/Opt-Order and others widens.'"""
        rows = fig3b_rows()
        by_s = {}
        for row in rows:
            by_s.setdefault(row["s"], {})[row["strategy"]] = \
                row["io_blocks"]
        gaps = [by_s[s]["Square/In-Order"] / by_s[s]["Square/Opt-Order"]
                for s in (2, 4, 6, 8)]
        assert gaps == sorted(gaps)
        assert gaps[-1] > gaps[0] * 1.5

    def test_fig3b_excludes_riotdb(self):
        strategies = {r["strategy"] for r in fig3b_rows()}
        assert "RIOT-DB" not in strategies

    def test_fig3a_has_16_rows(self):
        assert len(fig3a_rows()) == 16  # 2 n x 2 memory x 4 strategies

    def test_more_memory_helps_every_strategy(self):
        a = fig3_strategy_costs(100_000, 2.0, M2GB)
        b = fig3_strategy_costs(100_000, 2.0, 2 * M2GB)
        for strategy in a:
            assert b[strategy] <= a[strategy]

    def test_dims_shape(self):
        assert fig3_dims(100_000, 2.0) == [100_000, 50_000, 100_000,
                                           100_000]
