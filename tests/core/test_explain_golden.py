"""Golden-plan snapshots: plan-choice regressions fail loudly.

Each test pins the *structure* of the plan the cost-based planner picks
for a canonical workload — operator kinds, kernel details, chain order
and tree shape via ``PhysicalPlan.signature()`` — plus the section
markers of ``session.explain()``.  Cost-model tweaks that change
predicted numbers don't trip these; a different *choice* does, which is
exactly the alarm we want.
"""

import numpy as np

from repro.core import (MatMul, OptimizerConfig, RiotSession, Solve,
                        Transpose)
from repro.storage import StorageConfig


def session(mem_scalars=96 * 1024, level=2):
    return RiotSession(
        storage=StorageConfig(memory_bytes=mem_scalars * 8,
                              block_size=8192),
        config=OptimizerConfig(level=level))


def rng():
    return np.random.default_rng(7)


class TestGoldenOLS:
    def test_ols_plan_signature(self):
        s = session()
        X = s.matrix(rng().standard_normal((512, 128)), name="X")
        y = s.matrix(rng().standard_normal((512, 1)), name="y")
        node = Solve(MatMul(Transpose(X.node), X.node),
                     MatMul(Transpose(X.node), y.node))
        assert s.plan(node).signature() == (
            "solve.lu[nrhs=1]("
            "crossprod(input:X), "
            "matmul.square[t(a)](input:X, input:y))")


class TestGoldenSparseChain:
    def test_sparse_chain_plan_signature(self):
        s = session(mem_scalars=24 * 1024)
        coo = np.random.default_rng(1)
        n, nnz = 512, 1310
        flat = coo.choice(n * n, size=nnz, replace=False)
        A = s.sparse_matrix(flat // n, flat % n,
                            coo.standard_normal(nnz), (n, n),
                            name="A")
        flat2 = coo.choice(n * n, size=nnz, replace=False)
        B = s.sparse_matrix(flat2 // n, flat2 % n,
                            coo.standard_normal(nnz), (n, n),
                            name="B")
        v = s.matrix(coo.standard_normal((n, 1)), name="v")
        plan = s.plan(((A @ B) @ v).node)
        assert plan.signature() == (
            "matmul.spmm[order=(A1 (A2 A3))]("
            "input:A, matmul.spmm(input:B, input:v))")


class TestGoldenRidge:
    def test_fused_crossprod_epilogue_signature(self):
        """Ridge normal matrix X'X + lambda I: the elementwise add is
        fused into the symmetric crossprod kernel."""
        s = session()
        X = s.matrix(rng().standard_normal((512, 128)), name="X")
        lam_eye = s.matrix(0.1 * np.eye(128), name="lamI")
        node = (X.crossprod() + lam_eye).node
        plan = s.plan(node)
        assert plan.signature() == (
            "matmul+epilogue[crossprod]("
            "input:X, input:lamI)")


class TestGoldenChainReorder:
    def test_skewed_dense_chain_signature(self):
        """The DP goes right-deep, and for the top multiply (wide
        result, tiny inner dimension) the BNLJ model undercuts the
        Appendix-A schedule by more than the 10% preference margin —
        the planner picks it and keeps square-tile as the recorded
        alternative."""
        s = session()
        g = rng()
        a = s.matrix(g.standard_normal((512, 64)), name="a")
        b = s.matrix(g.standard_normal((64, 512)), name="b")
        c = s.matrix(g.standard_normal((512, 256)), name="c")
        plan = s.plan(((a @ b) @ c).node)
        assert plan.signature() == (
            "matmul.bnlj[order=(A1 (A2 A3))]("
            "input:a, matmul.square(input:b, input:c))")
        assert any(alt == "square-tile"
                   for alt, _ in plan.root.alternatives)


class TestExplainMarkers:
    def test_sections_and_per_op_io(self):
        s = session()
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        handle = a @ b
        text = s.explain(handle)
        assert "-- original --" in text
        assert "-- optimized --" in text
        assert "-- physical plan (level 2) --" in text
        assert "matmul.square" in text
        assert "predicted ~" in text
        assert "total predicted" in text
        handle.force()
        text = s.explain(handle)
        assert "| measured" in text


class TestGoldenPlansVerify:
    """Every golden plan passes static verification (repro.analysis).

    The snapshots above pin *which* plan the optimizer picks; this
    pins that each pick is statically *feasible* under the session's
    own storage budget — shapes conform, panel footprints fit the
    pool, kernel pins are honored, predictions are sane.
    """

    def golden_plans(self):
        s = session()
        g = rng()
        X = s.matrix(g.standard_normal((512, 128)), name="X")
        y = s.matrix(g.standard_normal((512, 1)), name="y")
        yield s, s.plan(Solve(MatMul(Transpose(X.node), X.node),
                              MatMul(Transpose(X.node), y.node)))
        lam_eye = s.matrix(0.1 * np.eye(128), name="lamI")
        yield s, s.plan((X.crossprod() + lam_eye).node)
        a = s.matrix(g.standard_normal((512, 64)), name="a")
        b = s.matrix(g.standard_normal((64, 512)), name="b")
        c = s.matrix(g.standard_normal((512, 256)), name="c")
        yield s, s.plan(((a @ b) @ c).node)
        s2 = session(mem_scalars=24 * 1024)
        coo = np.random.default_rng(1)
        n, nnz = 512, 1310
        flat = coo.choice(n * n, size=nnz, replace=False)
        A = s2.sparse_matrix(flat // n, flat % n,
                             coo.standard_normal(nnz), (n, n),
                             name="A")
        v = s2.matrix(coo.standard_normal((n, 1)), name="v")
        yield s2, s2.plan(((A @ v)).node)

    def test_all_golden_plans_verify_clean(self):
        from repro.analysis import verify_plan
        checked = 0
        for s, plan in self.golden_plans():
            verify_plan(plan, s.storage)
            checked += 1
        assert checked == 4
