"""Tests for matrix-chain DP, incl. hypothesis optimality vs brute force."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import (chain_multiplications, in_order,
                              optimal_multiplications, optimal_order,
                              optimal_order_io, order_to_string,
                              pairwise_shapes)
from repro.core.costs import square_tile_matmul_io


def all_orders(i, j):
    """Enumerate every parenthesization of factors i..j."""
    if i == j:
        yield i
        return
    for k in range(i, j):
        for left in all_orders(i, k):
            for right in all_orders(k + 1, j):
                yield (left, right)


class TestClassicCases:
    def test_cormen_example(self):
        # CLRS 15.2: dims 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 -> 15125.
        dims = [30, 35, 15, 5, 10, 20, 25]
        assert optimal_multiplications(dims) == 15125

    def test_paper_example2(self):
        """§3: reordering A(BC) needs n2n3n4 + n1n2n4 multiplications."""
        n1, n2, n3, n4 = 100, 10, 100, 100
        dims = [n1, n2, n3, n4]
        left = chain_multiplications(dims, in_order(3))
        assert left == n1 * n2 * n3 + n1 * n3 * n4
        right = chain_multiplications(dims, ((0, (1, 2))))
        assert right == n2 * n3 * n4 + n1 * n2 * n4
        assert optimal_multiplications(dims) == min(left, right)

    def test_fig3_skew_chooses_a_bc(self):
        """s > 1 makes Square/Opt-Order pick A(BC) (§5)."""
        n, s = 1000, 4
        dims = [n, n // s, n, n]
        order = optimal_order(dims)
        assert order == (0, (1, 2))

    def test_single_matrix(self):
        assert optimal_order([3, 4]) == 0
        assert optimal_multiplications([3, 4]) == 0.0

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            optimal_order([5])


class TestOrderUtilities:
    def test_in_order_is_left_deep(self):
        assert in_order(4) == (((0, 1), 2), 3)

    def test_order_to_string(self):
        assert order_to_string((0, (1, 2))) == "(A1 (A2 A3))"
        assert order_to_string((0, (1, 2)), ["A", "B", "C"]) == \
            "(A (B C))"

    def test_pairwise_shapes(self):
        dims = [2, 3, 4, 5]
        shapes = pairwise_shapes(dims, in_order(3))
        assert shapes == [(2, 3, 4), (2, 4, 5)]
        shapes2 = pairwise_shapes(dims, (0, (1, 2)))
        assert shapes2 == [(3, 4, 5), (2, 3, 5)]

    def test_invalid_parenthesization_detected(self):
        with pytest.raises(ValueError):
            chain_multiplications([2, 3, 4], ((0, 0)))


@given(st.lists(st.integers(1, 60), min_size=3, max_size=6))
@settings(max_examples=60, deadline=None)
def test_dp_beats_or_ties_every_order(dims):
    """DP result must equal the brute-force minimum over all orders."""
    n = len(dims) - 1
    best = min(chain_multiplications(dims, order)
               for order in all_orders(0, n - 1))
    assert optimal_multiplications(dims) == best


@given(st.lists(st.integers(1, 60), min_size=3, max_size=5))
@settings(max_examples=40, deadline=None)
def test_dp_never_worse_than_in_order(dims):
    n = len(dims) - 1
    assert optimal_multiplications(dims) <= \
        chain_multiplications(dims, in_order(n))


class TestIOOrder:
    def test_io_optimal_order_minimizes_io(self):
        memory, block = 1 << 20, 1024
        dims = [2000, 200, 2000, 2000]
        order = optimal_order_io(dims, memory, block)

        def total_io(o):
            return sum(square_tile_matmul_io(m, l, n, memory, block)
                       for m, l, n in pairwise_shapes(dims, o))
        candidates = list(all_orders(0, 2))
        best = min(total_io(o) for o in candidates)
        assert total_io(order) == pytest.approx(best)

    def test_io_and_mult_orders_usually_agree(self):
        """For the Figure-3 shapes the two objectives pick the same order."""
        for s in (2, 4, 6, 8):
            dims = [100_000, 100_000 // s, 100_000, 100_000]
            assert optimal_order(dims) == optimal_order_io(
                dims, (2 << 30) // 8, 1024)
