"""Tests for the next-generation RIOT engine behind the R interpreter."""

import numpy as np
import pytest

from repro.core.engine import NGVec, RiotNGEngine
from repro.rlang import Interpreter


@pytest.fixture
def engine():
    return RiotNGEngine(memory_bytes=4 * 1024 * 1024)


@pytest.fixture
def interp(engine):
    return Interpreter(engine, seed=5)


class TestSemantics:
    def test_elementwise(self, engine, interp, rng):
        x = rng.standard_normal(5000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("z <- sqrt((x - 1)^2) * 2 + 1")
        got = engine.session.values(interp.env["z"].node)
        assert np.allclose(got, np.sqrt((x - 1) ** 2) * 2 + 1)

    def test_everything_is_deferred(self, engine, interp, rng):
        """Building expressions costs zero I/O; only print forces."""
        x = rng.standard_normal(100_000)
        interp.env["x"] = engine.make_vector(x)
        engine.session.store.flush()
        engine.reset_stats()
        interp.run("d <- (x - 1)^2 + (x - 2)^2\nz <- d[1:5]")
        assert engine.io_stats().total == 0
        assert isinstance(interp.env["z"], NGVec)

    def test_print_forces_selectively(self, engine, interp, rng):
        x = rng.standard_normal(500_000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("d <- (x - 1)^2")
        engine.session.store.flush()
        engine.reset_stats()
        interp.run("print(d[1:10])")
        # A handful of chunks, not the ~1000 of the full vector.
        assert engine.io_stats().total < 16
        expect = (x[:10] - 1) ** 2
        assert interp.output[0].startswith(
            "[1] " + f"{expect[0]:g}"[:4])

    def test_mask_assignment(self, engine, interp, rng):
        a = rng.uniform(0, 20, 3000)
        interp.env["a"] = engine.make_vector(a)
        interp.run("b <- a^2; b[b > 100] <- 100")
        got = engine.session.values(interp.env["b"].node)
        assert np.allclose(got, np.minimum(a ** 2, 100))

    def test_positional_assignment(self, engine, interp, rng):
        x = rng.standard_normal(1000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("y <- x + 0; y[c(2, 4)] <- 0; print(y[1:5])")
        got = engine.session.values(interp.env["y"].node)
        expect = x.copy()
        expect[[1, 3]] = 0
        assert np.allclose(got, expect)

    def test_value_semantics(self, engine, interp, rng):
        x = rng.standard_normal(100)
        interp.env["x"] = engine.make_vector(x)
        interp.run("y <- x; y[1] <- 42")
        assert np.allclose(engine.session.values(interp.env["x"].node),
                           x)

    def test_reductions(self, engine, interp, rng):
        x = rng.standard_normal(10_000)
        interp.env["x"] = engine.make_vector(x)
        assert interp.run("sum(x)").value == pytest.approx(x.sum())
        assert interp.run("mean(x^2)").value == pytest.approx(
            (x ** 2).mean())

    def test_matmul_chain(self, engine, interp, rng):
        a = rng.standard_normal((40, 8))
        b = rng.standard_normal((8, 40))
        c = rng.standard_normal((40, 20))
        interp.env["A"] = engine.make_matrix(a)
        interp.env["B"] = engine.make_matrix(b)
        interp.env["C"] = engine.make_matrix(c)
        interp.run("T <- A %*% B %*% C")
        got = engine.session.force(interp.env["T"].node).to_numpy()
        assert np.allclose(got, a @ b @ c)

    def test_transpose_and_dim(self, engine, interp, rng):
        a = rng.standard_normal((6, 9))
        interp.env["A"] = engine.make_matrix(a)
        assert interp.run("nrow(t(A))").value == 9
        assert interp.run("ncol(t(A))").value == 6

    def test_crossprod_routes_to_symmetric_node(self, engine, interp,
                                                rng):
        """``crossprod(A)`` builds the Crossprod node directly — no
        Transpose, no plain MatMul — and matches numpy."""
        from repro.core import Crossprod, Transpose, walk
        a = rng.standard_normal((40, 12))
        interp.env["A"] = engine.make_matrix(a)
        interp.run("C <- crossprod(A)")
        node = interp.env["C"].node
        assert isinstance(node, Crossprod) and node.t_first
        assert not any(isinstance(n, Transpose) for n in walk(node))
        got = engine.session.force(node).to_numpy()
        assert np.allclose(got, a.T @ a)

    def test_tcrossprod_and_two_arg_crossprod(self, engine, interp,
                                              rng):
        from repro.core import Crossprod, MatMul
        a = rng.standard_normal((40, 12))
        b = rng.standard_normal((40, 8))
        interp.env["A"] = engine.make_matrix(a)
        interp.env["B"] = engine.make_matrix(b)
        interp.run("T1 <- tcrossprod(A); T2 <- crossprod(A, B)")
        assert isinstance(interp.env["T1"].node, Crossprod)
        assert not interp.env["T1"].node.t_first
        node2 = interp.env["T2"].node
        assert isinstance(node2, MatMul) and node2.trans_a
        assert np.allclose(
            engine.session.force(interp.env["T1"].node).to_numpy(),
            a @ a.T)
        assert np.allclose(
            engine.session.force(node2).to_numpy(), a.T @ b)

    def test_range_is_lazy(self, engine, interp):
        engine.session.store.flush()
        engine.reset_stats()
        interp.run("r <- 1:1000000")
        assert engine.io_stats().total == 0  # Range node, nothing stored

    def test_logical_select_and_which(self, engine, interp, rng):
        x = rng.standard_normal(2000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("p <- x[x > 0]; w <- which(x > 0)")
        assert np.allclose(engine.session.values(interp.env["p"].node),
                           x[x > 0])
        assert np.allclose(engine.session.values(interp.env["w"].node),
                           np.flatnonzero(x > 0) + 1)

    def test_head(self, engine, interp, rng):
        x = rng.standard_normal(100)
        interp.env["x"] = engine.make_vector(x)
        interp.run("h <- head(x, 3)")
        assert np.allclose(engine.session.values(interp.env["h"].node),
                           x[:3])

    def test_scalar_index(self, engine, interp, rng):
        x = rng.standard_normal(50)
        interp.env["x"] = engine.make_vector(x)
        assert interp.run("x[7]").value == pytest.approx(x[6])


class TestSessionCaching:
    def test_repeated_force_cached(self, rng):
        from repro.core import RiotSession
        from repro.storage import StorageConfig
        session = RiotSession(
            storage=StorageConfig(memory_bytes=2 * 1024 * 1024))
        x = session.vector(rng.standard_normal(100_000))
        d = (x - 1.0) ** 2.0
        d.force()
        session.store.flush()
        session.reset_stats()
        d.force()
        assert session.io_stats.total == 0

    def test_explain_shows_both_dags(self, rng):
        from repro.core import RiotSession
        from repro.storage import StorageConfig
        session = RiotSession(
            storage=StorageConfig(memory_bytes=1 << 20))
        x = session.vector(rng.standard_normal(1000))
        text = ((x + 1.0)[1:5]).explain()
        assert "-- original --" in text
        assert "-- optimized --" in text


class TestExplainBuiltin:
    def test_rlang_explain_emits_physical_plan(self, engine, interp):
        interp.run("a <- matrix(rnorm(64 * 48), 64, 48)\n"
                   "b <- matrix(rnorm(48 * 32), 48, 32)\n"
                   "p <- a %*% b\n"
                   "explain(p)")
        text = interp.output[-1]
        assert "-- physical plan (level 2) --" in text
        assert "matmul.square" in text
        assert "predicted ~" in text

    def test_rlang_explain_transpose_free_ols(self, engine, interp):
        """The acceptance view from R: crossprod and the operand flag
        appear in the plan without any user hints."""
        interp.run("x <- matrix(rnorm(96 * 24), 96, 24)\n"
                   "y <- matrix(rnorm(96 * 1), 96, 1)\n"
                   "beta <- solve(t(x) %*% x, t(x) %*% y)\n"
                   "explain(beta)")
        text = interp.output[-1]
        assert "solve.lu" in text
        assert "crossprod" in text
        assert "matmul.square[t(a)]" in text

    def test_reference_engine_has_no_plan(self):
        from repro.engines.plain_r import PlainREngine
        from repro.rlang import Interpreter
        from repro.rlang.values import RError
        interp = Interpreter(PlainREngine(), seed=1)
        with pytest.raises(RError):
            interp.run("x <- matrix(rnorm(4), 2, 2)\nexplain(x)")


class TestOptimizerConfigWiring:
    def test_engine_accepts_config(self, rng):
        from repro.core import OptimizerConfig
        engine = RiotNGEngine(memory_bytes=4 * 1024 * 1024,
                              config=OptimizerConfig(level=1))
        assert engine.session.config.level == 1
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(100))
        interp.run("z <- sqrt((x - 1)^2)")
        got = engine.session.values(interp.env["z"].node)
        assert got.shape == (100,)

    def test_optimize_false_maps_to_level0(self):
        engine = RiotNGEngine(memory_bytes=4 * 1024 * 1024,
                              optimize=False)
        assert engine.session.config.level == 0
