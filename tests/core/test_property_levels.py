"""Hypothesis property: optimizer levels 0/1/2 agree bitwise.

Random DAGs over ragged tile grids (dense and sparse leaves) are
forced in three sessions at optimizer levels 0, 1 and 2; the results
must be **bitwise identical** — the optimizer may only change *how*
blocks move, never a single ULP of the answer.

Generator constraints keep that guarantee honest (each is a real
engine contract, pinned here):

- No >= 3-factor multiply chains: the DP legitimately reassociates
  them, which changes floating-point grouping (covered by allclose
  tests elsewhere).
- Transposes appear on leaves only (``t(A %*% B)`` pushed through the
  product reorders the accumulation outright).
- Sparse products carry an explicit ``kernel="sparse"`` pin so every
  level runs the same kernel; unpinned kernel choice may (correctly)
  switch to a dense kernel with a different accumulation order.
- Matrix operands stay small enough to fit one Appendix-A panel, so
  fused and unfused epilogues split the k-loop identically.
- Patterns whose rewrite changes the *BLAS transpose mode* — operand
  flags (``t(A) %*% B``) and the symmetric Crossprod forms (where
  numpy dispatches SYRK for the same-buffer product) — are held to
  last-ulp *closeness* instead: gemm's 'T' and 'N' paths use different
  remainder kernels at odd sizes, so e.g. ``A.T @ B`` and
  ``ascontiguousarray(A.T) @ B`` already differ in the final ulp at
  n = 33 with stock OpenBLAS.  Everything that leaves the BLAS calls
  untouched — pushdown, CSE, folding, epilogue fusion, plain products
  — must be exactly identical.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Map, MatMul, OptimizerConfig, RiotSession
from repro.storage import StorageConfig

LEVELS = (0, 1, 2)
MEM = 4 * 1024 * 1024


def make_session(level):
    return RiotSession(
        storage=StorageConfig(memory_bytes=MEM, block_size=8192),
        config=OptimizerConfig(level=level))


def values_at_level(build, level):
    s = make_session(level)
    return np.asarray(s.values(build(s)))


def assert_levels_bitwise(build, exact=True):
    v0 = values_at_level(build, 0)
    for level in LEVELS[1:]:
        v = values_at_level(build, level)
        assert v.shape == v0.shape
        if exact:
            assert np.array_equal(v0, v), \
                f"level {level} differs from level 0"
        else:
            assert np.allclose(v0, v, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Vector DAGs: maps, masked assigns, subscripts, ragged lengths
# ----------------------------------------------------------------------
@st.composite
def vector_spec(draw, depth):
    if depth == 0:
        return ("leaf", draw(st.integers(0, 2)))
    kind = draw(st.sampled_from(
        ["unary", "binary", "ifelse", "assign_mask", "assign_pos",
         "leafy"]))
    if kind == "leafy":
        return ("leaf", draw(st.integers(0, 2)))
    if kind == "unary":
        op = draw(st.sampled_from(["neg", "abs", "floor", "sqrtabs"]))
        return ("unary", op, draw(vector_spec(depth - 1)))
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*"]))
        return ("binary", op, draw(vector_spec(depth - 1)),
                draw(vector_spec(depth - 1)))
    if kind == "ifelse":
        return ("ifelse", draw(st.sampled_from([">", "<"])),
                draw(st.floats(-1.0, 1.0)),
                draw(vector_spec(depth - 1)),
                draw(vector_spec(depth - 1)))
    if kind == "assign_mask":
        return ("assign_mask", draw(st.sampled_from([">", "<"])),
                draw(st.floats(-1.0, 1.0)),
                draw(vector_spec(depth - 1)),
                draw(st.floats(-2.0, 2.0)))
    return ("assign_pos", draw(vector_spec(depth - 1)),
            draw(st.floats(-2.0, 2.0)))


def build_vector(spec, s, leaves, n):
    kind = spec[0]
    if kind == "leaf":
        return leaves[spec[1]]
    if kind == "unary":
        child = build_vector(spec[2], s, leaves, n)
        if spec[1] == "sqrtabs":
            return child.abs().sqrt()
        return child._wrap(Map(spec[1], child.node))
    if kind == "binary":
        a = build_vector(spec[2], s, leaves, n)
        b = build_vector(spec[3], s, leaves, n)
        return {"+": a + b, "-": a - b, "*": a * b}[spec[1]]
    if kind == "ifelse":
        _, op, thresh, t_spec, f_spec = spec
        t = build_vector(t_spec, s, leaves, n)
        f = build_vector(f_spec, s, leaves, n)
        mask = (leaves[0] > thresh) if op == ">" else \
            (leaves[0] < thresh)
        return mask.ifelse(t, f)
    if kind == "assign_mask":
        _, op, thresh, base_spec, value = spec
        base = build_vector(base_spec, s, leaves, n)
        mask = (base > thresh) if op == ">" else (base < thresh)
        return base.assign(mask, value)
    # assign_pos: overwrite a prefix slice with a constant
    base = build_vector(spec[1], s, leaves, n)
    hi = max(1, n // 3)
    return base.assign(slice(1, hi), spec[2])


@given(spec=vector_spec(depth=3),
       n=st.integers(257, 2500),
       seed=st.integers(0, 2**16),
       subscript=st.booleans())
@settings(max_examples=20, deadline=None)
def test_vector_dags_bitwise_across_levels(spec, n, seed, subscript):
    data = [np.random.default_rng(seed + i).standard_normal(n)
            for i in range(3)]

    def build(s):
        leaves = [s.vector(d) for d in data]
        out = build_vector(spec, s, leaves, n)
        if subscript:
            out = out[1:max(2, n // 4)]
        return out.node

    assert_levels_bitwise(build)


# ----------------------------------------------------------------------
# Matrix DAGs: products, flags, crossprods, epilogues, ragged grids
# ----------------------------------------------------------------------
@given(pattern=st.sampled_from(
           ["mm", "tmm", "mtm", "crossprod", "tcross", "epilogue",
            "ep_cross"]),
       m=st.integers(33, 200), k=st.integers(33, 200),
       n=st.integers(33, 200),
       lin=st.sampled_from(["row", "col"]),
       seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_dense_matrix_dags_bitwise_across_levels(pattern, m, k, n,
                                                 lin, seed):
    g = np.random.default_rng(seed)
    a_np = g.standard_normal((m, k))
    b_np = g.standard_normal((k, n))
    c_np = g.standard_normal((m, n))
    d_np = g.standard_normal((k, k))
    a2_np = g.standard_normal((m, n))
    c2_np = g.standard_normal((n, k))

    def build(s):
        a = s.matrix(a_np, linearization=lin)
        b = s.matrix(b_np, linearization=lin)
        if pattern == "mm":
            return (a @ b).node
        if pattern == "tmm":   # t(A) %*% A2 via flags vs materialized
            a2 = s.matrix(a2_np)
            return (a.T @ a2).node
        if pattern == "mtm":   # A %*% t(C2) via the trans_b flag
            c2 = s.matrix(c2_np)
            return (a @ c2.T).node
        if pattern == "crossprod":
            return (a.T @ a).node
        if pattern == "tcross":
            return (a @ a.T).node
        if pattern == "epilogue":
            c = s.matrix(c_np)
            return ((a @ b) * 0.5 + c).node
        # ep_cross: fused crossprod epilogue
        d = s.matrix(d_np)
        return ((a.T @ a) * 2.0 - d).node

    transpose_mode_changes = pattern in (
        "tmm", "mtm", "crossprod", "tcross", "ep_cross")
    assert_levels_bitwise(build, exact=not transpose_mode_changes)


# ----------------------------------------------------------------------
# Sparse leaves (kernel pinned so all levels run the same kernel)
# ----------------------------------------------------------------------
@given(density=st.floats(0.001, 0.05),
       n=st.integers(130, 400),
       seed=st.integers(0, 2**16),
       both_sparse=st.booleans())
@settings(max_examples=15, deadline=None)
def test_sparse_dags_bitwise_across_levels(density, n, seed,
                                           both_sparse):
    g = np.random.default_rng(seed)
    nnz = max(1, int(round(density * n * n)))
    flat_a = g.choice(n * n, size=nnz, replace=False)
    vals_a = g.standard_normal(nnz)
    flat_b = g.choice(n * n, size=nnz, replace=False)
    vals_b = g.standard_normal(nnz)
    dense_np = g.standard_normal((n, 1))

    def build(s):
        A = s.sparse_matrix(flat_a // n, flat_a % n, vals_a, (n, n))
        if both_sparse:
            B = s.sparse_matrix(flat_b // n, flat_b % n, vals_b,
                                (n, n))
            return MatMul(A.node, B.node, kernel="sparse")
        v = s.matrix(dense_np)
        return MatMul(A.node, v.node, kernel="sparse")

    def values(level):
        s = make_session(level)
        forced = s.force(build(s))
        return forced.to_numpy()

    v0 = values(0)
    for level in LEVELS[1:]:
        assert np.array_equal(v0, values(level))
