"""The injected storage API: sessions, URL opening, the legacy shim.

PR-6 acceptance: ``RiotSession(storage=StorageConfig(...))`` is the
one way to configure storage; ``RiotSession(memory_bytes=...)`` still
works but emits ``DeprecationWarning``; ``repro.open_session(url)``
covers the URL form; no module outside ``repro.storage`` constructs a
``BlockDevice`` directly.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core import RiotSession
from repro.core.engine import RiotNGEngine
from repro.db import Database
from repro.storage import FileBlockDevice, StorageConfig
from repro.vm import Pager


class TestSessionConfigInjection:
    def test_storage_config_drives_the_store(self):
        cfg = StorageConfig(memory_bytes=1 << 20, block_size=4096,
                            policy="clock")
        s = RiotSession(storage=cfg)
        assert s.store.device.block_size == 4096
        assert s.store.pool.capacity == (1 << 20) // 4096
        assert s.storage is cfg

    def test_default_is_memory_backend(self):
        assert RiotSession().store.device.backend == "memory"

    def test_file_backend_session(self, tmp_path):
        cfg = StorageConfig(backend="mmap", path=tmp_path / "s.db",
                            memory_bytes=1 << 20)
        with RiotSession(storage=cfg) as s:
            x = s.vector(np.arange(5000.0))
            assert np.array_equal(s.values(x * 2.0),
                                  np.arange(5000.0) * 2.0)
            assert isinstance(s.store.device, FileBlockDevice)
        assert (tmp_path / "s.db").exists()

    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="StorageConfig"):
            s = RiotSession(memory_bytes=2 << 20, block_size=4096)
        assert s.store.pool.capacity == (2 << 20) // 4096
        assert s.store.device.block_size == 4096

    def test_legacy_policy_kwarg_warns(self):
        with pytest.warns(DeprecationWarning):
            RiotSession(policy="clock")

    def test_storage_plus_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            RiotSession(memory_bytes=1 << 20,
                        storage=StorageConfig())


class TestOpenSession:
    def test_memory_url(self):
        with repro.open_session("memory://", memory="1MiB") as s:
            assert s.store.device.backend == "memory"
            assert s._memory_scalars == (1 << 20) // 8

    def test_file_url_roundtrip(self, tmp_path):
        url = (tmp_path / "riot.db").as_uri()
        with repro.open_session(url, memory="1MiB") as s:
            m = s.matrix(np.arange(24.0).reshape(4, 6), name="M")
            s.values(m)  # materialize before close
        with repro.open_session(url, memory="1MiB") as s:
            assert "M" in s.stored_names()
            got = s.values(s.open_matrix("M"))
        assert np.array_equal(got, np.arange(24.0).reshape(4, 6))

    def test_pread_mode_via_query(self, tmp_path):
        url = (tmp_path / "riot.db").as_uri() + "?mode=pread"
        with repro.open_session(url, memory="1MiB") as s:
            assert s.store.device.backend == "pread"

    def test_kwargs_forwarded(self):
        with repro.open_session(None, optimize=False) as s:
            assert not s.optimize_enabled

    def test_temp_file_cleanup_on_close(self):
        s = repro.open_session("file:///?mode=pread", memory="1MiB")
        # empty path -> device-owned temporary page file
        assert s.store.device.owns_path
        path = s.store.device.path
        assert os.path.exists(path)
        s.close()
        s.close()  # idempotent
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".meta")

    def test_vector_persistence(self, tmp_path):
        url = (tmp_path / "v.db").as_uri()
        data = np.random.default_rng(3).standard_normal(10_000)
        with repro.open_session(url, memory="1MiB") as s:
            s.values(s.vector(data, name="x"))
        with repro.open_session(url, memory="1MiB") as s:
            assert np.array_equal(s.values(s.open_vector("x")), data)


class TestSubsystemInjection:
    def test_ng_engine_storage_passthrough(self, tmp_path):
        cfg = StorageConfig(backend="mmap", path=tmp_path / "e.db",
                            memory_bytes=1 << 20)
        engine = RiotNGEngine(storage=cfg)
        assert isinstance(engine.session.store.device, FileBlockDevice)
        engine.session.close()

    def test_database_storage_passthrough(self, tmp_path):
        cfg = StorageConfig(backend="pread", path=tmp_path / "d.db",
                            memory_bytes=1 << 20)
        db = Database(storage=cfg)
        assert isinstance(db.device, FileBlockDevice)
        assert db.device.backend == "pread"
        db.device.close()

    def test_pager_swap_storage(self, tmp_path):
        cfg = StorageConfig(backend="pread", path=tmp_path / "swap.db")
        pager = Pager(memory_bytes=4 * 8192, page_size=8192,
                      swap_storage=cfg)
        assert isinstance(pager.swap, FileBlockDevice)
        first = pager.allocate(8)
        for pid in range(first, first + 8):
            pager.touch(pid, write=True)
        for pid in range(first, first + 8):
            pager.touch(pid)
        assert pager.stats.reads > 0 and pager.stats.writes > 0
        assert pager.swap.stats.syscalls > 0
        pager.swap.close()

    def test_no_direct_device_construction_outside_storage(self):
        """Acceptance check: only repro.storage constructs devices and
        page files.  RPR001 checks real call sites on the AST (the
        grep predecessor of this test also flagged docstrings and
        could not see ``PageFile``)."""
        from repro.analysis import run_lint
        root = pathlib.Path(repro.__file__).parent
        findings = run_lint([root], select={"RPR001"})
        assert findings == [], "\n".join(f.render() for f in findings)


def test_quickstart_example_runs():
    """The shipped example must track the new API."""
    repo = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(repo / "src"))
    proc = subprocess.run(
        [sys.executable, str(repo / "examples" / "quickstart.py")],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
