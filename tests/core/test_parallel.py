"""Parallel plan execution: determinism, scheduling, and knobs.

The contract under test (see ``repro.core.parallel``): results are
bitwise-identical at every parallelism level, simulated block counts
for dependency chains are identical at every worker count, and
``explain(analyze=True)`` renders the measured schedule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OptimizerConfig, RiotSession
from repro.core.parallel import (MAX_WORKERS, PARALLELISM_ENV,
                                 TileParallelism, resolve_parallelism)
from repro.storage import StorageConfig


def make_session(workers: int, mem_scalars: int = 96 * 1024):
    return RiotSession(
        storage=StorageConfig(memory_bytes=mem_scalars * 8,
                              block_size=8192),
        config=OptimizerConfig(parallelism=workers))


def _values_at(workers: int, build, mem_scalars: int = 96 * 1024):
    session = make_session(workers, mem_scalars)
    try:
        return build(session).values()
    finally:
        session.close()


class TestBitwiseIdentity:
    def test_independent_products_sum(self, rng):
        a = rng.standard_normal((96, 64))
        b = rng.standard_normal((64, 80))
        c = rng.standard_normal((96, 48))
        d = rng.standard_normal((48, 80))

        def build(s):
            return (s.matrix(a) @ s.matrix(b)
                    + s.matrix(c) @ s.matrix(d))

        ref = _values_at(1, build)
        for workers in (2, 8):
            got = _values_at(workers, build)
            assert got.tobytes() == ref.tobytes()

    def test_chain_matmul(self, rng):
        a = rng.standard_normal((120, 40))
        b = rng.standard_normal((40, 96))
        c = rng.standard_normal((96, 56))

        def build(s):
            return s.matrix(a) @ s.matrix(b) @ s.matrix(c)

        ref = _values_at(1, build)
        for workers in (2, 8):
            assert _values_at(workers, build).tobytes() == ref.tobytes()

    def test_sparse_spmm(self, rng):
        n, nnz = 256, 900
        flat = rng.choice(n * n, size=nnz, replace=False)
        dense = rng.standard_normal((n, 32))

        def build(s):
            A = s.sparse_matrix(flat // n, flat % n,
                                np.arange(1.0, nnz + 1.0), (n, n))
            return A @ s.matrix(dense)

        ref = _values_at(1, build)
        assert _values_at(4, build).tobytes() == ref.tobytes()


@settings(max_examples=10, deadline=None)
@given(m=st.integers(min_value=8, max_value=96),
       k=st.integers(min_value=8, max_value=96),
       n=st.integers(min_value=8, max_value=96),
       seed=st.integers(min_value=0, max_value=2**16))
def test_property_ragged_dags_bitwise_identical(m, k, n, seed):
    """Random ragged-grid DAGs evaluate bitwise-identically at
    parallelism 1, 2 and 8 — the determinism contract, end to end."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))

    def build(s):
        return s.matrix(a) @ s.matrix(b) + s.matrix(c) * 2.0

    ref = _values_at(1, build, mem_scalars=48 * 1024)
    for workers in (2, 8):
        got = _values_at(workers, build, mem_scalars=48 * 1024)
        assert got.tobytes() == ref.tobytes()


_COUNT_FIELDS = ("seq_reads", "rand_reads", "seq_writes", "rand_writes",
                 "read_calls", "write_calls", "coalesced_ios",
                 "prefetched")


class TestDeterministicCounts:
    def test_chain_block_counts_identical(self, rng):
        """Sequentially-dependent plans produce identical simulated
        block counts at every worker count (ns fields excluded — they
        are wall-clock, not simulation)."""
        a = rng.standard_normal((160, 64))
        b = rng.standard_normal((64, 128))
        c = rng.standard_normal((128, 72))
        counts = {}
        for workers in (1, 2, 8):
            s = make_session(workers, mem_scalars=24 * 1024)
            try:
                expr = s.matrix(a) @ s.matrix(b) @ s.matrix(c)
                s.store.flush()
                s.reset_stats()
                expr.force()
                io = s.io_stats
                counts[workers] = {f: getattr(io, f)
                                   for f in _COUNT_FIELDS}
            finally:
                s.close()
        assert counts[2] == counts[1]
        assert counts[8] == counts[1]


class TestScheduleAndExplain:
    def test_explain_analyze_renders_schedule(self, rng):
        s = make_session(2)
        try:
            a = s.matrix(rng.standard_normal((96, 64)), name="A")
            b = s.matrix(rng.standard_normal((64, 80)), name="B")
            text = s.explain(a @ b, analyze=True)
        finally:
            s.close()
        assert "-- parallel schedule (workers=2) --" in text
        assert "critical path" in text
        assert "sum of op time" in text
        assert "measured:" in text  # parallel vs serial baseline

    def test_serial_explain_has_no_schedule(self, rng):
        s = make_session(1)
        try:
            a = s.matrix(rng.standard_normal((64, 64)))
            text = s.explain(a @ a, analyze=True)
        finally:
            s.close()
        assert "parallel schedule" not in text

    def test_warm_parallel_run_records_schedule(self, rng):
        s = make_session(4)
        try:
            a = s.matrix(rng.standard_normal((96, 48)))
            b = s.matrix(rng.standard_normal((48, 96)))
            plan = s.plan((a @ b).node)
            s.evaluator.execute(plan)
            sched = plan.parallel_schedule
            assert sched is not None
            assert sched["workers"] == 4
            assert len(sched["ops"]) == len(list(plan.ops()))
            for entry in sched["ops"]:
                assert 0 <= entry["worker"] < 4
                assert entry["end_ns"] >= entry["start_ns"]
            assert sched["critical_path_ns"] <= sched["sum_op_ns"]
        finally:
            s.close()

    def test_parallel_error_propagates(self, rng):
        s = make_session(2, mem_scalars=24 * 1024)
        try:
            a = s.matrix(rng.standard_normal((32, 32)))
            plan = s.plan((a @ a).node)
            ev = s.evaluator
            orig = ev._dispatch_op

            def boom(op, memo):
                raise RuntimeError("kernel exploded")

            ev._dispatch_op = boom
            try:
                with pytest.raises(RuntimeError, match="exploded"):
                    ev.execute_parallel(plan)
            finally:
                ev._dispatch_op = orig
        finally:
            s.close()


class TestTileParallelism:
    def test_accumulate_bitwise_matches_serial(self, rng):
        parts = [rng.standard_normal((24, 24)) for _ in range(9)]
        serial = np.zeros((24, 24))
        for p in parts:
            serial += p
        tp = TileParallelism(4)
        try:
            got = tp.accumulate(np.zeros((24, 24)),
                                (lambda p=p: p for p in parts))
        finally:
            tp.shutdown()
        assert got.tobytes() == serial.tobytes()

    def test_single_worker_needs_no_pool(self):
        tp = TileParallelism(1)
        assert tp._executor is None
        acc = tp.accumulate(np.zeros(4), (lambda: np.ones(4)
                                          for _ in range(3)))
        assert acc.tolist() == [3.0] * 4
        tp.shutdown()

    def test_reads_stay_on_calling_thread(self):
        """The thunk *stream* is consumed on the caller: any I/O done
        while producing a thunk happens serially, in order."""
        import threading
        caller = threading.get_ident()
        seen = []

        def thunks():
            for i in range(6):
                seen.append((i, threading.get_ident()))
                yield lambda i=i: np.full(2, float(i))

        tp = TileParallelism(3)
        try:
            acc = tp.accumulate(np.zeros(2), thunks())
        finally:
            tp.shutdown()
        assert [i for i, _ in seen] == list(range(6))
        assert all(tid == caller for _, tid in seen)
        assert acc[0] == sum(range(6))


class TestResolveParallelism:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(PARALLELISM_ENV, raising=False)
        assert resolve_parallelism(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(PARALLELISM_ENV, "3")
        assert resolve_parallelism(None) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PARALLELISM_ENV, "3")
        assert resolve_parallelism(5) == 5

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(PARALLELISM_ENV, "lots")
        with pytest.raises(ValueError, match="integer"):
            resolve_parallelism(None)

    def test_zero_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_parallelism(0)

    def test_clamped_to_max(self):
        assert resolve_parallelism(10_000) == MAX_WORKERS

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(parallelism=0)
