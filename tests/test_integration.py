"""Cross-engine integration: one program, five engines, identical output.

The paper's transparency thesis, as a test matrix: arbitrary programs from
the paper and beyond must produce byte-identical printed results on every
engine, while the engines' I/O differs wildly.
"""

import numpy as np
import pytest

from repro.engines import ALL_ENGINES
from repro.rlang import Interpreter

ENGINE_NAMES = ["plain", "strawman", "matnamed", "riotdb", "riotng"]

PROGRAMS = {
    "example1": """
        d <- sqrt((x-1)^2+(y-2)^2) + sqrt((x-9)^2+(y-8)^2)
        s <- sample(length(x), 20)
        z <- d[s]
        print(z)
    """,
    "section5": """
        b <- x^2
        b[b > 1] <- 1
        print(b[1:10])
    """,
    "reductions": """
        d <- (x - 0.5) * (y + 0.25)
        print(sum(d))
        print(mean(d))
        print(max(d))
    """,
    "composed": """
        a <- x + y
        b <- a * 2
        c <- b - x
        print(c[1:8])
        print(sum(c))
    """,
    "selection_chain": """
        d <- sqrt(abs(x))
        e <- d[1:100]
        f <- e[1:10]
        print(f)
    """,
    "logical_pipeline": """
        m <- x > 0 & y > 0
        k <- which(m)
        print(length(k))
        print(k[1:5])
    """,
}


def _run(engine_name: str, program: str, x: np.ndarray,
         y: np.ndarray) -> list[str]:
    engine = ALL_ENGINES[engine_name](memory_bytes=8 * 1024 * 1024)
    interp = Interpreter(engine, seed=99)
    interp.env["x"] = engine.make_vector(x)
    interp.env["y"] = engine.make_vector(y)
    interp.run(program)
    return interp.output


_NUMBER = __import__("re").compile(
    r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?")


def _assert_outputs_agree(reference: list[str], got: list[str],
                          label: str) -> None:
    """Line-by-line comparison; numbers compared to ~9 significant
    digits (streamed accumulation may differ from numpy's pairwise
    summation in the last ulp)."""
    assert len(got) == len(reference), (label, got, reference)
    for ref_line, got_line in zip(reference, got):
        ref_nums = [float(m) for m in _NUMBER.findall(ref_line)]
        got_nums = [float(m) for m in _NUMBER.findall(got_line)]
        assert len(ref_nums) == len(got_nums), (label, got_line)
        assert np.allclose(ref_nums, got_nums,
                           rtol=1e-9, atol=1e-9), (label, got_line,
                                                   ref_line)
        assert _NUMBER.sub("#", ref_line) == _NUMBER.sub("#", got_line)


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_identical_output_across_engines(program_name, rng):
    x = rng.standard_normal(20_000)
    y = rng.standard_normal(20_000)
    program = PROGRAMS[program_name]
    outputs = {name: _run(name, program, x, y)
               for name in ENGINE_NAMES}
    reference = outputs["plain"]
    assert reference, "program produced no output"
    for name, got in outputs.items():
        _assert_outputs_agree(reference, got,
                              f"{name} on {program_name}")


def test_matrix_program_across_engines(rng):
    program = """
        T <- A %*% B
        print(T)
        print(sum(T))
    """
    a = rng.standard_normal((12, 6))
    b = rng.standard_normal((6, 9))
    outputs = {}
    for name in ENGINE_NAMES:
        engine = ALL_ENGINES[name](memory_bytes=8 * 1024 * 1024)
        interp = Interpreter(engine, seed=1)
        interp.env["A"] = engine.make_matrix(a)
        interp.env["B"] = engine.make_matrix(b)
        interp.run(program)
        outputs[name] = interp.output
    reference = outputs["plain"]
    for name, got in outputs.items():
        _assert_outputs_agree(reference, got, name)


def test_io_ordering_is_the_papers(rng):
    """On Example 1, the engines' I/O must rank as in Figure 1."""
    n = 600_000
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    program = PROGRAMS["example1"]
    io = {}
    for name in ("strawman", "matnamed", "riotdb"):
        engine = ALL_ENGINES[name](memory_bytes=4 * 1024 * 1024)
        interp = Interpreter(engine, seed=99)
        interp.env["x"] = engine.make_vector(x)
        interp.env["y"] = engine.make_vector(y)
        engine.reset_stats()
        interp.run(program)
        io[name] = engine.io_stats().total
    assert io["strawman"] > io["matnamed"] > io["riotdb"]


def test_deterministic_across_runs(rng):
    x = rng.standard_normal(5000)
    y = rng.standard_normal(5000)
    first = _run("riotdb", PROGRAMS["example1"], x, y)
    second = _run("riotdb", PROGRAMS["example1"], x, y)
    assert first == second
