"""Tests for the S4-style generic dispatch mechanism."""

import pytest

from repro.rlang import DispatchError, Generics


class Animal:
    pass


class Dog(Animal):
    pass


class Cat(Animal):
    pass


class TestDispatch:
    def test_exact_match(self):
        g = Generics()
        g.set_method("speak", (Dog,), lambda d: "woof")
        assert g.dispatch("speak", Dog()) == "woof"

    def test_no_method_raises(self):
        g = Generics()
        with pytest.raises(DispatchError):
            g.dispatch("speak", Cat())

    def test_wildcard_fallback(self):
        g = Generics()
        g.set_method("speak", (object,), lambda a: "???")
        assert g.dispatch("speak", Cat()) == "???"

    def test_exact_beats_wildcard(self):
        g = Generics()
        g.set_method("speak", (object,), lambda a: "???")
        g.set_method("speak", (Dog,), lambda d: "woof")
        assert g.dispatch("speak", Dog()) == "woof"
        assert g.dispatch("speak", Cat()) == "???"

    def test_superclass_match(self):
        g = Generics()
        g.set_method("speak", (Animal,), lambda a: "animal")
        assert g.dispatch("speak", Dog()) == "animal"

    def test_subclass_beats_superclass(self):
        g = Generics()
        g.set_method("speak", (Animal,), lambda a: "animal")
        g.set_method("speak", (Dog,), lambda a: "woof")
        assert g.dispatch("speak", Dog()) == "woof"
        assert g.dispatch("speak", Cat()) == "animal"

    def test_binary_signatures(self):
        g = Generics()
        g.set_method("+", (Dog, Dog), lambda a, b: "dogs")
        g.set_method("+", (Dog, object), lambda a, b: "dog+any")
        assert g.dispatch("+", Dog(), Dog()) == "dogs"
        assert g.dispatch("+", Dog(), Cat()) == "dog+any"

    def test_most_exact_binary_wins(self):
        g = Generics()
        g.set_method("+", (object, Cat), lambda a, b: "any+cat")
        g.set_method("+", (Dog, object), lambda a, b: "dog+any")
        g.set_method("+", (Dog, Cat), lambda a, b: "dog+cat")
        assert g.dispatch("+", Dog(), Cat()) == "dog+cat"

    def test_lookup_returns_none_when_missing(self):
        g = Generics()
        assert g.lookup("speak", (Dog,)) is None

    def test_has_method(self):
        g = Generics()
        g.set_method("speak", (Dog,), lambda d: "woof")
        assert g.has_method("speak", (Dog,))
        assert not g.has_method("speak", (Cat,))

    def test_kwargs_forwarded(self):
        g = Generics()
        g.set_method("greet", (Dog,),
                     lambda d, loud=False: "WOOF" if loud else "woof")
        assert g.dispatch("greet", Dog(), loud=True) == "WOOF"

    def test_bulk_registration(self):
        g = Generics()
        g.set_methods({
            ("speak", (Dog,)): lambda d: "woof",
            ("speak", (Cat,)): lambda c: "meow",
        })
        assert g.dispatch("speak", Cat()) == "meow"


class TestPaperScenario:
    """The paper's §4 dbvector registration pattern, end to end."""

    def test_transparent_override(self):
        class vector:  # built-in type
            def __init__(self, values):
                self.values = values

        class dbvector:  # RIOT-DB type
            def __init__(self, table):
                self.table = table

        g = Generics()
        g.set_method("+", (vector, vector),
                     lambda a, b: "in-memory add")
        g.set_method("+", (dbvector, dbvector),
                     lambda a, b: "SQL view add")
        # "Users do not need to know whether an object they are dealing
        # with has a RIOT-DB type or a built-in type."
        assert g.dispatch("+", vector([1]), vector([2])) == \
            "in-memory add"
        assert g.dispatch("+", dbvector("E1"), dbvector("E2")) == \
            "SQL view add"
