"""Tests for the R-subset tokenizer."""

import pytest

from repro.rlang import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src) if t.kind != "EOF"]


class TestBasics:
    def test_numbers(self):
        toks = tokenize("1 2.5 1e3 2.5e-2 .5")
        nums = [t.text for t in toks if t.kind == "NUM"]
        assert nums == ["1", "2.5", "1e3", "2.5e-2", ".5"]

    def test_r_identifiers_with_dots(self):
        toks = tokenize("my.var x_1 .hidden")
        names = [t.text for t in toks if t.kind == "NAME"]
        assert names == ["my.var", "x_1", ".hidden"]

    def test_keywords_recognized(self):
        toks = tokenize("if else for while in TRUE FALSE NULL")
        assert all(t.kind == "KEYWORD" for t in toks[:-1])

    def test_strings_with_escapes(self):
        toks = tokenize(r'"a\nb" ' + r"'c\'d'")
        strs = [t.text for t in toks if t.kind == "STR"]
        assert strs == ["a\nb", "c'd"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_comments_stripped(self):
        toks = tokenize("x <- 1 # comment with <- and %*%\ny")
        assert "comment" not in " ".join(t.text for t in toks)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("x @ y")


class TestOperators:
    def test_multichar_operators_greedy(self):
        assert texts("a <- b") == ["a", "<-", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a < -b") == ["a", "<", "-", "b"]

    def test_matmul_operator(self):
        assert "%*%" in texts("A %*% B")

    def test_modulo_operator(self):
        assert "%%" in texts("a %% b")

    def test_all_comparison_ops(self):
        ops = texts("a == b != c < d > e <= f >= g")
        for op in ("==", "!=", "<", ">", "<=", ">="):
            assert op in ops


class TestStructure:
    def test_newlines_tokenized(self):
        assert kinds("a\nb").count("NEWLINE") == 1

    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\nc")
        names = [t for t in toks if t.kind == "NAME"]
        assert [t.line for t in names] == [1, 2, 3]

    def test_ends_with_eof(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("x")[-1].kind == "EOF"
