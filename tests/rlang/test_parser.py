"""Tests for the R-subset parser: precedence, statements, subscripts."""

import pytest

from repro.rlang import ParseError, parse
from repro.rlang.rast import (Assign, BinOp, Block, Call, For, If, Index,
                              IndexAssign, Missing, UnaryOp, While)


def stmt(src):
    program = parse(src)
    assert len(program.statements) == 1
    return program.statements[0]


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        node = stmt("a + b * c")
        assert isinstance(node, BinOp) and node.op == "+"
        assert isinstance(node.right, BinOp) and node.right.op == "*"

    def test_power_right_associative(self):
        node = stmt("2 ^ 3 ^ 2")
        assert node.op == "^"
        assert isinstance(node.right, BinOp) and node.right.op == "^"

    def test_range_binds_tighter_than_add(self):
        # R: 1:10 - 5 is (1:10) - 5 ... wait, no: ':' binds TIGHTER than
        # binary minus, so 1:n-1 is (1:n)-1.  Verify our parser agrees.
        node = stmt("1:10 - 5")
        assert node.op == "-"
        assert isinstance(node.left, BinOp) and node.left.op == ":"

    def test_unary_minus_and_power(self):
        # In R, -2^2 is -(2^2) = -4.
        node = stmt("-2^2")
        assert isinstance(node, UnaryOp) and node.op == "-"
        assert isinstance(node.operand, BinOp) and node.operand.op == "^"

    def test_matmul_tighter_than_mul(self):
        node = stmt("a * b %*% c")
        assert node.op == "*"
        assert isinstance(node.right, BinOp) and node.right.op == "%*%"

    def test_comparison_below_arithmetic(self):
        node = stmt("a + b > c * d")
        assert node.op == ">"

    def test_and_below_comparison(self):
        node = stmt("a > b & c < d")
        assert node.op == "&"

    def test_or_below_and(self):
        node = stmt("a & b | c")
        assert node.op == "|"

    def test_parentheses_override(self):
        node = stmt("(a + b) * c")
        assert node.op == "*"
        assert isinstance(node.left, BinOp) and node.left.op == "+"


class TestAssignment:
    def test_arrow_assign(self):
        node = stmt("x <- 1 + 2")
        assert isinstance(node, Assign) and node.target == "x"

    def test_equals_assign(self):
        node = stmt("x = 5")
        assert isinstance(node, Assign)

    def test_chained_assign(self):
        node = stmt("x <- y <- 1")
        assert isinstance(node, Assign)
        assert isinstance(node.value, Assign)

    def test_index_assign(self):
        node = stmt("b[b > 100] <- 100")
        assert isinstance(node, IndexAssign)
        assert node.target == "b"
        assert isinstance(node.indices[0], BinOp)

    def test_matrix_index_assign(self):
        node = stmt("T[i, j] <- 0")
        assert isinstance(node, IndexAssign)
        assert len(node.indices) == 2

    def test_invalid_target(self):
        with pytest.raises(ParseError):
            parse("f(x) <- 1")


class TestSubscripts:
    def test_simple_index(self):
        node = stmt("d[s]")
        assert isinstance(node, Index)

    def test_matrix_index_with_missing(self):
        node = stmt("m[i, ]")
        assert isinstance(node.indices[1], Missing)
        node2 = stmt("m[, j]")
        assert isinstance(node2.indices[0], Missing)

    def test_chained_index(self):
        node = stmt("x[a][b]")
        assert isinstance(node, Index)
        assert isinstance(node.obj, Index)

    def test_index_of_call(self):
        node = stmt("head(x)[1]")
        assert isinstance(node, Index)
        assert isinstance(node.obj, Call)


class TestCalls:
    def test_positional_args(self):
        node = stmt("sample(length(x), 100)")
        assert isinstance(node, Call) and node.func == "sample"
        assert len(node.args) == 2
        assert isinstance(node.args[0], Call)

    def test_named_args(self):
        node = stmt("rnorm(10, sd=2)")
        assert list(node.kwargs) == ["sd"]

    def test_named_arg_not_confused_with_comparison(self):
        node = stmt("f(x == 1)")
        assert not node.kwargs
        assert isinstance(node.args[0], BinOp)

    def test_empty_args(self):
        node = stmt("f()")
        assert node.args == []

    def test_only_named_functions_callable(self):
        with pytest.raises(ParseError):
            parse("f(x)(y)")


class TestStatements:
    def test_semicolon_separated(self):
        program = parse("a <- 1; b <- 2; c <- 3")
        assert len(program.statements) == 3

    def test_paper_example1_parses(self):
        program = parse("""
        d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
        s <- sample(length(x),100) # draw 100 samples from 1:n
        z <- d[s] # extract elements of d whose indices are in s
        print(z)
        """)
        assert len(program.statements) == 4

    def test_paper_section5_fragment_parses(self):
        program = parse("b <- a^2; b[b>100] <- 100; print(b[1:10])")
        assert len(program.statements) == 3
        assert isinstance(program.statements[1], IndexAssign)

    def test_paper_matmul_pseudocode_parses(self):
        program = parse("""
        for (j in 1:n3)
          for (i in 1:n1) {
            T[i,j] <- 0
            for (k in 1:n2)
              T[i,j] <- T[i,j] + A[i,k]*B[k,j]
          }
        """)
        assert isinstance(program.statements[0], For)

    def test_if_else(self):
        node = stmt("if (x > 0) y <- 1 else y <- 2")
        assert isinstance(node, If)
        assert node.otherwise is not None

    def test_if_without_else(self):
        node = stmt("if (x > 0) y <- 1")
        assert isinstance(node, If) and node.otherwise is None

    def test_while_loop(self):
        node = stmt("while (x < 10) x <- x + 1")
        assert isinstance(node, While)

    def test_block_value(self):
        node = stmt("{ a <- 1\n b <- 2 }")
        assert isinstance(node, Block)
        assert len(node.statements) == 2

    def test_multiline_expression_in_parens(self):
        program = parse("x <- (1 +\n 2)")
        assert len(program.statements) == 1

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse("x <- 1\ny <- )")
