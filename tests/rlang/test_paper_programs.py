"""The paper's literal code listings, executed end to end."""

import numpy as np
import pytest

from repro.rlang import Interpreter, NumpyEngine


@pytest.fixture
def interp():
    return Interpreter(NumpyEngine(), seed=20090104)


class TestExample1Listing:
    """§3, Example 1 — the exact program text from the paper."""

    PROGRAM = """
    d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
    s <- sample(length(x),100) # draw 100 samples from 1:n
    z <- d[s] # extract elements of d whose indices are in s
    """

    def test_runs_verbatim(self, interp, rng):
        n = 5000
        x, y = rng.uniform(0, 10, n), rng.uniform(0, 10, n)
        interp.env.update({
            "x": interp.engine.make_vector(x),
            "y": interp.engine.make_vector(y),
        })
        interp.run("xs <- 0; ys <- 0; xe <- 10; ye <- 10")
        interp.run(self.PROGRAM)
        d = (np.sqrt(x ** 2 + y ** 2)
             + np.sqrt((x - 10) ** 2 + (y - 10) ** 2))
        s = interp.env["s"].data.astype(int)
        assert len(s) == 100
        assert np.allclose(interp.env["z"].data, d[s - 1])


class TestExample2Listing:
    """§3, Example 2 — R's triple-loop matrix multiply, verbatim."""

    PROGRAM = """
    for (j in 1:n3)
      for (i in 1:n1) {
        T[i,j] <- 0
        for (k in 1:n2)
          T[i,j] <- T[i,j] + A[i,k]*B[k,j]
      }
    """

    def test_triple_loop_matches_operator(self, interp, rng):
        n1, n2, n3 = 4, 5, 3
        a = rng.standard_normal((n1, n2))
        b = rng.standard_normal((n2, n3))
        interp.env.update({
            "A": interp.engine.make_matrix(a),
            "B": interp.engine.make_matrix(b),
            "T": interp.engine.make_matrix(np.zeros((n1, n3))),
        })
        interp.run(f"n1 <- {n1}; n2 <- {n2}; n3 <- {n3}")
        interp.run(self.PROGRAM)
        assert np.allclose(interp.env["T"].data, a @ b)
        # And the high-level operator agrees with the loops.
        interp.run("T2 <- A %*% B")
        assert np.allclose(interp.env["T2"].data,
                           interp.env["T"].data)


class TestSection5Listing:
    """§5's deferred-modification fragment, verbatim."""

    PROGRAM = "b <- a^2; b[b>100] <- 100; print(b[1:10])"

    def test_runs_verbatim(self, interp, rng):
        a = rng.uniform(0, 20, 1000)
        interp.env["a"] = interp.engine.make_vector(a)
        interp.run(self.PROGRAM)
        expect = np.minimum(a ** 2, 100)[:10]
        shown = [float(tok) for tok in
                 interp.output[0].removeprefix("[1] ").split()]
        assert np.allclose(shown, np.round(expect, 4), atol=1e-3)


class TestAppendixABlockedMultiply:
    """The Appendix-A blocked schedule written as an R program."""

    PROGRAM = """
    for (i in 1:(n1/p))
      for (j in 1:(n3/p)) {
        ilo <- i*p-p+1
        jlo <- j*p-p+1
        Tsub <- matrix(0, p, p)
        for (k in 1:(n2/p)) {
          klo <- k*p-p+1
          Asub <- A[ilo:(i*p), klo:(k*p)]
          Bsub <- B[klo:(k*p), jlo:(j*p)]
          Tsub <- Tsub + Asub %*% Bsub
        }
        T[ilo:(i*p), jlo:(j*p)] <- Tsub
      }
    """

    def test_blocked_equals_direct(self, interp, rng):
        n1 = n2 = n3 = 8
        p = 4
        a = rng.standard_normal((n1, n2))
        b = rng.standard_normal((n2, n3))
        interp.env.update({
            "A": interp.engine.make_matrix(a),
            "B": interp.engine.make_matrix(b),
            "T": interp.engine.make_matrix(np.zeros((n1, n3))),
        })
        interp.run(f"n1 <- {n1}; n2 <- {n2}; n3 <- {n3}; p <- {p}")
        interp.run(self.PROGRAM)
        assert np.allclose(interp.env["T"].data, a @ b)
