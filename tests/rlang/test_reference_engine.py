"""Property tests: the reference engine must match numpy semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlang import Interpreter, NumpyEngine

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


def fresh():
    return Interpreter(NumpyEngine(), seed=3)


@given(st.lists(finite, min_size=1, max_size=50),
       st.lists(finite, min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_elementwise_add_matches_numpy(xs, ys):
    n = min(len(xs), len(ys))
    xs, ys = xs[:n], ys[:n]
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(np.asarray(xs))
    interp.env["y"] = interp.engine.make_vector(np.asarray(ys))
    interp.run("z <- x + y")
    assert np.allclose(interp.env["z"].data,
                       np.asarray(xs) + np.asarray(ys))


@given(st.lists(finite, min_size=1, max_size=50), finite)
@settings(max_examples=50, deadline=None)
def test_scalar_broadcast_matches_numpy(xs, c):
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(np.asarray(xs))
    interp.env["c"] = __import__(
        "repro.rlang.values", fromlist=["RScalar"]).RScalar(c)
    interp.run("z <- x * c - c")
    assert np.allclose(interp.env["z"].data,
                       np.asarray(xs) * c - c, rtol=1e-9, atol=1e-9)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_sqrt_matches_numpy(xs):
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(np.asarray(xs))
    interp.run("z <- sqrt(x)")
    assert np.allclose(interp.env["z"].data, np.sqrt(xs))


@given(st.lists(finite, min_size=1, max_size=60),
       st.data())
@settings(max_examples=50, deadline=None)
def test_subscript_matches_numpy(xs, data):
    idx = data.draw(st.lists(
        st.integers(1, len(xs)), min_size=1, max_size=20))
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(np.asarray(xs))
    interp.env["s"] = interp.engine.make_vector(
        np.asarray(idx, dtype=np.float64))
    interp.run("z <- x[s]")
    assert np.allclose(interp.env["z"].data,
                       np.asarray(xs)[np.asarray(idx) - 1])


@given(st.lists(finite, min_size=1, max_size=60), finite, finite)
@settings(max_examples=50, deadline=None)
def test_mask_assign_matches_numpy(xs, threshold, replacement)\
        :
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(np.asarray(xs))
    interp.env["t"] = __import__(
        "repro.rlang.values", fromlist=["RScalar"]).RScalar(threshold)
    interp.env["r"] = __import__(
        "repro.rlang.values", fromlist=["RScalar"]).RScalar(replacement)
    interp.run("x[x > t] <- r")
    expect = np.asarray(xs).copy()
    expect[expect > threshold] = replacement
    assert np.allclose(interp.env["x"].data, expect)


@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_matmul_matches_numpy(m, k, n):
    rng = np.random.default_rng(m * 100 + k * 10 + n)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    interp = fresh()
    interp.env["A"] = interp.engine.make_matrix(a)
    interp.env["B"] = interp.engine.make_matrix(b)
    interp.run("C <- A %*% B")
    assert np.allclose(interp.env["C"].data, a @ b)


@given(st.lists(finite, min_size=2, max_size=60))
@settings(max_examples=50, deadline=None)
def test_reductions_match_numpy(xs):
    arr = np.asarray(xs)
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(arr)
    assert interp.run("sum(x)").value == pytest.approx(
        arr.sum(), rel=1e-9, abs=1e-6)
    assert interp.run("min(x)").value == pytest.approx(arr.min())
    assert interp.run("max(x)").value == pytest.approx(arr.max())


@given(st.lists(finite, min_size=1, max_size=40), finite)
@settings(max_examples=40, deadline=None)
def test_comparison_roundtrip(xs, threshold):
    """which(x > t) agrees with numpy's flatnonzero."""
    interp = fresh()
    interp.env["x"] = interp.engine.make_vector(np.asarray(xs))
    interp.env["t"] = __import__(
        "repro.rlang.values", fromlist=["RScalar"]).RScalar(threshold)
    interp.run("w <- which(x > t)")
    expect = np.flatnonzero(np.asarray(xs) > threshold) + 1
    assert np.allclose(interp.env["w"].data, expect)
