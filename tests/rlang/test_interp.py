"""Tests for the interpreter with the reference (numpy) engine."""

import numpy as np
import pytest

from repro.rlang import Interpreter, NumpyEngine, RError, RScalar


@pytest.fixture
def interp():
    return Interpreter(NumpyEngine(), seed=7)


def run(interp, src):
    return interp.run(src)


class TestScalars:
    def test_arithmetic(self, interp):
        assert run(interp, "1 + 2 * 3").value == 7

    def test_power(self, interp):
        assert run(interp, "2 ^ 10").value == 1024

    def test_integer_division_stays_float(self, interp):
        assert run(interp, "7 / 2").value == 3.5

    def test_modulo(self, interp):
        assert run(interp, "7 %% 3").value == 1

    def test_comparison(self, interp):
        assert run(interp, "3 > 2").value is True

    def test_logical_ops(self, interp):
        assert run(interp, "TRUE & FALSE").value is False
        assert run(interp, "TRUE | FALSE").value is True
        assert run(interp, "!TRUE").value is False

    def test_unary_minus(self, interp):
        assert run(interp, "-5").value == -5


class TestVectors:
    def test_c_and_length(self, interp):
        run(interp, "v <- c(1, 2, 3)")
        assert run(interp, "length(v)").value == 3

    def test_vectorized_arithmetic(self, interp):
        run(interp, "v <- c(1, 2, 3) * 2 + 1")
        assert np.allclose(interp.env["v"].data, [3, 5, 7])

    def test_vector_vector_ops(self, interp):
        run(interp, "v <- c(1, 2) + c(10, 20)")
        assert np.allclose(interp.env["v"].data, [11, 22])

    def test_nonconformable_rejected(self, interp):
        with pytest.raises(RError):
            run(interp, "c(1, 2) + c(1, 2, 3)")

    def test_range(self, interp):
        run(interp, "v <- 1:5")
        assert np.allclose(interp.env["v"].data, [1, 2, 3, 4, 5])

    def test_sqrt(self, interp):
        run(interp, "v <- sqrt(c(4, 9))")
        assert np.allclose(interp.env["v"].data, [2, 3])

    def test_reductions(self, interp):
        run(interp, "v <- 1:10")
        assert run(interp, "sum(v)").value == 55
        assert run(interp, "mean(v)").value == 5.5
        assert run(interp, "min(v)").value == 1
        assert run(interp, "max(v)").value == 10

    def test_indexing(self, interp):
        run(interp, "v <- c(10, 20, 30)")
        assert run(interp, "v[2]").value == 20

    def test_vector_index(self, interp):
        run(interp, "v <- c(10, 20, 30, 40); w <- v[c(1, 3)]")
        assert np.allclose(interp.env["w"].data, [10, 30])

    def test_logical_mask_index(self, interp):
        run(interp, "v <- c(1, 5, 2, 8); w <- v[v > 3]")
        assert np.allclose(interp.env["w"].data, [5, 8])

    def test_which(self, interp):
        run(interp, "w <- which(c(1, 5, 2, 8) > 3)")
        assert np.allclose(interp.env["w"].data, [2, 4])

    def test_out_of_bounds(self, interp):
        with pytest.raises(RError):
            run(interp, "c(1, 2)[5]")

    def test_value_semantics_on_assign(self, interp):
        run(interp, "x <- c(1, 2); y <- x; y[1] <- 99")
        assert interp.env["x"].data[0] == 1
        assert interp.env["y"].data[0] == 99

    def test_mask_assignment(self, interp):
        run(interp, "b <- c(50, 200, 30); b[b > 100] <- 100")
        assert np.allclose(interp.env["b"].data, [50, 100, 30])

    def test_sample_without_replacement(self, interp):
        run(interp, "s <- sample(100, 50)")
        s = interp.env["s"].data
        assert len(np.unique(s)) == 50
        assert s.min() >= 1 and s.max() <= 100

    def test_sample_too_large(self, interp):
        with pytest.raises(RError):
            run(interp, "sample(5, 10)")

    def test_rnorm_runif(self, interp):
        run(interp, "a <- rnorm(1000); b <- runif(1000, 5, 6)")
        assert abs(float(interp.env["a"].data.mean())) < 0.2
        b = interp.env["b"].data
        assert b.min() >= 5 and b.max() <= 6


class TestMatrices:
    def test_matrix_fill_is_column_major(self, interp):
        run(interp, "m <- matrix(1:6, 2, 3)")
        assert np.allclose(interp.env["m"].data,
                           [[1, 3, 5], [2, 4, 6]])

    def test_matrix_scalar_fill(self, interp):
        run(interp, "m <- matrix(7, 2, 2)")
        assert np.allclose(interp.env["m"].data, np.full((2, 2), 7.0))

    def test_dim_nrow_ncol(self, interp):
        run(interp, "m <- matrix(0, 3, 4)")
        assert run(interp, "nrow(m)").value == 3
        assert run(interp, "ncol(m)").value == 4

    def test_matmul(self, interp, rng):
        run(interp, """
        A <- matrix(rnorm(12), 3, 4)
        B <- matrix(rnorm(8), 4, 2)
        C <- A %*% B
        """)
        A = interp.env["A"].data
        B = interp.env["B"].data
        assert np.allclose(interp.env["C"].data, A @ B)

    def test_nonconformable_matmul(self, interp):
        with pytest.raises(RError):
            run(interp, "matrix(0,2,3) %*% matrix(0,2,3)")

    def test_transpose(self, interp):
        run(interp, "m <- t(matrix(1:6, 2, 3))")
        assert interp.env["m"].data.shape == (3, 2)

    def test_element_read_write(self, interp):
        run(interp, "m <- matrix(0, 2, 2); m[1, 2] <- 5")
        assert interp.env["m"].data[0, 1] == 5
        assert run(interp, "m[1, 2]").value == 5

    def test_row_column_extraction(self, interp):
        run(interp, "m <- matrix(1:6, 2, 3); r <- m[1, ]; c <- m[, 2]")
        assert np.allclose(interp.env["r"].data, [1, 3, 5])
        assert np.allclose(interp.env["c"].data, [3, 4])

    def test_crossprod(self, interp):
        run(interp, "A <- matrix(rnorm(12), 4, 3); C <- crossprod(A)")
        A = interp.env["A"].data
        assert np.allclose(interp.env["C"].data, A.T @ A)

    def test_crossprod_two_args(self, interp):
        run(interp, "A <- matrix(rnorm(12), 4, 3)\n"
                    "B <- matrix(rnorm(8), 4, 2)\n"
                    "C <- crossprod(A, B)")
        A, B = interp.env["A"].data, interp.env["B"].data
        assert np.allclose(interp.env["C"].data, A.T @ B)

    def test_tcrossprod(self, interp):
        run(interp, "A <- matrix(rnorm(12), 4, 3); C <- tcrossprod(A)")
        A = interp.env["A"].data
        assert np.allclose(interp.env["C"].data, A @ A.T)


class TestControlFlow:
    def test_if_else(self, interp):
        assert run(interp, "if (1 > 0) 10 else 20").value == 10
        assert run(interp, "if (1 < 0) 10 else 20").value == 20

    def test_for_accumulation(self, interp):
        run(interp, "s <- 0\nfor (i in 1:10) s <- s + i")
        assert interp.env["s"].value == 55

    def test_while_with_break(self, interp):
        run(interp, """
        i <- 0
        while (TRUE) {
          i <- i + 1
          if (i >= 5) break
        }
        """)
        assert interp.env["i"].value == 5

    def test_next_skips(self, interp):
        run(interp, """
        s <- 0
        for (i in 1:10) {
          if (i %% 2 == 0) next
          s <- s + i
        }
        """)
        assert interp.env["s"].value == 25

    def test_undefined_variable(self, interp):
        with pytest.raises(RError, match="not found"):
            run(interp, "zzz + 1")

    def test_unknown_function(self, interp):
        with pytest.raises(RError, match="could not find function"):
            run(interp, "nosuchfn(1)")


class TestOutput:
    def test_print_vector_format(self, interp):
        run(interp, "print(c(1, 2.5, 3))")
        assert interp.output == ["[1] 1 2.5 3"]

    def test_print_truncates_long_vectors(self, interp):
        run(interp, "print(1:100)")
        assert interp.output[0].endswith("...")

    def test_print_scalar(self, interp):
        run(interp, "print(42)")
        assert interp.output == ["42"]

    def test_cat(self, interp):
        run(interp, 'cat("result:", 5)')
        assert interp.output == ["result: 5"]

    def test_stopifnot_passes_and_fails(self, interp):
        run(interp, "stopifnot(1 > 0)")
        with pytest.raises(RError):
            run(interp, "stopifnot(1 < 0)")


class TestAssignmentHook:
    def test_hook_sees_assignments(self):
        engine = NumpyEngine()
        seen = []
        engine.on_assign = lambda name, value, old: \
            seen.append((name, old is not None)) or value
        interp = Interpreter(engine)
        interp.run("x <- 1; x <- 2; y <- 3")
        assert seen == [("x", False), ("x", True), ("y", False)]

    def test_hook_can_replace_value(self):
        engine = NumpyEngine()
        engine.on_assign = lambda name, value, old: RScalar(99)
        interp = Interpreter(engine)
        interp.run("x <- 1")
        assert interp.env["x"].value == 99
