"""Tests for the Plain-R engine: paging behaviour under a memory cap."""

import numpy as np

from repro.engines import PlainREngine
from repro.rlang import Interpreter


def make(memory_mb: float = 64) -> PlainREngine:
    return PlainREngine(memory_bytes=int(memory_mb * 1024 * 1024))


class TestCorrectness:
    def test_matches_reference_semantics(self, rng):
        engine = make()
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(10_000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("z <- sqrt((x - 1)^2) + 2")
        assert np.allclose(interp.env["z"].data,
                           np.sqrt((x - 1) ** 2) + 2)

    def test_value_semantics_preserved(self):
        engine = make()
        interp = Interpreter(engine, seed=5)
        interp.run("x <- c(1, 2, 3); y <- x; y[1] <- 9")
        assert interp.env["x"].data[0] == 1


class TestPaging:
    def test_no_io_when_everything_fits(self, rng):
        engine = make(memory_mb=64)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(10_000))
        engine.reset_stats()
        interp.run("d <- (x - 1)^2 + (x - 2)^2")
        assert engine.io_stats().total == 0

    def test_thrashing_when_working_set_exceeds_cap(self, rng):
        """Example 1's line (1) keeps ~5 vectors live; cap fits ~2."""
        n = 200_000                      # 1.6 MB per vector
        engine = make(memory_mb=3.2)     # ~2 vectors
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(n))
        interp.env["y"] = engine.make_vector(rng.standard_normal(n))
        engine.reset_stats()
        interp.run(
            "d <- sqrt((x-1)^2+(y-1)^2) + sqrt((x-9)^2+(y-9)^2)")
        io = engine.io_stats()
        vector_pages = n * 8 // 8192
        # Swap traffic must exceed several full-vector sweeps.
        assert io.total > 3 * vector_pages

    def test_io_grows_superlinearly_past_cap(self, rng):
        """Doubling n under a fixed cap much more than doubles swap I/O
        once the working set crosses the cap (Figure 1's Plain-R curve)."""
        cap_mb = 3.2
        totals = {}
        for n in (100_000, 400_000):
            engine = make(memory_mb=cap_mb)
            interp = Interpreter(engine, seed=5)
            interp.env["x"] = engine.make_vector(
                rng.standard_normal(n))
            interp.env["y"] = engine.make_vector(
                rng.standard_normal(n))
            engine.reset_stats()
            interp.run(
                "d <- sqrt((x-1)^2+(y-1)^2) + sqrt((x-9)^2+(y-9)^2)")
            totals[n] = engine.io_stats().total
        assert totals[400_000] > 8 * max(totals[100_000], 1)

    def test_gc_frees_intermediates(self, rng):
        """Peak live memory stays bounded by a few vectors, not twelve."""
        n = 50_000
        engine = make(memory_mb=64)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(n))
        interp.env["y"] = engine.make_vector(rng.standard_normal(n))
        base = engine.heap.live_bytes
        interp.run(
            "d <- sqrt((x-1)^2+(y-1)^2) + sqrt((x-9)^2+(y-9)^2)")
        vector_bytes = n * 8
        # d plus inputs stay live; peak must be well under 12 vectors.
        assert engine.heap.peak_live_bytes - base <= 7 * vector_bytes
        live_after = engine.heap.live_bytes - base
        assert live_after <= 1.1 * vector_bytes  # just d

    def test_sim_time_reflects_io(self, rng):
        fast = make(memory_mb=64)
        slow = make(memory_mb=3.2)
        n = 200_000
        for engine in (fast, slow):
            interp = Interpreter(engine, seed=5)
            interp.env["x"] = engine.make_vector(
                rng.standard_normal(n))
            interp.env["y"] = engine.make_vector(
                rng.standard_normal(n))
            engine.reset_stats()
            interp.run("d <- (x-1)^2 + (y-1)^2")
        assert slow.sim_seconds() > fast.sim_seconds()
