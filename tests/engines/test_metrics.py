"""Tests for engine metrics and the Figure-1 orderings at small scale."""

import pytest

from repro.engines import ALL_ENGINES, make_engine
from repro.workloads import run_example1

CAP = 4 * 1024 * 1024  # 4 MB cap; scale n so ratios match Figure 1


class TestRunResult:
    def test_fields_populated(self):
        engine = make_engine("riotdb", memory_bytes=CAP)
        result = run_example1(engine, 50_000)
        assert result.engine == "RIOT-DB"
        assert result.output
        assert result.wall_seconds > 0
        assert result.io_mb >= 0
        assert "z" in result.env

    def test_make_engine_unknown(self):
        with pytest.raises(ValueError):
            make_engine("mysql")

    def test_reset_stats_isolates_runs(self):
        engine = make_engine("strawman", memory_bytes=CAP)
        run_example1(engine, 50_000)
        engine.reset_stats()
        assert engine.io_stats().total == 0


class TestFigure1ShapeSmallScale:
    """The Figure-1 orderings, at a size every CI run can afford."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name in ("plain", "strawman", "matnamed", "riotdb",
                     "riotng"):
            engine = ALL_ENGINES[name](memory_bytes=CAP)
            out[name] = run_example1(engine, 2 ** 19)
        return out

    def test_identical_outputs(self, results):
        outputs = {r.output[0] for r in results.values()}
        assert len(outputs) == 1

    def test_strawman_has_worst_io(self, results):
        io = {k: v.io_mb for k, v in results.items()}
        assert io["strawman"] == max(io.values())
        assert io["strawman"] > io["plain"]

    def test_deferral_hierarchy(self, results):
        io = {k: v.io_mb for k, v in results.items()}
        assert io["strawman"] > io["matnamed"] > io["riotdb"]

    def test_riotdb_beats_plain_by_a_lot(self, results):
        assert results["riotdb"].io_mb * 4 < results["plain"].io_mb
        assert (results["riotdb"].sim_seconds * 4
                < results["plain"].sim_seconds)

    def test_nextgen_at_least_matches_riotdb(self, results):
        assert results["riotng"].io_mb <= results["riotdb"].io_mb * 1.2
