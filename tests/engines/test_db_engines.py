"""Tests for the three DB-backed engines: semantics and deferral policy."""

import numpy as np
import pytest

from repro.engines import (DBVec, MatNamedEngine, RiotDBEngine,
                           StrawmanEngine)
from repro.rlang import Interpreter

ENGINES = [StrawmanEngine, MatNamedEngine, RiotDBEngine]


def make(cls, memory_mb: int = 8):
    return cls(memory_bytes=memory_mb * 1024 * 1024)


@pytest.mark.parametrize("cls", ENGINES)
class TestSemantics:
    def test_elementwise_pipeline(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(5000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("z <- sqrt((x - 1)^2) * 2 + 1; print(z)")
        vals = engine.vector_values(interp.env["z"])
        assert np.allclose(vals, np.sqrt((x - 1) ** 2) * 2 + 1)

    def test_vector_vector_ops(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(3000)
        y = rng.standard_normal(3000)
        interp.env["x"] = engine.make_vector(x)
        interp.env["y"] = engine.make_vector(y)
        interp.run("z <- x * y - x / 2")
        assert np.allclose(engine.vector_values(interp.env["z"]),
                           x * y - x / 2)

    def test_subscript_by_sample(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(10_000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("s <- sample(length(x), 50); z <- x[s]")
        s = engine.vector_values(interp.env["s"]).astype(int)
        z = engine.vector_values(interp.env["z"])
        assert np.allclose(z, x[s - 1])

    def test_scalar_subscript(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(100)
        interp.env["x"] = engine.make_vector(x)
        got = interp.run("x[42]")
        assert got.value == pytest.approx(x[41])

    def test_mask_assignment_case_when(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        a = rng.uniform(0, 20, 2000)
        interp.env["a"] = engine.make_vector(a)
        interp.run("b <- a^2; b[b > 100] <- 100")
        got = engine.vector_values(interp.env["b"])
        assert np.allclose(got, np.minimum(a ** 2, 100))

    def test_positional_scatter_assignment(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(1000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("y <- x + 0; y[c(5, 10)] <- 0")
        got = engine.vector_values(interp.env["y"])
        expect = x.copy()
        expect[[4, 9]] = 0
        assert np.allclose(got, expect)
        # value semantics: x unchanged
        assert np.allclose(engine.vector_values(interp.env["x"]), x)

    def test_reductions(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(5000)
        interp.env["x"] = engine.make_vector(x)
        assert interp.run("sum(x)").value == pytest.approx(x.sum())
        assert interp.run("mean(x)").value == pytest.approx(x.mean())
        assert interp.run("max(x)").value == pytest.approx(x.max())

    def test_logical_mask_select(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(2000)
        interp.env["x"] = engine.make_vector(x)
        interp.run("pos <- x[x > 0]")
        got = engine.vector_values(interp.env["pos"])
        assert np.allclose(got, x[x > 0])

    def test_which(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(500)
        interp.env["x"] = engine.make_vector(x)
        interp.run("w <- which(x > 1)")
        got = engine.vector_values(interp.env["w"])
        assert np.allclose(got, np.flatnonzero(x > 1) + 1)

    def test_matmul(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 5))
        interp.env["A"] = engine.make_matrix(a)
        interp.env["B"] = engine.make_matrix(b)
        interp.run("C <- A %*% B")
        assert np.allclose(engine.matrix_values(interp.env["C"]), a @ b)

    def test_matmul_chain(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 7))
        c = rng.standard_normal((7, 3))
        interp.env["A"] = engine.make_matrix(a)
        interp.env["B"] = engine.make_matrix(b)
        interp.env["C"] = engine.make_matrix(c)
        interp.run("T <- A %*% B %*% C")
        assert np.allclose(engine.matrix_values(interp.env["T"]),
                           a @ b @ c)

    def test_transpose(self, cls, rng):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        a = rng.standard_normal((5, 9))
        interp.env["A"] = engine.make_matrix(a)
        interp.run("B <- t(A)")
        assert np.allclose(engine.matrix_values(interp.env["B"]), a.T)

    def test_reshape_column_major(self, cls):
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        interp.run("m <- matrix(1:6, 2, 3)")
        got = engine.matrix_values(interp.env["m"])
        assert np.allclose(got, [[1, 3, 5], [2, 4, 6]])

    def test_length_is_metadata(self, cls, rng):
        """length() must not touch the database at all."""
        engine = make(cls)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(5000))
        engine.reset_stats()
        engine.db.pool.stats.__init__()
        assert interp.run("length(x)").value == 5000
        assert engine.io_stats().total == 0
        assert engine.db.pool.stats.accesses == 0


class TestDeferralPolicies:
    def test_strawman_materializes_every_op(self, rng):
        engine = make(StrawmanEngine)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(1000))
        tables_before = len(engine.db.catalog.tables)
        interp.run("d <- (x - 1)^2 + 5")
        # Three ops -> three new tables (some may be GC'd already, so
        # check views were never created).
        assert not engine.db.catalog.views

    def test_riotdb_defers_everything(self, rng):
        engine = make(RiotDBEngine)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(1000))
        tables_before = set(engine.db.catalog.tables)
        interp.run("d <- (x - 1)^2 + 5")
        assert isinstance(interp.env["d"], DBVec)
        assert interp.env["d"].kind == "view"
        assert set(engine.db.catalog.tables) == tables_before

    def test_matnamed_materializes_named_only(self, rng):
        engine = make(MatNamedEngine)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(1000))
        interp.run("d <- (x - 1)^2 + 5")
        assert interp.env["d"].kind == "table"

    def test_riotdb_selective_io_advantage(self, rng):
        """Full RIOT-DB reads far less than MatNamed for d[s] (§4.2).

        n is chosen so the table is big enough that 100 index probes win
        over a rescan under the optimizer's cost model — the regime of
        the paper's Figure 1 sizes.
        """
        n = 600_000
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        program = """
        d <- sqrt((x-1)^2+(y-2)^2)
        s <- sample(length(x), 100)
        z <- d[s]
        print(z)
        """
        ios = {}
        outs = {}
        for cls in (MatNamedEngine, RiotDBEngine):
            engine = make(cls, memory_mb=2)
            interp = Interpreter(engine, seed=5)
            interp.env["x"] = engine.make_vector(x)
            interp.env["y"] = engine.make_vector(y)
            engine.reset_stats()
            interp.run(program)
            ios[cls.__name__] = engine.io_stats().total
            outs[cls.__name__] = interp.output[0]
        assert outs["MatNamedEngine"] == outs["RiotDBEngine"]
        assert ios["RiotDBEngine"] * 5 < ios["MatNamedEngine"]

    def test_view_dropped_when_unreferenced(self, rng):
        engine = make(RiotDBEngine)
        interp = Interpreter(engine, seed=5)
        interp.env["x"] = engine.make_vector(rng.standard_normal(100))
        interp.run("d <- x + 1")
        views_with_d = len(engine.db.catalog.views)
        interp.run("d <- 0")  # rebind: the old view becomes garbage
        import gc
        gc.collect()
        assert len(engine.db.catalog.views) < views_with_d

    def test_dependent_views_kept_alive(self, rng):
        """z references d's view; rebinding d must not break z (§4.1 fn 2)."""
        engine = make(RiotDBEngine)
        interp = Interpreter(engine, seed=5)
        x = rng.standard_normal(500)
        interp.env["x"] = engine.make_vector(x)
        interp.run("d <- x * 2; z <- d + 1; d <- 0")
        import gc
        gc.collect()
        got = engine.vector_values(interp.env["z"])
        assert np.allclose(got, x * 2 + 1)
