"""Tests for the virtual-memory pager (the Plain-R thrashing substrate)."""

import pytest

from repro.vm import MemHeap, Pager

PAGE = 8192


def make_pager(pages: int) -> Pager:
    return Pager(memory_bytes=pages * PAGE, page_size=PAGE)


class TestResidency:
    def test_first_touch_costs_no_read(self):
        pager = make_pager(4)
        base = pager.allocate(2)
        pager.touch(base)
        pager.touch(base + 1)
        assert pager.stats.reads == 0
        assert pager.faults == 2

    def test_within_capacity_no_swap(self):
        pager = make_pager(8)
        base = pager.allocate(8)
        for _rep in range(3):
            pager.touch_range(base, 8)
        assert pager.stats.total == 0

    def test_untouched_alloc_is_free(self):
        pager = make_pager(2)
        pager.allocate(1000)
        assert pager.resident_pages == 0

    def test_invalid_page(self):
        pager = make_pager(2)
        with pytest.raises(IndexError):
            pager.touch(0)

    def test_too_small_memory_rejected(self):
        with pytest.raises(ValueError):
            Pager(memory_bytes=10, page_size=PAGE)


class TestEviction:
    def test_clean_eviction_writes_once(self):
        """Evicting a never-swapped page writes it to swap (no prior copy)."""
        pager = make_pager(2)
        base = pager.allocate(3)
        pager.touch(base)
        pager.touch(base + 1)
        pager.touch(base + 2)  # evicts base
        assert pager.stats.writes == 1
        assert pager.stats.reads == 0

    def test_swapin_costs_read(self):
        pager = make_pager(2)
        base = pager.allocate(3)
        pager.touch(base)
        pager.touch(base + 1)
        pager.touch(base + 2)   # evict base
        pager.touch(base)       # swap base back in
        assert pager.stats.reads == 1

    def test_lru_order(self):
        pager = make_pager(2)
        base = pager.allocate(3)
        pager.touch(base)       # LRU: [0]
        pager.touch(base + 1)   # LRU: [0, 1]
        pager.touch(base)       # LRU: [1, 0]
        pager.touch(base + 2)   # evicts 1
        pager.touch(base)       # still resident: no read
        assert pager.stats.reads == 0
        pager.touch(base + 1)   # was evicted: swap-in
        assert pager.stats.reads == 1

    def test_clean_reeviction_free_after_swapout(self):
        """A page swapped out, read back, untouched, evicts without I/O."""
        pager = make_pager(2)
        base = pager.allocate(3)
        pager.touch(base)
        pager.touch(base + 1)
        pager.touch(base + 2)   # base swapped out (write 1)
        pager.touch(base)       # swap-in (read 1), clean copy exists
        pager.touch(base + 2)   # hit? base+2 was evicted when base came in
        writes_before = pager.stats.writes
        # re-evict base (clean, swap copy valid): no write
        pager.touch(base + 1)
        assert pager.stats.writes >= writes_before  # dirty pages may write

    def test_dirty_reeviction_writes(self):
        pager = make_pager(2)
        base = pager.allocate(3)
        pager.touch(base, write=True)
        pager.touch(base + 1)
        pager.touch(base + 2)   # base dirty -> swap write
        assert pager.stats.writes == 1

    def test_thrashing_scan_pattern(self):
        """Cyclic scan over working set > memory faults every touch (LRU)."""
        pager = make_pager(4)
        base = pager.allocate(5)
        for _rep in range(3):
            pager.touch_range(base, 5)
        # After warmup, every touch in the cycle misses under LRU.
        assert pager.faults == 15

    def test_peak_resident_tracked(self):
        pager = make_pager(8)
        base = pager.allocate(5)
        pager.touch_range(base, 5)
        assert pager.peak_resident == 5


class TestFree:
    def test_free_drops_residency_and_swap(self):
        pager = make_pager(2)
        base = pager.allocate(3)
        pager.touch_range(base, 3)
        pager.free(base, 3)
        assert pager.resident_pages == 0

    def test_freed_pages_cost_nothing_later(self):
        pager = make_pager(2)
        a = pager.allocate(2)
        pager.touch_range(a, 2)
        pager.free(a, 2)
        b = pager.allocate(2)
        io_before = pager.stats.total
        pager.touch_range(b, 2)
        assert pager.stats.total == io_before  # zero-fill, no swap


class TestMemArrays:
    def test_alloc_sizes(self):
        import numpy as np
        pager = make_pager(64)
        heap = MemHeap(pager)
        arr = heap.alloc(np.zeros(3000))  # 24000 B -> 3 pages
        assert arr.n_pages == 3

    def test_touch_all_faults_every_page(self):
        import numpy as np
        pager = make_pager(64)
        heap = MemHeap(pager)
        arr = heap.alloc(np.zeros(3000))
        arr.touch_all(write=True)
        assert pager.faults == 3

    def test_touch_pages_of_deduplicates(self):
        import numpy as np
        pager = make_pager(64)
        heap = MemHeap(pager)
        arr = heap.alloc(np.zeros(5000))
        arr.touch_pages_of(np.asarray([0, 1, 2, 1024, 1025]))
        assert pager.faults == 2  # two distinct pages

    def test_use_after_free_raises(self):
        import numpy as np
        pager = make_pager(64)
        heap = MemHeap(pager)
        arr = heap.alloc(np.zeros(100))
        heap.release(arr)
        with pytest.raises(RuntimeError):
            arr.touch_all()

    def test_peak_live_bytes(self):
        import numpy as np
        pager = make_pager(64)
        heap = MemHeap(pager)
        a = heap.alloc(np.zeros(1024))  # 1 page
        b = heap.alloc(np.zeros(1024))
        heap.release(a)
        c = heap.alloc(np.zeros(1024))
        assert heap.peak_live_bytes == 2 * PAGE
        assert heap.live_bytes == 2 * PAGE


class TestBatchedSwapIn:
    def _thrash(self, readahead: int):
        """Fill memory twice over, then re-touch the swapped-out half."""
        pager = Pager(memory_bytes=8 * PAGE, page_size=PAGE,
                      readahead_pages=readahead)
        base = pager.allocate(16)
        pager.touch_range(base, 16, write=True)   # evicts the first half
        pager.reset_stats()
        pager.touch_range(base, 8)                # swap-in of 8 pages
        return pager

    def test_batched_swapin_preserves_read_totals(self):
        plain = self._thrash(0)
        batched = self._thrash(8)
        assert batched.stats.reads == plain.stats.reads
        assert batched.faults == plain.faults

    def test_batched_swapin_coalesces_calls(self):
        plain = self._thrash(0)
        batched = self._thrash(8)
        assert batched.stats.read_calls < plain.stats.read_calls
        assert batched.stats.prefetched == batched.stats.reads

    def test_default_pager_never_batches(self):
        pager = self._thrash(0)
        assert pager.stats.prefetched == 0
        assert pager.stats.coalesced_ios == 0

    def test_invalid_readahead_rejected(self):
        with pytest.raises(ValueError):
            Pager(memory_bytes=8 * PAGE, readahead_pages=-1)
