"""Transpose-free multiplication kernels: flags, crossprod, epilogues.

Covers the operand-flagged dense kernels (``trans_a``/``trans_b`` read
stored tiles and transpose in memory), the symmetric
:func:`crossprod_matmul` schedule, the square-tile memory-budget guard,
the BNLJ footprint hints, and the fused-epilogue callback — against
numpy across non-square shapes, non-divisible tile grids, and both
row/col linearizations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (bnlj_matmul, crossprod_matmul,
                          square_tile_matmul)
from repro.storage import ArrayStore

MEM = 96 * 1024  # scalars


def make_store(block_size=8192, mem=MEM):
    return ArrayStore(memory_bytes=mem * 8, block_size=block_size)


class TestFlaggedSquareTile:
    @pytest.mark.parametrize("trans_a,trans_b", [
        (True, False), (False, True), (True, True)])
    @pytest.mark.parametrize("shape", [(64, 64, 64), (100, 50, 75),
                                       (33, 97, 65), (200, 3, 40)])
    def test_matches_numpy(self, rng, shape, trans_a, trans_b):
        m, l, n = shape
        a_np = rng.standard_normal((l, m) if trans_a else (m, l))
        b_np = rng.standard_normal((n, l) if trans_b else (l, n))
        store = make_store()
        out = square_tile_matmul(
            store, store.matrix_from_numpy(a_np, layout="square"),
            store.matrix_from_numpy(b_np, layout="square"), MEM,
            trans_a=trans_a, trans_b=trans_b)
        ref = (a_np.T if trans_a else a_np) @ (b_np.T if trans_b
                                              else b_np)
        assert np.allclose(out.to_numpy(), ref)

    def test_flag_moves_same_blocks_as_stored_layout(self, rng):
        """The flag is free: flagged reads touch the same number of
        blocks as the unflagged multiply of the pre-transposed copy."""
        a_np = rng.standard_normal((256, 128))
        b_np = rng.standard_normal((256, 96))

        def measure(a_arr, b_arr, **flags):
            store = make_store(mem=24 * 1024)
            a = store.matrix_from_numpy(a_arr, layout="square")
            b = store.matrix_from_numpy(b_arr, layout="square")
            store.pool.clear()
            store.reset_stats()
            out = square_tile_matmul(store, a, b, 24 * 1024, **flags)
            store.flush()
            return store.device.stats.total, out.to_numpy()

        flagged, r1 = measure(a_np, b_np, trans_a=True)
        stored, r2 = measure(np.ascontiguousarray(a_np.T), b_np)
        assert np.allclose(r1, r2)
        assert flagged == stored

    @given(m=st.integers(1, 40), l=st.integers(1, 40),
           n=st.integers(1, 40),
           trans_a=st.booleans(), trans_b=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_flag_property(self, m, l, n, trans_a, trans_b):
        rng = np.random.default_rng(m * 6400 + l * 160 + n * 4
                                    + 2 * trans_a + trans_b)
        a_np = rng.standard_normal((l, m) if trans_a else (m, l))
        b_np = rng.standard_normal((n, l) if trans_b else (l, n))
        store = make_store(block_size=2048)  # 16x16 tiles: ragged grids
        out = square_tile_matmul(
            store, store.matrix_from_numpy(a_np, layout="square"),
            store.matrix_from_numpy(b_np, layout="square"), MEM,
            trans_a=trans_a, trans_b=trans_b)
        ref = (a_np.T if trans_a else a_np) @ (b_np.T if trans_b
                                              else b_np)
        assert np.allclose(out.to_numpy(), ref)


class TestFlaggedBNLJ:
    @pytest.mark.parametrize("trans_a,trans_b", [
        (True, False), (False, True), (True, True)])
    def test_matches_numpy(self, rng, trans_a, trans_b):
        m, l, n = 100, 50, 75
        a_np = rng.standard_normal((l, m) if trans_a else (m, l))
        b_np = rng.standard_normal((n, l) if trans_b else (l, n))
        store = make_store()
        out = bnlj_matmul(
            store,
            store.matrix_from_numpy(a_np,
                                    layout="col" if trans_a else "row"),
            store.matrix_from_numpy(b_np,
                                    layout="row" if trans_b else "col"),
            MEM, trans_a=trans_a, trans_b=trans_b)
        ref = (a_np.T if trans_a else a_np) @ (b_np.T if trans_b
                                              else b_np)
        assert np.allclose(out.to_numpy(), ref)


class TestCrossprod:
    @pytest.mark.parametrize("shape", [(64, 64), (100, 50), (33, 97),
                                       (200, 3), (3, 200), (1, 1)])
    @pytest.mark.parametrize("t_first", [True, False])
    def test_matches_numpy(self, rng, shape, t_first):
        a_np = rng.standard_normal(shape)
        store = make_store()
        out = crossprod_matmul(
            store, store.matrix_from_numpy(a_np, layout="square"),
            MEM, t_first=t_first)
        ref = a_np.T @ a_np if t_first else a_np @ a_np.T
        assert np.allclose(out.to_numpy(), ref)

    @pytest.mark.parametrize("linearization", ["row", "col"])
    def test_linearizations(self, rng, linearization):
        a_np = rng.standard_normal((90, 70))
        store = make_store()
        out = crossprod_matmul(
            store,
            store.matrix_from_numpy(a_np, layout="square",
                                    linearization=linearization),
            MEM)
        assert np.allclose(out.to_numpy(), a_np.T @ a_np)

    @given(m=st.integers(1, 40), k=st.integers(1, 40),
           t_first=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_property(self, m, k, t_first):
        rng = np.random.default_rng(m * 80 + k * 2 + t_first)
        a_np = rng.standard_normal((m, k))
        store = make_store(block_size=2048)
        out = crossprod_matmul(
            store, store.matrix_from_numpy(a_np, layout="square"),
            MEM, t_first=t_first)
        ref = a_np.T @ a_np if t_first else a_np @ a_np.T
        assert np.allclose(out.to_numpy(), ref)

    def test_result_is_exactly_symmetric(self, rng):
        """Mirrored writes make the stored result bitwise symmetric."""
        a_np = rng.standard_normal((120, 80))
        store = make_store(mem=24 * 1024)
        out = crossprod_matmul(
            store, store.matrix_from_numpy(a_np, layout="square"),
            24 * 1024)
        result = out.to_numpy()
        assert np.array_equal(result, result.T)

    def test_fewer_reads_than_general_schedule(self, rng):
        """Symmetry pays: crossprod reads roughly half the operand
        blocks of the flagged general multiply, same result."""
        a_np = rng.standard_normal((512, 256))
        mem = 24 * 1024

        def measure(fn, **kw):
            store = make_store(mem=mem)
            a = store.matrix_from_numpy(a_np, layout="square")
            store.pool.clear()
            store.reset_stats()
            out = fn(store, a, **kw)
            store.flush()
            return store.device.stats, out.to_numpy()

        cp_stats, cp = measure(
            lambda s, a: crossprod_matmul(s, a, mem))
        mm_stats, mm = measure(
            lambda s, a: square_tile_matmul(s, a, a, mem,
                                            trans_a=True))
        assert np.allclose(cp, mm)
        assert cp_stats.reads < 0.7 * mm_stats.reads


class TestBudgetGuard:
    """The square-tile schedule honors its budget: below the
    tile-aligned working set the panel goes *ragged* (sub-tile, extra
    partial-tile I/O, correct results) and only a budget that cannot
    hold 3 scalars is refused (mirrors ``TestRaggedPanelBudget``)."""

    def test_square_tile_goes_ragged_below_three_tiles(self, rng):
        store = make_store()  # block 8192 -> 32 x 32 tiles
        a_np = rng.standard_normal((64, 64))
        b_np = rng.standard_normal((64, 64))
        a = store.matrix_from_numpy(a_np)
        b = store.matrix_from_numpy(b_np)
        out = square_tile_matmul(store, a, b, 3 * 32 * 32 - 1)
        assert np.allclose(out.to_numpy(), a_np @ b_np)

    def test_square_tile_accepts_exact_minimum(self, rng):
        store = make_store()
        a_np = rng.standard_normal((64, 48))
        b_np = rng.standard_normal((48, 64))
        a = store.matrix_from_numpy(a_np)
        b = store.matrix_from_numpy(b_np)
        out = square_tile_matmul(store, a, b, 3 * 32 * 32)
        assert np.allclose(out.to_numpy(), a_np @ b_np)

    def test_crossprod_goes_ragged_below_three_tiles(self, rng):
        store = make_store()
        a_np = rng.standard_normal((64, 64))
        a = store.matrix_from_numpy(a_np)
        out = crossprod_matmul(store, a, 100)
        assert np.allclose(out.to_numpy(), a_np.T @ a_np)

    def test_crossprod_raises_below_three_scalars(self, rng):
        store = make_store()
        a = store.matrix_from_numpy(rng.standard_normal((8, 8)))
        with pytest.raises(ValueError, match="at least 3 scalars"):
            crossprod_matmul(store, a, 2)


class TestBNLJHints:
    """bnlj announces each A-row chunk and B column-block footprint, so
    cold tile misses coalesce into few device calls — while moving
    exactly the same number of blocks as the unhinted run (the dense
    streaming accounting contract)."""

    def _measure(self, rng, scheduler: bool):
        a_np = np.arange(96 * 128, dtype=float).reshape(96, 128)
        b_np = np.arange(128 * 64, dtype=float).reshape(128, 64)
        store = make_store(mem=24 * 1024)
        store.pool.scheduler.enabled = scheduler
        a = store.matrix_from_numpy(a_np, layout="row")
        b = store.matrix_from_numpy(b_np, layout="col")
        store.pool.clear()
        store.reset_stats()
        out = bnlj_matmul(store, a, b, 24 * 1024)
        store.flush()
        assert np.allclose(out.to_numpy(), a_np @ b_np)
        return store.device.stats.snapshot()

    def test_read_calls_collapse_under_hints(self, rng):
        hinted = self._measure(rng, scheduler=True)
        unhinted = self._measure(rng, scheduler=False)
        assert hinted.total == unhinted.total  # blocks never change
        assert unhinted.read_calls == unhinted.reads
        assert hinted.read_calls < unhinted.read_calls / 2

    def test_shared_operand_drift_stays_bounded(self, rng):
        """t(A) %*% A through bnlj shares one stored matrix between
        both loops; cache-reuse timing may drift block totals under
        hints, but only within the documented sparse-style bound."""
        a_np = rng.standard_normal((512, 96))

        def measure(scheduler):
            store = make_store(mem=24 * 1024)
            store.pool.scheduler.enabled = scheduler
            a = store.matrix_from_numpy(a_np, layout="square")
            store.pool.clear()
            store.reset_stats()
            out = bnlj_matmul(store, a, a, 24 * 1024, trans_a=True)
            store.flush()
            assert np.allclose(out.to_numpy(), a_np.T @ a_np)
            return store.device.stats.total

        hinted = measure(True)
        unhinted = measure(False)
        assert abs(hinted - unhinted) <= 0.1 * unhinted


class TestEpilogue:
    def test_square_tile_epilogue(self, rng):
        """The epilogue sees true output coordinates on every panel."""
        a_np = rng.standard_normal((100, 60))
        b_np = rng.standard_normal((60, 80))
        c_np = rng.standard_normal((100, 80))
        # 4-block floor for the pool; the kernel's own budget of
        # 3*32*32 scalars still forces 32-wide panels.
        store = make_store(mem=4 * 32 * 32)
        c = store.matrix_from_numpy(c_np)

        def epilogue(r0, c0, block):
            return 2.0 * block + c.read_submatrix(
                r0, r0 + block.shape[0], c0, c0 + block.shape[1])

        out = square_tile_matmul(
            store, store.matrix_from_numpy(a_np),
            store.matrix_from_numpy(b_np), 3 * 32 * 32,
            epilogue=epilogue)
        assert np.allclose(out.to_numpy(), 2.0 * (a_np @ b_np) + c_np)

    def test_crossprod_epilogue_mirrors_coordinates(self, rng):
        """The mirror block gets the *mirrored* coordinates, so fused
        non-symmetric epilogues stay correct."""
        a_np = rng.standard_normal((64, 60))
        c_np = rng.standard_normal((60, 60))
        # 4-block floor for the pool; the kernel's own budget of
        # 3*32*32 scalars still forces 32-wide panels.
        store = make_store(mem=4 * 32 * 32)
        c = store.matrix_from_numpy(c_np)

        def epilogue(r0, c0, block):
            r1, c1 = r0 + block.shape[0], c0 + block.shape[1]
            return block + c.read_submatrix(r0, r1, c0, c1)

        out = crossprod_matmul(
            store, store.matrix_from_numpy(a_np), 3 * 32 * 32,
            epilogue=epilogue)
        assert np.allclose(out.to_numpy(), a_np.T @ a_np + c_np)
