"""Measured tile I/O vs the analytic Appendix-A/§3 cost models.

The paper presents Figure 3 as *calculated* I/O.  These tests close the
loop the paper left open: our real out-of-core implementations, run on the
counted tile store, agree with the formulas used for the figure (within the
slack caused by rounding p down to whole tiles and edge effects).
"""

import numpy as np
import pytest

from repro.core.costs import (bnlj_matmul_io, crossprod_io, lu_io,
                              lu_panel_width, matmul_epilogue_io,
                              matmul_io_lower_bound, solve_io,
                              square_tile_matmul_io,
                              transposed_matmul_io)
from repro.linalg import (bnlj_matmul, crossprod_matmul, lu_decompose,
                          lu_solve_factored, square_tile_matmul)
from repro.storage import ArrayStore, StorageConfig

BLOCK_SCALARS = 1024


def measure(algorithm, a_np, b_np, mem, layouts):
    store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
    a = store.matrix_from_numpy(a_np, layout=layouts[0])
    b = store.matrix_from_numpy(b_np, layout=layouts[1])
    store.pool.clear()
    store.reset_stats()
    out = algorithm(store, a, b, mem)
    store.flush()
    assert np.allclose(out.to_numpy(), a_np @ b_np)
    return store.device.stats.total


@pytest.mark.parametrize("dims,mem", [
    ((512, 512, 512), 96 * 1024),
    ((512, 256, 512), 96 * 1024),
    ((768, 512, 256), 192 * 1024),
])
class TestSquareTileAgreement:
    def test_measured_within_model(self, rng, dims, mem):
        m, l, n = dims
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured = measure(square_tile_matmul, a, b, mem,
                           ("square", "square"))
        model = square_tile_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert 0.5 * model <= measured <= 2.0 * model

    def test_measured_respects_lower_bound(self, rng, dims, mem):
        m, l, n = dims
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured = measure(square_tile_matmul, a, b, mem,
                           ("square", "square"))
        lb = matmul_io_lower_bound(m, l, n, mem, BLOCK_SCALARS)
        assert measured >= lb


@pytest.mark.parametrize("dims,mem", [
    ((512, 512, 512), 96 * 1024),
    ((1024, 512, 512), 96 * 1024),
])
class TestBNLJAgreement:
    def test_measured_matches_model(self, rng, dims, mem):
        m, l, n = dims
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured = measure(bnlj_matmul, a, b, mem, ("row", "col"))
        model = bnlj_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert 0.7 * model <= measured <= 1.5 * model


@pytest.mark.parametrize("n,mem", [
    (257, 48 * 1024),
    (384, 48 * 1024),
    (512, 96 * 1024),
])
class TestLUAgreement:
    """Measured pivoted-LU / substitution I/O vs ``lu_io``/``solve_io``."""

    def _factor(self, rng, n, mem):
        a = rng.standard_normal((n, n))
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        mat = store.matrix_from_numpy(a, layout="square")
        store.pool.clear()
        store.reset_stats()
        factors = lu_decompose(store, mat, mem)
        store.flush()
        return store, factors, store.device.stats.total

    def test_lu_measured_within_model(self, rng, n, mem):
        _, _, measured = self._factor(rng, n, mem)
        model = lu_io(n, mem, BLOCK_SCALARS, tile_side=32)
        assert 0.5 * model <= measured <= 2.0 * model

    def test_solve_measured_within_model(self, rng, n, mem):
        store, factors, _ = self._factor(rng, n, mem)
        b = rng.standard_normal(n)
        store.pool.clear()
        store.reset_stats()
        lu_solve_factored(factors, b, mem)
        store.flush()
        measured = store.device.stats.total
        model = solve_io(n, 1, mem, BLOCK_SCALARS, tile_side=32)
        assert 0.5 * model <= measured <= 2.0 * model


class TestLUPanelWidth:
    def test_tile_aligned_and_budgeted(self):
        p = lu_panel_width(512, 48 * 1024, 32)
        assert p % 32 == 0
        assert 512 * p <= 48 * 1024 / 3

    def test_clamped_to_matrix(self):
        assert lu_panel_width(16, 1 << 24, 16) == 16

    def test_floor_is_tile_side(self):
        # Model-side helper never raises; the kernel guards the budget.
        assert lu_panel_width(1024, 100, 32) == 32


@pytest.mark.parametrize("dims,mem", [
    ((2048, 256), 48 * 1024),
    ((512, 512), 96 * 1024),
    ((768, 320), 48 * 1024),
])
class TestCrossprodAgreement:
    """Measured symmetric-kernel I/O vs the ``crossprod_io`` model."""

    def test_measured_within_model(self, rng, dims, mem):
        m, k = dims
        a_np = rng.standard_normal((m, k))
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        a = store.matrix_from_numpy(a_np, layout="square")
        store.pool.clear()
        store.reset_stats()
        out = crossprod_matmul(store, a, mem)
        store.flush()
        assert np.allclose(out.to_numpy(), a_np.T @ a_np)
        measured = store.device.stats.total
        model = crossprod_io(m, k, mem, BLOCK_SCALARS)
        assert 0.5 * model <= measured <= 2.0 * model


@pytest.mark.parametrize("dims,mem", [
    ((512, 512, 512), 96 * 1024),
    ((2048, 256, 256), 48 * 1024),
])
class TestFlaggedMatmulAgreement:
    """A transposed-operand flag costs the same blocks as the stored
    layout: measurement stays within the unflagged Appendix-A model."""

    def test_trans_a_within_model(self, rng, dims, mem):
        l, m, n = dims  # effective product: (m x l) x (l x n)
        a_np = rng.standard_normal((l, m))  # stored un-transposed
        b_np = rng.standard_normal((l, n))
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        a = store.matrix_from_numpy(a_np, layout="square")
        b = store.matrix_from_numpy(b_np, layout="square")
        store.pool.clear()
        store.reset_stats()
        out = square_tile_matmul(store, a, b, mem, trans_a=True)
        store.flush()
        assert np.allclose(out.to_numpy(), a_np.T @ b_np)
        measured = store.device.stats.total
        model = transposed_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert 0.5 * model <= measured <= 2.0 * model


class TestTransposeMaterializeAgreement:
    def test_measured_within_model(self, rng):
        """The explicit-materialization fallback (one read pass + one
        write pass) moves the blocks ``transpose_materialize_io``
        predicts — the cost the operand flags delete."""
        from repro.core import RiotSession
        from repro.core.costs import transpose_materialize_io
        m, n = 512, 256
        session = RiotSession(storage=StorageConfig(
            memory_bytes=48 * 1024 * 8, block_size=8192))
        a_np = rng.standard_normal((m, n))
        a = session.matrix(a_np)
        session.store.pool.clear()
        session.reset_stats()
        out = session.force(a.T)
        session.store.flush()
        assert np.allclose(out.to_numpy(), a_np.T)
        measured = session.io_stats.total
        model = transpose_materialize_io(m, n, BLOCK_SCALARS)
        assert 0.5 * model <= measured <= 2.0 * model


class TestEpilogueAgreement:
    def test_fused_epilogue_within_model(self, rng):
        """Fused ``2 (A B) + C`` moves the blocks the fused
        ``matmul_epilogue_io`` model predicts (one extra input read,
        no product materialization)."""
        m, l, n = 512, 256, 512
        mem = 48 * 1024
        a_np = rng.standard_normal((m, l))
        b_np = rng.standard_normal((l, n))
        c_np = rng.standard_normal((m, n))
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        a = store.matrix_from_numpy(a_np, layout="square")
        b = store.matrix_from_numpy(b_np, layout="square")
        c = store.matrix_from_numpy(c_np, layout="square")
        store.pool.clear()
        store.reset_stats()

        def epilogue(r0, c0, block):
            return 2.0 * block + c.read_submatrix(
                r0, r0 + block.shape[0], c0, c0 + block.shape[1])

        out = square_tile_matmul(store, a, b, mem, epilogue=epilogue,
                                 epilogue_inputs=1)
        store.flush()
        assert np.allclose(out.to_numpy(), 2.0 * (a_np @ b_np) + c_np)
        measured = store.device.stats.total
        model = matmul_epilogue_io(m, l, n, 1, mem, BLOCK_SCALARS,
                                   fused=True)
        assert 0.5 * model <= measured <= 2.0 * model
        # The unfused model pays the product write and re-read on top.
        assert model < matmul_epilogue_io(m, l, n, 1, mem,
                                          BLOCK_SCALARS, fused=False)


class TestPlannedWorkloadAgreement:
    """The planner's *chosen* plan: summed per-operator predictions vs
    measured ``IOStats`` totals on whole workloads (OLS, ridge, the
    sparse chain) — the end-to-end version of the per-kernel checks
    above.  No kernel hints anywhere; the plan is whatever the
    cost-based search picks."""

    MEM = 48 * 1024

    def _run(self, build, mem_scalars=None):
        from repro.core import RiotSession
        s = RiotSession(storage=StorageConfig(
            memory_bytes=(mem_scalars or self.MEM) * 8,
            block_size=8192))
        node = build(s)
        plan = s.plan(node)
        s.store.pool.clear()
        s.reset_stats()
        result = s.force(node)
        s.store.flush()
        return plan, s.io_stats.total, result, s

    def test_ols_plan_predicts_measured_io(self, rng):
        from repro.core import MatMul, Solve, Transpose
        x_np = rng.standard_normal((512, 128))
        y_np = rng.standard_normal((512, 1))

        def build(s):
            X = s.matrix(x_np, name="X")
            y = s.matrix(y_np, name="y")
            return Solve(MatMul(Transpose(X.node), X.node),
                         MatMul(Transpose(X.node), y.node))

        plan, measured, result, _ = self._run(build)
        assert 0.5 * plan.total_predicted <= measured \
            <= 2.0 * plan.total_predicted
        beta = np.linalg.solve(x_np.T @ x_np, x_np.T @ y_np)
        assert np.allclose(result.to_numpy(), beta, atol=1e-8)

    def test_ridge_plan_predicts_measured_io(self, rng):
        """Ridge: the normal matrix X'X + lambda I runs as a fused
        crossprod epilogue; its model (``crossprod_epilogue_io``) must
        track the measured blocks of the whole solve."""
        from repro.core import MatMul, Solve, Transpose
        x_np = rng.standard_normal((512, 128))
        y_np = rng.standard_normal((512, 1))
        lam = 0.1

        def build(s):
            X = s.matrix(x_np, name="X")
            lam_eye = s.matrix(lam * np.eye(128), name="lamI")
            y = s.matrix(y_np, name="y")
            normal = X.crossprod() + lam_eye
            rhs = MatMul(Transpose(X.node), y.node)
            return Solve(normal.node, rhs)

        plan, measured, result, _ = self._run(build)
        from repro.core.plan import FusedEpilogueOp
        assert any(isinstance(op, FusedEpilogueOp)
                   for op in plan.ops())
        assert 0.5 * plan.total_predicted <= measured \
            <= 2.0 * plan.total_predicted
        beta = np.linalg.solve(x_np.T @ x_np + lam * np.eye(128),
                               x_np.T @ y_np)
        assert np.allclose(result.to_numpy(), beta, atol=1e-8)

    def test_sparse_chain_plan_predicts_measured_io(self):
        def build(s):
            A = s.random_sparse_matrix(512, 512, 0.005, seed=1)
            B = s.random_sparse_matrix(512, 512, 0.005, seed=2)
            v = s.matrix(np.random.default_rng(3)
                         .standard_normal((512, 1)))
            return ((A @ B) @ v).node

        plan, measured, result, _ = self._run(build,
                                              mem_scalars=24 * 1024)
        assert 0.5 * plan.total_predicted <= measured \
            <= 2.0 * plan.total_predicted


class TestCrossAlgorithm:
    def test_square_beats_bnlj_when_model_says_so(self, rng):
        """At n large relative to memory, models and measurement agree on
        the winner (the paper's 'for large matrices' claim)."""
        m = l = n = 768
        mem = 48 * 1024
        model_square = square_tile_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        model_bnlj = bnlj_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert model_square < model_bnlj
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured_square = measure(square_tile_matmul, a, b, mem,
                                  ("square", "square"))
        measured_bnlj = measure(bnlj_matmul, a, b, mem, ("row", "col"))
        assert measured_square < measured_bnlj
