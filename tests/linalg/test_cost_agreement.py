"""Measured tile I/O vs the analytic Appendix-A/§3 cost models.

The paper presents Figure 3 as *calculated* I/O.  These tests close the
loop the paper left open: our real out-of-core implementations, run on the
counted tile store, agree with the formulas used for the figure (within the
slack caused by rounding p down to whole tiles and edge effects).
"""

import numpy as np
import pytest

from repro.core.costs import (bnlj_matmul_io, lu_io, lu_panel_width,
                              matmul_io_lower_bound, solve_io,
                              square_tile_matmul_io)
from repro.linalg import (bnlj_matmul, lu_decompose, lu_solve_factored,
                          square_tile_matmul)
from repro.storage import ArrayStore

BLOCK_SCALARS = 1024


def measure(algorithm, a_np, b_np, mem, layouts):
    store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
    a = store.matrix_from_numpy(a_np, layout=layouts[0])
    b = store.matrix_from_numpy(b_np, layout=layouts[1])
    store.pool.clear()
    store.reset_stats()
    out = algorithm(store, a, b, mem)
    store.flush()
    assert np.allclose(out.to_numpy(), a_np @ b_np)
    return store.device.stats.total


@pytest.mark.parametrize("dims,mem", [
    ((512, 512, 512), 96 * 1024),
    ((512, 256, 512), 96 * 1024),
    ((768, 512, 256), 192 * 1024),
])
class TestSquareTileAgreement:
    def test_measured_within_model(self, rng, dims, mem):
        m, l, n = dims
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured = measure(square_tile_matmul, a, b, mem,
                           ("square", "square"))
        model = square_tile_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert 0.5 * model <= measured <= 2.0 * model

    def test_measured_respects_lower_bound(self, rng, dims, mem):
        m, l, n = dims
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured = measure(square_tile_matmul, a, b, mem,
                           ("square", "square"))
        lb = matmul_io_lower_bound(m, l, n, mem, BLOCK_SCALARS)
        assert measured >= lb


@pytest.mark.parametrize("dims,mem", [
    ((512, 512, 512), 96 * 1024),
    ((1024, 512, 512), 96 * 1024),
])
class TestBNLJAgreement:
    def test_measured_matches_model(self, rng, dims, mem):
        m, l, n = dims
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured = measure(bnlj_matmul, a, b, mem, ("row", "col"))
        model = bnlj_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert 0.7 * model <= measured <= 1.5 * model


@pytest.mark.parametrize("n,mem", [
    (257, 48 * 1024),
    (384, 48 * 1024),
    (512, 96 * 1024),
])
class TestLUAgreement:
    """Measured pivoted-LU / substitution I/O vs ``lu_io``/``solve_io``."""

    def _factor(self, rng, n, mem):
        a = rng.standard_normal((n, n))
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        mat = store.matrix_from_numpy(a, layout="square")
        store.pool.clear()
        store.reset_stats()
        factors = lu_decompose(store, mat, mem)
        store.flush()
        return store, factors, store.device.stats.total

    def test_lu_measured_within_model(self, rng, n, mem):
        _, _, measured = self._factor(rng, n, mem)
        model = lu_io(n, mem, BLOCK_SCALARS, tile_side=32)
        assert 0.5 * model <= measured <= 2.0 * model

    def test_solve_measured_within_model(self, rng, n, mem):
        store, factors, _ = self._factor(rng, n, mem)
        b = rng.standard_normal(n)
        store.pool.clear()
        store.reset_stats()
        lu_solve_factored(factors, b, mem)
        store.flush()
        measured = store.device.stats.total
        model = solve_io(n, 1, mem, BLOCK_SCALARS, tile_side=32)
        assert 0.5 * model <= measured <= 2.0 * model


class TestLUPanelWidth:
    def test_tile_aligned_and_budgeted(self):
        p = lu_panel_width(512, 48 * 1024, 32)
        assert p % 32 == 0
        assert 512 * p <= 48 * 1024 / 3

    def test_clamped_to_matrix(self):
        assert lu_panel_width(16, 1 << 24, 16) == 16

    def test_floor_is_tile_side(self):
        # Model-side helper never raises; the kernel guards the budget.
        assert lu_panel_width(1024, 100, 32) == 32


class TestCrossAlgorithm:
    def test_square_beats_bnlj_when_model_says_so(self, rng):
        """At n large relative to memory, models and measurement agree on
        the winner (the paper's 'for large matrices' claim)."""
        m = l = n = 768
        mem = 48 * 1024
        model_square = square_tile_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        model_bnlj = bnlj_matmul_io(m, l, n, mem, BLOCK_SCALARS)
        assert model_square < model_bnlj
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        measured_square = measure(square_tile_matmul, a, b, mem,
                                  ("square", "square"))
        measured_bnlj = measure(bnlj_matmul, a, b, mem, ("row", "col"))
        assert measured_square < measured_bnlj
