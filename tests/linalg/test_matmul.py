"""Tests for the measured out-of-core matrix multiplication algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import in_order
from repro.linalg import (bnlj_matmul, multiply_chain, naive_tile_matmul,
                          square_tile_matmul)
from repro.storage import ArrayStore

MEM = 96 * 1024  # scalars


def make_store():
    return ArrayStore(memory_bytes=MEM * 8, block_size=8192)


class TestCorrectness:
    @pytest.mark.parametrize("shape", [
        (64, 64, 64), (100, 50, 75), (33, 97, 65), (1, 10, 1),
        (200, 3, 200)])
    def test_square_tile(self, rng, shape):
        m, l, n = shape
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        store = make_store()
        out = square_tile_matmul(
            store, store.matrix_from_numpy(a, layout="square"),
            store.matrix_from_numpy(b, layout="square"), MEM)
        assert np.allclose(out.to_numpy(), a @ b)

    @pytest.mark.parametrize("shape", [
        (64, 64, 64), (100, 50, 75), (33, 97, 65)])
    def test_bnlj(self, rng, shape):
        m, l, n = shape
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        store = make_store()
        out = bnlj_matmul(
            store, store.matrix_from_numpy(a, layout="row"),
            store.matrix_from_numpy(b, layout="col"), MEM)
        assert np.allclose(out.to_numpy(), a @ b)

    def test_naive(self, rng):
        a = rng.standard_normal((70, 40))
        b = rng.standard_normal((40, 90))
        store = make_store()
        out = naive_tile_matmul(
            store, store.matrix_from_numpy(a, layout="square"),
            store.matrix_from_numpy(b, layout="square"))
        assert np.allclose(out.to_numpy(), a @ b)

    def test_nonconformable_rejected(self, rng):
        store = make_store()
        a = store.matrix_from_numpy(rng.standard_normal((4, 5)))
        b = store.matrix_from_numpy(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            square_tile_matmul(store, a, b, MEM)

    @given(m=st.integers(1, 40), l=st.integers(1, 40),
           n=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_square_tile_property(self, m, l, n):
        rng = np.random.default_rng(m * 1600 + l * 40 + n)
        a = rng.standard_normal((m, l))
        b = rng.standard_normal((l, n))
        store = make_store()
        out = square_tile_matmul(
            store, store.matrix_from_numpy(a, layout="square"),
            store.matrix_from_numpy(b, layout="square"), MEM)
        assert np.allclose(out.to_numpy(), a @ b)


class TestRaggedPanelBudget:
    """Budgets below the tile-aligned working set go ragged, not boom.

    Regression for the PR 9 gotcha: the hypothesis chain shape
    m=48, k=33, n=63 raised a budget ``ValueError`` from
    ``_square_panel`` whenever the memory budget could not hold
    ``panels`` whole storage tiles.  The kernel now shrinks the panel
    below the tile side (unaligned reads cost extra partial-tile I/O
    but stay inside the budget) and only refuses budgets that cannot
    hold ``panels`` scalars.
    """

    SHAPE = (48, 33, 63)  # the exact failing hypothesis example

    def test_kernel_subtile_budget(self, rng):
        m, k, n = self.SHAPE
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        store = make_store()
        ta = store.matrix_from_numpy(a, layout="square")
        tb = store.matrix_from_numpy(b, layout="square")
        # 2000 scalars < 3 * 32^2: previously a ValueError.
        out = square_tile_matmul(store, ta, tb, 2000)
        assert np.allclose(out.to_numpy(), a @ b)

    def test_kernel_one_scalar_panels(self, rng):
        m, k, n = 6, 5, 4
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        store = make_store()
        out = square_tile_matmul(
            store, store.matrix_from_numpy(a, layout="square"),
            store.matrix_from_numpy(b, layout="square"), 3)
        assert np.allclose(out.to_numpy(), a @ b)

    def test_kernel_budget_below_panels_still_raises(self, rng):
        store = make_store()
        a = store.matrix_from_numpy(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError, match="at least 3 scalars"):
            square_tile_matmul(store, a, a, 2)

    def test_session_chain_48_33_63(self, rng):
        """The fused epilogue chain at the exact hypothesis shape runs
        under a budget one tile short of its 5-panel working set."""
        from repro.core import OptimizerConfig, RiotSession
        from repro.storage import StorageConfig
        m, k, n = self.SHAPE
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        d = rng.standard_normal((m, n))
        s = RiotSession(
            storage=StorageConfig(memory_bytes=4 * 1024 * 8,
                                  block_size=8192),
            config=OptimizerConfig(parallelism=1))
        try:
            got = (s.matrix(a) @ s.matrix(b) + s.matrix(c) * 2.0
                   + s.matrix(d)).values()
        finally:
            s.close()
        assert np.allclose(got, a @ b + c * 2.0 + d)


class TestChain:
    def test_chain_matches_numpy(self, rng):
        dims = [(96, 24), (24, 96), (96, 64)]
        mats_np = [rng.standard_normal(d) for d in dims]
        store = make_store()
        mats = [store.matrix_from_numpy(m, layout="square")
                for m in mats_np]
        out = multiply_chain(store, mats, MEM)
        assert np.allclose(out.to_numpy(),
                           mats_np[0] @ mats_np[1] @ mats_np[2])

    def test_chain_single_matrix(self, rng):
        store = make_store()
        m = store.matrix_from_numpy(rng.standard_normal((10, 10)))
        assert multiply_chain(store, [m], MEM) is m

    def test_chain_in_order_option(self, rng):
        dims = [(48, 16), (16, 48), (48, 32)]
        mats_np = [rng.standard_normal(d) for d in dims]
        store = make_store()
        mats = [store.matrix_from_numpy(m, layout="square")
                for m in mats_np]
        out = multiply_chain(store, mats, MEM, order=in_order(3))
        assert np.allclose(out.to_numpy(),
                           mats_np[0] @ mats_np[1] @ mats_np[2])

    def test_optimal_order_saves_io_on_skewed_chain(self, rng):
        """The Appendix-B claim, measured: DP order uses less I/O."""
        n, s = 384, 8
        a = rng.standard_normal((n, n // s))
        b = rng.standard_normal((n // s, n))
        c = rng.standard_normal((n, n))
        mem = 48 * 1024

        def run(order):
            store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
            mats = [store.matrix_from_numpy(m, layout="square")
                    for m in (a, b, c)]
            store.pool.clear()
            store.reset_stats()
            out = multiply_chain(store, mats, mem, order=order)
            store.flush()
            return store.device.stats.total, out.to_numpy()

        io_inorder, r1 = run(in_order(3))
        io_optimal, r2 = run(None)
        assert np.allclose(r1, r2)
        assert io_optimal < io_inorder

    def test_unknown_algorithm(self, rng):
        store = make_store()
        mats = [store.matrix_from_numpy(rng.standard_normal((8, 8)))
                for _ in range(2)]
        with pytest.raises(ValueError):
            multiply_chain(store, mats, MEM, algorithm="strassen")


class TestMeasuredIO:
    def test_square_cheaper_than_naive_small_pool(self, rng):
        """With a tiny buffer pool the blocked algorithm wins clearly."""
        n = 256
        mem = 24 * 1024  # small memory budget
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))

        def measure(fn):
            store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
            ma = store.matrix_from_numpy(a, layout="square")
            mb = store.matrix_from_numpy(b, layout="square")
            store.pool.clear()
            store.reset_stats()
            if fn is naive_tile_matmul:
                fn(store, ma, mb)
            else:
                fn(store, ma, mb, mem)
            store.flush()
            return store.device.stats.total

        assert measure(square_tile_matmul) < measure(naive_tile_matmul)
