"""The first-class ``solve()`` operator: DAG nodes, rewrite, engines.

Covers the whole stack the operator threads through — ``Solve`` /
``Inverse`` expression nodes, the ``inv(A) %*% B -> solve(A, B)``
rewrite, evaluator dispatch onto the pivoted out-of-core LU, the
``session.solve`` / ``RiotMatrix.inv`` API, and the rlang ``solve()``
builtin running transparently (§4) on both the reference and the
next-generation engine.
"""

import numpy as np
import pytest

from repro.core import (Inverse, MatMul, RiotSession, Rewriter, Solve,
                        walk)
from repro.core.engine import RiotNGEngine
from repro.rlang import Interpreter, NumpyEngine, RError
from repro.storage import StorageConfig


@pytest.fixture
def session():
    return RiotSession(storage=StorageConfig(
        memory_bytes=64 * 8192 * 8, block_size=8192))


def node_types(node):
    return [type(n).__name__ for n in walk(node)]


class TestNodes:
    def test_solve_shape_follows_rhs(self, session, rng):
        a = session.matrix(rng.standard_normal((8, 8)))
        b = session.matrix(rng.standard_normal((8, 3)))
        v = session.vector(rng.standard_normal(8))
        assert Solve(a.node, b.node).shape == (8, 3)
        assert Solve(a.node, v.node).shape == (8,)
        assert Inverse(a.node).shape == (8, 8)

    def test_solve_rejects_bad_shapes(self, session, rng):
        sq = session.matrix(rng.standard_normal((8, 8)))
        rect = session.matrix(rng.standard_normal((8, 5)))
        short = session.vector(rng.standard_normal(5))
        with pytest.raises(ValueError):
            Solve(rect.node, sq.node)
        with pytest.raises(ValueError):
            Solve(sq.node, short.node)
        with pytest.raises(ValueError):
            Inverse(rect.node)


class TestRewrite:
    def test_inv_matmul_becomes_solve(self, session, rng):
        a = session.matrix(rng.standard_normal((16, 16)))
        b = session.matrix(rng.standard_normal((16, 1)))
        plan = a.inv() @ b
        opt = session.optimize(plan.node)
        assert "Solve" in node_types(opt)
        assert "Inverse" not in node_types(opt)
        assert "inv-to-solve" in session.rewriter.applied

    def test_rewrite_fires_inside_chains(self, session, rng):
        """inv(A) %*% B %*% C: the left-deep inner multiply collapses."""
        a = session.matrix(rng.standard_normal((16, 16)))
        b = session.matrix(rng.standard_normal((16, 16)))
        c = session.matrix(rng.standard_normal((16, 2)))
        plan = (a.inv() @ b) @ c
        opt = session.optimize(plan.node)
        assert "Inverse" not in node_types(opt)

    def test_rewrite_can_be_disabled(self, rng):
        rewriter = Rewriter(enable_solve_rewrite=False)
        store_session = RiotSession(
            storage=StorageConfig(memory_bytes=2 << 20))
        a = store_session.matrix(rng.standard_normal((8, 8)))
        b = store_session.matrix(rng.standard_normal((8, 1)))
        opt = rewriter.optimize(MatMul(Inverse(a.node), b.node))
        assert "Inverse" in node_types(opt)

    def test_right_inverse_left_alone(self, session, rng):
        """Only a *left* inverse is rewritten (B %*% inv(A) keeps inv)."""
        a = session.matrix(rng.standard_normal((8, 8)))
        b = session.matrix(rng.standard_normal((8, 8)))
        opt = session.optimize((b @ a.inv()).node)
        assert "Inverse" in node_types(opt)


class TestEvaluation:
    def test_solve_matches_numpy_matrix_rhs(self, session, rng):
        n, k = 96, 3
        a_np = rng.standard_normal((n, n))
        b_np = rng.standard_normal((n, k))
        x = session.solve(session.matrix(a_np), session.matrix(b_np))
        assert np.allclose(x.values(), np.linalg.solve(a_np, b_np),
                           atol=1e-8)

    def test_solve_vector_rhs_returns_vector(self, session, rng):
        n = 80
        a_np = rng.standard_normal((n, n))
        b_np = rng.standard_normal(n)
        x = session.solve(session.matrix(a_np), session.vector(b_np))
        values = x.values()
        assert values.shape == (n,)
        assert np.allclose(values, np.linalg.solve(a_np, b_np),
                           atol=1e-8)

    def test_explicit_inverse_forced(self, session, rng):
        n = 64
        a_np = rng.standard_normal((n, n))
        inv = session.matrix(a_np).inv()
        assert np.allclose(inv.values(), np.linalg.inv(a_np), atol=1e-8)

    def test_rewritten_plan_matches_unoptimized(self, rng):
        """Same answer with and without the inv-to-solve rewrite."""
        n = 96
        a_np = rng.standard_normal((n, n))
        b_np = rng.standard_normal((n, 1))
        results = {}
        for optimize in (True, False):
            s = RiotSession(storage=StorageConfig(
                memory_bytes=64 * 8192 * 8), optimize=optimize)
            plan = s.matrix(a_np).inv() @ s.matrix(b_np)
            results[optimize] = plan.values()
        assert np.allclose(results[True], results[False], atol=1e-8)
        assert np.allclose(results[True].ravel(),
                           np.linalg.solve(a_np, b_np).ravel(),
                           atol=1e-8)

    def test_solve_on_pivot_requiring_system(self, session):
        a_np = np.asarray([[0.0, 2.0], [1.0, 0.0]])
        b_np = np.asarray([4.0, 3.0])
        x = session.solve(session.matrix(a_np), session.vector(b_np))
        assert np.allclose(x.values(), [3.0, 2.0])

    def test_solve_of_sparse_coefficient(self, session, rng):
        """A sparse-stored A is densified, then factored with pivoting."""
        n = 64
        a_np = np.zeros((n, n))
        idx = rng.choice(n * n, size=n * 6, replace=False)
        a_np[idx // n, idx % n] = rng.standard_normal(idx.size)
        a_np += np.eye(n)  # keep it comfortably nonsingular
        rows, cols = np.nonzero(a_np)
        a = session.sparse_matrix(rows, cols, a_np[rows, cols], (n, n))
        b_np = rng.standard_normal(n)
        x = session.solve(a, session.vector(b_np))
        assert np.allclose(x.values(), np.linalg.solve(a_np, b_np),
                           atol=1e-8)

    def test_wide_rhs_solved_in_panels(self, rng):
        """A rewritten ``inv(A) %*% B`` with a *wide* B must respect the
        memory budget: the RHS is substituted one column panel at a
        time, never held in full (n x n) alongside the factor."""
        n = 128
        mem_scalars = 3 * n * 32  # the minimum pivot-panel budget
        s = RiotSession(storage=StorageConfig(
            memory_bytes=mem_scalars * 8, block_size=8192))
        rng_local = np.random.default_rng(9)
        a_np = rng_local.standard_normal((n, n))
        b_np = rng_local.standard_normal((n, n))
        plan = s.matrix(a_np).inv() @ s.matrix(b_np)
        opt = s.optimize(plan.node)
        assert "Solve" in node_types(opt)
        assert np.allclose(plan.values(), np.linalg.solve(a_np, b_np),
                           atol=1e-7)

    def test_matrix_handle_solve_method(self, session, rng):
        n = 48
        a_np = rng.standard_normal((n, n))
        b_np = rng.standard_normal((n, 2))
        x = session.matrix(a_np).solve(session.matrix(b_np))
        assert np.allclose(x.values(), np.linalg.solve(a_np, b_np),
                           atol=1e-8)


SOURCE = """
x <- solve(A, b)
print(x)
"""


class TestRlangBuiltin:
    def test_reference_engine_solve(self, rng):
        interp = Interpreter(NumpyEngine(), seed=7)
        a_np = rng.standard_normal((12, 12))
        b_np = rng.standard_normal((12, 1))
        interp.env["A"] = interp.engine.make_matrix(a_np)
        interp.env["b"] = interp.engine.make_matrix(b_np)
        interp.run(SOURCE)
        assert np.allclose(interp.env["x"].data,
                           np.linalg.solve(a_np, b_np))

    def test_ng_engine_solve_matches_reference(self, rng):
        a_np = rng.standard_normal((40, 40))
        b_np = rng.standard_normal((40, 1))
        outputs = []
        for engine in (NumpyEngine(),
                       RiotNGEngine(memory_bytes=8 * 1024 * 1024)):
            interp = Interpreter(engine, seed=7)
            interp.env["A"] = engine.make_matrix(a_np)
            interp.env["b"] = engine.make_matrix(b_np)
            interp.run(SOURCE)
            outputs.append("\n".join(interp.output))
        assert outputs[0] == outputs[1]

    def test_solve_single_argument_inverts(self, rng):
        interp = Interpreter(NumpyEngine(), seed=7)
        a_np = rng.standard_normal((6, 6))
        interp.env["A"] = interp.engine.make_matrix(a_np)
        interp.run("Ainv <- solve(A)")
        assert np.allclose(interp.env["Ainv"].data, np.linalg.inv(a_np))

    def test_ng_engine_defers_to_solve_node(self, rng):
        engine = RiotNGEngine(memory_bytes=8 * 1024 * 1024)
        interp = Interpreter(engine, seed=7)
        interp.env["A"] = engine.make_matrix(rng.standard_normal((8, 8)))
        interp.env["b"] = engine.make_matrix(rng.standard_normal((8, 1)))
        interp.run("x <- solve(A, b)")
        assert isinstance(interp.env["x"].node, Solve)

    def test_singular_matrix_is_an_r_error(self):
        interp = Interpreter(NumpyEngine(), seed=7)
        interp.env["A"] = interp.engine.make_matrix(
            np.asarray([[1.0, 2.0], [2.0, 4.0]]))
        with pytest.raises(RError):
            interp.run("solve(A)")
