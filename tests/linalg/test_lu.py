"""Tests for out-of-core LU decomposition and solves."""

import numpy as np
import pytest

from repro.linalg import (backward_substitute, forward_substitute,
                          lu_decompose, lu_solve, split_lu)
from repro.storage import ArrayStore

MEM = 48 * 1024


def make_store():
    return ArrayStore(memory_bytes=MEM * 8, block_size=8192)


def diag_dominant(rng, n):
    a = rng.standard_normal((n, n))
    a[np.diag_indices(n)] += n  # guarantees nonsingular minors
    return a


class TestLUDecompose:
    @pytest.mark.parametrize("n", [8, 64, 100, 257])
    def test_reconstruction(self, rng, n):
        a = diag_dominant(rng, n)
        store = make_store()
        packed = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        l_mat, u_mat = split_lu(store, packed)
        reconstructed = l_mat.to_numpy() @ u_mat.to_numpy()
        assert np.allclose(reconstructed, a, atol=1e-8)

    def test_l_is_unit_lower_u_is_upper(self, rng):
        n = 96
        a = diag_dominant(rng, n)
        store = make_store()
        packed = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        l_mat, u_mat = split_lu(store, packed)
        l_np, u_np = l_mat.to_numpy(), u_mat.to_numpy()
        assert np.allclose(np.diag(l_np), 1.0)
        assert np.allclose(np.triu(l_np, 1), 0.0)
        assert np.allclose(np.tril(u_np, -1), 0.0)

    def test_input_not_modified(self, rng):
        n = 64
        a = diag_dominant(rng, n)
        store = make_store()
        mat = store.matrix_from_numpy(a, layout="square")
        lu_decompose(store, mat, MEM)
        assert np.allclose(mat.to_numpy(), a)

    def test_non_square_rejected(self, rng):
        store = make_store()
        mat = store.matrix_from_numpy(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            lu_decompose(store, mat, MEM)

    def test_zero_pivot_detected(self):
        store = make_store()
        singularish = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        mat = store.matrix_from_numpy(singularish)
        with pytest.raises(ZeroDivisionError):
            lu_decompose(store, mat, MEM)

    def test_matches_scipy(self, rng):
        """Cross-check against scipy's LU on a permutation-free matrix."""
        import scipy.linalg
        n = 80
        a = diag_dominant(rng, n)
        store = make_store()
        packed = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        l_mat, u_mat = split_lu(store, packed)
        # scipy pivots, so compare via reconstruction instead of factors.
        p, l_s, u_s = scipy.linalg.lu(a)
        assert np.allclose(l_mat.to_numpy() @ u_mat.to_numpy(),
                           p @ l_s @ u_s, atol=1e-8)


class TestSolves:
    def test_forward_backward_substitution(self, rng):
        n = 120
        a = diag_dominant(rng, n)
        b = rng.standard_normal(n)
        store = make_store()
        packed = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        y = forward_substitute(packed, b, block=48)
        x = backward_substitute(packed, y, block=48)
        assert np.allclose(a @ x, b, atol=1e-7)

    def test_lu_solve_end_to_end(self, rng):
        n = 150
        a = diag_dominant(rng, n)
        x_true = rng.standard_normal(n)
        b = a @ x_true
        store = make_store()
        x = lu_solve(store, store.matrix_from_numpy(a, layout="square"),
                     b, MEM)
        assert np.allclose(x, x_true, atol=1e-7)

    def test_solve_matches_numpy(self, rng):
        n = 64
        a = diag_dominant(rng, n)
        b = rng.standard_normal(n)
        store = make_store()
        x = lu_solve(store, store.matrix_from_numpy(a, layout="square"),
                     b, MEM)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-7)
