"""Tests for pivoted out-of-core LU decomposition and solves.

The failure modes this suite locks in (vs the old unpivoted Doolittle):
matrices needing row interchanges factor correctly, random
non-diagonally-dominant systems are stable, exactly singular inputs
raise a dedicated error, and the memory budget is honored, not silently
exceeded.
"""

import numpy as np
import pytest

from repro.linalg import (PackedLU, SingularMatrixError,
                          backward_substitute, forward_substitute,
                          lu_decompose, lu_solve, lu_solve_factored,
                          split_lu)
from repro.storage import ArrayStore

MEM = 48 * 1024


def make_store():
    return ArrayStore(memory_bytes=MEM * 8, block_size=8192)


def reconstruction_error(store, a, factors: PackedLU) -> float:
    """Relative ``norm(P A - L U) / norm(A)``."""
    l_mat, u_mat = split_lu(store, factors)
    rec = l_mat.to_numpy() @ u_mat.to_numpy()
    return (np.linalg.norm(a[factors.perm_array()] - rec)
            / np.linalg.norm(a))


class TestLUDecompose:
    @pytest.mark.parametrize("n", [8, 64, 100, 257])
    def test_random_matrix_reconstruction(self, rng, n):
        """Random standard-normal matrices — no diagonal dominance."""
        a = rng.standard_normal((n, n))
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        assert reconstruction_error(store, a, factors) < 1e-10

    def test_multi_tile_grid(self, rng):
        """A matrix spanning at least a 4 x 4 tile grid (tile side 32)."""
        n = 160
        a = rng.standard_normal((n, n))
        store = make_store()
        mat = store.matrix_from_numpy(a, layout="square")
        assert mat.grid[0] >= 4 and mat.grid[1] >= 4
        factors = lu_decompose(store, mat, MEM)
        assert reconstruction_error(store, a, factors) < 1e-10

    def test_permutation_requiring_matrix(self):
        """Zero leading pivot — the case unpivoted Doolittle dies on."""
        a = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        store = make_store()
        factors = lu_decompose(store, store.matrix_from_numpy(a), MEM)
        assert reconstruction_error(store, a, factors) < 1e-12
        assert sorted(factors.perm_array().tolist()) == [0, 1]

    def test_zero_principal_minor_large(self, rng):
        """Zero leading principal minors inside a big matrix."""
        n = 130
        a = rng.standard_normal((n, n))
        a[0, 0] = 0.0
        a[:2, :2] = [[0.0, 2.0], [3.0, 0.0]]
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        assert reconstruction_error(store, a, factors) < 1e-10

    def test_perm_is_a_permutation(self, rng):
        n = 100
        store = make_store()
        factors = lu_decompose(
            store,
            store.matrix_from_numpy(rng.standard_normal((n, n)),
                                    layout="square"), MEM)
        assert sorted(factors.perm_array().tolist()) == list(range(n))

    def test_l_is_unit_lower_u_is_upper(self, rng):
        n = 96
        a = rng.standard_normal((n, n))
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        l_np, u_np = (m.to_numpy() for m in split_lu(store, factors))
        assert np.allclose(np.diag(l_np), 1.0)
        assert np.allclose(np.triu(l_np, 1), 0.0)
        assert np.allclose(np.tril(u_np, -1), 0.0)
        # Partial pivoting bounds every multiplier by 1.
        assert np.max(np.abs(np.tril(l_np, -1))) <= 1.0 + 1e-12

    def test_input_not_modified(self, rng):
        n = 64
        a = rng.standard_normal((n, n))
        store = make_store()
        mat = store.matrix_from_numpy(a, layout="square")
        lu_decompose(store, mat, MEM)
        assert np.allclose(mat.to_numpy(), a)

    def test_non_square_rejected(self, rng):
        store = make_store()
        mat = store.matrix_from_numpy(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            lu_decompose(store, mat, MEM)

    def test_exactly_singular_raises(self):
        store = make_store()
        singular = np.asarray([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SingularMatrixError):
            lu_decompose(store, store.matrix_from_numpy(singular), MEM)

    def test_zero_column_raises(self, rng):
        n = 40
        a = rng.standard_normal((n, n))
        a[:, 7] = 0.0
        store = make_store()
        with pytest.raises(SingularMatrixError):
            lu_decompose(
                store, store.matrix_from_numpy(a, layout="square"), MEM)

    def test_singular_input_does_not_leak_working_factor(self, rng):
        """A failed factorization must free its n x n working copy:
        singular input is catchable and retryable, so leaked pages
        would accumulate across attempts in a long session."""
        n = 128
        a = rng.standard_normal((n, n))
        a[:, 10] = 0.0
        store = make_store()
        mat = store.matrix_from_numpy(a, layout="square")
        store.flush()
        resident_before = store.device.resident_blocks
        for _ in range(3):
            with pytest.raises(SingularMatrixError):
                lu_decompose(store, mat, MEM)
            store.flush()
        assert store.device.resident_blocks == resident_before

    def test_memory_budget_violation_raises(self, rng):
        """A budget below three full-height tile columns must error out,
        not silently exceed itself (the old ``max(tile_side, ...)``)."""
        n = 257
        store = make_store()
        mat = store.matrix_from_numpy(rng.standard_normal((n, n)),
                                      layout="square")
        too_small = 3 * n * mat.tile_shape[1] - 1
        with pytest.raises(ValueError, match="memory budget"):
            lu_decompose(store, mat, too_small)

    def test_matches_scipy(self, rng):
        """Factor-by-factor agreement with scipy's pivoted LU."""
        import scipy.linalg
        n = 80
        a = rng.standard_normal((n, n))
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        l_mat, u_mat = split_lu(store, factors)
        p, l_s, u_s = scipy.linalg.lu(a)
        # Both choose max-magnitude pivots, so the permuted products
        # must match; compare reconstructions to stay robust to ties.
        assert np.allclose(l_mat.to_numpy() @ u_mat.to_numpy(),
                           a[factors.perm_array()], atol=1e-8)
        assert np.allclose(p @ l_s @ u_s, a, atol=1e-8)


class TestSolves:
    def test_forward_backward_substitution(self, rng):
        n = 120
        a = rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        pb = b[factors.perm_array()]
        y = forward_substitute(factors.packed, pb, block=48)
        x = backward_substitute(factors.packed, y, block=48)
        assert np.allclose(a @ x, b, atol=1e-7)

    def test_block_size_derived_from_pool_budget(self, rng):
        """With no explicit block, substitution derives it from the
        store's pool budget and still solves correctly."""
        n = 150
        a = rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        x = lu_solve_factored(factors, b)
        assert np.allclose(a @ x, b, atol=1e-7)

    def test_substitution_announces_prefetch_footprint(self, rng):
        """Each block row's tile footprint goes through pool.prefetch:
        on a cold pool the sweeps must prefetch and coalesce reads."""
        n = 256
        a = rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        store = make_store()
        factors = lu_decompose(
            store, store.matrix_from_numpy(a, layout="square"), MEM)
        store.pool.clear()
        store.reset_stats()
        lu_solve_factored(factors, b, MEM)
        stats = store.device.stats
        assert stats.prefetched > 0
        assert stats.read_calls < stats.reads

    def test_matrix_rhs(self, rng):
        """Multiple right-hand sides solved in one pair of sweeps."""
        n, k = 96, 7
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, k))
        store = make_store()
        x = lu_solve(store, store.matrix_from_numpy(a, layout="square"),
                     b, MEM)
        assert x.shape == (n, k)
        assert np.allclose(a @ x, b, atol=1e-7)

    @pytest.mark.parametrize("n", [150, 257])
    def test_lu_solve_round_trip_multi_tile(self, rng, n):
        """Round trips at sizes spanning several 32-side tiles."""
        a = rng.standard_normal((n, n))
        x_true = rng.standard_normal(n)
        b = a @ x_true
        store = make_store()
        x = lu_solve(store, store.matrix_from_numpy(a, layout="square"),
                     b, MEM)
        assert np.allclose(x, x_true, atol=1e-6)

    def test_solve_matches_numpy_on_pivot_requiring_system(self, rng):
        n = 64
        a = rng.standard_normal((n, n))
        a[0, 0] = 0.0
        b = rng.standard_normal(n)
        store = make_store()
        x = lu_solve(store, store.matrix_from_numpy(a, layout="square"),
                     b, MEM)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-7)

    def test_diag_dominant_still_works(self, rng):
        """The old rigged regime remains a subset of what pivoting handles."""
        n = 150
        a = rng.standard_normal((n, n))
        a[np.diag_indices(n)] += n
        b = rng.standard_normal(n)
        store = make_store()
        x = lu_solve(store, store.matrix_from_numpy(a, layout="square"),
                     b, MEM)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-7)
