"""Tests for the chain and regression workload modules."""

import numpy as np
import pytest

from repro.core.chain import optimal_order
from repro.linalg import multiply_chain
from repro.storage import ArrayStore
from repro.workloads import (ChainConfig, MEASURED_SCALE, PAPER_FIG3B,
                             generate_chain, generate_problem, load_chain,
                             ols_out_of_core)


class TestChains:
    def test_shapes_follow_fig3(self):
        config = ChainConfig(1000, 4.0)
        assert config.shapes == [(1000, 250), (250, 1000), (1000, 1000)]

    def test_paper_configs_cover_figure(self):
        assert [c.skew for c in PAPER_FIG3B] == [2.0, 4.0, 6.0, 8.0]

    def test_paper_scale_generation_refused(self):
        with pytest.raises(ValueError):
            generate_chain(ChainConfig(100_000, 2.0))

    def test_generated_chain_multiplies(self):
        config = ChainConfig(128, 4.0, seed=5)
        a, b, c = generate_chain(config)
        assert (a @ b @ c).shape == (128, 128)

    def test_load_chain_roundtrip(self):
        config = ChainConfig(96, 2.0, seed=5)
        store = ArrayStore(memory_bytes=2 << 20)
        mats = load_chain(store, config)
        gen = generate_chain(config)
        for stored, expect in zip(mats, gen):
            assert np.allclose(stored.to_numpy(), expect)

    def test_measured_configs_run_end_to_end(self):
        config = MEASURED_SCALE[0]
        store = ArrayStore(memory_bytes=2 << 20)
        mats = load_chain(store, config)
        mem = 64 * 1024
        out = multiply_chain(store, mats, mem)
        a, b, c = generate_chain(config)
        assert np.allclose(out.to_numpy(), a @ b @ c)

    def test_skew_flips_optimal_order(self):
        assert optimal_order(ChainConfig(512, 8.0).dims) == (0, (1, 2))


class TestRegression:
    def test_problem_generation_deterministic(self):
        p1 = generate_problem(100, 5, seed=3)
        p2 = generate_problem(100, 5, seed=3)
        assert np.array_equal(p1.x, p2.x)
        assert np.array_equal(p1.beta_true, p2.beta_true)

    def test_ols_recovers_beta(self):
        problem = generate_problem(5000, 16, noise=0.0, seed=1)
        beta, _ = ols_out_of_core(problem, memory_scalars=32 * 1024)
        assert np.allclose(beta, problem.beta_true, atol=1e-8)

    def test_ols_matches_lstsq_with_noise(self):
        problem = generate_problem(4000, 24, noise=0.5, seed=2)
        beta, _ = ols_out_of_core(problem, memory_scalars=32 * 1024)
        expect = np.linalg.lstsq(problem.x, problem.y, rcond=None)[0]
        assert np.allclose(beta, expect, atol=1e-7)

    def test_io_reported(self):
        problem = generate_problem(3000, 16, seed=4)
        _, io = ols_out_of_core(problem, memory_scalars=32 * 1024)
        assert io.total > 0

    def test_ols_on_nearly_collinear_design(self):
        """An ill-conditioned X'X — far from diagonally dominant — is
        exactly the regime the pivoted solver buys the workload."""
        problem = generate_problem(4000, 24, noise=0.1, seed=6,
                                   collinearity=0.9)
        beta, _ = ols_out_of_core(problem, memory_scalars=32 * 1024)
        expect = np.linalg.lstsq(problem.x, problem.y, rcond=None)[0]
        assert np.allclose(beta, expect, atol=1e-6)
