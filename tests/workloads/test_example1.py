"""Tests for the Example-1 workload harness."""

import numpy as np
import pytest

from repro.engines import make_engine
from repro.workloads import (ENDPOINTS, SOURCE, expected_z,
                             generate_points, run_example1)


class TestGenerator:
    def test_deterministic(self):
        x1, y1 = generate_points(1000, seed=3)
        x2, y2 = generate_points(1000, seed=3)
        assert np.array_equal(x1, x2)
        assert np.array_equal(y1, y2)

    def test_different_seeds_differ(self):
        x1, _ = generate_points(1000, seed=3)
        x2, _ = generate_points(1000, seed=4)
        assert not np.array_equal(x1, x2)

    def test_points_in_domain(self):
        x, y = generate_points(5000)
        assert x.min() >= 0 and x.max() <= 100
        assert y.min() >= 0 and y.max() <= 100

    def test_expected_z_matches_formula(self):
        x, y = generate_points(100)
        idx = np.asarray([0, 50, 99])
        z = expected_z(x, y, idx)
        d0 = (np.hypot(x[0] - ENDPOINTS["xs"], y[0] - ENDPOINTS["ys"])
              + np.hypot(x[0] - ENDPOINTS["xe"], y[0] - ENDPOINTS["ye"]))
        assert z[0] == pytest.approx(d0)


class TestHarness:
    def test_run_produces_output_and_metrics(self):
        engine = make_engine("riotng", memory_bytes=4 * 1024 * 1024)
        result = run_example1(engine, 50_000)
        assert result.output and result.output[0].startswith("[1]")
        assert result.sim_seconds >= 0
        assert result.wall_seconds > 0

    def test_values_are_correct(self):
        """Harness output must equal the direct numpy computation."""
        engine = make_engine("riotng", memory_bytes=4 * 1024 * 1024)
        result = run_example1(engine, 20_000, seed=7,
                              program_seed=123)
        z_engine = engine.session.values(result.env["z"].node)
        x, y = generate_points(20_000, seed=7)
        s = engine.session.values(result.env["s"].node).astype(int)
        assert np.allclose(z_engine, expected_z(x, y, s - 1))

    def test_io_excludes_data_loading(self):
        """Stats reset after loading: tiny n means near-zero I/O."""
        engine = make_engine("riotng", memory_bytes=64 * 1024 * 1024)
        result = run_example1(engine, 10_000)
        assert result.io_mb < 1.0

    def test_source_matches_paper(self):
        assert "sqrt((x-xs)^2+(y-ys)^2)" in SOURCE
        assert "sample(length(x), 100)" in SOURCE
        assert "z <- d[s]" in SOURCE
