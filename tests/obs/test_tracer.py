"""Tracer contract: nesting, LIFO under exceptions, ring, overhead."""

import numpy as np
import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.obs.tracer import _NULL_SPAN
from repro.storage import ArrayStore


class CountingStats:
    """Duck-typed stats source that counts snapshot()/delta() calls."""

    def __init__(self):
        self.snapshots = 0
        self.deltas = 0

    def snapshot(self):
        self.snapshots += 1
        return self

    def delta(self, earlier):
        self.deltas += 1
        return self

    def as_dict(self):
        return {}


class CountingDevice:
    def __init__(self):
        self.stats = CountingStats()


class TestNesting:
    def test_parent_and_depth(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner", cat="kernel"):
                pass
            with t.span("inner2"):
                pass
        spans = t.spans()
        assert [s.name for s in spans] == ["inner", "inner2", "outer"]
        inner, inner2, outer = spans
        assert outer.depth == 0 and outer.parent == -1
        assert inner.depth == 1 and inner.parent == outer.seq
        assert inner2.depth == 1 and inner2.parent == outer.seq
        assert inner.cat == "kernel" and outer.cat == "op"

    def test_children_close_before_parents(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
        ends = {s.name: s.end_ns for s in t.spans()}
        assert ends["c"] <= ends["b"] <= ends["a"]
        assert t.open_depth == 0

    def test_lifo_close_under_exception(self):
        """``with`` unwinding closes every open span, innermost first,
        even when the traced region raises."""
        t = Tracer(enabled=True)
        with pytest.raises(RuntimeError, match="boom"):
            with t.span("outer"):
                with t.span("inner"):
                    raise RuntimeError("boom")
        assert t.open_depth == 0
        spans = t.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].parent == spans[1].seq
        # A new span after the exception starts back at top level.
        with t.span("after"):
            pass
        assert t.spans()[-1].depth == 0

    def test_span_args_recorded(self):
        t = Tracer(enabled=True)
        with t.span("panel", cat="kernel", i0=64, j0=128):
            pass
        assert t.last_span().args == {"i0": 64, "j0": 128}


class TestRingBuffer:
    def test_capacity_bounds_memory_and_counts_drops(self):
        t = Tracer(capacity=4, enabled=True)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        assert len(t) == 4
        assert t.spans_opened == 10
        assert t.spans_dropped == 6
        # Oldest-first order is restored across the wrap point.
        assert [s.name for s in t.spans()] == ["s6", "s7", "s8", "s9"]
        assert t.last_span().name == "s9"

    def test_last_span_before_wrap(self):
        t = Tracer(capacity=8, enabled=True)
        for i in range(3):
            with t.span(f"s{i}"):
                pass
        assert t.last_span().name == "s2"

    def test_clear_keeps_counters(self):
        t = Tracer(capacity=2, enabled=True)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        t.clear()
        assert len(t) == 0 and t.last_span() is None
        assert t.spans_opened == 5 and t.spans_dropped == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDisabledOverhead:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer()
        assert t.span("a") is _NULL_SPAN
        assert t.span("b", cat="kernel", x=1) is _NULL_SPAN

    def test_disabled_tracer_never_touches_the_stats_layer(self):
        """The off-by-default contract: a disabled span() performs no
        snapshots, no deltas, no recording — one attribute test."""
        dev, pool = CountingDevice(), CountingDevice()
        t = Tracer(device=dev, pool=pool)
        for i in range(1000):
            with t.span("hot", i=i):
                pass
        assert dev.stats.snapshots == 0 and dev.stats.deltas == 0
        assert pool.stats.snapshots == 0
        assert len(t) == 0 and t.spans_opened == 0

    def test_enabled_tracer_snapshots_once_per_span(self):
        dev = CountingDevice()
        t = Tracer(device=dev, enabled=True)
        for _ in range(10):
            with t.span("s"):
                pass
        assert dev.stats.snapshots == 10 and dev.stats.deltas == 10

    def test_tracing_does_not_perturb_device_work(self):
        """Block totals of a real workload are identical traced and
        untraced — spans observe I/O, they never cause it."""
        def run(record: bool):
            store = ArrayStore(memory_bytes=16 * 8192)
            data = np.arange(32 * 1024, dtype=np.float64)
            vec = store.vector_from_numpy(data)
            store.pool.clear()
            store.reset_stats()
            if record:
                store.tracer.enable()
            with store.tracer.span("scan", cat="kernel"):
                out = vec.to_numpy()
            return store.device.stats.as_dict(), out

        traced, out_t = run(True)
        plain, out_p = run(False)
        # Timing fields legitimately differ run to run; every
        # deterministic counter (blocks, bytes, calls) must not.
        for d in (traced, plain):
            for key in ("read_ns", "write_ns", "seconds"):
                d.pop(key)
        assert traced == plain
        assert np.array_equal(out_t, out_p)

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x"):
            pass
        assert len(NULL_TRACER) == 0


class TestRecordingAndDeltas:
    def test_recording_restores_previous_state(self):
        t = Tracer()
        with t.recording():
            assert t.enabled
            with t.span("in"):
                pass
        assert not t.enabled
        assert [s.name for s in t.spans()] == ["in"]
        t.enable()
        with t.recording():
            pass
        assert t.enabled

    def test_span_captures_io_and_pool_deltas(self):
        """Against the real storage stack: a span around a cold scan
        sees exactly that scan's reads and pool misses."""
        store = ArrayStore(memory_bytes=16 * 8192)
        data = np.arange(64 * 1024, dtype=np.float64)
        vec = store.vector_from_numpy(data)
        store.pool.clear()
        baseline = store.device.stats.snapshot()
        with store.tracer.recording():
            with store.tracer.span("scan"):
                vec.to_numpy()
        span = store.tracer.last_span()
        whole = store.device.stats.delta(baseline)
        assert span.io.as_dict() == whole.as_dict()
        assert span.io.reads > 0
        assert span.pool.hits + span.pool.misses > 0
        assert span.wall_ns > 0

    def test_sibling_spans_partition_the_io(self):
        store = ArrayStore(memory_bytes=16 * 8192)
        data = np.arange(64 * 1024, dtype=np.float64)
        vec = store.vector_from_numpy(data)
        store.pool.clear()
        baseline = store.device.stats.snapshot()
        with store.tracer.recording():
            with store.tracer.span("whole"):
                with store.tracer.span("first"):
                    vec.to_numpy()
                with store.tracer.span("second"):
                    vec.to_numpy()
        first, second, whole = store.tracer.spans()
        assert (first.name, second.name, whole.name) == \
            ("first", "second", "whole")
        total = store.device.stats.delta(baseline)
        merged = first.io.merged(second.io)
        assert merged.as_dict() == whole.io.as_dict()
        assert whole.io.as_dict() == total.as_dict()


class TestThreadAwareness:
    def test_threads_get_distinct_compact_tids(self):
        import threading

        t = Tracer(enabled=True)
        with t.span("main-span"):
            pass
        # Keep all workers alive together: the OS reuses thread idents
        # of exited threads, and the compact-tid map keys on ident.
        ready = threading.Barrier(3)

        def worker(name):
            def run():
                ready.wait()
                with t.span(name):
                    pass
            return run

        threads = [threading.Thread(target=worker(f"w{i}"))
                   for i in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        spans = {s.name: s for s in t.spans()}
        tids = {name: spans[name].tid
                for name in ("main-span", "w0", "w1", "w2")}
        # One compact tid per thread, all distinct, main thread first.
        assert tids["main-span"] == 1
        assert len(set(tids.values())) == 4
        assert set(tids.values()) == {1, 2, 3, 4}

    def test_per_thread_stacks_do_not_interleave(self):
        import threading

        t = Tracer(enabled=True)
        ready = threading.Barrier(2)

        def worker(name):
            def run():
                with t.span(f"{name}-outer"):
                    ready.wait()
                    with t.span(f"{name}-inner"):
                        pass
            return run

        threads = [threading.Thread(target=worker(n))
                   for n in ("a", "b")]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        spans = {s.name: s for s in t.spans()}
        for name in ("a", "b"):
            inner, outer = spans[f"{name}-inner"], spans[f"{name}-outer"]
            assert inner.tid == outer.tid
            assert inner.parent == outer.seq
            assert inner.depth == outer.depth + 1

    def test_export_chrome_emits_real_tids(self, tmp_path):
        import json
        import threading

        t = Tracer(enabled=True)
        with t.span("main-span"):
            pass
        th = threading.Thread(target=lambda: t.span("bg").__enter__()
                              .__exit__(None, None, None))
        th.start()
        th.join()
        path = tmp_path / "trace.json"
        assert t.export_chrome(path) == 2
        events = json.loads(path.read_text())["traceEvents"]
        by_name = {e["name"]: e["tid"] for e in events}
        assert by_name["main-span"] != by_name["bg"]
