"""CalibrationReport: drift aggregation over duck-typed plans."""

import json

from repro.obs import CALIBRATION_BAND, CALIBRATION_SCHEMA_VERSION, \
    MIN_PREDICTED_BLOCKS, CalibrationReport, ModelCalibration


class FakeOp:
    def __init__(self, model, predicted, measured):
        self.cost_model = model
        self.predicted_io = predicted
        self.measured_io = measured

    def label(self):
        return f"fake.{self.cost_model}"


class FakePlan:
    def __init__(self, ops):
        self._ops = ops

    def ops(self):
        return list(self._ops)


class TestModelCalibration:
    def test_median_ratio(self):
        m = ModelCalibration("matmul_io")
        for pred, meas in ((100, 90), (100, 110), (100, 200)):
            m.add(pred, meas, MIN_PREDICTED_BLOCKS)
        assert m.median_ratio == 1.1
        assert m.in_band(CALIBRATION_BAND)
        assert m.n_ops == 3 and m.n_skipped == 0

    def test_noise_floor_skips_tiny_predictions(self):
        m = ModelCalibration("stream_io")
        m.add(2, 8, MIN_PREDICTED_BLOCKS)  # 4x off, but 2 blocks
        assert m.ratios == [] and m.n_skipped == 1
        assert m.median_ratio is None
        assert m.in_band()  # vacuous pass: no evidence, no violation

    def test_out_of_band(self):
        m = ModelCalibration("solve_io")
        m.add(100, 300, MIN_PREDICTED_BLOCKS)
        assert not m.in_band(CALIBRATION_BAND)


class TestCalibrationReport:
    def test_groups_ops_by_model(self):
        plan = FakePlan([
            FakeOp("matmul_io", 128, 180),
            FakeOp("matmul_io", 64, 60),
            FakeOp("solve_io", 500, 310),
            FakeOp(None, 10, 10),        # leaf: no model
            FakeOp("spmm_io", 40, None),  # never executed
        ])
        report = CalibrationReport()
        assert report.add_plan(plan) == 3
        assert set(report.models) == {"matmul_io", "solve_io"}
        assert report.ok and report.violations() == []

    def test_violation_names_the_model(self):
        report = CalibrationReport()
        report.add_op(FakeOp("spgemm_io", 100, 450))
        assert not report.ok
        [violation] = report.violations()
        assert "spgemm_io" in violation and "4.5" in violation

    def test_custom_band(self):
        report = CalibrationReport(band=(0.9, 1.1))
        report.add_op(FakeOp("matmul_io", 100, 140))
        assert not report.ok
        report2 = CalibrationReport(band=(0.5, 2.0))
        report2.add_op(FakeOp("matmul_io", 100, 140))
        assert report2.ok

    def test_as_dict_schema(self):
        report = CalibrationReport()
        report.add_op(FakeOp("matmul_io", 128, 180))
        d = report.as_dict()
        assert d["schema_version"] == CALIBRATION_SCHEMA_VERSION
        assert d["band"] == list(CALIBRATION_BAND)
        assert d["min_predicted_blocks"] == MIN_PREDICTED_BLOCKS
        assert d["ok"] is True and d["violations"] == []
        entry = d["models"]["matmul_io"]
        assert set(entry) == {"model", "n_ops", "n_skipped",
                              "predicted_blocks", "measured_blocks",
                              "ratios", "median_ratio"}
        assert entry["median_ratio"] == round(180 / 128, 6)

    def test_to_json_round_trips(self, tmp_path):
        report = CalibrationReport()
        report.add_op(FakeOp("solve_io", 500, 310))
        path = tmp_path / "calibration.json"
        text = report.to_json(path)
        assert json.loads(text) == json.loads(path.read_text())
        assert json.loads(text) == report.as_dict()

    def test_empty_report_is_ok(self):
        report = CalibrationReport()
        assert report.ok and report.as_dict()["models"] == {}
