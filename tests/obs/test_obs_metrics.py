"""MetricsRegistry: counters, gauges, sources, session wiring."""

import json

import numpy as np
import pytest

from repro.core import OptimizerConfig, RiotSession
from repro.obs import MetricsRegistry
from repro.storage import IOSTATS_SCHEMA_KEYS, POOL_SCHEMA_KEYS, \
    StorageConfig


class TestRegistry:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["ops"] == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert reg.counter("ops") is c

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3.5)
        g.set(1.0)
        assert reg.snapshot()["depth"] == 1.0

    def test_sources_evaluated_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"n": 1}
        reg.register_source("live", lambda: dict(state))
        assert reg.snapshot()["live"] == {"n": 1}
        state["n"] = 2
        assert reg.snapshot()["live"] == {"n": 2}

    def test_name_collisions_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.register_source("x", dict)
        reg.register_source("src", dict)
        with pytest.raises(ValueError):
            reg.counter("src")

    def test_to_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(7)
        reg.gauge("ratio").set(0.5)
        reg.register_source("io", lambda: {"reads": 3})
        path = tmp_path / "metrics.json"
        text = reg.to_json(path)
        assert json.loads(text) == json.loads(path.read_text())
        assert json.loads(text) == {
            "hits": 7, "ratio": 0.5, "io": {"reads": 3}}


class TestSessionMetrics:
    def test_session_exports_all_stat_sources(self):
        s = RiotSession(storage=StorageConfig(memory_bytes=1 << 20))
        x = s.vector(np.arange(32 * 1024, dtype=np.float64))
        s.values(x + 1.0)
        s.store.flush()  # push dirty frames so device totals are real
        snap = s.metrics.snapshot()
        assert set(snap) >= {"io", "pool", "scheduler", "tracer"}
        assert set(snap["io"]) == set(IOSTATS_SCHEMA_KEYS)
        assert set(snap["pool"]) == set(POOL_SCHEMA_KEYS)
        assert snap["io"]["total"] > 0
        assert snap["scheduler"]["readahead_triggers"] >= 0

    def test_tracer_health_reflects_recording(self):
        s = RiotSession(storage=StorageConfig(memory_bytes=1 << 20),
                        config=OptimizerConfig(level=2))
        health = s.metrics.snapshot()["tracer"]
        assert health == {"enabled": False, "spans": 0,
                          "spans_opened": 0, "spans_dropped": 0}
        x = s.matrix(np.random.default_rng(0)
                     .standard_normal((64, 48)), name="X")
        s.explain((x @ x.T).node, analyze=True)
        health = s.metrics.snapshot()["tracer"]
        assert health["enabled"] is False  # restored after analyze
        assert health["spans"] > 0
        assert health["spans_opened"] == health["spans"]
        assert health["spans_dropped"] == 0

    def test_metrics_track_stats_across_reset(self):
        """Sources are lambdas over the *current* stats objects, so a
        reset_stats() shows up instead of reading a stale snapshot."""
        s = RiotSession(storage=StorageConfig(memory_bytes=1 << 20))
        x = s.vector(np.arange(16 * 1024, dtype=np.float64))
        s.values(x * 2.0)
        s.store.flush()
        assert s.metrics.snapshot()["io"]["total"] > 0
        s.reset_stats()
        assert s.metrics.snapshot()["io"]["total"] == 0
