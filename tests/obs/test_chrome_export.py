"""Chrome trace-event export: schema stability and round-trips."""

import json

import numpy as np

from repro.obs import Tracer
from repro.storage import ArrayStore

#: The pinned event shape.  Perfetto and ``chrome://tracing`` consume
#: exactly these keys; changing them breaks every downstream consumer
#: of the CI trace artifact, so additions must extend, never rename.
EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
TOP_KEYS = {"traceEvents", "displayTimeUnit", "otherData"}


def _traced_workload(tmp_path):
    store = ArrayStore(memory_bytes=16 * 8192)
    vec = store.vector_from_numpy(
        np.arange(32 * 1024, dtype=np.float64))
    store.pool.clear()
    with store.tracer.recording():
        with store.tracer.span("scan", cat="session"):
            with store.tracer.span("chunk", cat="kernel", ci=0):
                vec.to_numpy()
    path = tmp_path / "trace.json"
    n = store.tracer.export_chrome(path)
    return store.tracer, path, n


class TestChromeExport:
    def test_round_trip_schema_stable(self, tmp_path):
        tracer, path, n = _traced_workload(tmp_path)
        doc = json.loads(path.read_text())
        assert set(doc) == TOP_KEYS
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs.Tracer"
        assert doc["otherData"]["spans_dropped"] == 0
        events = doc["traceEvents"]
        assert len(events) == n == len(tracer)
        for ev in events:
            assert set(ev) == EVENT_KEYS
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert ev["pid"] == 1 and ev["tid"] == 1

    def test_events_match_spans(self, tmp_path):
        tracer, path, _ = _traced_workload(tmp_path)
        events = json.loads(path.read_text())["traceEvents"]
        spans = tracer.spans()
        assert [e["name"] for e in events] == [s.name for s in spans]
        assert [e["cat"] for e in events] == [s.cat for s in spans]
        for ev, span in zip(events, spans):
            assert abs(ev["dur"] - span.wall_ns / 1e3) < 1e-6
            assert ev["args"]["io"] == span.io.as_dict()
            assert ev["args"]["pool"] == span.pool.as_dict()
        # Caller annotations ride along next to the deltas.
        chunk = events[0]
        assert chunk["name"] == "chunk" and chunk["args"]["ci"] == 0

    def test_timestamps_are_origin_relative(self, tmp_path):
        _, path, _ = _traced_workload(tmp_path)
        events = json.loads(path.read_text())["traceEvents"]
        assert min(e["ts"] for e in events) == 0.0
        # The child closes first but starts after its parent opened.
        by_name = {e["name"]: e for e in events}
        assert by_name["chunk"]["ts"] >= by_name["scan"]["ts"]
        assert by_name["chunk"]["dur"] <= by_name["scan"]["dur"]

    def test_empty_tracer_exports_valid_document(self, tmp_path):
        t = Tracer()
        path = tmp_path / "empty.json"
        assert t.export_chrome(path) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []

    def test_dropped_spans_surface_in_other_data(self, tmp_path):
        t = Tracer(capacity=2, enabled=True)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        path = tmp_path / "dropped.json"
        t.export_chrome(path)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["spans_dropped"] == 3
        assert [e["name"] for e in doc["traceEvents"]] == ["s3", "s4"]
