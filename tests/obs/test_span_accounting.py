"""Property: per-op measured deltas sum exactly to session totals.

The evaluator snapshots device and pool stats *after* an operator's
children have run, so every op's measurement is exclusive — each block
and each pool access is attributed to exactly one operator.  On random
DAGs, merging all per-op deltas must reproduce the device's own totals
for the run, field for field (including bytes and call counts), with
the trailing cold-mode flush charged to the root.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Map, OptimizerConfig, RiotSession
from repro.storage import IOStats, PoolStats, StorageConfig

MEM = 48 * 1024 * 8  # bytes: a 48-block pool keeps the DAGs out of core


def make_session():
    return RiotSession(storage=StorageConfig(memory_bytes=MEM),
                       config=OptimizerConfig(level=2))


def assert_deltas_sum_to_totals(session, node):
    plan = session.plan(node)
    session.store.pool.clear()  # writeback now, outside the window
    io_before = session.io_stats.snapshot()
    pool_before = session.store.pool.stats.snapshot()
    session.evaluator.execute(plan, cold=True)
    io_total = session.io_stats.delta(io_before)
    pool_total = session.store.pool.stats.delta(pool_before)

    io_sum = IOStats()
    pool_sum = PoolStats()
    for op in plan.ops():
        assert op.measured is not None, op.label()
        io_sum = io_sum.merged(op.measured)
        pool_sum = pool_sum.merged(op.pool_measured)
    assert io_sum.as_dict() == io_total.as_dict()
    assert pool_sum.as_dict() == pool_total.as_dict()


# ----------------------------------------------------------------------
# Vector DAGs: elementwise trees over shared leaves
# ----------------------------------------------------------------------
@st.composite
def vector_spec(draw, depth):
    if depth == 0:
        return ("leaf", draw(st.integers(0, 2)))
    kind = draw(st.sampled_from(["leaf", "unary", "binary"]))
    if kind == "leaf":
        return ("leaf", draw(st.integers(0, 2)))
    if kind == "unary":
        return ("unary", draw(st.sampled_from(["neg", "abs", "sqrt"])),
                draw(vector_spec(depth - 1)))
    return ("binary", draw(st.sampled_from(["+", "-", "*"])),
            draw(vector_spec(depth - 1)), draw(vector_spec(depth - 1)))


def build_vector(spec, leaves):
    kind = spec[0]
    if kind == "leaf":
        return leaves[spec[1]]
    if kind == "unary":
        child = build_vector(spec[2], leaves)
        if spec[1] == "sqrt":
            return child.abs().sqrt()
        return child._wrap(Map(spec[1], child.node))
    a = build_vector(spec[2], leaves)
    b = build_vector(spec[3], leaves)
    return {"+": a + b, "-": a - b, "*": a * b}[spec[1]]


@given(spec=vector_spec(depth=3),
       n=st.integers(2_000, 120_000),
       seed=st.integers(0, 2**16),
       subscript=st.booleans())
@settings(max_examples=12, deadline=None)
def test_vector_dag_deltas_sum(spec, n, seed, subscript):
    s = make_session()
    leaves = [s.vector(np.random.default_rng(seed + i)
                       .standard_normal(n)) for i in range(3)]
    out = build_vector(spec, leaves)
    if subscript:
        out = out[1:max(2, n // 3)]
    assert_deltas_sum_to_totals(s, out.node)


# ----------------------------------------------------------------------
# Matrix DAGs: products, crossprods, solves, fused epilogues
# ----------------------------------------------------------------------
@given(pattern=st.sampled_from(
           ["mm", "crossprod", "tmm", "epilogue", "ols", "chain"]),
       m=st.integers(64, 320), k=st.integers(64, 256),
       seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_matrix_dag_deltas_sum(pattern, m, k, seed):
    g = np.random.default_rng(seed)
    s = make_session()
    a = s.matrix(g.standard_normal((m, k)), name="A")
    if pattern == "mm":
        b = s.matrix(g.standard_normal((k, m)))
        node = (a @ b).node
    elif pattern == "crossprod":
        node = a.crossprod().node
    elif pattern == "tmm":
        b = s.matrix(g.standard_normal((m, k)))
        node = (a.T @ b).node
    elif pattern == "epilogue":
        b = s.matrix(g.standard_normal((k, m)))
        c = s.matrix(g.standard_normal((m, m)))
        node = ((a @ b) * 0.5 + c).node
    elif pattern == "ols":
        y = s.matrix(g.standard_normal((m, 1)))
        node = s.solve(a.crossprod(), a.crossprod(y)).node
    else:  # chain
        b = s.matrix(g.standard_normal((k, m)))
        c = s.matrix(g.standard_normal((m, 1)))
        node = ((a @ b) @ c).node
    assert_deltas_sum_to_totals(s, node)


@given(density=st.floats(0.002, 0.03),
       n=st.integers(128, 512),
       seed=st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_sparse_dag_deltas_sum(density, n, seed):
    s = make_session()
    a = s.random_sparse_matrix(n, n, density, seed=seed)
    v = s.matrix(np.random.default_rng(seed + 1)
                 .standard_normal((n, 1)))
    assert_deltas_sum_to_totals(s, (a @ v).node)
