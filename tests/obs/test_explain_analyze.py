"""EXPLAIN ANALYZE: measured I/O per op, calibration, both backends.

The workload is the acceptance criterion's hint-free OLS normal
equations, sized to the out-of-core regime (X 512 x 256 against a
48-block pool): every exercised cost model must sit inside the
validated [0.5, 2.0] measured/predicted band, on the simulator and on
the ``pread`` file backend alike.
"""

import numpy as np
import pytest

from repro.core import OptimizerConfig, RiotSession
from repro.core.expr import MatMul, Solve, Transpose
from repro.rlang import Interpreter
from repro.storage import StorageConfig

N_OBS, N_FEAT = 512, 256
POOL_SCALARS = 48 * 1024  # 48 blocks: out-of-core for this X

OLS_MODELS = ("crossprod_io", "matmul_io", "solve_io")


def make_session(backend="memory", level=2):
    return RiotSession(
        storage=StorageConfig(backend=backend,
                              memory_bytes=POOL_SCALARS * 8),
        config=OptimizerConfig(level=level))


def ols_node(session):
    rng = np.random.default_rng(17)
    x = session.matrix(rng.standard_normal((N_OBS, N_FEAT)), name="X")
    y = session.matrix(rng.standard_normal((N_OBS, 1)), name="y")
    return Solve(MatMul(Transpose(x.node), x.node),
                 MatMul(Transpose(x.node), y.node))


def assert_analyze_contract(text, backend):
    assert f"-- analyze (backend={backend}) --" in text
    # Every executed operator line set: measured I/O, pool, wall+ratio.
    assert "io: " in text and "pool: " in text and "wall: " in text
    assert "| ratio " in text
    assert "blk read" in text and "blk written" in text
    # In-band on this workload: no op and no model gets flagged.
    assert "!!" not in text
    for model in OLS_MODELS:
        assert f"calibration: {model}: median ratio " in text
        assert f"(cost: {model}" in text


class TestExplainAnalyzeMemory:
    @pytest.fixture(scope="class")
    def analyzed(self):
        s = make_session()
        node = ols_node(s)
        text = s.explain(node, analyze=True)
        return s, node, text

    def test_contract(self, analyzed):
        _, _, text = analyzed
        assert_analyze_contract(text, "memory")

    def test_plain_sections_still_present(self, analyzed):
        _, _, text = analyzed
        assert "-- original --" in text
        assert "-- optimized --" in text
        assert "-- physical plan (level 2) --" in text
        assert "predicted ~" in text and "| measured" in text

    def test_every_executed_op_measured(self, analyzed):
        s, node, _ = analyzed
        plan = s.plan(node)
        assert plan.executed
        for op in plan.ops():
            assert op.measured is not None
            assert op.pool_measured is not None
            assert op.wall_ns is not None and op.wall_ns >= 0

    def test_calibration_report_in_band(self, analyzed):
        s, node, _ = analyzed
        report = s.calibration_report(node)
        assert set(report.models) == set(OLS_MODELS)
        assert report.ok, report.violations()
        for model in OLS_MODELS:
            med = report.models[model].median_ratio
            assert 0.5 <= med <= 2.0, (model, med)

    def test_session_wide_report_aggregates(self, analyzed):
        s, node, _ = analyzed
        whole = s.calibration_report()
        assert set(whole.models) >= set(OLS_MODELS)
        assert whole.ok

    def test_trace_covers_all_layers(self, analyzed):
        s, _, _ = analyzed
        cats = {span.cat for span in s.tracer.spans()}
        assert {"session", "op", "optimizer", "kernel"} <= cats
        assert not s.tracer.enabled  # analyze restores the off state

    def test_unexecuted_report_is_empty(self):
        s = make_session()
        node = ols_node(s)
        s.plan(node)  # planned but never run
        assert s.calibration_report(node).models == {}


class TestExplainAnalyzePread:
    def test_contract_with_real_syscalls(self):
        with make_session(backend="pread") as s:
            text = s.explain(ols_node(s), analyze=True)
        assert_analyze_contract(text, "pread")
        # The execution summary reports physical syscalls, not zeros.
        [line] = [ln for ln in text.splitlines()
                  if ln.startswith("execution: ")]
        syscalls = int(line.split(" syscalls")[0].rsplit(" ", 1)[-1])
        assert syscalls > 0


class TestAnalyzeSurfaces:
    def test_handle_explain_passes_analyze_through(self):
        s = make_session()
        rng = np.random.default_rng(3)
        x = s.matrix(rng.standard_normal((N_OBS, N_FEAT)), name="X")
        text = x.crossprod().explain(analyze=True)
        assert "-- analyze (backend=memory) --" in text
        assert "calibration: crossprod_io:" in text

    def test_level0_analyze_explains_why_not(self):
        s = make_session(level=0)
        x = s.vector(np.arange(1024, dtype=np.float64))
        text = s.explain((x + 1.0).node, analyze=True)
        assert "analyze requires optimizer level >= 1" in text

    def test_rlang_explain_analyze(self):
        from repro.core.engine import RiotNGEngine
        engine = RiotNGEngine(memory_bytes=POOL_SCALARS * 8)
        interp = Interpreter(engine, seed=5)
        interp.run("x <- matrix(rnorm(512 * 256), 512, 256)\n"
                   "y <- matrix(rnorm(512), 512, 1)\n"
                   "beta <- solve(t(x) %*% x, t(x) %*% y)\n"
                   "explain(beta, TRUE)")
        text = interp.output[-1]
        assert "-- analyze (backend=memory) --" in text
        assert "| ratio " in text
        assert "calibration: solve_io:" in text

    def test_rlang_explain_still_defaults_to_plain(self):
        from repro.core.engine import RiotNGEngine
        engine = RiotNGEngine(memory_bytes=4 * 1024 * 1024)
        interp = Interpreter(engine, seed=5)
        interp.run("a <- matrix(rnorm(64 * 48), 64, 48)\n"
                   "b <- matrix(rnorm(48 * 32), 48, 32)\n"
                   "explain(a %*% b)")
        text = interp.output[-1]
        assert "-- physical plan (level 2) --" in text
        assert "-- analyze" not in text


class TestCostInputsInExplain:
    def test_dense_ops_show_cost_inputs(self):
        s = make_session()
        text = s.explain(ols_node(s))  # plain EXPLAIN, no analyze
        assert "(cost: crossprod_io inner=512 k=256" in text
        assert "trans_a=True" in text
        assert "(cost: solve_io n=256 nrhs=1)" in text

    def test_sparse_ops_show_nnz_and_tile_inputs(self):
        """The satellite fix: sparse plans expose the cost inputs the
        planner actually priced — tile counts and nnz."""
        s = make_session()
        a = s.random_sparse_matrix(512, 512, 0.005, seed=1)
        b = s.random_sparse_matrix(512, 512, 0.005, seed=2)
        v = s.matrix(np.random.default_rng(3).standard_normal((512, 1)))
        text = s.explain(((a @ b) @ v).node)
        assert "(cost: spgemm_io" in text or "(cost: spmm_io" in text
        assert "nnz_a=" in text
        assert "tile_side=" in text
