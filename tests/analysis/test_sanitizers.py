"""Runtime storage-protocol sanitizers: each hazard class is detected.

The :class:`SanitizingBufferPool` is a drop-in BufferPool that turns
protocol violations into loud errors: pins left unbalanced at span
close, zero-copy views outliving their pin, discarding pinned blocks,
and kernel-span reads whose blocks were never announced to the
prefetcher.  The suite seeds each violation deliberately, then proves
clean workloads run silently and that ``StorageConfig(sanitize=True)``
/ ``REPRO_SANITIZE=1`` wire the pool in.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.analysis import (PinLeakError, PinnedDiscardError,
                            SanitizerError, SanitizingBufferPool,
                            UnannouncedReadError, UseAfterUnpinError)
from repro.core import RiotSession
from repro.storage import StorageConfig


def make_session(mem="4MiB", **storage_kw):
    return RiotSession(storage=StorageConfig(
        memory_bytes=mem, sanitize=True, **storage_kw))


@pytest.fixture()
def sess():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        s = make_session()
    yield s
    s.close()


def fresh_block(pool):
    block = pool.device.allocate(1)
    pool.invalidate(block)
    return block


class TestWiring:
    def test_sanitize_config_swaps_the_pool(self, sess):
        assert isinstance(sess.store.pool, SanitizingBufferPool)

    def test_sanitize_false_uses_plain_pool(self):
        # Explicit False beats the REPRO_SANITIZE env default, so this
        # holds even inside a fully sanitized CI run.
        s = RiotSession(storage=StorageConfig(sanitize=False))
        assert not isinstance(s.store.pool, SanitizingBufferPool)
        s.close()

    def test_env_var_drives_the_default(self):
        code = ("from repro.storage import StorageConfig;"
                "import sys; sys.exit(0 if StorageConfig().sanitize"
                " else 1)")
        repo_src = os.path.join(os.path.dirname(__file__),
                                os.pardir, os.pardir, "src")
        env = {"PYTHONPATH": os.path.abspath(repo_src),
               "REPRO_SANITIZE": "1", "PATH": os.environ["PATH"]}
        assert subprocess.run([sys.executable, "-c", code],
                              env=env).returncode == 0
        env["REPRO_SANITIZE"] = "0"
        assert subprocess.run([sys.executable, "-c", code],
                              env=env).returncode == 1

    def test_errors_are_one_family(self):
        for err in (PinLeakError, UseAfterUnpinError,
                    PinnedDiscardError, UnannouncedReadError):
            assert issubclass(err, SanitizerError)
            assert issubclass(err, RuntimeError)


class TestPinLeak:
    def test_unbalanced_pin_detected_at_span_close(self, sess):
        pool, tracer = sess.store.pool, sess.store.tracer
        block = fresh_block(pool)
        with pytest.raises(PinLeakError, match="unbalanced pins"):
            with tracer.span("leaky", cat="kernel"):
                pool.prefetch([block])
                pool.get(block)
                pool.pin(block)
        pool.unpin(block)

    def test_balanced_pins_are_silent(self, sess):
        pool, tracer = sess.store.pool, sess.store.tracer
        block = fresh_block(pool)
        with tracer.span("balanced", cat="kernel"):
            pool.prefetch([block])
            pool.get(block)
            pool.pin(block)
            pool.unpin(block)

    def test_exception_in_span_takes_priority(self, sess):
        # A span that dies mid-kernel reports the original error, not
        # the (inevitable) pin imbalance it leaves behind.
        pool, tracer = sess.store.pool, sess.store.tracer
        block = fresh_block(pool)
        with pytest.raises(KeyError):
            with tracer.span("dying", cat="kernel"):
                pool.prefetch([block])
                pool.get(block)
                pool.pin(block)
                raise KeyError("kernel bug")
        pool.unpin(block)


class TestUnannouncedRead:
    def test_miss_without_announcement_detected(self, sess):
        pool, tracer = sess.store.pool, sess.store.tracer
        announced = fresh_block(pool)
        sneaky = fresh_block(pool)
        with pytest.raises(UnannouncedReadError, match="neither"):
            with tracer.span("kern", cat="kernel"):
                pool.prefetch([announced])
                pool.get(announced)
                pool.get(sneaky)

    def test_announced_miss_is_legal(self, sess):
        pool, tracer = sess.store.pool, sess.store.tracer
        block = fresh_block(pool)
        with tracer.span("kern", cat="kernel"):
            pool.prefetch([block])
            pool.get(block)

    def test_written_blocks_count_as_covered(self, sess):
        pool, tracer = sess.store.pool, sess.store.tracer
        block = fresh_block(pool)
        frame = np.zeros(pool.device.block_size, dtype=np.uint8)
        with tracer.span("kern", cat="kernel"):
            pool.prefetch([fresh_block(pool)])  # span announces
            pool.put(block, frame)
            pool.invalidate(block)
            pool.get(block)  # re-miss of a block this span wrote

    def test_unhinted_kernels_are_exempt(self, sess):
        # Kernels that stream foreign stores skip hinting entirely
        # (hinting=False); a span with zero announcements makes no
        # footprint claim, so its misses are legal.
        pool, tracer = sess.store.pool, sess.store.tracer
        block = fresh_block(pool)
        with tracer.span("naive", cat="kernel"):
            pool.get(block)

    def test_demand_reads_outside_kernel_spans_are_legal(self, sess):
        pool = sess.store.pool
        pool.get(fresh_block(pool))

    def test_clipped_prefetch_does_not_false_positive(self, sess):
        # The announced set records *requested* ids: even when the
        # pool clips speculation, a re-miss of an announced block must
        # not be reported as unannounced.
        pool, tracer = sess.store.pool, sess.store.tracer
        blocks = [fresh_block(pool) for _ in range(4)]
        with tracer.span("kern", cat="kernel"):
            pool.prefetch(blocks)
            for b in blocks:
                pool.invalidate(b)  # force every get to re-miss
            for b in blocks:
                pool.get(b)


class TestViewHazards:
    def test_view_requires_pin(self, sess):
        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        with pytest.raises(UseAfterUnpinError, match="without a pin"):
            pool.block_view(block)

    def test_live_view_blocks_final_unpin(self, sess):
        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        pool.pin(block)
        view = pool.block_view(block)
        with pytest.raises(UseAfterUnpinError, match="still"):
            pool.unpin(block)
        del view
        pool.unpin(block)

    def test_dropped_view_allows_unpin(self, sess):
        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        pool.pin(block)
        view = pool.block_view(block)
        assert not view.flags.writeable
        del view
        pool.unpin(block)

    def test_nested_pins_keep_view_alive(self, sess):
        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        pool.pin(block)
        pool.pin(block)
        view = pool.block_view(block)
        pool.unpin(block)  # still pinned once: fine
        with pytest.raises(UseAfterUnpinError):
            pool.unpin(block)
        del view
        pool.unpin(block)


class TestPinnedDiscard:
    def test_invalidate_of_pinned_block_detected(self, sess):
        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        pool.pin(block)
        with pytest.raises(PinnedDiscardError, match="pinned"):
            pool.invalidate(block)
        pool.unpin(block)
        pool.invalidate(block)  # legal once unpinned


class TestCleanWorkloads:
    """Real kernels run sanitized without tripping anything."""

    def test_dense_matmul(self, sess):
        g = np.random.default_rng(0)
        a = sess.matrix(g.standard_normal((200, 160)))
        b = sess.matrix(g.standard_normal((160, 120)))
        out = sess.values(a @ b)
        assert out.shape == (200, 120)

    def test_sparse_chain(self):
        s = make_session(mem="2MiB")
        coo = np.random.default_rng(1)
        n, nnz = 256, 700
        flat = coo.choice(n * n, size=nnz, replace=False)
        A = s.sparse_matrix(flat // n, flat % n,
                            coo.standard_normal(nnz), (n, n))
        v = s.matrix(coo.standard_normal((n, 1)))
        out = s.values(A @ v)
        assert out.shape == (n, 1)
        s.close()

    def test_solve(self, sess):
        g = np.random.default_rng(2)
        A = sess.matrix(g.standard_normal((96, 96)) + 96 * np.eye(96))
        y = sess.matrix(g.standard_normal((96, 1)))
        x = sess.values(sess.solve(A, y))
        assert np.allclose(
            sess.values(A)[0:96] @ x, sess.values(y), atol=1e-6)

    def test_write_submatrix_rmw_announces_partial_tiles(self):
        # Regression for the violation the sanitizer surfaced: spmm
        # writes non-tile-aligned column panels, and the partial-tile
        # read-modify-write read used to be an unannounced miss inside
        # the kernel span.  write_submatrix now announces the RMW
        # blocks itself.
        s = make_session(mem="2MiB")
        coo = np.random.default_rng(5)
        n, k, nnz = 192, 50, 900  # k=50 never tile-aligned
        flat = coo.choice(n * n, size=nnz, replace=False)
        A = s.sparse_matrix(flat // n, flat % n,
                            coo.standard_normal(nnz), (n, n))
        B = s.matrix(coo.standard_normal((n, k)))
        out = s.values(A @ B)
        assert out.shape == (n, k)
        s.close()


class TestCrossThreadUnpin:
    def test_unpin_from_other_thread_detected(self, sess):
        import threading

        from repro.analysis import CrossThreadUnpinError

        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        pool.pin(block)
        caught: list[BaseException] = []

        def rogue():
            try:
                pool.unpin(block)
            except BaseException as exc:  # noqa: BLE001
                caught.append(exc)

        t = threading.Thread(target=rogue)
        t.start()
        t.join()
        assert len(caught) == 1
        assert isinstance(caught[0], CrossThreadUnpinError)
        assert "never pinned" in str(caught[0])
        # The rogue release must not have touched the real pin count.
        assert pool._pinned[block] == 1
        pool.unpin(block)  # owner releases cleanly
        assert block not in pool._pinned

    def test_each_thread_balances_its_own_pins(self, sess):
        import threading

        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        errors: list[BaseException] = []

        def worker():
            try:
                for _ in range(20):
                    pool.pin(block)
                    pool.unpin(block)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert block not in pool._pinned

    def test_unpin_of_never_pinned_block_still_tolerated(self, sess):
        # Nobody holds a pin: the plain pool tolerates over-release and
        # the sanitizer must not turn that into a cross-thread error.
        pool = sess.store.pool
        block = fresh_block(pool)
        pool.get(block)
        pool.unpin(block)
