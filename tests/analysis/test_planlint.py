"""Static plan verification: every check rejects its hand-broken plan.

Each test builds a real plan through the session, confirms it verifies
clean, breaks exactly one invariant by mutating the plan/DAG in place,
and asserts the verifier rejects it *naming the offending operator*.
Mutations are restored because the session shares input PhysOps across
``plan()`` calls.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.analysis import PlanVerificationError, verify_plan
from repro.core import MatMul, OptimizerConfig, RiotSession, Solve
from repro.storage import StorageConfig


def session(mem_scalars=96 * 1024, **cfg):
    return RiotSession(
        storage=StorageConfig(memory_bytes=mem_scalars * 8,
                              block_size=8192),
        config=OptimizerConfig(**cfg))


def rng():
    return np.random.default_rng(3)


@contextlib.contextmanager
def patched(obj, attr, value):
    saved = getattr(obj, attr)
    setattr(obj, attr, value)
    try:
        yield
    finally:
        setattr(obj, attr, saved)


class TestPredictionSanity:
    def make(self):
        s = session()
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        plan = s.plan((a @ b).node)
        verify_plan(plan, s.storage)
        return s, plan

    def test_negative_predicted_io_rejected(self):
        s, plan = self.make()
        op = next(iter(plan.ops()))
        with patched(op, "predicted_io", -1.0):
            with pytest.raises(PlanVerificationError,
                               match="negative"):
                verify_plan(plan, s.storage)
        verify_plan(plan, s.storage)

    def test_non_finite_predicted_io_rejected(self):
        s, plan = self.make()
        op = next(iter(plan.ops()))
        with patched(op, "predicted_io", float("nan")):
            with pytest.raises(PlanVerificationError,
                               match="not finite"):
                verify_plan(plan, s.storage)

    def test_unregistered_cost_model_rejected(self):
        s, plan = self.make()
        op = next(iter(plan.ops()))
        with patched(op, "cost_model", "made_up_io"):
            with pytest.raises(PlanVerificationError,
                               match="made_up_io.*not registered"):
                verify_plan(plan, s.storage)

    def test_error_names_the_operator(self):
        s, plan = self.make()
        op = plan.root
        with patched(op, "predicted_io", -2.0):
            with pytest.raises(PlanVerificationError,
                               match=op.label().split("[")[0]
                               .replace("+", "\\+")):
                verify_plan(plan, s.storage)


class TestDenseMatMul:
    def test_trans_flag_breaks_conformability(self):
        s = session()
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        plan = s.plan((a @ b).node)
        node = plan.root.node
        assert isinstance(node, MatMul)
        with patched(node, "trans_a", True):
            with pytest.raises(PlanVerificationError,
                               match="non-conformable"):
                verify_plan(plan, s.storage)

    def test_square_budget_violation_names_kernel(self):
        s = session()
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        plan = s.plan((a @ b).node)
        # Sub-tile budgets are legal now (the kernel goes ragged); only
        # a budget that cannot hold three 1 x 1 panels is infeasible.
        verify_plan(plan, memory_scalars=16, block_scalars=1024)
        with pytest.raises(PlanVerificationError,
                           match="square_tile_matmul"):
            verify_plan(plan, memory_scalars=2, block_scalars=1024)

    def test_dense_lowering_of_sparse_pinned_node_rejected(self):
        s = session()
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        plan = s.plan((a @ b).node)
        node = plan.root.node
        # Pin the node sparse *after* planning lowered it dense: the
        # plan no longer honors the pin and must be rejected...
        with patched(node, "kernel", "sparse"):
            # ...but only when the operand really is sparse-stored;
            # the planner's documented fall-through for a sparse pin
            # on dense-stored operands is legal.
            verify_plan(plan, s.storage)


class TestBnlj:
    def make(self):
        # Golden chain-reorder workload: the planner picks BNLJ for
        # the top multiply (wide result, tiny inner dimension).
        s = session()
        g = rng()
        a = s.matrix(g.standard_normal((512, 64)), name="a")
        b = s.matrix(g.standard_normal((64, 512)), name="b")
        c = s.matrix(g.standard_normal((512, 256)), name="c")
        plan = s.plan(((a @ b) @ c).node)
        assert plan.signature().startswith("matmul.bnlj")
        return s, plan

    def test_clean(self):
        s, plan = self.make()
        verify_plan(plan, s.storage)

    def test_row_budget_violation(self):
        from repro.analysis.planlint import _verify_op
        s, plan = self.make()
        # n2 + n3 for the top bnlj is 64 + 256 = 320; below that the
        # row schedule cannot hold one A row plus one result row.  The
        # op-level check is exercised directly because the chain's
        # inner square-tile product has a larger footprint and would
        # trip first in a whole-plan walk.
        _verify_op(plan.root, memory_scalars=320, block_scalars=1024)
        with pytest.raises(PlanVerificationError,
                           match="bnlj.*A row plus one result row"):
            _verify_op(plan.root, memory_scalars=319,
                       block_scalars=1024)


class TestSparseKernels:
    def make(self):
        s = session(mem_scalars=24 * 1024)
        coo = np.random.default_rng(1)
        n, nnz = 512, 1310
        flat = coo.choice(n * n, size=nnz, replace=False)
        A = s.sparse_matrix(flat // n, flat % n,
                            coo.standard_normal(nnz), (n, n), name="A")
        v = s.matrix(coo.standard_normal((n, 1)), name="v")
        plan = s.plan((A @ v).node)
        assert "spmm" in plan.signature()
        return s, plan

    def test_clean(self):
        s, plan = self.make()
        verify_plan(plan, s.storage)

    def test_dense_pin_on_sparse_lowering_rejected(self):
        s, plan = self.make()
        node = plan.root.node
        with patched(node, "kernel", "dense"):
            with pytest.raises(PlanVerificationError,
                               match="pinned kernel='dense'"):
                verify_plan(plan, s.storage)


class TestLU:
    def make(self):
        s = session()
        A = s.matrix(rng().standard_normal((128, 128)), name="A")
        y = s.matrix(rng().standard_normal((128, 1)), name="y")
        plan = s.plan(Solve(A.node, y.node))
        assert plan.signature().startswith("solve.lu")
        return s, plan

    def test_clean(self):
        s, plan = self.make()
        verify_plan(plan, s.storage)

    def test_panel_budget_violation(self):
        s, plan = self.make()
        with pytest.raises(PlanVerificationError,
                           match="solve.*tall LU panel"):
            verify_plan(plan, memory_scalars=128, block_scalars=8 * 8)


class TestFusedEpilogue:
    def make(self):
        s = session()
        X = s.matrix(rng().standard_normal((512, 128)), name="X")
        lam = s.matrix(0.1 * np.eye(128), name="lamI")
        plan = s.plan((X.crossprod() + lam).node)
        assert plan.signature().startswith("matmul+epilogue")
        return s, plan

    def test_clean(self):
        s, plan = self.make()
        verify_plan(plan, s.storage)

    def test_fused_budget_counts_epilogue_inputs(self):
        s, plan = self.make()
        # The fused kernel holds 3 + (#matrix epilogue inputs) panels
        # at once; below a tile-aligned working set it goes ragged, so
        # the only rejected budget cannot hold that many 1 x 1 panels.
        panels = 3 + len(plan.root.matrix_nodes)
        verify_plan(plan, memory_scalars=panels, block_scalars=1024)
        with pytest.raises(PlanVerificationError,
                           match="fused epilogue"):
            verify_plan(plan, memory_scalars=panels - 1,
                        block_scalars=1024)


class TestBudgetSources:
    def test_requires_some_budget_source(self):
        s = session()
        a = s.matrix(rng().standard_normal((32, 32)), name="a")
        plan = s.plan((a @ a).node)
        with pytest.raises(TypeError):
            verify_plan(plan)

    def test_storage_config_is_a_budget_source(self):
        s = session()
        a = s.matrix(rng().standard_normal((32, 32)), name="a")
        verify_plan(s.plan((a @ a).node),
                    StorageConfig(memory_bytes="1MiB"))


class TestStrictWiring:
    def test_strict_execute_verifies(self):
        s = session(strict=True)
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        handle = a @ b
        out = s.values(handle)
        np.testing.assert_allclose(
            out, rng().standard_normal((96, 64)) @
            rng().standard_normal((64, 96)), rtol=1e-10)

    def test_strict_execute_rejects_broken_plan(self):
        s = session(strict=True)
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        plan = s.plan((a @ b).node)
        op = next(iter(plan.ops()))
        with patched(op, "predicted_io", -1.0):
            with pytest.raises(PlanVerificationError):
                s.evaluator.execute(plan)

    def test_strict_explain_verifies_render_path(self):
        s = session(strict=True)
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        text = s.explain(a @ b)
        assert "physical plan" in text

    def test_default_is_lenient(self):
        s = session()
        a = s.matrix(rng().standard_normal((96, 64)), name="a")
        b = s.matrix(rng().standard_normal((64, 96)), name="b")
        plan = s.plan((a @ b).node)
        op = next(iter(plan.ops()))
        with patched(op, "predicted_io", -1.0):
            s.evaluator.execute(plan)  # non-strict: no verification
