"""The RPR lint rules: each fixture trips exactly its own rule.

Every rule gets (a) a minimal offending snippet that must produce the
rule's code and nothing else, (b) a near-miss that must stay clean, and
the suite ends with the self-hosting check: the shipped ``src/repro``
tree lints green.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import repro
from repro.analysis import ALL_RULES, lint_file, run_lint


def lint_source(tmp_path, source, name="snippet.py", select=None):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, set(select) if select else None)


def codes(findings):
    return sorted({f.code for f in findings})


class TestRPR001DeviceConstruction:
    def test_blockdevice_call_flagged(self, tmp_path):
        found = lint_source(tmp_path, "dev = BlockDevice(block_size=1)\n")
        assert codes(found) == ["RPR001"]
        assert "BlockDevice" in found[0].message

    def test_filedevice_and_pagefile_flagged(self, tmp_path):
        found = lint_source(
            tmp_path,
            "a = FileBlockDevice(path='x')\n"
            "b = PageFile(dev, name='t')\n")
        assert [f.code for f in found] == ["RPR001", "RPR001"]

    def test_storage_package_exempt(self, tmp_path):
        found = lint_source(
            tmp_path, "dev = BlockDevice()\n",
            name="storage/pagefile.py")
        assert found == []

    def test_mention_in_string_is_clean(self, tmp_path):
        # The grep test this replaces flagged docstrings; the AST
        # linter must not.
        found = lint_source(
            tmp_path,
            '"""Docs about BlockDevice(block_size) usage."""\n'
            "x = 'PageFile(dev)'\n")
        assert found == []

    def test_factory_call_is_clean(self, tmp_path):
        found = lint_source(
            tmp_path,
            "from repro.storage import new_pagefile\n"
            "f = new_pagefile(dev, name='t')\n")
        assert found == []


class TestRPR003SpanDiscipline:
    def test_bare_span_call_flagged(self, tmp_path):
        found = lint_source(tmp_path, "span = tracer.span('x')\n")
        assert codes(found) == ["RPR003"]

    def test_with_span_is_clean(self, tmp_path):
        found = lint_source(
            tmp_path,
            "with tracer.span('x', cat='kernel'):\n    pass\n")
        assert found == []

    def test_with_span_as_target_is_clean(self, tmp_path):
        found = lint_source(
            tmp_path,
            "with tracer.span('x') as sp:\n    pass\n")
        assert found == []

    def test_span_inside_helper_call_flagged(self, tmp_path):
        # contextlib.ExitStack-style indirection hides the close.
        found = lint_source(
            tmp_path, "stack.enter_context(tracer.span('x'))\n")
        assert codes(found) == ["RPR003"]


class TestRPR004Determinism:
    def test_time_call_in_costs_flagged(self, tmp_path):
        found = lint_source(
            tmp_path,
            "import time\n"
            "def model():\n    return time.perf_counter()\n",
            name="core/costs.py")
        assert codes(found) == ["RPR004"]

    def test_numpy_random_in_pass_flagged(self, tmp_path):
        found = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def jitter():\n    return np.random.random()\n",
            name="core/passes/fold.py")
        assert codes(found) == ["RPR004"]

    def test_bare_import_flagged(self, tmp_path):
        found = lint_source(
            tmp_path,
            "from time import perf_counter\n"
            "def f():\n    return perf_counter()\n",
            name="core/planner.py")
        assert codes(found) == ["RPR004"]

    def test_rule_scoped_to_costing_files(self, tmp_path):
        # Wall-clock use is fine outside cost models / passes — the
        # tracer reads clocks by design.
        found = lint_source(
            tmp_path,
            "import time\n"
            "def now():\n    return time.perf_counter()\n",
            name="obs/tracer.py")
        assert found == []

    def test_deterministic_numpy_is_clean(self, tmp_path):
        found = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(x):\n    return np.ceil(x / 2)\n",
            name="core/costs.py")
        assert found == []


class TestRPR002CostModelRegistry:
    PLAN = (
        "class PhysOp:\n"
        "    cost_model = None\n"
        "class GoodOp(PhysOp):\n"
        "    cost_model = 'stream_io'\n"
        "class BadOp(PhysOp):\n"
        "    cost_model = 'unregistered_io'\n"
    )
    COSTS = (
        "def stream_io():\n    return 0\n"
        "COST_MODELS = {'stream_io': stream_io}\n"
    )

    def make_pkg(self, tmp_path, planner_body):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "plan.py").write_text(self.PLAN)
        (tmp_path / "core" / "costs.py").write_text(self.COSTS)
        planner = tmp_path / "core" / "planner.py"
        planner.write_text(planner_body)
        return planner

    def test_registered_op_clean(self, tmp_path):
        planner = self.make_pkg(
            tmp_path, "from .plan import GoodOp\nop = GoodOp()\n")
        assert lint_file(planner) == []

    def test_unregistered_op_flagged(self, tmp_path):
        planner = self.make_pkg(
            tmp_path, "from .plan import BadOp\nop = BadOp()\n")
        found = lint_file(planner)
        assert codes(found) == ["RPR002"]
        assert "unregistered_io" in found[0].message

    def test_unregistered_override_flagged(self, tmp_path):
        planner = self.make_pkg(
            tmp_path,
            "from .plan import GoodOp\n"
            "op = GoodOp()\n"
            "op.cost_model = 'not_there_io'\n")
        found = lint_file(planner)
        assert codes(found) == ["RPR002"]

    def test_rule_only_runs_in_planner(self, tmp_path):
        self.make_pkg(tmp_path, "pass\n")
        other = tmp_path / "core" / "chain.py"
        other.write_text("op.cost_model = 'not_there_io'\n")
        assert lint_file(other) == []


class TestRPR005CodecDiscipline:
    def test_encode_call_flagged(self, tmp_path):
        found = lint_source(
            tmp_path,
            "payload = codec.encode_tile(tile)\n",
            name="linalg/matmul.py")
        assert codes(found) == ["RPR005"]
        assert "encode_tile" in found[0].message

    def test_decode_call_flagged(self, tmp_path):
        found = lint_source(
            tmp_path, "tile = c.decode_tile(buf, dt, 16)\n")
        assert codes(found) == ["RPR005"]

    def test_storage_package_exempt(self, tmp_path):
        found = lint_source(
            tmp_path,
            "payload = codec.encode_tile(tile)\n",
            name="storage/tile_store.py")
        assert found == []

    def test_mention_in_string_is_clean(self, tmp_path):
        found = lint_source(
            tmp_path,
            '"""Codecs expose encode_tile(tile) -> bytes."""\n'
            "x = 'decode_tile(buf)'\n")
        assert found == []

    def test_other_codec_api_is_clean(self, tmp_path):
        # Only the tile wire protocol is storage-internal; reading a
        # codec's metadata (name, ratio) anywhere is fine.
        found = lint_source(
            tmp_path,
            "from repro.storage import get_codec\n"
            "ratio = get_codec('delta+zstd').ratio_estimate\n")
        assert found == []


class TestSelectAndErrors:
    def test_select_filters_rules(self, tmp_path):
        source = ("dev = BlockDevice()\n"
                  "span = tracer.span('x')\n")
        only1 = lint_source(tmp_path, source, select={"RPR001"})
        assert codes(only1) == ["RPR001"]
        only3 = lint_source(tmp_path, source, select={"RPR003"})
        assert codes(only3) == ["RPR003"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        found = lint_source(tmp_path, "def broken(:\n")
        assert codes(found) == ["RPR000"]

    def test_finding_render_format(self, tmp_path):
        found = lint_source(tmp_path, "dev = BlockDevice()\n")
        rendered = found[0].render()
        assert ": RPR001 BlockDevice() constructed outside" in rendered
        assert ":1:7:" in rendered  # 1-based line, 1-based column


class TestSelfHosting:
    def test_shipped_tree_lints_green(self):
        root = pathlib.Path(repro.__file__).parent
        findings = run_lint([root])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_all_rules_constant_matches_docs(self):
        assert ALL_RULES == ("RPR001", "RPR002", "RPR003", "RPR004",
                             "RPR005")


class TestCLI:
    def run_cli(self, *args):
        repo = pathlib.Path(__file__).resolve().parents[2]
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin"})

    def test_clean_tree_exits_zero(self):
        repo = pathlib.Path(__file__).resolve().parents[2]
        proc = self.run_cli(str(repo / "src"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stderr

    def test_seeded_violation_exits_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("dev = BlockDevice(block_size=4096)\n")
        proc = self.run_cli(str(bad))
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout

    def test_unknown_rule_rejected(self, tmp_path):
        bad = tmp_path / "f.py"
        bad.write_text("x = 1\n")
        proc = self.run_cli("--select", "RPR999", str(bad))
        assert proc.returncode == 2
