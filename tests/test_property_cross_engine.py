"""Property test: random R programs agree across engines.

Hypothesis generates small elementwise/subscript programs; the reference
(numpy) engine defines the semantics, and the deferred engines must match
its numbers — the transparency property, fuzzed rather than hand-picked.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import ALL_ENGINES
from repro.rlang import Interpreter, NumpyEngine

N = 500

_binops = st.sampled_from(["+", "-", "*"])
_unaries = st.sampled_from(["sqrt(abs({}))", "abs({})", "({})^2"])
_consts = st.floats(min_value=-5, max_value=5, allow_nan=False,
                    allow_infinity=False).map(lambda v: f"{v:.3f}")


@st.composite
def expressions(draw, depth=0):
    """A random R expression over the free variables x and y."""
    if depth >= 3:
        return draw(st.sampled_from(["x", "y"]))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(st.sampled_from(["x", "y"]))
    if kind == 1:
        op = draw(_binops)
        left = draw(expressions(depth=depth + 1))
        right = draw(expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if kind == 2:
        op = draw(_binops)
        inner = draw(expressions(depth=depth + 1))
        const = draw(_consts)
        return f"({inner} {op} {const})"
    template = draw(_unaries)
    return template.format(draw(expressions(depth=depth + 1)))


def _run(engine, program, x, y):
    interp = Interpreter(engine, seed=11)
    interp.env["x"] = engine.make_vector(x)
    interp.env["y"] = engine.make_vector(y)
    interp.run(program)
    return interp


def _values(engine, interp, name):
    obj = interp.env[name]
    if hasattr(obj, "data"):
        return np.asarray(obj.data, dtype=float)
    if hasattr(engine, "vector_values"):
        return engine.vector_values(obj)
    return np.asarray(engine.session.values(obj.node), dtype=float)


@given(expr=expressions(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_random_expression_all_engines(expr, data):
    rng = np.random.default_rng(1234)
    x = rng.uniform(-10, 10, N)
    y = rng.uniform(-10, 10, N)
    lo = data.draw(st.integers(1, N // 2))
    hi = data.draw(st.integers(lo, N))
    program = f"r <- {expr}\nq <- r[{lo}:{hi}]\n"
    reference = _run(NumpyEngine(), program, x, y)
    ref_r = np.asarray(reference.env["r"].data, dtype=float)
    ref_q = np.asarray(reference.env["q"].data, dtype=float)
    for name in ("riotng", "riotdb"):
        engine = ALL_ENGINES[name](memory_bytes=2 * 1024 * 1024)
        interp = _run(engine, program, x, y)
        got_r = _values(engine, interp, "r")
        got_q = _values(engine, interp, "q")
        assert np.allclose(got_r, ref_r, equal_nan=True,
                           rtol=1e-9, atol=1e-9), (name, expr)
        assert np.allclose(got_q, ref_q, equal_nan=True,
                           rtol=1e-9, atol=1e-9), (name, expr)


@given(expr=expressions(), threshold=st.floats(-5, 5, allow_nan=False),
       replacement=st.floats(-5, 5, allow_nan=False))
@settings(max_examples=15, deadline=None)
def test_random_masked_update_all_engines(expr, threshold, replacement):
    rng = np.random.default_rng(77)
    x = rng.uniform(-10, 10, N)
    y = rng.uniform(-10, 10, N)
    program = (f"r <- {expr}\n"
               f"r[r > {threshold:.3f}] <- {replacement:.3f}\n")
    reference = _run(NumpyEngine(), program, x, y)
    ref_r = np.asarray(reference.env["r"].data, dtype=float)
    for name in ("riotng", "riotdb"):
        engine = ALL_ENGINES[name](memory_bytes=2 * 1024 * 1024)
        interp = _run(engine, program, x, y)
        got_r = _values(engine, interp, "r")
        assert np.allclose(got_r, ref_r, equal_nan=True,
                           rtol=1e-9, atol=1e-9), (name, expr)
