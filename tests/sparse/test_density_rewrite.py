"""Density propagation through the DAG and sparsity-aware rewriting."""

import numpy as np
import pytest

from repro.core import RiotSession
from repro.core.chain import optimal_order, optimal_order_sparse
from repro.core.expr import (ArrayInput, Map, MatMul, Scalar, Subscript,
                             SubscriptAssign, Range, Transpose)
from repro.core.rewrite import Rewriter
from repro.sparse import SparseTiledMatrix
from repro.storage import StorageConfig


@pytest.fixture
def session():
    return RiotSession(
        storage=StorageConfig(memory_bytes=8 * 1024 * 1024))


def _sparse_input(session, m, n, density, seed=0):
    return session.random_sparse_matrix(m, n, density, seed=seed).node


class TestDensityPropagation:
    def test_array_input_carries_exact_density(self, session):
        node = _sparse_input(session, 200, 200, 0.01)
        assert isinstance(node, ArrayInput)
        assert node.density == pytest.approx(0.01, rel=0.01)
        assert node.estimated_nnz == pytest.approx(400, rel=0.01)

    def test_dense_input_density_is_one(self, session):
        v = session.vector(np.ones(100))
        assert v.node.density == 1.0

    def test_scalar_zero_is_density_zero(self):
        assert Scalar(0.0).density == 0.0
        assert Scalar(3.0).density == 1.0

    def test_product_intersects_densities(self, session):
        a = _sparse_input(session, 256, 256, 0.1, seed=1)
        b = _sparse_input(session, 256, 256, 0.2, seed=2)
        assert Map("*", a, b).density == pytest.approx(0.02, rel=0.05)

    def test_sum_unions_densities(self, session):
        a = _sparse_input(session, 256, 256, 0.1, seed=1)
        b = _sparse_input(session, 256, 256, 0.2, seed=2)
        assert Map("+", a, b).density == pytest.approx(0.3, rel=0.05)
        dense = Map("+", a, Map("+", b, b))
        assert Map("+", dense, dense).density == 1.0  # clamped

    def test_zero_preserving_unaries_pass_density(self, session):
        a = _sparse_input(session, 256, 256, 0.1, seed=1)
        assert Map("sqrt", a).density == a.density
        assert Map("neg", a).density == a.density
        # exp(0) == 1: density collapses to dense.
        assert Map("exp", a).density == 1.0

    def test_scalar_multiply_keeps_density(self, session):
        a = _sparse_input(session, 256, 256, 0.1, seed=1)
        assert Map("*", Scalar(2.5), a).density == a.density
        assert Map("*", Scalar(0.0), a).density == 0.0

    def test_matmul_uses_independence_estimate(self, session):
        a = _sparse_input(session, 256, 256, 0.01, seed=1)
        b = _sparse_input(session, 256, 256, 0.01, seed=2)
        node = MatMul(a, b)
        expect = 1.0 - (1.0 - 0.01 * 0.01) ** 256
        assert node.density == pytest.approx(expect, rel=0.05)

    def test_transpose_and_subscript_pass_through(self, session):
        a = _sparse_input(session, 256, 256, 0.1, seed=1)
        assert Transpose(a).density == a.density
        v = session.vector(np.r_[np.zeros(90), np.ones(10)])
        sub = Subscript(v.node, Range(1, 5))
        assert sub.density == v.node.density

    def test_assigning_zero_keeps_base_density(self, session):
        v = session.vector(np.ones(100))
        mask = (v > 0.5).node
        cleared = SubscriptAssign(v.node, mask, Scalar(0.0),
                                  logical_mask=True)
        assert cleared.density == v.node.density
        filled = SubscriptAssign(v.node, mask, Scalar(2.0),
                                 logical_mask=True)
        assert filled.density == 1.0

    def test_handle_exposes_density(self, session):
        A = session.random_sparse_matrix(128, 128, 0.05, seed=3)
        assert A.density == pytest.approx(0.05, rel=0.05)
        assert A.estimated_nnz == pytest.approx(0.05 * 128 * 128,
                                                rel=0.05)


class TestSparseChainOrder:
    def test_sparse_sparse_vector_goes_vector_first(self):
        # (A %*% B) %*% v with sparse A, B: multiplying B v first costs
        # d*n^2 expected multiplies instead of d^2*n^3 + ... for (AB)v.
        dims = [1000, 1000, 1000, 1]
        order = optimal_order_sparse(dims, [0.01, 0.01, 1.0])
        assert order == (0, (1, 2))

    def test_sparse_dp_can_disagree_with_dense_dp(self):
        # Dense flops prefer A(BC) here; with A at 0.1% density the
        # cheap sparse product (AB) first wins on expected work.
        dims = [200, 200, 200, 50]
        densities = [0.001, 1.0, 1.0]
        assert optimal_order(dims) == (0, (1, 2))
        assert optimal_order_sparse(dims, densities) == ((0, 1), 2)

    def test_all_dense_matches_classic_dp(self):
        dims = [100_000, 50_000, 100_000, 100_000]
        assert optimal_order_sparse(dims, [1.0, 1.0, 1.0]) == \
            optimal_order(dims)

    def test_density_length_validated(self):
        with pytest.raises(ValueError):
            optimal_order_sparse([10, 10, 10], [0.5])


class TestRewriter:
    def test_chain_rewrite_picks_nnz_cheap_order(self, session):
        n = 256
        A = session.random_sparse_matrix(n, n, 0.005, seed=1)
        B = session.random_sparse_matrix(n, n, 0.005, seed=2)
        v = session.matrix(np.random.default_rng(3)
                           .standard_normal((n, 1)))
        root = (A @ B) @ v
        optimized = session.optimize(root.node)
        assert "chain-reorder-sparse" in session.rewriter.applied
        # Right-deep: the top multiply's left child is the A input.
        assert isinstance(optimized, MatMul)
        assert optimized.children[0] is A.node
        assert isinstance(optimized.children[1], MatMul)

    def test_kernel_select_sparse_for_sparse_operand(self, session):
        A = session.random_sparse_matrix(512, 512, 0.005, seed=1)
        B = session.matrix(np.random.default_rng(2)
                           .standard_normal((512, 64)))
        optimized = session.optimize((A @ B).node)
        assert optimized.kernel == "sparse"
        assert "kernel-select:sparse" in session.rewriter.applied

    def test_kernel_select_dense_for_near_dense_operand(self, session):
        A = session.random_sparse_matrix(256, 256, 0.6, seed=1)
        B = session.matrix(np.random.default_rng(2)
                           .standard_normal((256, 256)))
        optimized = session.optimize((A @ B).node)
        assert optimized.kernel == "dense"

    def test_dense_matmul_untouched(self, session):
        A = session.matrix(np.eye(64))
        B = session.matrix(np.eye(64))
        optimized = session.optimize((A @ B).node)
        assert optimized.kernel == "auto"
        assert not any(r.startswith("kernel-select")
                       for r in session.rewriter.applied)

    def test_kernel_select_respects_explicit_hint(self, session):
        A = session.random_sparse_matrix(512, 512, 0.005, seed=1)
        B = session.matrix(np.random.default_rng(2)
                           .standard_normal((512, 64)))
        pinned = MatMul(A.node, B.node, kernel="dense")
        optimized = Rewriter().optimize(pinned)
        assert optimized.kernel == "dense"

    def test_disabled_kernel_select(self, session):
        session.rewriter.enable_kernel_select = False
        A = session.random_sparse_matrix(512, 512, 0.005, seed=1)
        B = session.matrix(np.random.default_rng(2)
                           .standard_normal((512, 64)))
        optimized = session.optimize((A @ B).node)
        assert optimized.kernel == "auto"


class TestEndToEnd:
    def test_sparse_chain_executes_correctly(self, session):
        n = 256
        A = session.random_sparse_matrix(n, n, 0.01, seed=1)
        B = session.random_sparse_matrix(n, n, 0.01, seed=2)
        v = session.matrix(np.random.default_rng(3)
                           .standard_normal((n, 1)))
        got = ((A @ B) @ v).values()
        expect = (A.values() @ B.values()) @ v.values()
        assert np.allclose(got, expect)

    def test_nnz_cheap_order_saves_measured_io(self):
        """The acceptance scenario: on a sparse-sparse-vector chain the
        rewritten (right-deep) plan does strictly less I/O than the
        left-deep program order."""
        n = 512
        density = 0.005

        def run(optimize):
            s = RiotSession(storage=StorageConfig(
                memory_bytes=24 * 8192), optimize=optimize)
            A = s.random_sparse_matrix(n, n, density, seed=1)
            B = s.random_sparse_matrix(n, n, density, seed=2)
            v = s.matrix(np.random.default_rng(3)
                         .standard_normal((n, 1)))
            chain = (A @ B) @ v
            s.store.pool.clear()  # cold start: measure real I/O
            s.reset_stats()
            got = chain.values()
            return s.io_stats.total, got

        io_opt, got_opt = run(True)
        io_raw, got_raw = run(False)
        assert np.allclose(got_opt, got_raw)
        assert io_opt < io_raw

    def test_sparse_times_sparse_materializes_sparse(self, session):
        A = session.random_sparse_matrix(512, 512, 0.002, seed=1)
        B = session.random_sparse_matrix(512, 512, 0.002, seed=2)
        result = session.force((A @ B).node)
        assert isinstance(result, SparseTiledMatrix)
        assert np.allclose(result.to_numpy(), A.values() @ B.values())

    def test_forced_dense_hint_densifies(self, session):
        A = session.random_sparse_matrix(128, 128, 0.05, seed=1)
        B = session.matrix(np.eye(128))
        node = MatMul(A.node, B.node, kernel="dense")
        result = session.evaluator.force(node)
        assert not isinstance(result, SparseTiledMatrix)
        assert np.allclose(result.to_numpy(), A.values())

    def test_reduce_over_sparse_product(self, session):
        A = session.random_sparse_matrix(256, 256, 0.01, seed=1)
        B = session.random_sparse_matrix(256, 256, 0.01, seed=2)
        total = (A @ B).sum()
        assert total == pytest.approx((A.values() @ B.values()).sum())

    def test_elementwise_map_over_sparse_result(self, session):
        A = session.random_sparse_matrix(128, 128, 0.02, seed=1)
        B = session.random_sparse_matrix(128, 128, 0.02, seed=2)
        doubled = (A @ B) * 2.0
        assert np.allclose(doubled.values(),
                           2.0 * (A.values() @ B.values()))

    def test_transpose_of_sparse_input(self, session):
        A = session.random_sparse_matrix(96, 160, 0.05, seed=4)
        assert np.allclose(A.T.values(), A.values().T)
