"""Tests for the CSR-tiled sparse matrix store."""

import numpy as np
import pytest

from repro.sparse import (SparseTiledMatrix, csr_from_dense, csr_to_dense,
                          tile_words)
from repro.sparse.sparse_matrix import default_sparse_tile_shape
from repro.storage import ArrayStore


def _random_sparse(rng, m, n, density):
    return (rng.random((m, n)) < density) * rng.standard_normal((m, n))


class TestCSRCodec:
    def test_roundtrip(self, rng):
        tile = _random_sparse(rng, 17, 23, 0.2)
        indptr, indices, data = csr_from_dense(tile)
        assert indptr[0] == 0 and indptr[-1] == data.size
        assert np.array_equal(csr_to_dense(indptr, indices, data,
                                           tile.shape), tile)

    def test_empty_tile(self):
        indptr, indices, data = csr_from_dense(np.zeros((4, 4)))
        assert data.size == 0
        assert np.array_equal(indptr, np.zeros(5, dtype=np.int64))

    def test_tile_words_exact(self):
        # 1 header + (rows+1) indptr + nnz indices + nnz data words.
        assert tile_words(rows=32, nnz=10) == 1 + 33 + 10 + 10


class TestConstruction:
    def test_from_dense_roundtrip(self, store, rng):
        dense = _random_sparse(rng, 300, 200, 0.05)
        sp = SparseTiledMatrix.from_dense(store, dense)
        assert np.allclose(sp.to_numpy(), dense)
        assert sp.nnz == np.count_nonzero(dense)

    def test_from_coo_sums_duplicates_and_drops_zeros(self, store):
        i = [0, 0, 1, 2, 2]
        j = [1, 1, 2, 0, 3]
        x = [1.0, 2.0, 0.0, 5.0, -1.0]
        sp = SparseTiledMatrix.from_coo(store, i, j, x, (4, 5))
        expect = np.zeros((4, 5))
        np.add.at(expect, (np.asarray(i), np.asarray(j)), np.asarray(x))
        assert np.allclose(sp.to_numpy(), expect)
        assert sp.nnz == 3  # duplicate summed to one entry, zero dropped

    def test_from_coo_cancelling_duplicates_vanish(self, store):
        sp = SparseTiledMatrix.from_coo(store, [1, 1], [1, 1],
                                        [2.5, -2.5], (3, 3))
        assert sp.nnz == 0
        assert sp.data_pages == 0

    def test_from_coo_rejects_out_of_range(self, store):
        with pytest.raises(IndexError):
            SparseTiledMatrix.from_coo(store, [5], [0], [1.0], (4, 4))

    def test_from_coo_rejects_misaligned_triplets(self, store):
        with pytest.raises(ValueError):
            SparseTiledMatrix.from_coo(store, [0, 1], [0], [1.0], (4, 4))

    def test_default_tile_is_larger_than_dense(self, store):
        # A CSR tile's pages scale with nnz, so the default grid uses
        # 4x the dense square side (128 at 8 KB blocks).
        assert default_sparse_tile_shape((10_000, 10_000),
                                        store.scalars_per_block) == \
            (128, 128)
        sp = SparseTiledMatrix.from_coo(store, [0], [0], [1.0],
                                        (1000, 1000))
        assert sp.tile_shape == (128, 128)


class TestTileDirectory:
    def test_empty_tiles_occupy_zero_pages(self, store):
        # One nonzero in one corner of a 512x512 matrix: exactly one
        # directory entry, one page, 15 empty tiles for free.
        sp = SparseTiledMatrix.from_coo(store, [0], [0], [7.0],
                                        (512, 512))
        assert sp.grid == (4, 4)
        assert len(sp.directory) == 1
        assert sp.data_pages == 1
        assert sp.tile_blocks(3, 3) == []
        assert sp.tile_nnz(0, 0) == 1 and sp.tile_nnz(3, 3) == 0

    def test_directory_matches_contents(self, store, rng):
        dense = _random_sparse(rng, 400, 300, 0.01)
        sp = SparseTiledMatrix.from_dense(store, dense)
        th, tw = sp.tile_shape
        for (ti, tj), (_, _, nnz) in sp.directory.items():
            block = dense[ti * th: (ti + 1) * th, tj * tw: (tj + 1) * tw]
            assert nnz == np.count_nonzero(block)
        assert sp.nnz == sum(e[2] for e in sp.directory.values())

    def test_row_and_col_indexes(self, store):
        sp = SparseTiledMatrix.from_coo(
            store, [0, 0, 200], [0, 200, 0], [1.0, 2.0, 3.0], (256, 256))
        assert sp.nonempty_in_row(0) == [0, 1]
        assert sp.nonempty_in_row(1) == [0]
        assert sp.nonempty_in_col(0) == [0, 1]
        assert sp.nonempty_in_col(1) == [0]

    def test_tiles_append_in_linearization_order(self, store, rng):
        dense = _random_sparse(rng, 512, 512, 0.01)
        sp = SparseTiledMatrix.from_dense(store, dense)
        order = [sp.linearization.index(ti, tj)
                 for ti, tj in sp.nonempty_tiles()]
        assert order == sorted(order)

    def test_read_tile_densifies_with_edge_clipping(self, store, rng):
        dense = _random_sparse(rng, 200, 150, 0.1)  # 128-tiles clip
        sp = SparseTiledMatrix.from_dense(store, dense)
        for ti, tj in sp.tiles():
            r0, r1, c0, c1 = sp.tile_bounds(ti, tj)
            assert np.array_equal(sp.read_tile(ti, tj),
                                  dense[r0:r1, c0:c1])

    def test_double_append_rejected(self, store):
        sp = SparseTiledMatrix.from_coo(store, [0], [0], [1.0],
                                        (64, 64))
        with pytest.raises(ValueError):
            sp.append_tile_dense(0, 0, np.ones((64, 64)))


class TestIOAccounting:
    def test_cold_read_costs_directory_pages(self, rng):
        store = ArrayStore(memory_bytes=16 * 8192)
        dense = _random_sparse(rng, 512, 512, 0.02)
        sp = SparseTiledMatrix.from_dense(store, dense)
        store.pool.clear()
        store.reset_stats()
        sp.to_numpy()
        assert store.device.stats.reads == sp.data_pages

    def test_sparse_pages_far_below_dense(self, store, rng):
        n = 1024
        dense = _random_sparse(rng, n, n, 0.001)
        sp = SparseTiledMatrix.from_dense(store, dense)
        dense_pages = (n * n) // store.scalars_per_block
        assert sp.data_pages * 10 < dense_pages

    def test_to_dense_matches(self, store, rng):
        dense = _random_sparse(rng, 300, 300, 0.05)
        sp = SparseTiledMatrix.from_dense(store, dense)
        assert np.allclose(sp.to_dense().to_numpy(), dense)

    def test_drop_releases_everything(self, store):
        sp = SparseTiledMatrix.from_coo(store, [0, 100], [0, 100],
                                        [1.0, 2.0], (256, 256))
        sp.drop()
        assert sp.nnz == 0 and not sp.directory
        assert sp.file.num_pages == 0
