"""The ``sparseMatrix(i, j, x, dims)`` builtin, end to end through R.

Transparency (§4) is the contract under test: the same source runs on
the next-gen engine (which stores CSR tiles and routes ``%*%`` through
the sparse kernels) and on the dense reference engine, printing the
same answer.
"""

import numpy as np
import pytest

from repro.core.engine import RiotNGEngine
from repro.rlang import Interpreter, NumpyEngine, RError
from repro.sparse import SparseTiledMatrix


@pytest.fixture
def ng():
    return Interpreter(RiotNGEngine(memory_bytes=8 * 1024 * 1024),
                       seed=7)


@pytest.fixture
def ref():
    return Interpreter(NumpyEngine(), seed=7)


SOURCE = """
A <- sparseMatrix(c(1, 2, 4), c(2, 3, 1), c(5, 7, -2), c(4, 3))
print(A %*% matrix(1, 3, 2))
"""


class TestBuiltin:
    def test_ng_engine_stores_csr_tiles(self, ng):
        ng.run("A <- sparseMatrix(c(1, 400), c(1, 300), "
               "c(2.5, -1), c(512, 512))")
        handle = ng.env["A"]
        data = handle.node.data
        assert isinstance(data, SparseTiledMatrix)
        assert data.nnz == 2
        assert handle.node.density == pytest.approx(2 / 512 ** 2)
        got = data.to_numpy()
        assert got[0, 0] == 2.5 and got[399, 299] == -1.0

    def test_one_based_indices(self, ng):
        ng.run("A <- sparseMatrix(c(1), c(1), c(9), c(2, 2))")
        assert ng.env["A"].node.data.to_numpy()[0, 0] == 9.0

    def test_duplicates_summed(self, ng):
        ng.run("A <- sparseMatrix(c(1, 1), c(1, 1), c(2, 3), c(2, 2))")
        assert ng.env["A"].node.data.to_numpy()[0, 0] == 5.0

    def test_dims_default_to_max_index(self, ng):
        ng.run("A <- sparseMatrix(c(3), c(5), c(1))")
        assert ng.env["A"].node.shape == (3, 5)

    def test_out_of_bounds_rejected(self, ng):
        with pytest.raises(RError):
            ng.run("A <- sparseMatrix(c(5), c(1), c(1), c(4, 4))")

    def test_missing_args_rejected(self, ng):
        with pytest.raises(RError):
            ng.run("A <- sparseMatrix(c(1), c(1))")

    def test_reference_engine_gets_dense_equivalent(self, ref):
        ref.run("A <- sparseMatrix(c(1, 2), c(2, 1), c(3, 4), c(2, 2))")
        assert np.allclose(ref.env["A"].data,
                           [[0.0, 3.0], [4.0, 0.0]])


class TestTransparency:
    def test_same_printout_on_both_engines(self, ng, ref):
        ng.run(SOURCE)
        ref.run(SOURCE)
        assert ng.output == ref.output

    def test_sparse_matmul_through_interpreter(self, ng):
        ng.run("""
A <- sparseMatrix(c(1, 2, 100), c(2, 3, 50), c(5, 7, 2), c(256, 256))
v <- matrix(1, 256, 1)
y <- A %*% v
""")
        got = ng.engine.session.values(ng.env["y"].node)
        expect = np.zeros((256, 1))
        expect[0, 0], expect[1, 0], expect[99, 0] = 5.0, 7.0, 2.0
        assert np.allclose(got, expect)

    def test_sum_reduction_agrees(self, ng, ref):
        src = ("A <- sparseMatrix(c(1, 3), c(2, 4), c(1.5, 2.5), "
               "c(8, 8))\nprint(sum(A))")
        ng.run(src)
        ref.run(src)
        assert ng.output == ref.output
