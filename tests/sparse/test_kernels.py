"""SpMV/SpMM/SpGEMM: numerics vs numpy, I/O vs the nnz cost models.

The numerical references are plain numpy dense products (scipy-free);
the I/O references are the nnz-parameterized analytic models of
:mod:`repro.core.costs`, checked the same way
``tests/linalg/test_cost_agreement.py`` validates the dense algorithms:
measured block totals within 0.5x-2.0x of the model.
"""

import numpy as np
import pytest

from repro.core.costs import spgemm_io, spmm_io, spmv_io
from repro.sparse import SparseTiledMatrix, spgemm, spmm, spmv
from repro.storage import ArrayStore


def _random_sparse(m, n, density, seed):
    rng = np.random.default_rng(seed)
    return (rng.random((m, n)) < density) * rng.standard_normal((m, n))


class TestNumerics:
    @pytest.mark.parametrize("density", [0.0, 0.001, 0.05, 0.3])
    def test_spmv_matches_numpy(self, store, rng, density):
        m, l = 500, 700
        dense = _random_sparse(m, l, density, seed=1)
        a = SparseTiledMatrix.from_dense(store, dense)
        xv = rng.standard_normal(l)
        x = store.vector_from_numpy(xv)
        y = spmv(store, a, x)
        assert np.allclose(y.to_numpy(), dense @ xv)

    def test_spmv_output_aligns_with_chunk_grid(self, store, rng):
        # 128-row block rows never align with 1024-scalar chunks; the
        # streaming writer must still produce every chunk exactly once.
        m, l = 2500, 300
        dense = _random_sparse(m, l, 0.02, seed=2)
        a = SparseTiledMatrix.from_dense(store, dense)
        xv = rng.standard_normal(l)
        y = spmv(store, a, store.vector_from_numpy(xv))
        assert np.allclose(y.to_numpy(), dense @ xv)

    def test_spmv_rejects_nonconformable(self, store):
        a = SparseTiledMatrix.from_coo(store, [0], [0], [1.0], (4, 5))
        with pytest.raises(ValueError):
            spmv(store, a, store.vector_from_numpy(np.zeros(7)))

    @pytest.mark.parametrize("density", [0.0, 0.01, 0.2])
    def test_spmm_matches_numpy(self, store, rng, density):
        m, l, n = 300, 400, 200
        dense = _random_sparse(m, l, density, seed=3)
        a = SparseTiledMatrix.from_dense(store, dense)
        bv = rng.standard_normal((l, n))
        b = store.matrix_from_numpy(bv)
        c = spmm(store, a, b, 32 * 1024)
        assert np.allclose(c.to_numpy(), dense @ bv)

    def test_spmm_vector_shaped_rhs(self, store, rng):
        m, l = 300, 400
        dense = _random_sparse(m, l, 0.05, seed=4)
        a = SparseTiledMatrix.from_dense(store, dense)
        bv = rng.standard_normal((l, 1))
        c = spmm(store, a, store.matrix_from_numpy(bv), 32 * 1024)
        assert np.allclose(c.to_numpy(), dense @ bv)

    @pytest.mark.parametrize("da,db", [(0.0, 0.05), (0.01, 0.01),
                                       (0.1, 0.02)])
    def test_spgemm_matches_numpy(self, store, da, db):
        m, l, n = 400, 300, 350
        ad = _random_sparse(m, l, da, seed=5)
        bd = _random_sparse(l, n, db, seed=6)
        a = SparseTiledMatrix.from_dense(store, ad)
        b = SparseTiledMatrix.from_dense(store, bd)
        c = spgemm(store, a, b)
        assert np.allclose(c.to_numpy(), ad @ bd)
        assert c.nnz == np.count_nonzero(ad @ bd)

    def test_spgemm_result_is_sparse_stored(self, store):
        a = SparseTiledMatrix.from_coo(store, [0], [0], [2.0],
                                       (512, 512))
        b = SparseTiledMatrix.from_coo(store, [0], [0], [3.0],
                                       (512, 512))
        c = spgemm(store, a, b)
        assert isinstance(c, SparseTiledMatrix)
        assert c.nnz == 1 and c.data_pages == 1
        assert c.to_numpy()[0, 0] == 6.0

    def test_spgemm_rejects_misaligned_k_grids(self, store):
        a = SparseTiledMatrix.from_coo(store, [0], [0], [1.0],
                                       (64, 256), tile_shape=(64, 64))
        b = SparseTiledMatrix.from_coo(store, [0], [0], [1.0],
                                       (256, 64), tile_shape=(128, 64))
        with pytest.raises(ValueError):
            spgemm(store, a, b)


class TestIOAgreement:
    """Measured block totals vs the analytic models, within 0.5x-2.0x."""

    def test_spmv_io_agreement(self):
        # x (32 blocks) exceeds the 16-frame pool, so the per-block-row
        # re-reads of x that the model charges actually happen.
        m, l, density = 1024, 32768, 0.003
        store = ArrayStore(memory_bytes=16 * 8192)
        dense = _random_sparse(m, l, density, seed=7)
        a = SparseTiledMatrix.from_dense(store, dense)
        x = store.vector_from_numpy(np.ones(l))
        store.pool.clear()
        store.reset_stats()
        spmv(store, a, x)
        store.flush()
        measured = store.device.stats.total
        model = spmv_io(m, l, a.nnz, 1024, tile_side=a.tile_shape[0])
        assert 0.5 <= measured / model <= 2.0

    def test_spmm_io_agreement(self):
        m, l, n = 512, 512, 256
        mem = 24 * 1024
        store = ArrayStore(memory_bytes=mem * 8)
        dense = _random_sparse(m, l, 0.02, seed=8)
        a = SparseTiledMatrix.from_dense(store, dense)
        b = store.matrix_from_numpy(
            np.random.default_rng(9).standard_normal((l, n)))
        store.pool.clear()
        store.reset_stats()
        spmm(store, a, b, mem)
        store.flush()
        measured = store.device.stats.total
        model = spmm_io(m, l, n, a.nnz, mem, 1024,
                        tile_side=a.tile_shape[0])
        assert 0.5 <= measured / model <= 2.0

    def test_spgemm_io_agreement(self):
        m = l = n = 1024
        store = ArrayStore(memory_bytes=16 * 8192)
        ad = _random_sparse(m, l, 0.005, seed=10)
        bd = _random_sparse(l, n, 0.005, seed=11)
        a = SparseTiledMatrix.from_dense(store, ad)
        b = SparseTiledMatrix.from_dense(store, bd)
        store.pool.clear()
        store.reset_stats()
        spgemm(store, a, b)
        store.flush()
        measured = store.device.stats.total
        model = spgemm_io(m, l, n, a.nnz, b.nnz, 1024,
                          tile_side=a.tile_shape[0])
        assert 0.5 <= measured / model <= 2.0

    def test_prefetch_hints_change_calls_not_totals(self):
        """The accounting contract, sparse edition: hints shrink device
        *calls*, never results, and block totals stay within a few
        percent.  (Exact equality — the dense streaming contract — is
        not achievable here: batched installs shift eviction *timing*,
        so an x chunk that happened to survive across block rows
        unhinted may be re-read hinted.  The drift is bounded and both
        runs stay within the cost model's 0.5x-2.0x band.)"""
        m, l = 1024, 4096
        results = {}
        for enabled in (True, False):
            store = ArrayStore(memory_bytes=32 * 8192,
                               scheduler=enabled)
            dense = _random_sparse(m, l, 0.01, seed=12)
            a = SparseTiledMatrix.from_dense(store, dense)
            x = store.vector_from_numpy(np.ones(l))
            store.pool.clear()
            store.reset_stats()
            y = spmv(store, a, x)
            store.flush()
            results[enabled] = (store.device.stats.snapshot(),
                                y.to_numpy())
        on, off = results[True], results[False]
        assert np.array_equal(on[1], off[1])
        assert abs(on[0].reads - off[0].reads) <= 0.1 * off[0].reads
        assert on[0].writes == off[0].writes
        assert on[0].read_calls < 0.5 * off[0].read_calls
