#!/usr/bin/env python
"""Profile one OLS workload under the tracer; emit CI artifacts.

The CI bench-smoke job runs this after the benchmark sweep::

    python benchmarks/profile_smoke.py bench-results/

It executes the paper's hint-free OLS normal equations
``solve(t(X) X, t(X) y)`` cold through the level-2 planner with span
recording on, then writes two artifacts into the output directory:

- ``trace.json`` — the run as Chrome trace events (open in Perfetto or
  ``chrome://tracing``): one slice per physical operator, optimizer
  pass, and kernel panel, with I/O and pool deltas in ``args``.
- ``calibration.json`` — the machine-readable
  :class:`repro.obs.CalibrationReport`: per cost model, the measured /
  predicted block ratios of every executed operator.

``benchmarks/check_calibration.py`` validates both files and fails CI
when any exercised model's median ratio leaves the validated
[0.5, 2.0] band — the drift alarm for the analytic cost models.

The workload regime matters: X is 512 x 256 against a 48 K-scalar
(48-block) pool, so every operator genuinely runs out of core.  With a
pool that holds the operands, measured I/O collapses and the ratios
say nothing about the models.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.core import OptimizerConfig, RiotSession
from repro.core.expr import MatMul, Solve, Transpose
from repro.storage import StorageConfig

N_OBS = 512
N_FEAT = 256
POOL_SCALARS = 48 * 1024  # 48 blocks of 1024 scalars: out-of-core


def build_ols(session: RiotSession):
    """The normal equations as the user writes them — no hints."""
    rng = np.random.default_rng(17)
    x = session.matrix(rng.standard_normal((N_OBS, N_FEAT)), name="X")
    y = session.matrix(rng.standard_normal((N_OBS, 1)), name="y")
    return Solve(MatMul(Transpose(x.node), x.node),
                 MatMul(Transpose(x.node), y.node))


def profile(out_dir: Path, backend: str = "memory") -> int:
    # strict=True statically verifies every plan (shapes, footprints,
    # kernel pins) before it runs, so a planner regression fails the
    # smoke job up front instead of skewing the calibration numbers.
    session = RiotSession(
        storage=StorageConfig(backend=backend,
                              memory_bytes=POOL_SCALARS * 8),
        config=OptimizerConfig(level=2, strict=True))
    with session:
        node = build_ols(session)
        text = session.explain(node, analyze=True)
        print(text)
        session.tracer.export_chrome(out_dir / "trace.json")
        report = session.calibration_report(node)
        report.to_json(out_dir / "calibration.json")
    n_spans = len(session.tracer)
    print(f"\nwrote {out_dir / 'trace.json'} ({n_spans} spans) and "
          f"{out_dir / 'calibration.json'} "
          f"({len(report.models)} models, ok={report.ok})")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    out_dir = Path(argv[1])
    out_dir.mkdir(parents=True, exist_ok=True)
    backend = argv[2] if len(argv) == 3 else "memory"
    return profile(out_dir, backend)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
