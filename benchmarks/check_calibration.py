#!/usr/bin/env python
"""Validate the profiled-workload artifacts; fail CI on model drift.

``benchmarks/profile_smoke.py`` leaves two files in the results
directory; this script is the gate that reads them back:

- ``trace.json`` must be a well-formed Chrome trace-event file: a
  ``traceEvents`` list of complete (``ph == "X"``) events with
  non-negative microsecond timestamps/durations, at least one event in
  each of the ``op``, ``optimizer`` and ``kernel`` categories, and no
  dropped spans.
- ``calibration.json`` must carry the
  :data:`repro.obs.CALIBRATION_SCHEMA_VERSION` shape, and **every
  exercised cost model's median measured/predicted ratio must sit
  inside the validated band** (the report's own ``ok`` flag, recomputed
  here from the raw ratios rather than trusted).

Exit status is non-zero on any violation, failing the bench-smoke job.

Usage::

    python benchmarks/check_calibration.py bench-results/
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

from repro.obs import CALIBRATION_SCHEMA_VERSION

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")
REQUIRED_CATEGORIES = ("op", "optimizer", "kernel")


def check_trace(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable trace JSON ({exc})"]
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path.name}: no traceEvents — was the tracer "
                f"recording during the profiled run?"]
    cats = set()
    for i, ev in enumerate(events):
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in ev]
        if missing:
            problems.append(
                f"{path.name}: event {i} missing keys {missing}")
            continue
        if ev["ph"] != "X":
            problems.append(
                f"{path.name}: event {i} phase {ev['ph']!r}, expected "
                f"complete events ('X')")
        if ev["ts"] < 0 or ev["dur"] < 0:
            problems.append(
                f"{path.name}: event {i} has negative ts/dur")
        cats.add(ev["cat"])
    for cat in REQUIRED_CATEGORIES:
        if cat not in cats:
            problems.append(
                f"{path.name}: no {cat!r}-category spans — the "
                f"profiled run should cross the session, optimizer "
                f"and kernel layers")
    dropped = data.get("otherData", {}).get("spans_dropped", 0)
    if dropped:
        problems.append(
            f"{path.name}: {dropped} spans dropped — raise the tracer "
            f"capacity for the profiled workload")
    return problems


def check_calibration(path: Path) -> tuple[list[str], list[str]]:
    """Violations plus one summary line per model."""
    problems: list[str] = []
    summary: list[str] = []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable calibration JSON ({exc})"], []
    if data.get("schema_version") != CALIBRATION_SCHEMA_VERSION:
        problems.append(
            f"{path.name}: schema_version "
            f"{data.get('schema_version')!r}, expected "
            f"{CALIBRATION_SCHEMA_VERSION}")
        return problems, summary
    band = data.get("band", [])
    if (not isinstance(band, list) or len(band) != 2
            or not band[0] < band[1]):
        problems.append(f"{path.name}: malformed band {band!r}")
        return problems, summary
    models = data.get("models", {})
    if not models:
        problems.append(
            f"{path.name}: no cost models exercised — the profiled "
            f"workload must execute a planned DAG")
    for name in sorted(models):
        entry = models[name]
        ratios = entry.get("ratios", [])
        if not ratios:
            summary.append(f"  {name}: no band-checkable samples "
                           f"({entry.get('n_skipped', 0)} skipped)")
            continue
        med = statistics.median(ratios)
        summary.append(
            f"  {name}: median ratio {med:.3f} "
            f"({len(ratios)} samples)")
        if not band[0] <= med <= band[1]:
            problems.append(
                f"{path.name}: {name} median measured/predicted ratio "
                f"{med:.3f} outside [{band[0]}, {band[1]}] — the cost "
                f"model has drifted from the measured kernel")
    return problems, summary


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    results_dir = Path(argv[1])
    problems = check_trace(results_dir / "trace.json")
    calib_problems, summary = check_calibration(
        results_dir / "calibration.json")
    problems += calib_problems
    if summary:
        print("calibration (measured/predicted blocks):")
        print("\n".join(summary))
    if problems:
        print(f"\n{len(problems)} calibration/trace violation(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\ntrace and calibration artifacts ok: every exercised "
          "cost model is inside the validated band")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
