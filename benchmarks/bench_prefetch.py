"""I/O-scheduler ablation: device calls with prefetching on vs off.

Not a paper figure — this bench locks in the win of the prefetching I/O
scheduler added between :class:`BlockDevice` and :class:`BufferPool`.
Three workloads run twice each, identical except for the scheduler flag:

- **cold-scan** — a cold sequential sweep over a tiled vector (the
  streaming access pattern RIOT's §5 engine lives on),
- **chain-matmul** — an Appendix-B matrix chain through the Appendix-A
  square-tile multiply, with hint-driven tile prefetch,
- **fused-map** — a fused elementwise expression streamed by the
  Evaluator, which announces each chunk window before reading it.

The accounting contract under test: block *totals* and numerical results
must be bitwise identical (prefetched blocks still count as device
reads); only the number of device *calls* may drop, via coalesced
multi-block I/O.  Assertions require >= 25% fewer read calls on the
sequential-scan and chain-matmul workloads.

Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.core.evaluator import Evaluator
from repro.core.expr import ArrayInput, Map, Scalar
from repro.linalg import multiply_chain
from repro.storage import ArrayStore

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

#: Workload sizes per mode.  The chain memory budget scales with the
#: matrix size so fast mode keeps the same out-of-core pressure (a pool
#: big enough to cache whole operands would measure caching, not I/O).
SCAN_SCALARS = 128 * 1024 if FAST else 512 * 1024
MAT_SIDE = 192 if FAST else 384
CHAIN_MEM = 12 * 1024 if FAST else 48 * 1024
POOL_BLOCKS = 64


def _scan_workload(enabled: bool):
    store = ArrayStore(memory_bytes=POOL_BLOCKS * 8192, scheduler=enabled)
    vec = store.create_vector(SCAN_SCALARS)
    vec.from_numpy(np.arange(SCAN_SCALARS, dtype=np.float64))
    store.pool.clear()
    store.reset_stats()
    result = vec.to_numpy()
    return store.device.stats.snapshot(), store.pool.stats.snapshot(), \
        result


def _chain_workload(enabled: bool):
    rng = np.random.default_rng(42)
    parts = [rng.standard_normal((MAT_SIDE, MAT_SIDE)) for _ in range(3)]
    mem = CHAIN_MEM
    store = ArrayStore(memory_bytes=mem * 8, scheduler=enabled)
    mats = [store.matrix_from_numpy(m, layout="square") for m in parts]
    store.pool.clear()
    store.reset_stats()
    out = multiply_chain(store, mats, mem)
    store.flush()
    return store.device.stats.snapshot(), store.pool.stats.snapshot(), \
        out.to_numpy()


def _fused_map_workload(enabled: bool):
    n = SCAN_SCALARS // 2
    rng = np.random.default_rng(7)
    store = ArrayStore(memory_bytes=POOL_BLOCKS * 8192, scheduler=enabled)
    x = store.vector_from_numpy(rng.standard_normal(n))
    y = store.vector_from_numpy(rng.standard_normal(n))
    z = store.vector_from_numpy(rng.standard_normal(n))
    store.pool.clear()
    store.reset_stats()
    # a*x + y*z, fused into one streaming pass over three inputs.
    expr = Map("+",
               Map("*", Scalar(2.5), ArrayInput(x, "x")),
               Map("*", ArrayInput(y, "y"), ArrayInput(z, "z")))
    out = Evaluator(store).force(expr)
    result = out.to_numpy()
    return store.device.stats.snapshot(), store.pool.stats.snapshot(), \
        result


WORKLOADS = {
    "cold-scan": _scan_workload,
    "chain-matmul": _chain_workload,
    "fused-map": _fused_map_workload,
}

#: Workloads the acceptance bar (>= 25% fewer read calls) applies to.
REQUIRED_REDUCTION = {"cold-scan": 0.25, "chain-matmul": 0.25,
                      "fused-map": 0.0}


def _compare(name: str):
    on, pool_on, result_on = WORKLOADS[name](True)
    off, _, result_off = WORKLOADS[name](False)
    return {"name": name, "on": on, "off": off, "pool_on": pool_on,
            "result_on": result_on, "result_off": result_off}


def _report(benchmark, row: dict) -> None:
    on, off = row["on"], row["off"]
    reduction = 1.0 - on.read_calls / max(off.read_calls, 1)
    print(f"\n{row['name']}: scheduler off {off.read_calls} read calls, "
          f"on {on.read_calls} calls ({reduction:.1%} fewer; "
          f"{on.prefetched} prefetched, {on.coalesced_ios} coalesced, "
          f"{on.readahead_hits} readahead hits)")
    record_io_stats(benchmark, on, pool=row["pool_on"])
    benchmark.extra_info["io_scheduler_off"] = off.as_dict()
    benchmark.extra_info["reduction"] = round(reduction, 4)
    # Contract: same blocks, same bytes, same bits — fewer calls.
    assert np.array_equal(row["result_on"], row["result_off"])
    assert on.reads == off.reads
    assert on.writes == off.writes
    assert reduction >= REQUIRED_REDUCTION[row["name"]]
    assert on.read_calls + on.coalesced_ios >= on.reads


def test_prefetch_cold_scan(benchmark):
    _report(benchmark, benchmark.pedantic(
        _compare, args=("cold-scan",), rounds=1, iterations=1))


def test_prefetch_chain_matmul(benchmark):
    _report(benchmark, benchmark.pedantic(
        _compare, args=("chain-matmul",), rounds=1, iterations=1))


def test_prefetch_fused_map(benchmark):
    _report(benchmark, benchmark.pedantic(
        _compare, args=("fused-map",), rounds=1, iterations=1))


def test_readahead_window_sweep(benchmark):
    """Speculative readahead (no hints): larger windows, fewer calls."""
    def sweep():
        rows = {}
        n_blocks = 64 if FAST else 256
        for window in (0, 4, 16):
            store = ArrayStore(memory_bytes=32 * 8192,
                               readahead_window=window)
            vec = store.create_vector(n_blocks * 1024)
            vec.from_numpy(np.zeros(n_blocks * 1024))
            store.pool.clear()
            store.reset_stats()
            # Demand reads, no hints: readahead must detect the run.
            for ci in range(vec.num_chunks):
                vec.read_chunk(ci)
            rows[window] = (store.device.stats.snapshot(),
                            store.pool.stats.snapshot())
        return rows

    rows_pools = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {w: st for w, (st, _) in rows_pools.items()}
    record_io_stats(benchmark, rows[16], pool=rows_pools[16][1])
    print("\nreadahead window sweep (pure demand scan):")
    for window, st in rows.items():
        print(f"  window={window:3d}  reads={st.reads:5d} "
              f"calls={st.read_calls:5d} prefetched={st.prefetched:5d}")
    assert rows[4].read_calls < rows[0].read_calls
    assert rows[16].read_calls < rows[4].read_calls
    # Speculation may overshoot at the end of the scan, but never by more
    # than one window of blocks.
    assert rows[16].reads <= rows[0].reads + 16
