"""Real-disk backends: equivalence, and the scheduler's win in seconds.

The PR-6 tentpole claim, measured.  Every prior benchmark counts
*simulated* blocks on the in-memory device; this one runs the same
workloads against the real page-file backends
(:class:`~repro.storage.FileBlockDevice` in ``mmap`` and ``pread``
modes) and dual-reports both currencies — simulated block counters AND
physical wall-clock seconds/syscalls.

Three claims are locked in:

1. **Equivalence** — the backends are interchangeable: bitwise-identical
   results and *identical simulated block counts* on the OLS workload
   (the file devices override only the physical primitives, never the
   accounting).
2. **The scheduler's win is physical** — on the ``pread`` backend, every
   coalesced run is one system call, so scheduler-on beats
   scheduler-off on syscall count AND device wall-clock for the OLS
   and chain-matmul workloads.  The paper's thesis (fewer, larger,
   sequential I/Os) finally cashes out in seconds.
3. **Block-size sweep** — larger blocks mean fewer syscalls per byte on
   ``pread``; ``mmap`` stays syscall-free on the hot path.

Page files are temporaries (honouring ``TMPDIR``), deleted on close.
Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.linalg import multiply_chain
from repro.storage import ArrayStore, BACKENDS, StorageConfig
from repro.workloads.regression import generate_problem, \
    ols_out_of_core

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

N_OBS = 1200 if FAST else 3000
N_FEAT = 96 if FAST else 160
OLS_MEM = 16 * 1024 if FAST else 48 * 1024
MAT_SIDE = 160 if FAST else 320
CHAIN_MEM = 12 * 1024 if FAST else 32 * 1024
#: Repetitions for wall-clock comparisons; min-of-N suppresses noise.
REPS = 2 if FAST else 3


def _config(backend: str, scheduler: bool = True,
            block_size: int = 8192) -> StorageConfig:
    return StorageConfig(backend=backend,
                         memory_bytes=OLS_MEM * 8,
                         block_size=block_size,
                         scheduler=scheduler)


def _ols(backend: str, scheduler: bool = True):
    problem = generate_problem(N_OBS, N_FEAT, seed=11)
    beta, stats = ols_out_of_core(
        problem, storage=_config(backend, scheduler))
    return beta, stats.snapshot()


def _chain(backend: str, scheduler: bool = True):
    rng = np.random.default_rng(42)
    parts = [rng.standard_normal((MAT_SIDE, MAT_SIDE))
             for _ in range(3)]
    cfg = StorageConfig(backend=backend,
                        memory_bytes=CHAIN_MEM * 8,
                        scheduler=scheduler)
    store = ArrayStore(storage=cfg)
    mats = [store.matrix_from_numpy(m, layout="square")
            for m in parts]
    store.pool.clear()
    store.reset_stats()
    out = multiply_chain(store, mats, CHAIN_MEM)
    store.flush()
    result = out.to_numpy()
    snap = store.device.stats.snapshot()
    store.close()
    return result, snap


SIM_KEYS = ("seq_reads", "rand_reads", "seq_writes", "rand_writes",
            "read_calls", "write_calls", "coalesced_ios",
            "prefetched", "readahead_hits")


def _sim(stats) -> dict:
    d = stats.as_dict()
    return {k: d[k] for k in SIM_KEYS}


def test_backend_equivalence_ols(benchmark):
    """Claim 1: three backends, one answer, one block count."""
    def run_all():
        return {be: _ols(be) for be in BACKENDS}

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ref_beta, ref_stats = rows["memory"]
    print(f"\nOLS {N_OBS}x{N_FEAT}, pool {OLS_MEM * 8 >> 10} KiB:")
    for be, (beta, stats) in rows.items():
        print(f"  {be:6s} reads={stats.reads:6d} "
              f"writes={stats.writes:6d} "
              f"syscalls={stats.syscalls:5d} "
              f"seconds={stats.seconds:.4f}")
        assert np.array_equal(beta, ref_beta), \
            f"{be} result differs bitwise from the simulator"
        assert _sim(stats) == _sim(ref_stats), \
            f"{be} simulated block counts differ from the simulator"
    record_io_stats(benchmark, rows["mmap"][1], backend="mmap")
    for be in BACKENDS:
        benchmark.extra_info[f"io_{be}"] = rows[be][1].as_dict()


def _scheduler_duel(benchmark, workload, label: str):
    """Claim 2 harness: pread backend, scheduler on vs off."""
    def duel():
        runs = {True: [], False: []}
        for _ in range(REPS):
            for enabled in (True, False):
                result, stats = workload("pread", enabled)
                runs[enabled].append((result, stats))
        return runs

    runs = benchmark.pedantic(duel, rounds=1, iterations=1)
    on = min((s for _, s in runs[True]), key=lambda s: s.seconds)
    off = min((s for _, s in runs[False]), key=lambda s: s.seconds)
    print(f"\n{label} on pread (min of {REPS}):")
    print(f"  scheduler on : syscalls={on.syscalls:6d} "
          f"seconds={on.seconds:.4f} calls={on.read_calls}")
    print(f"  scheduler off: syscalls={off.syscalls:6d} "
          f"seconds={off.seconds:.4f} calls={off.read_calls}")
    record_io_stats(benchmark, on, backend="pread")
    benchmark.extra_info["io_scheduler_off"] = off.as_dict()
    # Same bits; block totals match up to the documented hint drift
    # (prefetch may overshoot a reused tile by a handful of blocks).
    assert np.array_equal(runs[True][0][0], runs[False][0][0])
    assert abs(on.reads - off.reads) <= max(8, off.reads // 100)
    assert abs(on.writes - off.writes) <= max(8, off.writes // 100)
    # The acceptance bar: coalescing wins both physical currencies.
    assert on.syscalls < off.syscalls, \
        f"{label}: scheduler-on should need fewer syscalls"
    assert on.seconds < off.seconds, \
        f"{label}: scheduler-on should be faster wall-clock"


def test_scheduler_beats_unscheduled_ols_pread(benchmark):
    _scheduler_duel(benchmark, _ols, f"OLS {N_OBS}x{N_FEAT}")


def test_scheduler_beats_unscheduled_chain_pread(benchmark):
    _scheduler_duel(benchmark, _chain,
                    f"chain-matmul {MAT_SIDE}^3 x3")


def test_block_size_sweep_mmap_vs_pread(benchmark):
    """Claim 3: syscalls per byte fall as blocks grow (pread); mmap's
    hot path stays syscall-free at every size.

    The scheduler is off here so the sweep isolates the block-size
    effect: every read is then exactly one syscall, and the counts are
    the block counts.  (The scheduler's own coalescing win is the
    subject of the duels above.)
    """
    sizes = (4096, 8192, 32768)

    def sweep():
        rows = {}
        pools = {}
        n = OLS_MEM * 4  # scalars; 8x the pool at 8 KiB blocks
        data = np.arange(n, dtype=np.float64)
        for backend in ("mmap", "pread"):
            for bs in sizes:
                store = ArrayStore(storage=StorageConfig(
                    backend=backend, memory_bytes=OLS_MEM * 8,
                    block_size=bs, scheduler=False))
                vec = store.vector_from_numpy(data)
                store.pool.clear()
                store.reset_stats()
                assert np.array_equal(vec.to_numpy(), data)
                rows[backend, bs] = store.device.stats.snapshot()
                pools[backend, bs] = store.pool.stats.snapshot()
                store.close()
        return rows, pools

    rows, pools = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ncold vector scan, by backend and block size:")
    for (backend, bs), stats in rows.items():
        print(f"  {backend:6s} bs={bs:6d} reads={stats.reads:6d} "
              f"syscalls={stats.syscalls:5d} "
              f"bytes_read={stats.bytes_read:>10d} "
              f"seconds={stats.seconds:.4f}")
    record_io_stats(benchmark, rows["pread", 8192], backend="pread",
                    pool=pools["pread", 8192])
    for (backend, bs), stats in rows.items():
        benchmark.extra_info[f"io_{backend}_{bs}"] = stats.as_dict()
    for bs in sizes:
        assert rows["mmap", bs].syscalls == 0
    assert rows["pread", 32768].syscalls < rows["pread", 4096].syscalls
