"""Figure 3(a): calculated I/O of A·B·C for four strategies.

Reproduces the paper's own analytic comparison at its exact parameters:
n in {100000, 120000}, memory in {2 GB, 4 GB}, block B = 1024 scalars,
skew s = 2 (A: n x n/s, B: n/s x n, C: n x n).

The paper states: *"We see a progression of improvements as more
optimizations are introduced, and this trend is consistent for all
parameter settings tested."*  The assertions check exactly that, plus the
orders of magnitude of the figure's log-scale axis.
"""

from __future__ import annotations

from conftest import record_io_stats

from repro.core.costs import GB_IN_SCALARS, fig3_strategy_costs, fig3a_rows

STRATEGIES = ["RIOT-DB", "BNLJ-Inspired", "Square/In-Order",
              "Square/Opt-Order"]


def test_fig3a_table(benchmark):
    rows = benchmark.pedantic(fig3a_rows, rounds=1, iterations=1)
    # Purely analytic (the paper's own calculated costs): the shared
    # schema is still emitted, with an explicit all-zero IOStats.
    record_io_stats(benchmark)

    print("\nFigure 3(a): I/O cost (disk blocks) of A %*% B %*% C, s=2")
    print(f"{'strategy':18s}" + "".join(
        f"  n={n // 1000}k/{gb}GB".rjust(14)
        for n in (100_000, 120_000) for gb in (2, 4)))
    cells = {(r["strategy"], r["n"], r["memory_gb"]): r["io_blocks"]
             for r in rows}
    for strategy in STRATEGIES:
        line = f"{strategy:18s}"
        for n in (100_000, 120_000):
            for gb in (2, 4):
                line += f"  {cells[(strategy, n, gb)]:12.3e}"
        print(line)

    # The paper's progression holds at every parameter setting.
    for n in (100_000, 120_000):
        for gb in (2, 4):
            costs = fig3_strategy_costs(n, 2.0, gb * GB_IN_SCALARS)
            assert costs["RIOT-DB"] > costs["BNLJ-Inspired"] \
                > costs["Square/In-Order"] > costs["Square/Opt-Order"]

    # Magnitudes line up with the figure's 1e7..1e13 log axis.
    base = fig3_strategy_costs(100_000, 2.0, 2 * GB_IN_SCALARS)
    assert 1e11 < base["RIOT-DB"] < 1e14
    assert 1e8 < base["BNLJ-Inspired"] < 1e10
    assert 1e7 < base["Square/In-Order"] < 1e9
    assert 1e7 < base["Square/Opt-Order"] < 1e9
    # RIOT-DB is off the chart relative to the native strategies —
    # the reason §5 exists at all.
    assert base["RIOT-DB"] > 1000 * base["BNLJ-Inspired"]
