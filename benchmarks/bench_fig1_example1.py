"""Figure 1: Example 1 on the four engines (plus next-gen RIOT).

Regenerates both panels of the paper's Figure 1 for n in {2^21, 2^22, 2^23}
under the 68 MB data-memory cap (the paper's 84 MB minus R runtime
overhead):

- (a) Disk I/O in MB (simulated-device counters standing in for DTrace),
- (b) computation time in seconds (deterministic SimClock model).

Shape assertions encode the paper's findings:

- the strawman's I/O exceeds even thrashing plain R's,
- MatNamed "nets significant gains over R" at the larger sizes,
- full RIOT-DB "outperforms plain R by orders of magnitude",
- strawman degrades ~linearly while plain R blows up past the cap.
"""

from __future__ import annotations

import pytest
from conftest import record_io_stats

from repro.engines import ALL_ENGINES
from repro.storage import IOStats
from repro.workloads import run_example1

#: The paper's vector sizes.
SIZES = [2 ** 21, 2 ** 22, 2 ** 23]

#: 84 MB cap minus ~16 MB R-runtime overhead.
MEMORY_BYTES = 68 * 1024 * 1024

ENGINE_ORDER = ["plain", "strawman", "matnamed", "riotdb", "riotng"]

_results: dict[tuple[str, int], object] = {}


def _run(engine_name: str, n: int):
    key = (engine_name, n)
    if key not in _results:
        engine = ALL_ENGINES[engine_name](memory_bytes=MEMORY_BYTES)
        _results[key] = run_example1(engine, n)
    return _results[key]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("engine_name", ENGINE_ORDER)
def test_fig1_run(benchmark, engine_name, n):
    """Time one (engine, n) cell and record its metrics."""
    result = benchmark.pedantic(_run, args=(engine_name, n),
                                rounds=1, iterations=1)
    record_io_stats(benchmark, result.io)
    benchmark.extra_info["io_mb"] = round(result.io_mb, 2)
    benchmark.extra_info["sim_seconds"] = round(result.sim_seconds, 2)


def test_fig1_tables_and_shape(benchmark):
    """Print both Figure-1 panels and assert the paper's orderings."""
    benchmark.pedantic(
        lambda: [_run(name, n) for n in SIZES for name in ENGINE_ORDER],
        rounds=1, iterations=1)
    merged = IOStats()
    for n in SIZES:
        for name in ENGINE_ORDER:
            merged = merged.merged(_run(name, n).io)
    record_io_stats(benchmark, merged)

    print("\nFigure 1(a): Disk I/O (MB) for Example 1")
    header = f"{'engine':22s}" + "".join(
        f"  n=2^{int(n).bit_length() - 1:<4d}" for n in SIZES)
    print(header)
    for name in ENGINE_ORDER:
        row = f"{_run(name, SIZES[0]).engine:22s}"
        for n in SIZES:
            row += f"  {_run(name, n).io_mb:8.1f}"
        print(row)

    print("\nFigure 1(b): Computation time (simulated seconds)")
    print(header)
    for name in ENGINE_ORDER:
        row = f"{_run(name, SIZES[0]).engine:22s}"
        for n in SIZES:
            row += f"  {_run(name, n).sim_seconds:8.1f}"
        print(row)

    # --- the paper's claims, as assertions -----------------------------
    for n in SIZES:
        io = {name: _run(name, n).io_mb for name in ENGINE_ORDER}
        t = {name: _run(name, n).sim_seconds for name in ENGINE_ORDER}
        # Strawman writes every intermediate: worst I/O of all variants.
        assert io["strawman"] > io["plain"]
        assert io["strawman"] > io["matnamed"] > io["riotdb"]
        # Full RIOT-DB is orders of magnitude better than plain R.
        assert io["riotdb"] * 4 < io["plain"]
        assert t["riotdb"] * 4 < t["plain"]
        # Next-gen RIOT at least matches RIOT-DB.
        assert io["riotng"] <= io["riotdb"] * 1.2

    # All engines print identical answers (transparency!).
    for n in SIZES:
        outputs = {name: _run(name, n).output[0]
                   for name in ENGINE_ORDER}
        assert len(set(outputs.values())) == 1, outputs

    # Plain R degrades much faster than the strawman past the cap
    # ("performance of RIOT-DB/Strawman degrades linearly ... much more
    # gracefully than plain R").
    plain_growth = (_run("plain", SIZES[-1]).io_mb
                    / max(_run("plain", SIZES[0]).io_mb, 1e-9))
    straw_growth = (_run("strawman", SIZES[-1]).io_mb
                    / _run("strawman", SIZES[0]).io_mb)
    assert straw_growth < 1.5 * (SIZES[-1] / SIZES[0])
    assert plain_growth > straw_growth
