"""Ablations over the §5 storage design choices.

Three design decisions DESIGN.md calls out, each measured on the tile
store:

1. **Tile aspect ratio** — a column-by-column walk over row / column /
   square tilings with a tiny pool: tiles aligned with the access pattern
   cost one read per strip, misaligned skinny tiles re-read the matrix per
   column, square tiles sit in between (the §3 layout discussion).
2. **Linearization** — the §5 claim verbatim: space-filling curves are for
   *"arrays whose access patterns are not known in advance"*.  We measure
   the sequential-I/O fraction of a row sweep and a column sweep per curve:
   canonical orders ace one sweep and die on the other; Z-order/Hilbert are
   robust to both (their worst case beats the canonical worst case).
3. **Buffer replacement policy** — LRU vs CLOCK hit rates on a scan-plus-
   hot-set workload.
"""

from __future__ import annotations

import numpy as np
from conftest import record_io_stats

from repro.storage import ArrayStore, IOStats

N = 256  # square matrix side


def _column_walk_io(layout: str) -> IOStats:
    """Read the matrix column by column with a minimal 4-frame pool."""
    # 4 blocks is the ArrayStore floor (it used to silently round a
    # 2-block budget up to this); keep the pool at the minimum so
    # misaligned tilings still thrash.
    store = ArrayStore(memory_bytes=4 * 8192, block_size=8192)
    mat = store.create_matrix((N, N), layout=layout)
    mat.from_numpy(np.zeros((N, N)))
    store.pool.clear()
    store.reset_stats()
    for c in range(N):
        mat.read_submatrix(0, N, c, c + 1)
    return store.device.stats.snapshot()


def test_ablation_tile_aspect_ratio(benchmark):
    stats = benchmark.pedantic(
        lambda: {layout: _column_walk_io(layout)
                 for layout in ("row", "col", "square")},
        rounds=1, iterations=1)
    merged = IOStats()
    for st in stats.values():
        merged = merged.merged(st)
    record_io_stats(benchmark, merged)
    results = {layout: st.reads for layout, st in stats.items()}
    print("\nAblation: tile aspect ratio under a column-major walk")
    for layout, io in results.items():
        print(f"  {layout:8s} {io:8d} block reads")
    # Column tiles match the pattern; row tiles re-read the whole matrix
    # once per column; square tiles pay sqrt-ish overhead.
    assert results["col"] < results["square"] < results["row"]
    assert results["row"] > 50 * results["col"]


def _sweep_seq_fraction(linearization: str, by: str) -> IOStats:
    """I/O of reading every tile in row or column order."""
    # minimum legal pool (see _column_walk_io)
    store = ArrayStore(memory_bytes=4 * 8192, block_size=8192)
    mat = store.create_matrix((N, N), layout="square",
                              linearization=linearization)
    mat.from_numpy(np.zeros((N, N)))
    store.pool.clear()
    store.reset_stats()
    rows, cols = mat.grid
    coords = [(i, j) for i in range(rows) for j in range(cols)]
    if by == "col":
        coords = [(i, j) for j in range(cols) for i in range(rows)]
    for ti, tj in coords:
        mat.read_tile(ti, tj)
    return store.device.stats.snapshot()


def test_ablation_linearization(benchmark):
    curves = ("row", "col", "zorder", "hilbert")
    stats = benchmark.pedantic(
        lambda: {name: (_sweep_seq_fraction(name, "row"),
                        _sweep_seq_fraction(name, "col"))
                 for name in curves},
        rounds=1, iterations=1)
    merged = IOStats()
    for row_st, col_st in stats.values():
        merged = merged.merged(row_st).merged(col_st)
    record_io_stats(benchmark, merged)
    results = {name: (row_st.seq_reads / max(row_st.reads, 1),
                      col_st.seq_reads / max(col_st.reads, 1))
               for name, (row_st, col_st) in stats.items()}
    print("\nAblation: sequential fraction per linearization")
    print(f"  {'curve':8s} {'row sweep':>10s} {'col sweep':>10s} "
          f"{'worst case':>11s}")
    for name, (row_frac, col_frac) in results.items():
        print(f"  {name:8s} {row_frac:10.1%} {col_frac:10.1%} "
              f"{min(row_frac, col_frac):11.1%}")
    # Canonical orders are perfect one way, hopeless the other.
    assert results["row"][0] > 0.95 and results["row"][1] < 0.05
    assert results["col"][1] > 0.95 and results["col"][0] < 0.05
    # Hilbert hedges: its worst case beats the canonical worst case —
    # the point of §5's linearization options.
    canonical_worst = max(min(results["row"]), min(results["col"]))
    assert min(results["hilbert"]) > canonical_worst
    # Z-order rarely lands on strictly adjacent blocks, so also compare
    # mean seek *distance* per sweep: both curves' worst case must beat
    # the canonical orders' worst case (a full-stride jump per read).
    from repro.storage import make_linearization

    def mean_jump(name: str, by: str) -> float:
        lin = make_linearization(name, 8, 8)
        coords = [(i, j) for i in range(8) for j in range(8)]
        if by == "col":
            coords = [(i, j) for j in range(8) for i in range(8)]
        positions = [lin.index(i, j) for i, j in coords]
        return float(np.mean(np.abs(np.diff(positions))))

    print("  mean position jump (worst sweep):")
    worst = {}
    for name in curves:
        worst[name] = max(mean_jump(name, "row"), mean_jump(name, "col"))
        print(f"    {name:8s} {worst[name]:6.2f}")
    for curve in ("zorder", "hilbert"):
        assert worst[curve] < worst["row"]
        assert worst[curve] < worst["col"]


def _policy_hit_rate(policy: str) -> tuple[float, IOStats]:
    """Hot set re-read between long scans: rewards keeping hot pages."""
    store = ArrayStore(memory_bytes=16 * 8192, block_size=8192,
                       policy=policy)
    vec = store.create_vector(64 * 1024)   # 64 chunks >> 16 frames
    vec.from_numpy(np.zeros(64 * 1024))
    store.pool.clear()
    store.reset_stats()
    for _ in range(10):
        for hot in range(4):               # hot set: 4 chunks
            vec.read_chunk(hot)
            vec.read_chunk(hot)
        for ci in range(20, 40):           # cold scan
            vec.read_chunk(ci)
    return store.pool.stats.hit_rate, store.device.stats.snapshot()


def test_ablation_buffer_policy(benchmark):
    outcome = benchmark.pedantic(
        lambda: {p: _policy_hit_rate(p) for p in ("lru", "clock")},
        rounds=1, iterations=1)
    merged = IOStats()
    for _, st in outcome.values():
        merged = merged.merged(st)
    record_io_stats(benchmark, merged)
    results = {p: rate for p, (rate, _) in outcome.items()}
    print("\nAblation: buffer replacement, hot set + cold scans")
    for policy, rate in results.items():
        print(f"  {policy:6s} hit rate {rate:.1%}")
    # Both must capture the doubled hot-set accesses at minimum
    # (4 hits out of 28 accesses per round = 14.3%).
    assert all(rate > 0.1 for rate in results.values())
