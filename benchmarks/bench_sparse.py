"""Sparse vs dense tiling: the block-count crossover over density.

Not a paper figure — RIOT's §5 storage argument applied to the sparse
workload class.  One matrix-vector product (the inner loop of every
iterative solver) runs at each density twice:

- **sparse**: ``SparseTiledMatrix`` (CSR tiles, per-tile nnz directory,
  empty tiles = zero pages) through ``spmv``,
- **dense**: the same values in a dense ``TiledMatrix`` through the
  Appendix-A ``square_tile_matmul`` (the vector as an n x 1 matrix).

At low density the sparse store reads strictly fewer blocks (empty
tiles cost nothing and a CSR tile spans O(nnz) pages); as density
grows, CSR's index overhead (~2x per stored value) hands the win back
to dense tiling.  The sweep prints the measured crossover and asserts
both regimes exist.  A second workload locks in the chain-order win:
``(A %*% B) %*% v`` with sparse A, B evaluates right-deep after the
nnz-aware rewrite and must beat the left-deep program order.

Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.core import RiotSession
from repro.core.costs import spmv_io
from repro.linalg import square_tile_matmul
from repro.sparse import SparseTiledMatrix, spmv
from repro.storage import ArrayStore, StorageConfig

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

#: Matrix side and pool size.  The pool is kept far below the matrix so
#: both strategies do real I/O rather than measuring caching.
SIDE = 512 if FAST else 1024
POOL_BLOCKS = 24
MEMORY_SCALARS = POOL_BLOCKS * 1024

DENSITIES = [0.001, 0.003, 0.01, 0.03, 0.1, 0.5]


def _random_coo(n: int, density: float, seed: int = 13):
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(density * n * n)))
    flat = rng.choice(n * n, size=nnz, replace=False)
    return flat // n, flat % n, rng.standard_normal(nnz)


def _spmv_pair(density: float):
    """(sparse_stats, dense_stats, max_abs_diff) for one density."""
    i, j, x = _random_coo(SIDE, density)
    xv = np.random.default_rng(7).standard_normal(SIDE)

    store = ArrayStore(memory_bytes=POOL_BLOCKS * 8192)
    a_sparse = SparseTiledMatrix.from_coo(store, i, j, x, (SIDE, SIDE))
    vec = store.vector_from_numpy(xv)
    store.pool.clear()
    store.reset_stats()
    y_sparse = spmv(store, a_sparse, vec)
    store.flush()
    sparse_stats = store.device.stats.snapshot()
    y1 = y_sparse.to_numpy()

    dense_np = np.zeros((SIDE, SIDE))
    dense_np[i, j] = x
    store2 = ArrayStore(memory_bytes=POOL_BLOCKS * 8192)
    a_dense = store2.matrix_from_numpy(dense_np, layout="square")
    v_mat = store2.matrix_from_numpy(xv.reshape(-1, 1), layout="col")
    store2.pool.clear()
    store2.reset_stats()
    y_dense = square_tile_matmul(store2, a_dense, v_mat, MEMORY_SCALARS)
    store2.flush()
    dense_stats = store2.device.stats.snapshot()
    y2 = y_dense.to_numpy().ravel()

    return sparse_stats, dense_stats, float(np.max(np.abs(y1 - y2)))


def test_sparse_density_sweep(benchmark):
    """Sweep density 0.001..0.5: sparse wins low, dense wins high."""
    rows = benchmark.pedantic(
        lambda: {d: _spmv_pair(d) for d in DENSITIES},
        rounds=1, iterations=1)

    print("\nSpMV reads: sparse CSR tiles vs dense square tiles, "
          f"n={SIDE}")
    print(f"  {'density':>8s} {'sparse':>8s} {'dense':>8s} "
          f"{'model':>8s} {'winner':>8s}")
    nnz_of = {d: max(1, int(round(d * SIDE * SIDE))) for d in DENSITIES}
    for d, (sp, dn, err) in rows.items():
        model = spmv_io(SIDE, SIDE, nnz_of[d], 1024)
        winner = "sparse" if sp.reads < dn.reads else "dense"
        print(f"  {d:8.3f} {sp.reads:8d} {dn.reads:8d} "
              f"{model:8.0f} {winner:>8s}")
        assert err < 1e-9  # identical answers at every density

    benchmark.extra_info["reads_by_density"] = {
        str(d): {"sparse": sp.reads, "dense": dn.reads}
        for d, (sp, dn, _) in rows.items()}
    record_io_stats(benchmark, rows[DENSITIES[0]][0])

    sparse_reads = {d: sp.reads for d, (sp, _, _) in rows.items()}
    dense_reads = {d: dn.reads for d, (_, dn, _) in rows.items()}
    # The acceptance regime: at the sparse end of the sweep the CSR
    # store reads strictly fewer blocks than dense tiling...
    assert sparse_reads[0.001] < dense_reads[0.001]
    assert sparse_reads[0.003] < dense_reads[0.003]
    # ...and the crossover is real: CSR overhead loses at high density.
    assert sparse_reads[0.5] > dense_reads[0.5]
    # Dense I/O is density-independent; sparse I/O grows with nnz.
    assert sparse_reads[0.001] < sparse_reads[0.1] < sparse_reads[0.5]
    spread = max(dense_reads.values()) / min(dense_reads.values())
    assert spread < 1.2


def test_sparse_io_tracks_model(benchmark):
    """Measured sparse SpMV reads stay within 2x of ``spmv_io``."""
    density = 0.01

    def measure():
        i, j, x = _random_coo(SIDE, density)
        store = ArrayStore(memory_bytes=POOL_BLOCKS * 8192)
        a = SparseTiledMatrix.from_coo(store, i, j, x, (SIDE, SIDE))
        vec = store.vector_from_numpy(
            np.random.default_rng(7).standard_normal(SIDE))
        store.pool.clear()
        store.reset_stats()
        spmv(store, a, vec)
        store.flush()
        return (store.device.stats.snapshot(),
                store.pool.stats.snapshot(), a.nnz)

    stats, pool, nnz = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_io_stats(benchmark, stats, pool=pool)
    model = spmv_io(SIDE, SIDE, nnz, 1024)
    ratio = stats.total / model
    print(f"\nspmv n={SIDE} density={density}: measured={stats.total} "
          f"model={model:.0f} ratio={ratio:.2f}")
    benchmark.extra_info["model_blocks"] = round(model)
    assert 0.5 <= ratio <= 2.0


def test_sparse_chain_order(benchmark):
    """(A %*% B) %*% v, sparse A and B: the nnz-aware rewrite must beat
    the left-deep program order on measured blocks."""
    # Fixed size even in fast mode (runs in ms): below n=512 every plan
    # fits in a handful of pages and the orders tie.
    n = 512
    density = 0.005

    def run(optimize: bool):
        session = RiotSession(
            storage=StorageConfig(memory_bytes=POOL_BLOCKS * 8192),
            optimize=optimize)
        A = session.random_sparse_matrix(n, n, density, seed=1)
        B = session.random_sparse_matrix(n, n, density, seed=2)
        v = session.matrix(
            np.random.default_rng(3).standard_normal((n, 1)))
        chain = (A @ B) @ v
        session.store.pool.clear()  # cold start: measure real I/O
        session.reset_stats()
        values = chain.values()
        return (session.io_stats.snapshot(),
                session.store.pool.stats.snapshot(), values)

    opt_stats, opt_pool, opt_values = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1)
    raw_stats, _, raw_values = run(False)
    record_io_stats(benchmark, opt_stats, pool=opt_pool)
    benchmark.extra_info["io_left_deep"] = raw_stats.as_dict()
    print(f"\nsparse chain n={n}, density={density}: "
          f"left-deep={raw_stats.total} blocks, "
          f"nnz-aware={opt_stats.total} blocks "
          f"({raw_stats.total / max(opt_stats.total, 1):.2f}x saving)")
    assert np.allclose(opt_values, raw_values)
    assert opt_stats.total < raw_stats.total
