"""Transpose-free ``t(X) %*% X``: flags and symmetry vs a stored t(X).

Not a paper figure — the contraction discipline of §5 applied to the
hottest statistical pattern this repo serves (the OLS normal
equations).  Three plans for ``t(X) %*% X`` on the OLS design shape are
measured on the counted tile store:

- **materialized transpose** (the seed plan): one full disk pass reads
  X and writes t(X), then the Appendix-A multiply runs over the copy;
- **flagged**: ``square_tile_matmul(X, X, trans_a=True)`` reads X's
  tiles in stored layout and transposes each in memory — the copy never
  exists;
- **crossprod**: the symmetric kernel computes only upper-triangular
  output blocks and mirrors them on write — about half the flagged
  plan's reads on top of deleting the transpose pass.

A fourth measurement checks epilogue fusion: the ridge normal matrix
``t(X) X + lambda R`` writes *only* its output blocks — zero blocks for
the intermediate product.

Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.core import RiotSession
from repro.core.costs import (crossprod_io, transpose_materialize_io,
                              transposed_matmul_io)
from repro.linalg import crossprod_matmul, square_tile_matmul
from repro.storage import ArrayStore, StorageConfig

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

#: The OLS design shape: tall and skinny, far larger than the pool.
N_OBS = 1024 if FAST else 2048
N_FEAT = 128 if FAST else 256
MEMORY_SCALARS = 24 * 1024 if FAST else 48 * 1024
BLOCK_SCALARS = 1024


def _fresh_store():
    store = ArrayStore(memory_bytes=MEMORY_SCALARS * 8, block_size=8192)
    rng = np.random.default_rng(29)
    x = store.matrix_from_numpy(rng.standard_normal((N_OBS, N_FEAT)),
                                layout="square", name="X")
    store.pool.clear()
    store.reset_stats()
    return store, x


def test_crossprod_beats_materialized_transpose(benchmark):
    """The Crossprod plan must move >= 1.5x fewer total blocks than the
    seed materialized-transpose plan, and the measured kernels must sit
    within 0.5-2.0x of their analytic models."""

    def run_materialized():
        store, x = _fresh_store()
        xt = store.create_matrix((N_FEAT, N_OBS), layout="square",
                                 name="Xt")
        for ti, tj in x.tiles():
            r0, r1, c0, c1 = x.tile_bounds(ti, tj)
            xt.write_submatrix(c0, r0,
                               x.read_submatrix(r0, r1, c0, c1).T)
        out = square_tile_matmul(store, xt, x, MEMORY_SCALARS)
        store.flush()
        return store.device.stats.snapshot(), out.to_numpy()

    def run_flagged():
        store, x = _fresh_store()
        out = square_tile_matmul(store, x, x, MEMORY_SCALARS,
                                 trans_a=True)
        store.flush()
        return store.device.stats.snapshot(), out.to_numpy()

    def run_crossprod():
        store, x = _fresh_store()
        out = crossprod_matmul(store, x, MEMORY_SCALARS)
        store.flush()
        return store.device.stats.snapshot(), out.to_numpy()

    cp_stats, cp_vals = benchmark.pedantic(run_crossprod, rounds=1,
                                           iterations=1)
    mat_stats, mat_vals = run_materialized()
    flag_stats, flag_vals = run_flagged()
    record_io_stats(benchmark, cp_stats)
    benchmark.extra_info["io_materialized"] = mat_stats.as_dict()
    benchmark.extra_info["io_flagged"] = flag_stats.as_dict()

    assert np.allclose(mat_vals, flag_vals)
    assert np.allclose(mat_vals, cp_vals)

    model_flag = transposed_matmul_io(N_FEAT, N_OBS, N_FEAT,
                                      MEMORY_SCALARS, BLOCK_SCALARS)
    model_mat = model_flag + transpose_materialize_io(
        N_OBS, N_FEAT, BLOCK_SCALARS)
    model_cp = crossprod_io(N_OBS, N_FEAT, MEMORY_SCALARS,
                            BLOCK_SCALARS)
    print(f"\nt(X) %*% X on X {N_OBS}x{N_FEAT}, M={MEMORY_SCALARS}: "
          f"materialized={mat_stats.total} flagged={flag_stats.total} "
          f"crossprod={cp_stats.total} blocks "
          f"({mat_stats.total / cp_stats.total:.1f}x win)")
    print(f"models: materialized={model_mat:.0f} flagged={model_flag:.0f} "
          f"crossprod={model_cp:.0f}")
    benchmark.extra_info["crossprod_model_blocks"] = round(model_cp)
    benchmark.extra_info["flagged_model_blocks"] = round(model_flag)

    assert cp_stats.total * 1.5 <= mat_stats.total
    assert flag_stats.total < mat_stats.total
    assert 0.5 * model_cp <= cp_stats.total <= 2.0 * model_cp
    assert 0.5 * model_flag <= flag_stats.total <= 2.0 * model_flag


def test_fused_epilogue_writes_no_intermediate(benchmark):
    """Ridge normal matrix ``t(X) X + lambda R``: the fused plan's only
    writes are the final output blocks — zero for the raw product."""

    def run():
        session = RiotSession(
            storage=StorageConfig(memory_bytes=MEMORY_SCALARS * 8,
                                  block_size=8192))
        rng = np.random.default_rng(31)
        x = session.matrix(rng.standard_normal((N_OBS, N_FEAT)))
        r = session.matrix(np.eye(N_FEAT))
        plan = (x.T @ x) + 0.1 * r
        session.store.pool.clear()
        session.reset_stats()
        values = plan.values()
        session.store.flush()
        return session.io_stats.snapshot(), values

    stats, values = benchmark.pedantic(run, rounds=1, iterations=1)
    record_io_stats(benchmark, stats)

    tile = 32  # 8 KB blocks -> 32x32 tiles, one page each
    out_blocks = ((N_FEAT + tile - 1) // tile) ** 2
    print(f"\nfused t(X)X + 0.1R: writes={stats.writes} blocks "
          f"(output occupies {out_blocks}; intermediate product: "
          f"{stats.writes - out_blocks})")
    assert stats.writes == out_blocks
