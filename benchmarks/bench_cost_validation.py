"""Cost-model validation: measured tile I/O vs the Figure-3 formulas.

Not a paper figure — the paper reports calculated costs only.  This bench
runs the real out-of-core algorithms at laptop scale on the counted tile
store and prints measured-vs-model ratios, demonstrating that the analytic
curves of Figure 3 describe the implemented algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import record_io_stats

from repro.core.chain import in_order
from repro.core.costs import bnlj_matmul_io, square_tile_matmul_io
from repro.linalg import bnlj_matmul, multiply_chain, square_tile_matmul
from repro.storage import ArrayStore

CASES = [
    ("square", (512, 512, 512), 96 * 1024),
    ("square", (768, 512, 256), 192 * 1024),
    ("bnlj", (512, 512, 512), 96 * 1024),
    ("bnlj", (1024, 512, 512), 96 * 1024),
]


def _measure(kind, dims, mem):
    m, l, n = dims
    rng = np.random.default_rng(7)
    a_np = rng.standard_normal((m, l))
    b_np = rng.standard_normal((l, n))
    store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
    if kind == "square":
        a = store.matrix_from_numpy(a_np, layout="square")
        b = store.matrix_from_numpy(b_np, layout="square")
        algo, model = square_tile_matmul, square_tile_matmul_io
    else:
        a = store.matrix_from_numpy(a_np, layout="row")
        b = store.matrix_from_numpy(b_np, layout="col")
        algo, model = bnlj_matmul, bnlj_matmul_io
    store.pool.clear()
    store.reset_stats()
    out = algo(store, a, b, mem)
    store.flush()
    assert np.allclose(out.to_numpy(), a_np @ b_np)
    return store.device.stats.snapshot(), model(m, l, n, mem, 1024)


@pytest.mark.parametrize("kind,dims,mem", CASES)
def test_model_agreement(benchmark, kind, dims, mem):
    stats, model = benchmark.pedantic(
        _measure, args=(kind, dims, mem), rounds=1, iterations=1)
    record_io_stats(benchmark, stats)
    measured = stats.total
    ratio = measured / model
    print(f"\n{kind} {dims} M={mem // 1024}k scalars: "
          f"measured={measured} model={model:.0f} ratio={ratio:.2f}")
    benchmark.extra_info["measured_blocks"] = measured
    benchmark.extra_info["model_blocks"] = round(model)
    assert 0.5 <= ratio <= 2.0


def test_chain_reorder_measured(benchmark):
    """Appendix B measured: optimal order saves real I/O under skew."""
    n, s = 512, 8
    mem = 64 * 1024
    rng = np.random.default_rng(11)
    a = rng.standard_normal((n, n // s))
    b = rng.standard_normal((n // s, n))
    c = rng.standard_normal((n, n))

    def run(order):
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        mats = [store.matrix_from_numpy(m, layout="square")
                for m in (a, b, c)]
        store.pool.clear()
        store.reset_stats()
        out = multiply_chain(store, mats, mem, order=order)
        store.flush()
        return store.device.stats.snapshot(), out.to_numpy()

    stats_opt, r_opt = benchmark.pedantic(
        run, args=(None,), rounds=1, iterations=1)
    stats_inorder, r_inorder = run(in_order(3))
    record_io_stats(benchmark, stats_opt)
    benchmark.extra_info["io_in_order"] = stats_inorder.as_dict()
    io_opt, io_inorder = stats_opt.total, stats_inorder.total
    print(f"\nchain n={n}, s={s}: in-order={io_inorder} blocks, "
          f"opt-order={io_opt} blocks "
          f"({io_inorder / io_opt:.2f}x saving)")
    assert np.allclose(r_opt, r_inorder)
    assert io_opt < io_inorder
