"""Dense solve: pivoted LU I/O vs its model, and the inv-to-solve win.

Not a paper figure — §5's algebraic-optimization argument applied to
the dense linear-algebra workload this repo's ``solve()`` operator
opens.  Two claims are measured on the counted tile store:

- ``lu_decompose`` (blocked, partial pivoting, out of core) moves the
  number of blocks the analytic ``lu_io`` model predicts, the same
  0.5-2.0x validation matmul and SpMV get.
- The rewrite ``inv(A) %*% b -> solve(A, b)`` — the classic rewrite an
  array algebra can do and a SQL host cannot — reduces *measured*
  total block I/O versus the materialized-inverse plan, which pays a
  full factorization-sized substitution sweep per identity panel plus
  an n x n write plus an out-of-core multiply.

Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.core import RiotSession
from repro.core.costs import inverse_io, lu_io, solve_io
from repro.linalg import lu_decompose, lu_solve_factored
from repro.storage import ArrayStore, StorageConfig

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

#: Matrix side and memory budget.  The pool stays far below the matrix
#: (n^2 scalars) so both plans do real I/O rather than measure caching.
SIDE = 256 if FAST else 512
MEMORY_SCALARS = 24 * 1024 if FAST else 48 * 1024
BLOCK_SCALARS = 1024


def test_lu_io_tracks_model(benchmark):
    """Measured pivoted-LU blocks stay within 2x of ``lu_io``."""

    def measure():
        rng = np.random.default_rng(11)
        a_np = rng.standard_normal((SIDE, SIDE))
        store = ArrayStore(memory_bytes=MEMORY_SCALARS * 8,
                           block_size=8192)
        a = store.matrix_from_numpy(a_np, layout="square")
        store.pool.clear()
        store.reset_stats()
        factors = lu_decompose(store, a, MEMORY_SCALARS)
        store.flush()
        factor_stats = store.device.stats.snapshot()
        b = rng.standard_normal(SIDE)
        store.pool.clear()
        store.reset_stats()
        x = lu_solve_factored(factors, b, MEMORY_SCALARS)
        store.flush()
        solve_stats = store.device.stats.snapshot()
        residual = float(np.max(np.abs(a_np @ x - b)))
        return factor_stats, solve_stats, residual

    factor_stats, solve_stats, residual = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    record_io_stats(benchmark, factor_stats)
    benchmark.extra_info["io_solve"] = solve_stats.as_dict()

    lu_model = lu_io(SIDE, MEMORY_SCALARS, BLOCK_SCALARS, tile_side=32)
    solve_model = solve_io(SIDE, 1, MEMORY_SCALARS, BLOCK_SCALARS,
                           tile_side=32)
    lu_ratio = factor_stats.total / lu_model
    solve_ratio = solve_stats.total / solve_model
    print(f"\npivoted LU n={SIDE}: measured={factor_stats.total} "
          f"model={lu_model:.0f} ratio={lu_ratio:.2f}")
    print(f"substitution sweeps: measured={solve_stats.total} "
          f"model={solve_model:.0f} ratio={solve_ratio:.2f}")
    benchmark.extra_info["lu_model_blocks"] = round(lu_model)
    benchmark.extra_info["solve_model_blocks"] = round(solve_model)
    assert residual < 1e-8
    assert 0.5 <= lu_ratio <= 2.0
    assert 0.5 <= solve_ratio <= 2.0


def test_inv_rewrite_beats_materialized_inverse(benchmark):
    """inv(A) %*% b: the rewritten solve plan must move fewer blocks
    than materializing the inverse and multiplying through it."""
    n = SIDE

    def run(optimize: bool):
        session = RiotSession(
            storage=StorageConfig(memory_bytes=MEMORY_SCALARS * 8,
                                  block_size=8192),
            optimize=optimize)
        rng = np.random.default_rng(23)
        a = session.matrix(rng.standard_normal((n, n)))
        b = session.matrix(rng.standard_normal((n, 1)))
        plan = a.inv() @ b
        session.store.pool.clear()  # cold start: measure real I/O
        session.reset_stats()
        values = plan.values()
        return session.io_stats.snapshot(), values

    solve_stats, solve_values = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1)
    inverse_stats, inverse_values = run(False)
    record_io_stats(benchmark, solve_stats)
    benchmark.extra_info["io_materialized_inverse"] = \
        inverse_stats.as_dict()

    model_solve = (lu_io(n, MEMORY_SCALARS, BLOCK_SCALARS, 32)
                   + solve_io(n, 1, MEMORY_SCALARS, BLOCK_SCALARS, 32))
    model_inverse = inverse_io(n, MEMORY_SCALARS, BLOCK_SCALARS, 32)
    print(f"\ninv(A) %*% b, n={n}: "
          f"solve-rewrite={solve_stats.total} blocks, "
          f"materialized-inverse={inverse_stats.total} blocks "
          f"({inverse_stats.total / max(solve_stats.total, 1):.1f}x)")
    print(f"models: solve={model_solve:.0f}, "
          f"inverse={model_inverse:.0f} blocks")
    assert np.allclose(solve_values, inverse_values, atol=1e-7)
    assert solve_stats.total < inverse_stats.total
    # The models agree on the winner, by construction of the plans.
    assert model_solve < model_inverse
