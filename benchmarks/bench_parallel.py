"""Parallel execution: the speedup curve, and determinism under it.

Runs the dense chain-matmul workload on the ``pread`` backend at
increasing worker counts and dual-reports each point — simulated block
counters AND physical wall-clock — plus the measured speedup over the
serial run.  Two claims are locked in:

1. **Determinism** — results are bitwise-identical and simulated block
   counts identical at every parallelism level (the contract in
   ``repro.core.parallel``; the tile kernels keep all pool I/O on the
   calling thread in serial order).
2. **Honest speedup** — the wall-clock curve over workers is printed
   and recorded, not asserted against a hard factor: on a single-core
   container (the CI case) parallel execution legitimately shows ~1.0x
   or below, and BLAS already releases the GIL, so the curve is a
   report, not a gate.

Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import record_io_stats

from repro.core import OptimizerConfig, RiotSession
from repro.storage import StorageConfig

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

MAT_SIDE = 160 if FAST else 384
CHAIN_MEM = 12 * 1024 if FAST else 32 * 1024
WORKER_COUNTS = (1, 2, 4)

SIM_KEYS = ("seq_reads", "rand_reads", "seq_writes", "rand_writes",
            "read_calls", "write_calls", "coalesced_ios",
            "prefetched", "readahead_hits")


def _sim(stats) -> dict:
    d = stats.as_dict()
    return {k: d[k] for k in SIM_KEYS}


def _chain(workers: int):
    """Chain matmul through a session at the given parallelism."""
    rng = np.random.default_rng(42)
    parts = [rng.standard_normal((MAT_SIDE, MAT_SIDE))
             for _ in range(3)]
    session = RiotSession(
        storage=StorageConfig(backend="pread",
                              memory_bytes=CHAIN_MEM * 8),
        config=OptimizerConfig(parallelism=workers))
    try:
        mats = [session.matrix(m) for m in parts]
        expr = mats[0] @ mats[1] @ mats[2]
        session.store.flush()
        session.store.pool.clear()
        session.reset_stats()
        t0 = time.perf_counter()
        result = expr.values()
        wall = time.perf_counter() - t0
        io = session.io_stats.snapshot()
        pool = session.store.pool.stats.snapshot()
        return result, io, pool, wall
    finally:
        session.close()


def test_parallel_speedup_curve_chain_pread(benchmark):
    def sweep():
        return {w: _chain(w) for w in WORKER_COUNTS}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ref_result, ref_io, _, serial_wall = rows[1]
    print(f"\nchain-matmul {MAT_SIDE}^3 x3 on pread, "
          f"pool {CHAIN_MEM * 8 >> 10} KiB:")
    for w, (result, io, _, wall) in rows.items():
        speedup = serial_wall / wall if wall > 0 else float("inf")
        print(f"  workers={w}  wall={wall:8.4f}s  speedup={speedup:5.2f}x"
              f"  reads={io.reads:6d} writes={io.writes:6d} "
              f"syscalls={io.syscalls:5d}")
        # Claim 1: same bits, same simulated block counts, every level.
        assert np.array_equal(result, ref_result), \
            f"workers={w} result differs bitwise from serial"
        assert _sim(io) == _sim(ref_io), \
            f"workers={w} simulated block counts differ from serial"
    best = max(WORKER_COUNTS)
    _, io, pool, wall = rows[best]
    record_io_stats(benchmark, io, backend="pread", seconds=wall,
                    pool=pool)
    benchmark.extra_info["io"]["parallelism"] = best
    for w, (_, io_w, _, wall_w) in rows.items():
        benchmark.extra_info[f"io_workers_{w}"] = io_w.as_dict()
        benchmark.extra_info[f"wall_workers_{w}"] = round(wall_w, 6)
    # Claim 2 is the printed/recorded curve above — no hard factor.
