#!/usr/bin/env python
"""Validate benchmark JSON artifacts against the shared IOStats schema.

The CI benchmark-smoke job runs every ``bench_*.py`` with
``--benchmark-json`` and then this script over the result directory.
Every benchmark entry must carry ``extra_info["io"]`` containing every
key of :data:`repro.storage.IOSTATS_SCHEMA_KEYS` (the shape produced by
``IOStats.as_dict()``) — the uniform schema that lets downstream
tooling aggregate I/O numbers across benchmarks without per-file
special cases.  Exit status is non-zero on any violation, which fails
the job.

Usage::

    python benchmarks/check_schema.py bench-results/
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.storage import IOSTATS_SCHEMA_KEYS


def check_file(path: Path) -> tuple[list[str], int]:
    """Violations and benchmark count for one pytest-benchmark JSON."""
    problems: list[str] = []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable benchmark JSON ({exc})"], 0
    benchmarks = data.get("benchmarks", [])
    if not benchmarks:
        problems.append(f"{path.name}: no benchmarks recorded")
    for bench in benchmarks:
        name = bench.get("name", "<unnamed>")
        io = bench.get("extra_info", {}).get("io")
        if not isinstance(io, dict):
            problems.append(
                f"{path.name}::{name}: extra_info['io'] missing — "
                f"record it with record_io_stats(benchmark, stats)")
            continue
        missing = [k for k in IOSTATS_SCHEMA_KEYS if k not in io]
        if missing:
            problems.append(
                f"{path.name}::{name}: io dict missing schema keys "
                f"{missing}")
    return problems, len(benchmarks)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    results_dir = Path(argv[1])
    files = sorted(results_dir.glob("*.json"))
    if not files:
        print(f"no benchmark JSON files found in {results_dir}")
        return 1
    problems: list[str] = []
    checked = 0
    for path in files:
        file_problems, n = check_file(path)
        problems.extend(file_problems)
        if not file_problems:
            checked += n
            print(f"ok: {path.name} ({n} benchmarks)")
    if problems:
        print(f"\n{len(problems)} schema violation(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nall {checked} benchmark entries carry the shared "
          f"IOStats schema ({len(IOSTATS_SCHEMA_KEYS)} keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
