#!/usr/bin/env python
"""Validate benchmark JSON artifacts against the shared IOStats schema.

The CI benchmark-smoke job runs every ``bench_*.py`` with
``--benchmark-json`` and then this script over the result directory.
Every benchmark entry must carry ``extra_info["io"]`` containing every
key of :data:`repro.storage.IOSTATS_SCHEMA_KEYS` (the shape produced by
``IOStats.as_dict()``) — the uniform schema that lets downstream
tooling aggregate I/O numbers across benchmarks without per-file
special cases.  Exit status is non-zero on any violation, which fails
the job.

Usage::

    python benchmarks/check_schema.py bench-results/
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.storage import BACKENDS, IO_SCHEMA_VERSION, \
    IOSTATS_SCHEMA_KEYS, POOL_SCHEMA_KEYS


def check_entry(where: str, bench: dict) -> list[str]:
    """Schema-v2 violations for one benchmark entry.

    Beyond the IOStats keys, every entry must *dual-report*: the
    simulated block counters (``io``) plus which backend served them
    (``backend``) and what the physical I/O cost in wall-clock
    ``seconds`` — so a results file always answers both "how many
    blocks" and "how long on this hardware".
    """
    problems: list[str] = []
    extra = bench.get("extra_info", {})
    io = extra.get("io")
    if not isinstance(io, dict):
        return [f"{where}: extra_info['io'] missing — record it "
                f"with record_io_stats(benchmark, stats)"]
    missing = [k for k in IOSTATS_SCHEMA_KEYS if k not in io]
    if missing:
        problems.append(
            f"{where}: io dict missing schema keys {missing}")
    elif io["schema_version"] != IO_SCHEMA_VERSION:
        problems.append(
            f"{where}: io schema_version {io['schema_version']!r}, "
            f"expected {IO_SCHEMA_VERSION}")
    # Optional: parallel benchmarks annotate the io section with the
    # worker count behind the numbers.  When present it must be a
    # positive integer (bool is an int subclass — reject it).
    for key in ("parallelism", "workers"):
        if isinstance(io, dict) and key in io:
            value = io[key]
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 1:
                problems.append(
                    f"{where}: io[{key!r}] is {value!r}; when present "
                    f"it must be a positive integer worker count")
    # Optional: compression benchmarks annotate the io section with
    # the tile codec behind the numbers.  When present it must be a
    # non-empty string (a registered codec name like "delta+zstd").
    if isinstance(io, dict) and "codec" in io:
        value = io["codec"]
        if not isinstance(value, str) or not value:
            problems.append(
                f"{where}: io['codec'] is {value!r}; when present it "
                f"must be a non-empty codec name string")
    backend = extra.get("backend")
    if backend not in BACKENDS:
        problems.append(
            f"{where}: extra_info['backend'] is {backend!r}; "
            f"dual-reporting requires one of {'|'.join(BACKENDS)}")
    seconds = extra.get("seconds")
    if not isinstance(seconds, (int, float)) or seconds < 0:
        problems.append(
            f"{where}: extra_info['seconds'] is {seconds!r}; "
            f"dual-reporting requires a non-negative number")
    # The pool section is optional (analytic benchmarks have no pool),
    # but when present it must be the exact PoolStats.as_dict() shape.
    pool = extra.get("pool")
    if pool is not None:
        if not isinstance(pool, dict):
            problems.append(
                f"{where}: extra_info['pool'] is {type(pool).__name__}, "
                f"expected the PoolStats.as_dict() mapping")
        else:
            missing = [k for k in sorted(POOL_SCHEMA_KEYS)
                       if k not in pool]
            if missing:
                problems.append(
                    f"{where}: pool dict missing schema keys {missing}")
    return problems


def check_file(path: Path) -> tuple[list[str], int]:
    """Violations and benchmark count for one pytest-benchmark JSON."""
    problems: list[str] = []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable benchmark JSON ({exc})"], 0
    if "benchmarks" not in data:
        # Not a pytest-benchmark file: the results dir also collects
        # other artifacts (Chrome traces, calibration reports).
        return [], -1
    benchmarks = data["benchmarks"]
    if not benchmarks:
        problems.append(f"{path.name}: no benchmarks recorded")
    for bench in benchmarks:
        name = bench.get("name", "<unnamed>")
        problems.extend(check_entry(f"{path.name}::{name}", bench))
    return problems, len(benchmarks)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    results_dir = Path(argv[1])
    files = sorted(results_dir.glob("*.json"))
    if not files:
        print(f"no benchmark JSON files found in {results_dir}")
        return 1
    problems: list[str] = []
    checked = 0
    bench_files = 0
    for path in files:
        file_problems, n = check_file(path)
        problems.extend(file_problems)
        if n < 0:
            print(f"skipped: {path.name} (not a pytest-benchmark file)")
        elif not file_problems:
            checked += n
            bench_files += 1
            print(f"ok: {path.name} ({n} benchmarks)")
    if bench_files == 0 and not problems:
        print(f"no pytest-benchmark JSON files found in {results_dir}")
        return 1
    if problems:
        print(f"\n{len(problems)} schema violation(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nall {checked} benchmark entries carry the shared "
          f"IOStats schema ({len(IOSTATS_SCHEMA_KEYS)} keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
