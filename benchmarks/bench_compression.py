"""Compressed tile storage: device bytes, ratios, and determinism.

The compression tentpole, measured.  The same chain-matmul workload
runs on the ``pread`` backend under three tile codecs and dual-reports
simulated block counters AND physical device bytes/wall-clock:

1. **delta+zstd halves device traffic** — on compressible (integer-
   valued) data the lossless codec moves at least 2x fewer device
   bytes than ``raw``, with a *bitwise-identical* float64 result: the
   codec is transparent to the arithmetic, only the pages shrink.
2. **float32-downcast trades precision for bytes** — the lossy codec
   also at least halves device bytes (4-byte scalars on disk), and the
   result stays within float32 tolerance of the raw float64 answer —
   the relaxed determinism contract the README documents.
3. **The measured ratio feeds the planner** — ``IOStats`` v3 charges
   logical vs compressed bytes, so ``compression_ratio`` lands in the
   stats dict every downstream tool reads; entries here annotate
   ``io["codec"]`` (validated by ``check_schema.py``).

Page files are temporaries (honouring ``TMPDIR``), deleted on close.
Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.linalg import multiply_chain
from repro.storage import ArrayStore, StorageConfig

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

MAT_SIDE = 128 if FAST else 256
#: Tile side for every matrix in the chain — 128 x 128 float64 tiles
#: span 16 device pages, so the codec has whole frames to shrink (the
#: default 32 x 32 square tile is a single page: nothing to coalesce).
TILE = (128, 128)
CHAIN_MEM = 64 * 1024  # scalars: p = 128, tile-aligned panels
#: Repetitions for wall-clock comparisons; min-of-N suppresses noise.
REPS = 2 if FAST else 3

CODECS = ("raw", "delta+zstd", "float32-downcast")


def _chain(codec: str):
    """Chain-matmul on integer-valued data; returns (result, stats).

    Integer-valued float64 matrices keep every product exact (so the
    lossless-codec run can demand bitwise equality with raw) and
    delta-compress well (so the device-byte claim has headroom).
    """
    rng = np.random.default_rng(7)
    parts = [rng.integers(0, 4, size=(MAT_SIDE, MAT_SIDE))
             .astype(np.float64) for _ in range(3)]
    cfg = StorageConfig(backend="pread", memory_bytes=CHAIN_MEM * 8,
                        codec=codec)
    store = ArrayStore(storage=cfg)
    mats = [store.create_matrix(m.shape, tile_shape=TILE).from_numpy(m)
            for m in parts]
    store.pool.clear()
    # Cold start: decoded tiles from the loading phase don't count.
    store.tile_cache.clear()
    store.reset_stats()
    out = multiply_chain(store, mats, CHAIN_MEM, out_tile_shape=TILE)
    store.flush()
    result = out.to_numpy()
    snap = store.device.stats.snapshot()
    store.close()
    return result, snap


def _device_bytes(stats) -> int:
    return stats.bytes_read + stats.bytes_written


def test_compression_chain_matmul(benchmark):
    """All three claims on one workload, min-of-REPS per codec."""
    def duel():
        runs = {codec: [] for codec in CODECS}
        for _ in range(REPS):
            for codec in CODECS:
                runs[codec].append(_chain(codec))
        return runs

    runs = benchmark.pedantic(duel, rounds=1, iterations=1)
    best = {codec: min((s for _, s in runs[codec]),
                       key=lambda s: s.seconds)
            for codec in CODECS}
    print(f"\nchain-matmul {MAT_SIDE}^3 x3 on pread, tile {TILE} "
          f"(min of {REPS}):")
    for codec in CODECS:
        s = best[codec]
        print(f"  {codec:16s} dev_bytes={_device_bytes(s):>10d} "
              f"blocks={s.reads + s.writes:6d} "
              f"ratio={s.compression_ratio:.3f} "
              f"seconds={s.seconds:.4f}")
    record_io_stats(benchmark, best["delta+zstd"], backend="pread",
                    codec="delta+zstd")
    for codec in CODECS:
        extra = best[codec].as_dict()
        extra["codec"] = codec
        benchmark.extra_info[f"io_{codec.replace('+', '_')}"] = extra

    raw_result = runs["raw"][0][0]
    # Claim 1: lossless codec, bitwise-identical answer, >= 2x fewer
    # device bytes.
    zstd_result = runs["delta+zstd"][0][0]
    assert np.array_equal(raw_result, zstd_result), \
        "delta+zstd must be transparent to float64 arithmetic"
    assert (_device_bytes(best["delta+zstd"])
            <= _device_bytes(best["raw"]) / 2), \
        "delta+zstd should move at most half the device bytes of raw"
    assert best["delta+zstd"].compression_ratio < 0.6
    # Claim 2: float32-downcast halves bytes, answer within float32
    # tolerance (the relaxed contract for the lossy codec).
    f32_result = runs["float32-downcast"][0][0]
    assert (_device_bytes(best["float32-downcast"])
            <= _device_bytes(best["raw"]) / 2 + 8192), \
        "float32-downcast stores 4-byte scalars: ~half the raw bytes"
    np.testing.assert_allclose(f32_result, raw_result, rtol=1e-4,
                               atol=1e-4 * np.abs(raw_result).max())
    # Claim 3: the measured ratio is in-band for the planner's
    # fuse-vs-materialize arithmetic (raw charges equal bytes).
    assert best["raw"].compression_ratio == 1.0


def test_compression_determinism_across_backends(benchmark):
    """Simulated block counts are backend-independent under a codec.

    The dtype/codec-aware accounting keeps the storage contract of the
    earlier PRs: the in-memory simulator and the real page file charge
    identical block counters for the compressed workload.
    """
    def run_pair():
        rng = np.random.default_rng(3)
        data = rng.integers(0, 4, size=(MAT_SIDE, MAT_SIDE)) \
            .astype(np.float64)
        out = {}
        for backend in ("memory", "pread"):
            cfg = StorageConfig(backend=backend,
                                memory_bytes=CHAIN_MEM * 8,
                                codec="delta+zstd")
            store = ArrayStore(storage=cfg)
            mat = store.create_matrix(data.shape,
                                      tile_shape=TILE).from_numpy(data)
            store.pool.clear()
            # Drop the decoded-tile cache too: the scan must decode
            # from device pages, or there is nothing to compare.
            store.tile_cache.clear()
            store.reset_stats()
            roundtrip = mat.to_numpy()
            assert np.array_equal(roundtrip, data)
            out[backend] = store.device.stats.snapshot()
            store.close()
        return out

    rows = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    mem, pread = rows["memory"], rows["pread"]
    print(f"\ncompressed scan {MAT_SIDE}^2, memory vs pread:")
    for name, s in rows.items():
        print(f"  {name:6s} reads={s.reads:5d} "
              f"bytes_logical={s.bytes_logical:>9d} "
              f"bytes_compressed={s.bytes_compressed:>9d}")
    assert mem.reads == pread.reads
    assert mem.bytes_logical == pread.bytes_logical
    assert mem.bytes_compressed == pread.bytes_compressed
    record_io_stats(benchmark, pread, backend="pread",
                    codec="delta+zstd")
