"""Figure 2: the subscript-through-modification rewrite, measured.

The paper presents Figure 2 as a pair of DAG diagrams; the claim behind it
is that after the rewrite, *"modifications to b (as well as tests of whether
an element of b should be modified) only need to be executed on 10
elements."*  This bench runs

    b <- a^2; b[b > 100] <- 100; b[1:10]

on the next-generation engine with the rewriter on and off and reports the
I/O of evaluating the 10-element result, printing both DAGs.
"""

from __future__ import annotations

import numpy as np
from conftest import record_io_stats

from repro.core import RiotSession
from repro.storage import StorageConfig

N = 2_000_000
MEMORY = 32 * 8192  # deliberately tiny pool: misses are visible


def _build(session: RiotSession, values: np.ndarray):
    a = session.vector(values)
    b = a ** 2.0
    b2 = b.assign(b > 100.0, 100.0)
    return b2[1:10]


def _measure(optimize: bool):
    rng = np.random.default_rng(42)
    values = rng.uniform(0.0, 20.0, N)
    session = RiotSession(storage=StorageConfig(memory_bytes=MEMORY),
                          optimize=optimize)
    first10 = _build(session, values)
    explain = first10.explain()
    session.store.flush()
    session.reset_stats()
    got = first10.values()
    return session.io_stats.snapshot(), got, explain


def test_fig2_rewrite_io(benchmark):
    stats_opt, got_opt, explain = benchmark.pedantic(
        lambda: _measure(True), rounds=1, iterations=1)
    stats_raw, got_raw, _ = _measure(False)
    record_io_stats(benchmark, stats_opt)
    benchmark.extra_info["io_unoptimized"] = stats_raw.as_dict()
    io_opt, io_raw = stats_opt.total, stats_raw.total

    print("\nFigure 2: expression DAGs for b[1:10]")
    print(explain)
    print(f"\nI/O to evaluate b[1:10] over n={N}:")
    print(f"  optimized (Figure 2(b)):   {io_opt:8d} blocks")
    print(f"  unoptimized (Figure 2(a)): {io_raw:8d} blocks")

    rng = np.random.default_rng(42)
    values = rng.uniform(0.0, 20.0, N)
    expect = np.minimum(values ** 2, 100.0)[:10]
    assert np.allclose(got_opt, expect)
    assert np.allclose(got_raw, expect)
    # The rewrite's point: selected evaluation touches a handful of
    # chunks; the unoptimized plan streams the whole vector.
    chunks = N // 1024
    assert io_opt < 32
    assert io_raw > chunks // 2
    assert io_opt * 100 < io_raw
