"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper figure it regenerates
(run ``pytest benchmarks/ --benchmark-only -s`` to see them) and asserts the
*shape* claims of the paper — who wins, by roughly what factor — not
absolute numbers, since the substrate is a simulator rather than the
authors' 2008 Solaris testbed.
"""

from __future__ import annotations

import pytest

from repro.storage import IOStats


def record_io_stats(benchmark, stats: IOStats | None = None) -> None:
    """Attach I/O counters to ``extra_info`` under the shared schema.

    Every benchmark emits ``extra_info["io"] = IOStats.as_dict()`` —
    the one JSON shape the CI artifact job validates and aggregates
    (``benchmarks/check_schema.py``).  Purely analytic benchmarks (the
    Figure-3 calculations) pass no stats and record an explicit
    all-zero IOStats rather than omitting the key.
    """
    benchmark.extra_info["io"] = (stats or IOStats()).as_dict()


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (these workloads are deterministic and
    expensive; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
