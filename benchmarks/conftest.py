"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper figure it regenerates
(run ``pytest benchmarks/ --benchmark-only -s`` to see them) and asserts the
*shape* claims of the paper — who wins, by roughly what factor — not
absolute numbers, since the substrate is a simulator rather than the
authors' 2008 Solaris testbed.
"""

from __future__ import annotations

import pytest

from repro.storage import BACKENDS, IOStats, PoolStats


def record_io_stats(benchmark, stats: IOStats | None = None, *,
                    backend: str = "memory",
                    seconds: float | None = None,
                    pool: PoolStats | None = None,
                    codec: str | None = None) -> None:
    """Attach I/O counters to ``extra_info`` under the shared schema.

    Every benchmark emits ``extra_info["io"] = IOStats.as_dict()`` —
    the one JSON shape the CI artifact job validates and aggregates
    (``benchmarks/check_schema.py``).  Purely analytic benchmarks (the
    Figure-3 calculations) pass no stats and record an explicit
    all-zero IOStats rather than omitting the key.

    Schema v2 dual-reports every entry: ``backend`` names the device
    that served the blocks and ``seconds`` is the wall-clock the
    device spent in physical reads+writes (defaulting to the stats'
    own ``read_ns + write_ns``; 0.0 on the simulator, real time on the
    file backends).  ``pool`` (when the workload ran through a buffer
    pool) adds ``extra_info["pool"] = PoolStats.as_dict()`` so results
    answer "how many of those block requests even reached the device";
    analytic entries omit the section rather than faking zeros.

    ``codec`` (when the store ran with tile compression) annotates the
    io section with the codec name, the same optional-key pattern the
    parallel benchmarks use for ``workers``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} "
                         f"(use one of {'|'.join(BACKENDS)})")
    stats = stats or IOStats()
    benchmark.extra_info["io"] = stats.as_dict()
    if codec is not None:
        benchmark.extra_info["io"]["codec"] = str(codec)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["seconds"] = (
        stats.seconds if seconds is None else float(seconds))
    if pool is not None:
        benchmark.extra_info["pool"] = pool.as_dict()


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (these workloads are deterministic and
    expensive; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
