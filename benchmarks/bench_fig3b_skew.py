"""Figure 3(b): I/O vs skewness s for the three native strategies.

n = 100000, memory = 2 GB, s in {2, 4, 6, 8}.  The paper: *"As s
increases, the performance gap between Square/Opt-Order and others widens,
demonstrating the importance of optimizing the multiplication order."*
RIOT-DB is omitted exactly as in the paper.
"""

from __future__ import annotations

from conftest import record_io_stats

from repro.core.chain import optimal_order
from repro.core.costs import fig3_dims, fig3b_rows

STRATEGIES = ["BNLJ-Inspired", "Square/In-Order", "Square/Opt-Order"]


def test_fig3b_table(benchmark):
    rows = benchmark.pedantic(fig3b_rows, rounds=1, iterations=1)
    # Purely analytic (the paper's own calculated costs): the shared
    # schema is still emitted, with an explicit all-zero IOStats.
    record_io_stats(benchmark)

    print("\nFigure 3(b): I/O cost (disk blocks) vs skewness, "
          "n=100000, M=2GB")
    print(f"{'strategy':18s}" + "".join(
        f"      s={s}".rjust(14) for s in (2, 4, 6, 8)))
    cells = {(r["strategy"], r["s"]): r["io_blocks"] for r in rows}
    for strategy in STRATEGIES:
        line = f"{strategy:18s}"
        for s in (2, 4, 6, 8):
            line += f"  {cells[(strategy, s)]:12.3e}"
        print(line)

    # Opt-Order picks A(BC) under skew — verify the DP choice directly.
    for s in (2, 4, 6, 8):
        assert optimal_order(fig3_dims(100_000, s)) == (0, (1, 2))

    # Opt-Order always wins, and its margin over In-Order widens with s.
    margins = []
    for s in (2, 4, 6, 8):
        in_order_cost = cells[("Square/In-Order", s)]
        opt_cost = cells[("Square/Opt-Order", s)]
        bnlj_cost = cells[("BNLJ-Inspired", s)]
        assert opt_cost < in_order_cost < bnlj_cost
        margins.append(in_order_cost / opt_cost)
    assert margins == sorted(margins)
    assert margins[-1] > 2 * margins[0]
