"""Cost-based planner vs forced-worst alternative on a mixed chain.

The acceptance benchmark of the two-stage optimizer: a mixed
dense/sparse chain ``(A %*% B) %*% C`` (A, B sparse CSR tiles, C a
dense panel) is evaluated twice —

- **cost-picked**: the level-2 planner, no hints anywhere.  It must
  right-deep the chain (nnz-weighted DP), run the sparse kernels for
  the sparse products, and report per-operator predicted block I/O.
- **forced-worst**: the left-deep program order with every product
  pinned ``kernel="dense"`` (sparse operands densified), chain
  reordering disabled — the plan a hint-driven user could force and an
  optimizer-less system would run.

Reported: predicted vs measured blocks for both plans (the planner's
predictions must track measurement within the 0.5-2.0x cost-model
contract) and the measured win of the cost-picked plan.

Set ``RIOT_BENCH_FAST=1`` (the CI smoke job does) to shrink sizes.
"""

from __future__ import annotations

import os

import numpy as np
from conftest import record_io_stats

from repro.core import MatMul, OptimizerConfig, RiotSession
from repro.storage import StorageConfig

FAST = bool(os.environ.get("RIOT_BENCH_FAST"))

N = 256 if FAST else 512
DENSITY = 0.005
PANEL = 64 if FAST else 128
#: Pool size (blocks): the smallest budget whose Appendix-A working
#: set fits the forced-worst plan's densified 128-side tiles (3 of
#: them), so both plans run under one budget and still do real I/O.
POOL_BLOCKS = 48


def _session(**cfg):
    storage = StorageConfig(memory_bytes=POOL_BLOCKS * 8192)
    return RiotSession(storage=storage,
                       config=OptimizerConfig(level=2, **cfg))


def _coo(n, density, seed):
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(density * n * n)))
    flat = rng.choice(n * n, size=nnz, replace=False)
    return flat // n, flat % n, rng.standard_normal(nnz)


def _leaves(session):
    i, j, x = _coo(N, DENSITY, 1)
    A = session.sparse_matrix(i, j, x, (N, N), name="A")
    i, j, x = _coo(N, DENSITY, 2)
    B = session.sparse_matrix(i, j, x, (N, N), name="B")
    C = session.matrix(np.random.default_rng(3)
                       .standard_normal((N, PANEL)), name="C")
    return A, B, C


def _measure(session, node):
    plan = session.plan(node)
    session.store.pool.clear()
    session.reset_stats()
    result = session.force(node)
    session.store.flush()
    stats = session.io_stats.snapshot()
    pool = session.store.pool.stats.snapshot()
    arr = result.to_numpy()
    return plan, stats, pool, arr


def test_cost_picked_vs_forced_worst(benchmark):
    def run_picked():
        s = _session()
        A, B, C = _leaves(s)
        return _measure(s, ((A @ B) @ C).node)

    picked_plan, picked_stats, picked_pool, picked_vals = \
        benchmark.pedantic(run_picked, rounds=1, iterations=1)

    worst_session = _session(chain_reorder=False)
    A, B, C = _leaves(worst_session)
    worst_node = MatMul(
        MatMul(A.node, B.node, kernel="dense"), C.node,
        kernel="dense")
    worst_plan, worst_stats, _, worst_vals = _measure(worst_session,
                                                      worst_node)

    print(f"\nmixed chain (A B) C, n={N}, density={DENSITY}, "
          f"panel={PANEL}:")
    print(f"  {'plan':>12s} {'predicted':>10s} {'measured':>9s}")
    for label, plan, stats in (
            ("cost-picked", picked_plan, picked_stats),
            ("forced-worst", worst_plan, worst_stats)):
        print(f"  {label:>12s} {plan.total_predicted:10.0f} "
              f"{stats.total:9d}")
    print("  chosen plan: " + picked_plan.signature())

    record_io_stats(benchmark, picked_stats, pool=picked_pool)
    benchmark.extra_info["io_forced_worst"] = worst_stats.as_dict()
    benchmark.extra_info["predicted_blocks"] = round(
        picked_plan.total_predicted)
    benchmark.extra_info["predicted_blocks_worst"] = round(
        worst_plan.total_predicted)
    benchmark.extra_info["plan_signature"] = picked_plan.signature()

    # Identical answers, then the shape claims: the cost-picked plan
    # moves strictly fewer blocks, and both predictions honor the
    # 0.5-2.0x cost-model contract against their own measurement.
    assert np.allclose(picked_vals, worst_vals, atol=1e-8)
    assert picked_stats.total < worst_stats.total
    for plan, stats in ((picked_plan, picked_stats),
                        (worst_plan, worst_stats)):
        ratio = plan.total_predicted / max(stats.total, 1)
        assert 0.5 <= ratio <= 2.0, f"prediction off: {ratio:.2f}x"


def test_explain_reports_predicted_and_measured(benchmark):
    """The EXPLAIN contract: after a force, every operator of the
    chosen plan shows measured blocks next to its prediction."""

    def run():
        s = _session()
        A, B, C = _leaves(s)
        handle = (A @ B) @ C
        s.store.pool.clear()
        s.reset_stats()
        handle.force()
        s.store.flush()
        return s, handle, s.io_stats.snapshot()

    s, handle, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    record_io_stats(benchmark, stats,
                    pool=s.store.pool.stats.snapshot())
    text = s.explain(handle)
    print("\n" + text)
    assert "-- physical plan (level 2) --" in text
    assert "predicted ~" in text and "| measured" in text
