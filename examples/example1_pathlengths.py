"""The paper's Example 1, run unmodified on all five engines (mini Fig. 1).

The same R source — the paper's program verbatim — runs against Plain R,
the three RIOT-DB variants, and next-generation RIOT, via the generic-
dispatch transparency mechanism of §4.  Prints a miniature Figure 1.

Run:  python examples/example1_pathlengths.py [n]
"""

import sys

from repro.engines import ALL_ENGINES
from repro.workloads import SOURCE, run_example1

ENGINE_ORDER = ["plain", "strawman", "matnamed", "riotdb", "riotng"]


def main(n: int = 2 ** 20) -> None:
    print("Program (runs unmodified on every engine):")
    print(SOURCE)
    print(f"n = 2^{n.bit_length() - 1}, memory cap = 68 MB\n")
    print(f"{'engine':22s} {'disk I/O (MB)':>14s} "
          f"{'sim time (s)':>13s} {'wall (s)':>9s}")

    outputs = set()
    for name in ENGINE_ORDER:
        engine = ALL_ENGINES[name](memory_bytes=68 * 1024 * 1024)
        result = run_example1(engine, n)
        outputs.add(result.output[0])
        print(f"{result.engine:22s} {result.io_mb:14.2f} "
              f"{result.sim_seconds:13.2f} {result.wall_seconds:9.2f}")

    assert len(outputs) == 1, "engines disagree!"
    print("\nAll engines printed identical results:")
    print(" ", outputs.pop())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2 ** 20)
