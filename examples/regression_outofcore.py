"""Out-of-core ordinary least squares — a realistic statistical workload.

The kind of computation the paper's introduction motivates: a regression
over a design matrix far larger than memory.  Solves

    beta = (X'X)^{-1} X'y

entirely on the tile store: X'X via the out-of-core square-tile multiply
(Appendix A), and the solve via blocked out-of-core LU (§5's expression
algebra includes LU as a first-class operation).

Run:  python examples/regression_outofcore.py
"""

import numpy as np

from repro.linalg import lu_solve, square_tile_matmul
from repro.storage import ArrayStore


def main() -> None:
    n_obs, n_feat = 20_000, 64
    memory_scalars = 96 * 1024       # 768 KB of "RAM"
    rng = np.random.default_rng(123)

    beta_true = rng.standard_normal(n_feat)
    x_np = rng.standard_normal((n_obs, n_feat))
    y_np = x_np @ beta_true + 0.01 * rng.standard_normal(n_obs)

    data_mb = x_np.nbytes / 2 ** 20
    mem_mb = memory_scalars * 8 / 2 ** 20
    print(f"design matrix: {n_obs:,} x {n_feat} ({data_mb:.1f} MB), "
          f"memory budget: {mem_mb:.2f} MB")

    store = ArrayStore(memory_bytes=memory_scalars * 8, block_size=8192)
    x = store.matrix_from_numpy(x_np, layout="square", name="X")
    xt = store.matrix_from_numpy(x_np.T.copy(), layout="square",
                                 name="Xt")
    y_mat = store.matrix_from_numpy(y_np.reshape(-1, 1), layout="square",
                                    name="y")

    store.pool.clear()
    store.reset_stats()

    # Normal equations, all out of core.
    xtx = square_tile_matmul(store, xt, x, memory_scalars, name="XtX")
    xty = square_tile_matmul(store, xt, y_mat, memory_scalars,
                             name="Xty")
    beta = lu_solve(store, xtx, xty.to_numpy().ravel(), memory_scalars)

    store.flush()
    io = store.device.stats
    print(f"I/O: {io.total} blocks ({io.mb_total():.1f} MB), "
          f"buffer hit rate {store.pool.stats.hit_rate:.0%}")

    err = np.max(np.abs(beta - np.linalg.lstsq(x_np, y_np,
                                               rcond=None)[0]))
    print(f"max |beta - lstsq| = {err:.2e}")
    print(f"recovered beta[:5]: {beta[:5].round(4)}")
    print(f"true      beta[:5]: {beta_true[:5].round(4)}")
    assert err < 1e-6


if __name__ == "__main__":
    main()
