"""Transparency demo: one R program, five engines, the §5 rewrite live.

Runs the paper's §5 code fragment

    b <- a^2; b[b>100] <- 100; print(b[1:10])

on every engine.  On the deferring engines the modification never executes
over the full vector: RIOT-DB defers it as a CASE WHEN view, and next-gen
RIOT rewrites the DAG (Figure 2) so only 10 elements are touched.

Run:  python examples/transparent_r.py
"""

import numpy as np

from repro.engines import ALL_ENGINES
from repro.rlang import Interpreter

PROGRAM = """
b <- a^2
b[b > 100] <- 100
print(b[1:10])
"""

N = 500_000


def main() -> None:
    print("Program:")
    print(PROGRAM)
    rng = np.random.default_rng(9)
    values = rng.uniform(0, 20, N)

    print(f"{'engine':22s} {'I/O after setup (blocks)':>25s}  output")
    outputs = set()
    for name in ("plain", "strawman", "matnamed", "riotdb", "riotng"):
        engine = ALL_ENGINES[name](memory_bytes=8 * 1024 * 1024)
        interp = Interpreter(engine, seed=1)
        interp.env["a"] = engine.make_vector(values)
        engine.reset_stats()
        interp.run(PROGRAM)
        io = engine.io_stats().total
        out = interp.output[0]
        outputs.add(out)
        print(f"{engine.name:22s} {io:25d}  {out[:40]}...")

    assert len(outputs) == 1
    print("\nIdentical output everywhere — the I/O column is the story:")
    print("eager engines execute the masked update over all",
          f"{N:,} elements; the deferred engines touch ~10.")

    # Show the SQL view RIOT-DB built for the masked update.
    engine = ALL_ENGINES["riotdb"](memory_bytes=8 * 1024 * 1024)
    interp = Interpreter(engine, seed=1)
    interp.env["a"] = engine.make_vector(values)
    interp.run("b <- a^2\nb[b > 100] <- 100")
    b = interp.env["b"]
    print("\nRIOT-DB's deferred view for the modified b:")
    print(" ", engine.db.view_sql(b.name))


if __name__ == "__main__":
    main()
