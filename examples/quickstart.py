"""Quickstart: deferred, I/O-efficient array computing with RIOT.

Creates a session with a 16 MB memory cap, builds a deferred expression,
and shows the two headline behaviours of the paper:

1. a multi-operation expression evaluates in ONE streaming pass (no
   intermediate vectors ever touch memory or disk), and
2. subscripting a deferred expression computes only the selected elements
   (selective evaluation).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import RiotSession
from repro.storage import StorageConfig


def main() -> None:
    session = RiotSession(
        storage=StorageConfig(memory_bytes=16 * 1024 * 1024))
    n = 4_000_000

    rng = np.random.default_rng(0)
    x = session.vector(rng.uniform(0, 100, n), name="x")
    y = session.vector(rng.uniform(0, 100, n), name="y")

    # Line (1) of the paper's Example 1 — twelve intermediates in R,
    # zero here: everything below is a deferred DAG.
    d = (((x - 0.0) ** 2.0 + (y - 0.0) ** 2.0).sqrt()
         + ((x - 100.0) ** 2.0 + (y - 100.0) ** 2.0).sqrt())
    print("d is deferred:", d)

    # Selective evaluation: pick 100 random elements of d.
    sample = np.sort(rng.choice(np.arange(1, n + 1), 100, replace=False))
    z = d[sample]

    session.store.flush()
    session.reset_stats()
    values = z.values()
    io = session.io_stats
    print(f"z = d[s] evaluated: {values[:5].round(2)} ...")
    print(f"I/O for 100 of {n:,} elements: {io.total} blocks "
          f"({io.mb_total():.2f} MB)")

    # Full evaluation for comparison: one fused streaming pass.
    session.store.flush()
    session.reset_stats()
    total = d.sum()
    io = session.io_stats
    print(f"sum(d) = {total:,.1f}")
    print(f"I/O for the full pass: {io.total} blocks "
          f"({io.mb_total():.2f} MB) — reads x and y exactly once, "
          f"writes nothing")

    # The optimizer at work: inspect the DAG before and after rewriting.
    print("\nOptimized DAG for z (subscripts pushed to the inputs):")
    print(z.explain())


if __name__ == "__main__":
    main()
