"""Matrix-chain optimization: Figure 3 analytically + measured at scale.

Part 1 recomputes the paper's Figure 3 cost tables (n = 100000 matrices
are 80 GB objects — the paper costed them analytically, and so do we).

Part 2 runs the *real* out-of-core algorithms at laptop scale on the
counted tile store and shows the same ordering holds in measured blocks,
including the win from DP reordering under skew.

Run:  python examples/matrix_chain.py
"""

import numpy as np

from repro.core.chain import in_order, optimal_order, order_to_string
from repro.core.costs import (GB_IN_SCALARS, fig3_dims,
                              fig3_strategy_costs)
from repro.linalg import multiply_chain
from repro.storage import ArrayStore


def analytic_part() -> None:
    print("=" * 64)
    print("Figure 3(a) (analytic): I/O blocks for A %*% B %*% C, s=2")
    print("=" * 64)
    for n in (100_000, 120_000):
        for gb in (2, 4):
            costs = fig3_strategy_costs(n, 2.0, gb * GB_IN_SCALARS)
            print(f"\nn={n:,}, memory={gb} GB:")
            for strategy, io in costs.items():
                print(f"  {strategy:18s} {io:14.3e} blocks")

    print("\nOrder chosen by the DP under skew:")
    for s in (2, 4, 6, 8):
        dims = fig3_dims(100_000, s)
        order = optimal_order(dims)
        print(f"  s={s}: {order_to_string(order, ['A', 'B', 'C'])}")


def measured_part() -> None:
    print("\n" + "=" * 64)
    print("Measured at laptop scale: n=512, s=8, memory=512 KB")
    print("=" * 64)
    n, s = 512, 8
    mem = 64 * 1024  # scalars
    rng = np.random.default_rng(1)
    a = rng.standard_normal((n, n // s))
    b = rng.standard_normal((n // s, n))
    c = rng.standard_normal((n, n))

    for label, order in (("in-order  (AB)C", in_order(3)),
                         ("opt-order A(BC)", None)):
        store = ArrayStore(memory_bytes=mem * 8, block_size=8192)
        mats = [store.matrix_from_numpy(m, layout="square")
                for m in (a, b, c)]
        store.pool.clear()
        store.reset_stats()
        out = multiply_chain(store, mats, mem, order=order)
        store.flush()
        io = store.device.stats.total
        ok = np.allclose(out.to_numpy(), a @ b @ c)
        print(f"  {label}: {io:6d} blocks  (correct: {ok})")


if __name__ == "__main__":
    analytic_part()
    measured_part()
