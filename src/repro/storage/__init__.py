"""Simulated disk, buffer management, and tiled array storage.

This package is the storage substrate shared by every subsystem in the
reproduction: the virtual-memory pager that stands in for plain R, the
relational engine that stands in for MySQL, and the next-generation RIOT
tile store.  Routing all of them through one counted
:class:`~repro.storage.block_device.BlockDevice` is what makes the paper's
I/O comparisons (Figure 1(a), Figure 3) exact here.
"""

from .block_device import (BlockDevice, DEFAULT_BLOCK_SIZE,
                           IO_SCHEMA_VERSION, IOSTATS_SCHEMA_KEYS, IOStats,
                           SCALARS_PER_BLOCK, SimClock, coalesce_runs)
from .buffer_pool import (POOL_SCHEMA_KEYS, BufferPool, ClockPolicy,
                          LRUPolicy, PoolStats, make_policy)
from .codecs import (CODECS, DeltaZstdCodec, Float32Codec, RawCodec,
                     TileCodec, get_codec, register_codec)
from .config import (BACKENDS, StorageConfig, create_device, parse_memory)
from .file_device import FileBlockDevice
from .io_scheduler import IOScheduler, SchedulerStats
from .linearization import (ColMajor, Hilbert, Linearization, RowMajor,
                            ZOrder, linearization_names, make_linearization)
from .pagefile import PageFile, new_pagefile
from .tile_store import (ArrayStore, DecodedTileCache, TiledMatrix,
                         TiledVector, tile_shape_for_layout)

__all__ = [
    "ArrayStore",
    "BACKENDS",
    "BlockDevice",
    "BufferPool",
    "CODECS",
    "ClockPolicy",
    "ColMajor",
    "DEFAULT_BLOCK_SIZE",
    "DecodedTileCache",
    "DeltaZstdCodec",
    "FileBlockDevice",
    "Float32Codec",
    "Hilbert",
    "IOScheduler",
    "IOSTATS_SCHEMA_KEYS",
    "IO_SCHEMA_VERSION",
    "IOStats",
    "Linearization",
    "LRUPolicy",
    "POOL_SCHEMA_KEYS",
    "PageFile",
    "PoolStats",
    "RawCodec",
    "RowMajor",
    "SCALARS_PER_BLOCK",
    "SchedulerStats",
    "SimClock",
    "StorageConfig",
    "TileCodec",
    "TiledMatrix",
    "TiledVector",
    "ZOrder",
    "coalesce_runs",
    "create_device",
    "get_codec",
    "linearization_names",
    "make_linearization",
    "make_policy",
    "new_pagefile",
    "parse_memory",
    "register_codec",
    "tile_shape_for_layout",
]
