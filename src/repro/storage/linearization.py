"""Tile linearization orders: row, column, Z-order (Morton), Hilbert.

Section 5 of the paper: *"RIOT also provides advanced linearization options
for controlling the order in which tiles are stored on disk ... RIOT plans to
support linearizations based on space-filling curves, for arrays whose access
patterns are not known in advance."*

A linearization maps a 2-D tile coordinate ``(ti, tj)`` on a ``rows x cols``
tile grid to a position in the on-disk sequence of tiles.  Sequential device
I/O happens when consecutive accesses hit consecutive positions, so the choice
of curve decides which access patterns are cheap.
"""

from __future__ import annotations


def _ceil_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class Linearization:
    """Bijective map between tile coordinates and linear tile positions."""

    name = "abstract"

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def index(self, ti: int, tj: int) -> int:
        raise NotImplementedError

    def coords(self, pos: int) -> tuple[int, int]:
        raise NotImplementedError

    def _check(self, ti: int, tj: int) -> None:
        if not (0 <= ti < self.rows and 0 <= tj < self.cols):
            raise IndexError(
                f"tile ({ti},{tj}) outside grid {self.rows}x{self.cols}")


class RowMajor(Linearization):
    """Tiles stored row by row — R's default layout generalized to tiles."""

    name = "row"

    def index(self, ti: int, tj: int) -> int:
        self._check(ti, tj)
        return ti * self.cols + tj

    def coords(self, pos: int) -> tuple[int, int]:
        return divmod(pos, self.cols)


class ColMajor(Linearization):
    """Tiles stored column by column (R's element order, at tile level)."""

    name = "col"

    def index(self, ti: int, tj: int) -> int:
        self._check(ti, tj)
        return tj * self.rows + ti

    def coords(self, pos: int) -> tuple[int, int]:
        tj, ti = divmod(pos, self.rows)
        return ti, tj


class ZOrder(Linearization):
    """Morton order: interleave the bits of the two coordinates.

    Positions for a non-square or non-power-of-two grid are computed on the
    enclosing power-of-two square and then compacted to a dense range so no
    disk space is wasted on phantom tiles.
    """

    name = "zorder"

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__(rows, cols)
        side = _ceil_pow2(max(rows, cols))
        order = sorted(
            ((self._interleave(ti, tj), ti, tj)
             for ti in range(rows) for tj in range(cols)))
        self._pos: dict[tuple[int, int], int] = {}
        self._inv: list[tuple[int, int]] = []
        for dense, (_, ti, tj) in enumerate(order):
            self._pos[(ti, tj)] = dense
            self._inv.append((ti, tj))
        self._side = side

    @staticmethod
    def _interleave(x: int, y: int) -> int:
        z = 0
        for bit in range(max(x.bit_length(), y.bit_length(), 1)):
            z |= ((x >> bit) & 1) << (2 * bit)
            z |= ((y >> bit) & 1) << (2 * bit + 1)
        return z

    def index(self, ti: int, tj: int) -> int:
        self._check(ti, tj)
        return self._pos[(ti, tj)]

    def coords(self, pos: int) -> tuple[int, int]:
        return self._inv[pos]


class Hilbert(Linearization):
    """Hilbert curve order: best worst-case locality of the classic curves.

    Uses the standard iterative d2xy/xy2d transform on the enclosing
    power-of-two square, compacted to a dense range like :class:`ZOrder`.
    """

    name = "hilbert"

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__(rows, cols)
        side = _ceil_pow2(max(rows, cols))
        order = sorted(
            ((self._xy2d(side, ti, tj), ti, tj)
             for ti in range(rows) for tj in range(cols)))
        self._pos: dict[tuple[int, int], int] = {}
        self._inv: list[tuple[int, int]] = []
        for dense, (_, ti, tj) in enumerate(order):
            self._pos[(ti, tj)] = dense
            self._inv.append((ti, tj))
        self._side = side

    @staticmethod
    def _xy2d(side: int, x: int, y: int) -> int:
        rx = ry = 0
        d = 0
        s = side // 2
        while s > 0:
            rx = 1 if (x & s) > 0 else 0
            ry = 1 if (y & s) > 0 else 0
            d += s * s * ((3 * rx) ^ ry)
            # rotate
            if ry == 0:
                if rx == 1:
                    x = s - 1 - x
                    y = s - 1 - y
                x, y = y, x
            s //= 2
        return d

    def index(self, ti: int, tj: int) -> int:
        self._check(ti, tj)
        return self._pos[(ti, tj)]

    def coords(self, pos: int) -> tuple[int, int]:
        return self._inv[pos]


_CURVES = {
    "row": RowMajor,
    "col": ColMajor,
    "zorder": ZOrder,
    "hilbert": Hilbert,
}


def make_linearization(name: str, rows: int, cols: int) -> Linearization:
    """Construct a linearization by name: row | col | zorder | hilbert."""
    try:
        cls = _CURVES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown linearization {name!r}; "
            f"options: {sorted(_CURVES)}") from None
    return cls(rows, cols)


def linearization_names() -> list[str]:
    return sorted(_CURVES)
