"""Page-addressed files on top of a :class:`BlockDevice`.

A :class:`PageFile` is a growable sequence of pages (one page = one device
block) with its own local page numbering.  The relational engine stores heap
tables and B+tree indexes in page files; the tile store keeps one page file
per array.  Extents of consecutive device blocks are reserved eagerly so that
a scan through a file's pages in order produces *sequential* device I/O, the
way a real filesystem tries to lay files out contiguously.
"""

from __future__ import annotations

import numpy as np

from .block_device import BlockDevice

#: Number of device blocks reserved at a time when a file grows.
EXTENT_PAGES = 64


class PageFile:
    """A named, growable file of pages over a shared block device."""

    def __init__(self, device: BlockDevice, name: str = "file") -> None:
        self.device = device
        self.name = name
        self._page_to_block: list[int] = []
        self._extent_free: list[int] = []
        self._freed_pages: list[int] = []

    @classmethod
    def attach(cls, device: BlockDevice, name: str,
               page_to_block: list[int]) -> "PageFile":
        """Reconstruct a file from a persisted page->block mapping.

        This is the reopen path for file-backed devices: the tile
        store's manifest records each array's page map, and attaching
        re-addresses the already-written device blocks without
        allocating or transferring anything.
        """
        file = cls(device, name=name)
        file._page_to_block = [int(b) for b in page_to_block]
        return file

    @property
    def page_map(self) -> list[int]:
        """The persisted form: device block backing each page, in order."""
        return list(self._page_to_block)

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._page_to_block)

    @property
    def page_size(self) -> int:
        return self.device.block_size

    def allocate_page(self) -> int:
        """Append a page to the file and return its page number.

        Freed pages are recycled first; otherwise a new extent of consecutive
        device blocks is claimed so sequential scans stay sequential.
        """
        if self._freed_pages:
            page_no = self._freed_pages.pop()
            return page_no
        if not self._extent_free:
            first = self.device.allocate(EXTENT_PAGES)
            self._extent_free = list(range(first, first + EXTENT_PAGES))
        block = self._extent_free.pop(0)
        self._page_to_block.append(block)
        return len(self._page_to_block) - 1

    def allocate_pages(self, count: int) -> list[int]:
        return [self.allocate_page() for _ in range(count)]

    def free_page(self, page_no: int) -> None:
        """Mark a page reusable.  Its device block is retained by the file."""
        self._check(page_no)
        self._freed_pages.append(page_no)

    # ------------------------------------------------------------------
    def read_page(self, page_no: int) -> np.ndarray:
        self._check(page_no)
        return self.device.read_block(self._page_to_block[page_no])

    def write_page(self, page_no: int, data: np.ndarray) -> None:
        self._check(page_no)
        self.device.write_block(self._page_to_block[page_no], data)

    def block_of(self, page_no: int) -> int:
        """Device block backing ``page_no`` (used by the buffer pool key)."""
        self._check(page_no)
        return self._page_to_block[page_no]

    def blocks_of(self, page_nos) -> list[int]:
        """Device blocks backing the given pages, in the given order."""
        return [self.block_of(p) for p in page_nos]

    def drop(self) -> None:
        """Release every block owned by this file back to the device."""
        for block in self._page_to_block:
            self.device.free(block)
        self._page_to_block = []
        self._extent_free = []
        self._freed_pages = []

    # ------------------------------------------------------------------
    def _check(self, page_no: int) -> None:
        if page_no < 0 or page_no >= len(self._page_to_block):
            raise IndexError(
                f"page {page_no} outside file {self.name!r} "
                f"[0, {len(self._page_to_block)})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PageFile(name={self.name!r}, pages={self.num_pages})"


def new_pagefile(device: BlockDevice, name: str = "file") -> PageFile:
    """The sanctioned way for code outside this package to open a file.

    Subsystems receive a device through :class:`StorageConfig` injection
    and must not construct storage primitives directly (RPR001); this
    factory is the one blessed entry point for growing a new page file
    on an injected device.
    """
    return PageFile(device, name=name)
