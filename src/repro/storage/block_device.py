"""Block devices with exact I/O accounting.

Everything in this repository that touches "disk" does so through a
:class:`BlockDevice`.  The base device stores fixed-size blocks in memory
and keeps precise counters of how many blocks were read and written,
classified as *sequential* or *random* based on the distance from the
previously accessed block.  :class:`~repro.storage.file_device.
FileBlockDevice` subclasses it to move the same blocks through a real
page file on disk (``mmap`` or ``os.pread``/``os.pwrite``); all
accounting, run coalescing, and classification live here in the base, so
every backend reports **identical simulated block counts** for the same
access sequence — only the wall-clock and syscall counters differ.

This is the reproduction's substitute for the paper's DTrace measurements:
instead of sampling a live Solaris kernel, every subsystem (the virtual-memory
pager standing in for plain R, the relational engine standing in for MySQL,
and the tiled array store of next-generation RIOT) performs its I/O through
the same counted device, so the numbers behind Figure 1(a) and Figure 3 are
exact and reproducible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

#: Default block size in bytes.  8 KB = 1024 float64 values, matching the
#: paper's Figure 3 setting of B = 1024 scalars per block.
DEFAULT_BLOCK_SIZE = 8192

#: Number of float64 scalars per default block.
SCALARS_PER_BLOCK = DEFAULT_BLOCK_SIZE // 8


@dataclass
class IOStats:
    """Counters for block-level I/O, split by direction and locality.

    ``seq_*``/``rand_*`` count *blocks transferred* — the unit every cost
    model in :mod:`repro.core.costs` is stated in.  The scheduler-era
    counters below track *how* those blocks moved:

    - ``read_calls``/``write_calls``: device operations issued.  A
      coalesced run of adjacent blocks moves many blocks in one call, so
      ``read_calls <= reads`` always holds.
    - ``coalesced_ios``: blocks that rode along in a preceding adjacent
      block's call instead of costing their own (``reads + writes -
      read_calls - write_calls``).
    - ``prefetched``: blocks transferred ahead of demand (readahead or an
      explicit ``BufferPool.prefetch`` hint).  They still count in
      ``reads`` — prefetching changes call shape, never block totals.
    - ``readahead_hits``: buffer-pool hits served from a frame that a
      prefetch brought in.

    The backend-era counters (schema v2) record what the blocks *cost*
    on the device actually serving them:

    - ``read_ns``/``write_ns``: wall-clock nanoseconds spent inside the
      backend's physical read/write primitives.  On the in-memory
      backend this is memcpy time; on a file backend it includes the
      page cache and, with ``fsync``, the disk.
    - ``bytes_read``/``bytes_written``: bytes transferred (blocks times
      block size — the byte axis the TritanDB-style compressed-storage
      follow-on will decouple from block counts).
    - ``syscalls``: real I/O system calls issued (``pread``/``pwrite``/
      ``fsync``/``msync``).  Zero on the memory backend; on the
      ``pread`` backend this is the number the scheduler's coalescing
      visibly shrinks.

    The compression-era counters (schema v3) decouple the byte axis
    from block counts for codec-compressed tiles (see
    :mod:`repro.storage.codecs`):

    - ``bytes_logical``: uncompressed scalar bytes moved through
      codec-aware tile reads/writes (what the kernels consumed).
    - ``bytes_compressed``: the bytes those same transfers actually
      put on the device after encoding.  With codec ``raw`` both stay
      zero; :attr:`compression_ratio` is their quotient.
    """

    seq_reads: int = 0
    rand_reads: int = 0
    seq_writes: int = 0
    rand_writes: int = 0
    read_calls: int = 0
    write_calls: int = 0
    coalesced_ios: int = 0
    prefetched: int = 0
    readahead_hits: int = 0
    read_ns: int = 0
    write_ns: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    syscalls: int = 0
    bytes_logical: int = 0
    bytes_compressed: int = 0

    @property
    def reads(self) -> int:
        return self.seq_reads + self.rand_reads

    @property
    def writes(self) -> int:
        return self.seq_writes + self.rand_writes

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def calls(self) -> int:
        """Device operations issued (coalesced runs count once)."""
        return self.read_calls + self.write_calls

    @property
    def seconds(self) -> float:
        """Wall-clock seconds spent in the backend's I/O primitives."""
        return (self.read_ns + self.write_ns) / 1e9

    @property
    def compression_ratio(self) -> float:
        """Measured compressed/logical byte ratio for codec traffic.

        1.0 when no codec traffic happened (codec ``raw`` everywhere),
        so multiplying a block-count cost by this ratio is always safe.
        """
        if self.bytes_logical <= 0:
            return 1.0
        return self.bytes_compressed / self.bytes_logical

    def bytes_total(self, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
        return self.total * block_size

    def mb_total(self, block_size: int = DEFAULT_BLOCK_SIZE) -> float:
        return self.bytes_total(block_size) / (1024.0 * 1024.0)

    def as_dict(self) -> dict[str, int | float]:
        """Counters plus derived totals under the shared JSON schema.

        Every ``benchmarks/bench_*.py`` emits this exact shape in its
        ``extra_info["io"]`` so the CI artifact job can validate and
        aggregate results uniformly (see ``benchmarks/check_schema.py``
        and ``IOSTATS_SCHEMA_KEYS``).  Schema v2 added the wall-clock
        and byte counters plus the self-describing ``schema_version``
        key, so one JSON shape carries both the simulated block counts
        and the measured backend seconds (the dual report).
        """
        out: dict[str, int | float] = {
            f: int(getattr(self, f)) for f in _IOSTAT_FIELDS}
        out["reads"] = self.reads
        out["writes"] = self.writes
        out["total"] = self.total
        out["calls"] = self.calls
        out["seconds"] = round(self.seconds, 9)
        out["compression_ratio"] = round(self.compression_ratio, 9)
        out["schema_version"] = IO_SCHEMA_VERSION
        return out

    def snapshot(self) -> "IOStats":
        return IOStats(**{f: getattr(self, f) for f in _IOSTAT_FIELDS})

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Return the I/O performed since ``earlier`` (a prior snapshot)."""
        return IOStats(**{f: getattr(self, f) - getattr(earlier, f)
                          for f in _IOSTAT_FIELDS})

    def merged(self, other: "IOStats") -> "IOStats":
        return IOStats(**{f: getattr(self, f) + getattr(other, f)
                          for f in _IOSTAT_FIELDS})

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IOStats(reads={self.reads} [seq={self.seq_reads}, "
                f"rand={self.rand_reads}], writes={self.writes} "
                f"[seq={self.seq_writes}, rand={self.rand_writes}], "
                f"calls={self.calls} [coalesced={self.coalesced_ios}], "
                f"prefetched={self.prefetched}, "
                f"readahead_hits={self.readahead_hits})")


_IOSTAT_FIELDS = ("seq_reads", "rand_reads", "seq_writes", "rand_writes",
                  "read_calls", "write_calls", "coalesced_ios",
                  "prefetched", "readahead_hits", "read_ns", "write_ns",
                  "bytes_read", "bytes_written", "syscalls",
                  "bytes_logical", "bytes_compressed")

#: Version of the shared benchmark io schema.  v1 carried block and call
#: counters only; v2 added wall-clock (``read_ns``/``write_ns``/
#: ``seconds``), byte, and ``syscalls`` counters so every benchmark
#: dual-reports simulated blocks *and* real-backend seconds; v3 added
#: the codec byte axis (``bytes_logical``/``bytes_compressed``/
#: ``compression_ratio``) so compressed-storage runs report how many
#: device bytes the codec saved.
IO_SCHEMA_VERSION = 3

#: Keys every benchmark's ``extra_info["io"]`` must carry — the shared
#: JSON schema of the CI benchmark artifacts.
IOSTATS_SCHEMA_KEYS = _IOSTAT_FIELDS + ("reads", "writes", "total",
                                        "calls", "seconds",
                                        "compression_ratio",
                                        "schema_version")


def coalesce_runs(block_ids: list[int]) -> list[tuple[int, int]]:
    """Group block ids into maximal runs of consecutive ids.

    Returns ``(first_id, run_length)`` pairs in input order.  Runs only
    form across adjacent ids in the given sequence — callers wanting
    maximal coalescing should sort first.
    """
    runs: list[tuple[int, int]] = []
    for bid in block_ids:
        if runs and bid == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((bid, 1))
    return runs


class BlockDevice:
    """An in-memory block store that counts every access.

    Blocks are numpy byte buffers of a fixed size.  A read or write is
    *sequential* when it targets the block immediately following the last
    accessed block, and *random* otherwise.  This matches how the paper
    distinguishes MySQL's "mostly bulky and sequential" I/O from the random
    page faults plain R suffers under virtual-memory thrashing.

    All physical storage flows through four overridable primitives —
    :meth:`_read_run`, :meth:`_write_run`, :meth:`_discard_run`, and
    :meth:`_sync_backend` — while classification, run accounting, and
    timing stay here.  A subclass that only overrides the primitives
    (``FileBlockDevice``) therefore produces bit-identical data and
    identical simulated block counts; what changes is where the bytes
    live and what ``read_ns``/``write_ns``/``syscalls`` record.
    """

    #: Identifier recorded in benchmark dual reports ("memory", "mmap",
    #: "pread").
    backend = "memory"

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE,
                 name: str = "disk") -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self.name = name
        self.stats = IOStats()
        self._blocks: dict[int, np.ndarray] = {}
        self._next_block_id = 0
        self._last_accessed: int | None = None
        # Allocation is the one device entry point not serialized by the
        # buffer pool's lock (array stores allocate straight from worker
        # threads), so the cursor gets its own lock.  All transfer paths
        # stay single-threaded: they are only reached from inside
        # BufferPool methods, which hold the pool lock.
        self._alloc_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, n_blocks: int = 1) -> int:
        """Reserve ``n_blocks`` consecutive block ids; return the first id.

        Allocation itself performs no I/O — blocks come into existence on
        first write, the same way a filesystem extends a file.
        """
        if n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {n_blocks}")
        with self._alloc_lock:
            first = self._next_block_id
            self._next_block_id += n_blocks
        return first

    def free(self, block_id: int, n_blocks: int = 1) -> None:
        """Drop stored contents for a block range (no I/O is charged)."""
        self._discard_run(block_id, n_blocks)

    @property
    def allocated_blocks(self) -> int:
        return self._next_block_id

    @property
    def resident_blocks(self) -> int:
        """Blocks that have actually been written at least once."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Physical storage primitives (overridden by file backends)
    # ------------------------------------------------------------------
    def _read_run(self, first: int, length: int) -> list[np.ndarray]:
        """Materialize ``length`` consecutive blocks as writable arrays."""
        return [self._fetch(first + k) for k in range(length)]

    def _write_run(self, first: int, bufs: list[np.ndarray]) -> None:
        """Persist consecutive blocks (each buffer is one full block)."""
        for k, buf in enumerate(bufs):
            self._blocks[first + k] = buf.copy()

    def _discard_run(self, first: int, length: int) -> None:
        for bid in range(first, first + length):
            self._blocks.pop(bid, None)

    def _sync_backend(self) -> None:
        """Make written blocks durable (no-op for the memory backend)."""

    # ------------------------------------------------------------------
    # Timed wrappers: every physical transfer is clocked and sized here,
    # so the wall-clock/byte counters mean the same thing on every
    # backend.
    # ------------------------------------------------------------------
    def _timed_read(self, first: int, length: int) -> list[np.ndarray]:
        t0 = time.perf_counter_ns()
        out = self._read_run(first, length)
        self.stats.read_ns += time.perf_counter_ns() - t0
        self.stats.bytes_read += length * self.block_size
        return out

    def _timed_write(self, first: int, bufs: list[np.ndarray]) -> None:
        t0 = time.perf_counter_ns()
        self._write_run(first, bufs)
        self.stats.write_ns += time.perf_counter_ns() - t0
        self.stats.bytes_written += len(bufs) * self.block_size

    # ------------------------------------------------------------------
    # Durability / lifecycle (meaningful on file backends)
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush written blocks to stable storage."""
        t0 = time.perf_counter_ns()
        self._sync_backend()
        self.stats.write_ns += time.perf_counter_ns() - t0

    def close(self) -> None:
        """Release backend resources.  The memory backend keeps nothing."""

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _classify(self, block_id: int) -> bool:
        """Return True when the access to ``block_id`` is sequential."""
        sequential = (self._last_accessed is not None
                      and block_id == self._last_accessed + 1)
        self._last_accessed = block_id
        return sequential

    def read_block(self, block_id: int) -> np.ndarray:
        """Read one block, charging one read I/O.

        Reading a block that was never written returns zeros, mirroring a
        sparse file.
        """
        self._check_id(block_id)
        if self._classify(block_id):
            self.stats.seq_reads += 1
        else:
            self.stats.rand_reads += 1
        self.stats.read_calls += 1
        return self._timed_read(block_id, 1)[0]

    def read_blocks(self, block_ids: list[int]) -> list[np.ndarray]:
        """Read many blocks, coalescing adjacent ids into single I/Os.

        Each maximal run of consecutive ids costs one device call moving
        ``run_length`` blocks: the first block of a run is classified
        against the previous access, the rest are sequential by
        construction.  Block *totals* are identical to calling
        :meth:`read_block` once per id — only the call count shrinks.
        """
        out: list[np.ndarray] = []
        for first, length in coalesce_runs(list(block_ids)):
            self._check_id(first)
            self._check_id(first + length - 1)
            if self._classify(first):
                self.stats.seq_reads += 1
            else:
                self.stats.rand_reads += 1
            self.stats.seq_reads += length - 1
            self.stats.read_calls += 1
            self.stats.coalesced_ios += length - 1
            self._last_accessed = first + length - 1
            out.extend(self._timed_read(first, length))
        return out

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        """Write one block, charging one write I/O."""
        self._check_id(block_id)
        buf = self._coerce(data)
        if self._classify(block_id):
            self.stats.seq_writes += 1
        else:
            self.stats.rand_writes += 1
        self.stats.write_calls += 1
        self._timed_write(block_id, [buf])

    def write_blocks(self, items: list[tuple[int, np.ndarray]]) -> None:
        """Write many blocks, coalescing adjacent ids into single I/Os.

        ``items`` is a list of ``(block_id, data)`` pairs; accounting
        mirrors :meth:`read_blocks`.
        """
        items = list(items)
        bufs = {bid: self._coerce(data) for bid, data in items}
        for first, length in coalesce_runs([bid for bid, _ in items]):
            self._check_id(first)
            self._check_id(first + length - 1)
            if self._classify(first):
                self.stats.seq_writes += 1
            else:
                self.stats.rand_writes += 1
            self.stats.seq_writes += length - 1
            self.stats.write_calls += 1
            self.stats.coalesced_ios += length - 1
            self._last_accessed = first + length - 1
            self._timed_write(first,
                              [bufs[first + k] for k in range(length)])

    def _fetch(self, block_id: int) -> np.ndarray:
        block = self._blocks.get(block_id)
        if block is None:
            return np.zeros(self.block_size, dtype=np.uint8)
        return block.copy()

    def _coerce(self, data: np.ndarray) -> np.ndarray:
        """Validate and zero-pad write payloads to one full block."""
        buf = np.asarray(data, dtype=np.uint8)
        if buf.size > self.block_size:
            raise ValueError(
                f"data of {buf.size} bytes exceeds block size "
                f"{self.block_size}")
        if buf.size < self.block_size:
            padded = np.zeros(self.block_size, dtype=np.uint8)
            padded[:buf.size] = buf
            buf = padded
        return buf

    # Convenience typed accessors -------------------------------------
    def read_floats(self, block_id: int,
                    dtype: np.dtype = np.float64) -> np.ndarray:
        """Read one block and view it as ``dtype`` values."""
        return self.read_block(block_id).view(np.dtype(dtype))

    def write_floats(self, block_id: int, values: np.ndarray,
                     dtype: np.dtype = np.float64) -> None:
        """Write ``dtype`` values (at most one block's worth) to a block."""
        arr = np.ascontiguousarray(values, dtype=np.dtype(dtype))
        self.write_block(block_id, arr.view(np.uint8))

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = IOStats()
        self._last_accessed = None

    def _check_id(self, block_id: int) -> None:
        if block_id < 0 or block_id >= self._next_block_id:
            raise IndexError(
                f"block {block_id} outside allocated range "
                f"[0, {self._next_block_id})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockDevice(name={self.name!r}, block_size="
                f"{self.block_size}, allocated={self.allocated_blocks})")


@dataclass
class SimClock:
    """Deterministic performance model for Figure 1(b).

    The paper measured wall-clock seconds on a 2005-era Opteron with local
    disks.  We cannot thrash a modern container the same way, so simulated
    time is derived from counted events using per-event costs roughly matching
    that hardware class:

    - a random block access pays a seek+rotate latency (~8 ms),
    - a sequential block access pays transfer time only (~0.13 ms for 8 KB at
      ~60 MB/s),
    - each scalar CPU operation pays ~2 ns.

    Only the *ratios* matter for reproducing the figure's shape; EXPERIMENTS.md
    records the constants used.
    """

    seq_io_cost: float = 0.00013
    rand_io_cost: float = 0.008
    cpu_op_cost: float = 2e-9
    cpu_ops: int = 0

    def charge_cpu(self, n_ops: int) -> None:
        self.cpu_ops += int(n_ops)

    def seconds(self, io: IOStats) -> float:
        """Simulated seconds for the given I/O counters plus charged CPU."""
        seq = io.seq_reads + io.seq_writes
        rand = io.rand_reads + io.rand_writes
        return (seq * self.seq_io_cost + rand * self.rand_io_cost
                + self.cpu_ops * self.cpu_op_cost)
