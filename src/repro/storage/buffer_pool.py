"""Buffer manager with pluggable replacement policies.

The buffer pool caches device blocks in a bounded number of frames.  All
higher layers (heap tables, B+trees, tile store) read and write pages through
a pool so that:

- repeated access to a hot page costs no I/O (a hit),
- evicting a dirty page writes it back (counted on the device),
- the total memory footprint is capped, which is the whole point of the
  paper's experimental setup (84 MB cap via ``shmat`` memory locking).

Two classic policies are provided — LRU and CLOCK — and ablated in
``benchmarks/bench_ablation_buffer.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .block_device import BlockDevice


class ReplacementPolicy:
    """Interface for choosing a victim frame."""

    def on_access(self, key: int) -> None:
        raise NotImplementedError

    def on_insert(self, key: int) -> None:
        raise NotImplementedError

    def on_remove(self, key: int) -> None:
        raise NotImplementedError

    def choose_victim(self, pinned: set[int]) -> int:
        """Return the key of the frame to evict (never a pinned one)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used eviction via an ordered dict."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_access(self, key: int) -> None:
        self._order.move_to_end(key)

    def on_insert(self, key: int) -> None:
        self._order[key] = None

    def on_remove(self, key: int) -> None:
        self._order.pop(key, None)

    def choose_victim(self, pinned: set[int]) -> int:
        for key in self._order:
            if key not in pinned:
                return key
        raise RuntimeError("buffer pool exhausted: all frames pinned")


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK) eviction."""

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._ref: dict[int, bool] = {}
        self._hand = 0

    def on_access(self, key: int) -> None:
        self._ref[key] = True

    def on_insert(self, key: int) -> None:
        self._keys.append(key)
        self._ref[key] = True

    def on_remove(self, key: int) -> None:
        if key in self._ref:
            del self._ref[key]
            idx = self._keys.index(key)
            self._keys.pop(idx)
            if idx < self._hand:
                self._hand -= 1
            if self._keys:
                self._hand %= len(self._keys)
            else:
                self._hand = 0

    def choose_victim(self, pinned: set[int]) -> int:
        if not self._keys:
            raise RuntimeError("buffer pool exhausted: no frames")
        spins = 0
        limit = 2 * len(self._keys) + 1
        while spins < limit:
            key = self._keys[self._hand]
            self._hand = (self._hand + 1) % len(self._keys)
            spins += 1
            if key in pinned:
                continue
            if self._ref.get(key, False):
                self._ref[key] = False
                continue
            return key
        # Every unpinned frame had its reference bit set twice in a row;
        # fall back to the first unpinned frame.
        for key in self._keys:
            if key not in pinned:
                return key
        raise RuntimeError("buffer pool exhausted: all frames pinned")


def make_policy(name: str) -> ReplacementPolicy:
    """Construct a replacement policy by name ('lru' or 'clock')."""
    name = name.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "clock":
        return ClockPolicy()
    raise ValueError(f"unknown replacement policy: {name!r}")


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """A bounded cache of device blocks with write-back semantics."""

    def __init__(self, device: BlockDevice, capacity_blocks: int,
                 policy: str | ReplacementPolicy = "lru") -> None:
        if capacity_blocks <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_blocks}")
        self.device = device
        self.capacity = capacity_blocks
        self.policy = (policy if isinstance(policy, ReplacementPolicy)
                       else make_policy(policy))
        self.stats = PoolStats()
        self._frames: dict[int, np.ndarray] = {}
        self._dirty: set[int] = set()
        self._pinned: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._frames)

    def get(self, block_id: int, *, for_write: bool = False) -> np.ndarray:
        """Return the cached buffer for a block, faulting it in if needed.

        The returned array aliases the frame: callers who mutate it must pass
        ``for_write=True`` (or call :meth:`mark_dirty`) so the change is
        written back on eviction.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            self.policy.on_access(block_id)
        else:
            self.stats.misses += 1
            self._ensure_room()
            frame = self.device.read_block(block_id)
            self._frames[block_id] = frame
            self.policy.on_insert(block_id)
        if for_write:
            self._dirty.add(block_id)
        return frame

    def put(self, block_id: int, data: np.ndarray) -> None:
        """Install new contents for a block without reading it first.

        Used when a page is fully overwritten (e.g. appending a fresh tile):
        no read I/O should be charged for data that will be clobbered.
        """
        buf = np.asarray(data, dtype=np.uint8)
        if buf.size > self.device.block_size:
            raise ValueError("data exceeds block size")
        if buf.size < self.device.block_size:
            padded = np.zeros(self.device.block_size, dtype=np.uint8)
            padded[:buf.size] = buf
            buf = padded
        if block_id in self._frames:
            self._frames[block_id][:] = buf
            self.policy.on_access(block_id)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            self._ensure_room()
            self._frames[block_id] = buf.copy()
            self.policy.on_insert(block_id)
        self._dirty.add(block_id)

    def mark_dirty(self, block_id: int) -> None:
        if block_id not in self._frames:
            raise KeyError(f"block {block_id} is not resident")
        self._dirty.add(block_id)

    # ------------------------------------------------------------------
    def pin(self, block_id: int) -> None:
        """Prevent a resident block from being evicted (refcounted)."""
        if block_id not in self._frames:
            raise KeyError(f"cannot pin non-resident block {block_id}")
        self._pinned[block_id] = self._pinned.get(block_id, 0) + 1

    def unpin(self, block_id: int) -> None:
        count = self._pinned.get(block_id, 0)
        if count <= 1:
            self._pinned.pop(block_id, None)
        else:
            self._pinned[block_id] = count - 1

    # ------------------------------------------------------------------
    def flush(self, block_id: int | None = None) -> None:
        """Write back dirty frames (one block, or everything)."""
        targets = ([block_id] if block_id is not None
                   else sorted(self._dirty))
        for bid in targets:
            if bid in self._dirty:
                self.device.write_block(bid, self._frames[bid])
                self.stats.dirty_writebacks += 1
                self._dirty.discard(bid)

    def flush_all(self) -> None:
        self.flush(None)

    def invalidate(self, block_id: int) -> None:
        """Drop a frame without writing it back (e.g. file dropped)."""
        self._frames.pop(block_id, None)
        self._dirty.discard(block_id)
        self._pinned.pop(block_id, None)
        self.policy.on_remove(block_id)

    def clear(self) -> None:
        """Flush everything and empty the pool."""
        self.flush_all()
        for bid in list(self._frames):
            self.invalidate(bid)

    # ------------------------------------------------------------------
    def _ensure_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = self.policy.choose_victim(set(self._pinned))
            if victim in self._dirty:
                self.device.write_block(victim, self._frames[victim])
                self.stats.dirty_writebacks += 1
                self._dirty.discard(victim)
            del self._frames[victim]
            self.policy.on_remove(victim)
            self.stats.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPool(capacity={self.capacity}, "
                f"resident={self.resident}, "
                f"hit_rate={self.stats.hit_rate:.2%})")
