"""Buffer manager with pluggable replacement policies.

The buffer pool caches device blocks in a bounded number of frames.  All
higher layers (heap tables, B+trees, tile store) read and write pages through
a pool so that:

- repeated access to a hot page costs no I/O (a hit),
- evicting a dirty page writes it back (counted on the device),
- the total memory footprint is capped, which is the whole point of the
  paper's experimental setup (84 MB cap via ``shmat`` memory locking).

Two classic policies are provided — LRU and CLOCK — and ablated in
``benchmarks/bench_ablation_buffer.py``.

Concurrency contract (parallel plan execution)
----------------------------------------------

The pool is safe to share between the worker threads of a parallel
plan.  One re-entrant lock (``pool.lock``) serializes every public
method — lookups, the CLOCK/LRU sweep, eviction, pin accounting, and
all ``PoolStats``/``IOStats``/scheduler-state increments happen inside
it, so counter updates are atomic and the replacement policy's internal
structures are never observed mid-sweep.  The :class:`~repro.storage.
io_scheduler.IOScheduler` and the device transfer paths are only ever
invoked from within these locked methods, which is what keeps
*simulated block counts deterministic*: for any fixed sequence of pool
calls, the counts are identical at every parallelism level, and the
tile kernels additionally keep their pool calls on one thread in serial
order so the sequence itself never changes.

Per-frame **latches** (:meth:`BufferPool.latched`) layer on top of the
pin counts for the one hazard the big lock cannot see: a caller
mutating a frame's *contents* in place while an eviction or flush is
writing that frame back.  Internal writers (``put``'s in-place
overwrite, dirty writeback in ``flush``/eviction) take the frame's
latch; external mutators should wrap their writes in
``with pool.latched(bid): ...``.  Lock ordering is strictly
``pool.lock → latch``; latch holders must not call pool methods from
other threads' perspective — the latch is the innermost lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .block_device import BlockDevice
from .io_scheduler import IOScheduler


class ReplacementPolicy:
    """Interface for choosing a victim frame."""

    def on_access(self, key: int) -> None:
        raise NotImplementedError

    def on_insert(self, key: int) -> None:
        raise NotImplementedError

    def on_remove(self, key: int) -> None:
        raise NotImplementedError

    def choose_victim(self, pinned: set[int]) -> int:
        """Return the key of the frame to evict (never a pinned one)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used eviction via an ordered dict."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_access(self, key: int) -> None:
        self._order.move_to_end(key)

    def on_insert(self, key: int) -> None:
        self._order[key] = None

    def on_remove(self, key: int) -> None:
        self._order.pop(key, None)

    def choose_victim(self, pinned: set[int]) -> int:
        for key in self._order:
            if key not in pinned:
                return key
        raise RuntimeError("buffer pool exhausted: all frames pinned")


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK) eviction."""

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._ref: dict[int, bool] = {}
        self._hand = 0

    def on_access(self, key: int) -> None:
        self._ref[key] = True

    def on_insert(self, key: int) -> None:
        self._keys.append(key)
        self._ref[key] = True

    def on_remove(self, key: int) -> None:
        if key in self._ref:
            del self._ref[key]
            idx = self._keys.index(key)
            self._keys.pop(idx)
            if idx < self._hand:
                self._hand -= 1
            if self._keys:
                self._hand %= len(self._keys)
            else:
                self._hand = 0

    def choose_victim(self, pinned: set[int]) -> int:
        if not self._keys:
            raise RuntimeError("buffer pool exhausted: no frames")
        spins = 0
        limit = 2 * len(self._keys) + 1
        while spins < limit:
            key = self._keys[self._hand]
            self._hand = (self._hand + 1) % len(self._keys)
            spins += 1
            if key in pinned:
                continue
            if self._ref.get(key, False):
                self._ref[key] = False
                continue
            return key
        # Every unpinned frame had its reference bit set twice in a row;
        # fall back to the first unpinned frame.
        for key in self._keys:
            if key not in pinned:
                return key
        raise RuntimeError("buffer pool exhausted: all frames pinned")


def make_policy(name: str) -> ReplacementPolicy:
    """Construct a replacement policy by name ('lru' or 'clock')."""
    name = name.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "clock":
        return ClockPolicy()
    raise ValueError(f"unknown replacement policy: {name!r}")


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    prefetched: int = 0       # frames installed ahead of demand
    readahead_hits: int = 0   # hits served from a prefetched frame
    prefetch_wasted: int = 0  # prefetched frames evicted before any use

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """Counters plus derived rates under the shared JSON schema.

        Mirrors ``IOStats.as_dict()``: benchmarks attach this shape as
        ``extra_info["pool"]`` and ``benchmarks/check_schema.py``
        validates it against :data:`POOL_SCHEMA_KEYS`, so prefetch
        efficacy (readahead_hits vs prefetch_wasted) is visible in
        every artifact, not just the prefetch benchmark.
        """
        out: dict[str, int | float] = {
            f: int(getattr(self, f)) for f in _POOL_FIELDS}
        out["accesses"] = self.accesses
        out["hit_rate"] = round(self.hit_rate, 6)
        return out

    def snapshot(self) -> "PoolStats":
        return PoolStats(**{f: getattr(self, f) for f in _POOL_FIELDS})

    def delta(self, earlier: "PoolStats") -> "PoolStats":
        """Return pool activity since ``earlier`` (a prior snapshot)."""
        return PoolStats(**{f: getattr(self, f) - getattr(earlier, f)
                            for f in _POOL_FIELDS})

    def merged(self, other: "PoolStats") -> "PoolStats":
        return PoolStats(**{f: getattr(self, f) + getattr(other, f)
                            for f in _POOL_FIELDS})


_POOL_FIELDS = ("hits", "misses", "evictions", "dirty_writebacks",
                "prefetched", "readahead_hits", "prefetch_wasted")

#: Exact key set of ``PoolStats.as_dict()`` — the ``extra_info["pool"]``
#: section every benchmark emits and CI validates.
POOL_SCHEMA_KEYS = frozenset(_POOL_FIELDS) | {"accesses", "hit_rate"}


class BufferPool:
    """A bounded cache of device blocks with write-back semantics.

    Thread-safe: every public method runs under ``self.lock`` (see the
    module docstring for the full concurrency contract and the
    ``pool.lock → latch`` ordering rule).
    """

    def __init__(self, device: BlockDevice, capacity_blocks: int,
                 policy: str | ReplacementPolicy = "lru",
                 scheduler: IOScheduler | None = None,
                 readahead_window: int = 0) -> None:
        if capacity_blocks <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_blocks}")
        self.device = device
        self.capacity = capacity_blocks
        self.policy = (policy if isinstance(policy, ReplacementPolicy)
                       else make_policy(policy))
        self.scheduler = scheduler or IOScheduler(
            device, readahead_window=readahead_window)
        self.stats = PoolStats()
        # Re-entrant so subclass overrides (the sanitizer) and nested
        # internal calls (get -> pin -> ...) can re-acquire freely.
        self.lock = threading.RLock()
        self._frames: dict[int, np.ndarray] = {}
        self._dirty: set[int] = set()
        self._pinned: dict[int, int] = {}
        self._prefetched: set[int] = set()
        self._latches: dict[int, threading.RLock] = {}

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._frames)

    def _latch(self, block_id: int) -> threading.RLock:
        with self.lock:
            latch = self._latches.get(block_id)
            if latch is None:
                latch = self._latches[block_id] = threading.RLock()
            return latch

    @contextmanager
    def latched(self, block_id: int) -> Iterator[None]:
        """Hold ``block_id``'s frame latch for an in-place mutation.

        Excludes concurrent writeback of the same frame (eviction or
        flush copying the contents out) without holding the whole pool
        lock across the caller's compute.  Innermost lock: do not call
        pool methods while holding a latch.
        """
        with self._latch(block_id):
            yield

    def get(self, block_id: int, *, for_write: bool = False) -> np.ndarray:
        """Return the cached buffer for a block, faulting it in if needed.

        The returned array aliases the frame: callers who mutate it must pass
        ``for_write=True`` (or call :meth:`mark_dirty`) so the change is
        written back on eviction.
        """
        with self.lock:
            frame = self._frames.get(block_id)
            if frame is not None:
                self.stats.hits += 1
                self.policy.on_access(block_id)
                self._note_prefetch_hit(block_id)
                ahead = self.scheduler.on_demand(block_id, miss=False)
                if ahead:
                    # Pin the demanded frame so speculation can never
                    # evict the very block the caller is about to use.
                    self.pin(block_id)
                    try:
                        self._speculate(ahead)
                    finally:
                        self.unpin(block_id)
            else:
                self.stats.misses += 1
                ahead = self.scheduler.on_demand(block_id, miss=True)
                extras = self._clip_speculation(ahead)
                self._ensure_room()
                fetched = self.scheduler.fetch([block_id] + extras,
                                               n_speculative=len(extras))
                frame = fetched.pop(block_id)
                self._frames[block_id] = frame
                self.policy.on_insert(block_id)
                if fetched:
                    self.pin(block_id)
                    try:
                        self._install_prefetched(fetched)
                    finally:
                        self.unpin(block_id)
            if for_write:
                self._dirty.add(block_id)
            return frame

    def get_many(self, block_ids: list[int]) -> list[np.ndarray]:
        """Return frames for several blocks, coalescing the misses.

        Semantically equivalent to ``[pool.get(b) for b in block_ids]``
        minus speculation: hit/miss accounting is per block, but all
        missing blocks are faulted in with one scheduler fetch so adjacent
        ids share device calls.  Returned arrays alias frames where the
        block stayed resident; callers treat them as read-only.
        """
        with self.lock:
            missing: list[int] = []
            for bid in block_ids:
                if bid not in self._frames and bid not in missing:
                    missing.append(bid)
            fetched = self.scheduler.fetch(missing) if missing else {}
            out: list[np.ndarray] = []
            for bid in block_ids:
                frame = self._frames.get(bid)
                if frame is not None:
                    self.stats.hits += 1
                    self.policy.on_access(bid)
                    self._note_prefetch_hit(bid)
                    out.append(frame)
                    continue
                self.stats.misses += 1
                frame = fetched.get(bid)
                if frame is None:
                    # The block was resident when the misses were
                    # collected but got evicted while installing them —
                    # fault it in.
                    frame = self.scheduler.fetch([bid])[bid]
                self._ensure_room()
                self._frames[bid] = frame
                self.policy.on_insert(bid)
                out.append(frame)
            return out

    def prefetch(self, block_ids: list[int]) -> int:
        """Hint: the given blocks are about to be read.

        Non-resident keys are fetched in coalesced device calls and
        installed as clean frames, so the announced reads become hits.
        Returns the number of blocks actually fetched.  The hint is
        clipped so prefetch never competes with pinned frames or with
        earlier prefetched-but-unread frames, and always leaves one
        frame of room for the next demand fault — an oversized footprint
        is truncated, not an error.  A disabled scheduler turns this
        into a no-op.
        """
        with self.lock:
            if not self.scheduler.enabled:
                return 0
            want: list[int] = []
            for bid in block_ids:
                if bid not in self._frames and bid not in want:
                    want.append(bid)
            want = self._clip_speculation(want)
            if not want:
                return 0
            fetched = self.scheduler.fetch(want, n_speculative=len(want))
            self._install_prefetched(fetched)
            return len(fetched)

    # ------------------------------------------------------------------
    # Prefetch internals
    # ------------------------------------------------------------------
    def _clip_speculation(self, candidates: list[int]) -> list[int]:
        """Bound a speculative batch to what the pool can usefully hold.

        Pinned frames are untouchable and one frame stays reserved for
        the next demand fault.  Frames already prefetched but not yet
        used are excluded from the budget too: evicting them for new
        speculation would waste their reads and re-read them later,
        inflating the block totals the accounting contract protects
        (e.g. nested hints — matmul announcing a submatrix whose tiles
        then announce themselves — in an undersized pool).
        """
        room = (self.capacity - len(self._pinned)
                - len(self._prefetched) - 1)
        if room <= 0:
            return []
        return [bid for bid in candidates
                if bid not in self._frames][:room]

    def _speculate(self, candidates: list[int]) -> None:
        """Fetch readahead candidates raised on a demand hit."""
        want = self._clip_speculation(candidates)
        if want:
            fetched = self.scheduler.fetch(want, n_speculative=len(want))
            self._install_prefetched(fetched)

    def _install_prefetched(self, fetched: dict[int, np.ndarray]) -> None:
        for bid, frame in fetched.items():
            if bid in self._frames:
                continue
            self._ensure_room()
            self._frames[bid] = frame
            self.policy.on_insert(bid)
            self._prefetched.add(bid)
            self.stats.prefetched += 1

    def _note_prefetch_hit(self, block_id: int) -> None:
        if block_id in self._prefetched:
            self._prefetched.discard(block_id)
            self.stats.readahead_hits += 1
            self.device.stats.readahead_hits += 1

    def put(self, block_id: int, data: np.ndarray) -> None:
        """Install new contents for a block without reading it first.

        Used when a page is fully overwritten (e.g. appending a fresh tile):
        no read I/O should be charged for data that will be clobbered.
        """
        buf = np.asarray(data, dtype=np.uint8)
        if buf.size > self.device.block_size:
            raise ValueError("data exceeds block size")
        if buf.size < self.device.block_size:
            padded = np.zeros(self.device.block_size, dtype=np.uint8)
            padded[:buf.size] = buf
            buf = padded
        with self.lock:
            if block_id in self._frames:
                with self.latched(block_id):
                    self._frames[block_id][:] = buf
                self.policy.on_access(block_id)
                self.stats.hits += 1
                # A full overwrite is not a use of the prefetched
                # contents.
                self._prefetched.discard(block_id)
            else:
                self.stats.misses += 1
                self._ensure_room()
                self._frames[block_id] = buf.copy()
                self.policy.on_insert(block_id)
            self._dirty.add(block_id)

    def mark_dirty(self, block_id: int) -> None:
        with self.lock:
            if block_id not in self._frames:
                raise KeyError(f"block {block_id} is not resident")
            self._dirty.add(block_id)

    def has_dirty(self, block_ids=None) -> bool:
        """True when any of ``block_ids`` (or any block at all) holds
        unwritten changes — the guard zero-copy device reads need
        before bypassing the pool."""
        with self.lock:
            if block_ids is None:
                return bool(self._dirty)
            return any(bid in self._dirty for bid in block_ids)

    # ------------------------------------------------------------------
    def pin(self, block_id: int) -> None:
        """Prevent a resident block from being evicted (refcounted)."""
        with self.lock:
            if block_id not in self._frames:
                raise KeyError(
                    f"cannot pin non-resident block {block_id}")
            self._pinned[block_id] = self._pinned.get(block_id, 0) + 1

    def unpin(self, block_id: int) -> None:
        with self.lock:
            count = self._pinned.get(block_id, 0)
            if count <= 1:
                self._pinned.pop(block_id, None)
            else:
                self._pinned[block_id] = count - 1

    # ------------------------------------------------------------------
    def flush(self, block_id: int | None = None) -> None:
        """Write back dirty frames (one block, or everything).

        A full flush hands the sorted dirty set to the scheduler so
        adjacent dirty blocks coalesce into multi-block device writes.
        """
        with self.lock:
            if block_id is not None:
                if block_id in self._dirty:
                    with self.latched(block_id):
                        self.device.write_block(block_id,
                                                self._frames[block_id])
                    self.stats.dirty_writebacks += 1
                    self._dirty.discard(block_id)
                return
            dirty = sorted(self._dirty)
            for bid in dirty:
                self._latch(bid).acquire()
            try:
                items = [(bid, self._frames[bid]) for bid in dirty]
                if items:
                    self.scheduler.write_back(items)
                    self.stats.dirty_writebacks += len(items)
                    self._dirty.clear()
            finally:
                for bid in dirty:
                    self._latch(bid).release()

    def flush_all(self) -> None:
        self.flush(None)

    def invalidate(self, block_id: int) -> None:
        """Drop a frame without writing it back (e.g. file dropped)."""
        with self.lock:
            self._frames.pop(block_id, None)
            self._dirty.discard(block_id)
            self._pinned.pop(block_id, None)
            self._prefetched.discard(block_id)
            self._latches.pop(block_id, None)
            self.policy.on_remove(block_id)

    def clear(self) -> None:
        """Flush everything and empty the pool."""
        with self.lock:
            self.flush_all()
            for bid in list(self._frames):
                self.invalidate(bid)
            self.scheduler.reset()

    # ------------------------------------------------------------------
    def _ensure_room(self) -> None:
        # Caller holds self.lock; the CLOCK/LRU sweep and the victim's
        # dirty writeback run entirely inside it, with the victim's
        # latch taken around the device write so an in-place mutator
        # (pool.latched) can never race the writeback copy.
        while len(self._frames) >= self.capacity:
            victim = self.policy.choose_victim(set(self._pinned))
            if victim in self._dirty:
                with self.latched(victim):
                    self.device.write_block(victim, self._frames[victim])
                self.stats.dirty_writebacks += 1
                self._dirty.discard(victim)
            if victim in self._prefetched:
                self._prefetched.discard(victim)
                self.stats.prefetch_wasted += 1
            del self._frames[victim]
            self.policy.on_remove(victim)
            self._latches.pop(victim, None)
            self.stats.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPool(capacity={self.capacity}, "
                f"resident={self.resident}, "
                f"hit_rate={self.stats.hit_rate:.2%})")
