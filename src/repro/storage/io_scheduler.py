"""Prefetching I/O scheduler between :class:`BlockDevice` and the pool.

The paper's thesis is that I/O pattern — not CPU — decides out-of-core
performance.  The buffer pool alone can only react: every miss becomes one
synchronous single-block device call.  This module adds the three classic
mechanisms a storage stack uses to exploit *predictable* access patterns:

1. **Sequential readahead.**  The scheduler watches demand accesses; once
   ``min_run`` consecutive block ids have been demanded, it speculatively
   schedules the next ``readahead_window`` blocks.  When demand reaches the
   readahead mark, the next window is scheduled, keeping a scan one window
   ahead of the consumer (the async-ahead scheme of OS readahead).
2. **Coalesced multi-block I/O.**  Every batch of block ids — speculative
   or hinted — is sorted and split into maximal runs of adjacent ids; each
   run moves in a single device call via
   :meth:`~repro.storage.block_device.BlockDevice.read_blocks` /
   ``write_blocks``.
3. **Hint-driven prefetch.**  Operators that know their footprint
   (the streaming evaluator, ``square_tile_matmul``, tile scans) announce
   upcoming block keys through :meth:`BufferPool.prefetch` before reading
   them, so their misses become warm hits and their reads coalesce.

Accounting contract: prefetched blocks still count as device *reads* in
``IOStats`` — the scheduler's job is to change the number and size of
device *calls* (``read_calls``/``write_calls``/``coalesced_ios``), not the
block totals the cost models of :mod:`repro.core.costs` are validated
against.  In streaming regimes (one-pass scans, fused maps, out-of-core
matmul with footprints sized to memory) totals are exactly unchanged, and
``benchmarks/bench_prefetch.py`` asserts it.  Two bounded exceptions:
speculative readahead can overshoot the end of a scan by at most one
window (why ``readahead_window`` defaults to 0), and when a mid-sized
pool partially caches a *reused* working set, prefetch installs perturb
eviction order, which can shift a few hits to misses; any prefetched
frame evicted unread is counted in ``PoolStats.prefetch_wasted`` so the
drift is observable, never silent.

Concurrency contract: the scheduler has no lock of its own — every
entry point (``on_demand``, ``fetch``, ``write_back``) is invoked only
from :class:`~repro.storage.buffer_pool.BufferPool` methods that hold
the pool's lock, so its run-detection state and stats are serialized
by that lock.  Do not call it directly from worker threads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .block_device import BlockDevice

#: Default number of blocks scheduled ahead of a detected sequential run.
DEFAULT_READAHEAD_WINDOW = 8

#: Consecutive demanded blocks required before readahead kicks in.
DEFAULT_MIN_RUN = 2


@dataclass
class SchedulerStats:
    """Counters for the scheduler's own decisions (not block movement).

    ``IOStats`` counts what moved and ``PoolStats`` counts residency;
    this records *why* — how often readahead triggered and how much was
    announced via hints — so the metrics registry can report coalescing
    behavior per session.
    """

    readahead_triggers: int = 0  # sequential runs that launched a window
    hint_batches: int = 0        # prefetch() calls that reached fetch
    hinted_blocks: int = 0       # blocks announced across those batches
    coalesced_batches: int = 0   # multi-block fetch/write_back batches

    def as_dict(self) -> dict[str, int]:
        return {f: int(getattr(self, f)) for f in _SCHED_FIELDS}

    def snapshot(self) -> "SchedulerStats":
        return SchedulerStats(
            **{f: getattr(self, f) for f in _SCHED_FIELDS})

    def delta(self, earlier: "SchedulerStats") -> "SchedulerStats":
        return SchedulerStats(
            **{f: getattr(self, f) - getattr(earlier, f)
               for f in _SCHED_FIELDS})


_SCHED_FIELDS = ("readahead_triggers", "hint_batches", "hinted_blocks",
                 "coalesced_batches")


class IOScheduler:
    """Schedules device I/O for a buffer pool: batching plus readahead.

    The scheduler is deliberately stateless about *residency* — the pool
    owns frames, pins, and eviction.  The pool asks the scheduler two
    questions (``on_demand``: "given this access, what should I read
    ahead?" and ``fetch``/``write_back``: "move these blocks efficiently")
    and keeps the answers honest by filtering out already-resident keys.
    """

    def __init__(self, device: BlockDevice,
                 readahead_window: int = 0,
                 min_run: int = DEFAULT_MIN_RUN,
                 enabled: bool = True) -> None:
        if readahead_window < 0:
            raise ValueError(
                f"readahead_window must be >= 0, got {readahead_window}")
        if min_run < 1:
            raise ValueError(f"min_run must be >= 1, got {min_run}")
        self.device = device
        self.readahead_window = readahead_window
        self.min_run = min_run
        self.enabled = enabled
        self.stats = SchedulerStats()
        self._last_demand: int | None = None
        self._run_len = 0
        self._ra_mark: int | None = None

    # ------------------------------------------------------------------
    # Sequential-run detection
    # ------------------------------------------------------------------
    def on_demand(self, block_id: int, *, miss: bool) -> list[int]:
        """Record a demand access; return block ids worth reading ahead.

        Candidates may include already-resident blocks — the pool filters
        those before fetching.  An empty list means "no speculation".
        """
        if self._last_demand is not None \
                and block_id == self._last_demand + 1:
            self._run_len += 1
        else:
            self._run_len = 1
        self._last_demand = block_id
        if not self.enabled or self.readahead_window <= 0:
            return []
        # Trigger on a miss that extends a run, or on demand reaching the
        # mark left by the previous readahead (pipelined streaming).
        if miss:
            if self._run_len < self.min_run:
                return []
        elif block_id != self._ra_mark:
            return []
        lo = block_id + 1
        hi = min(lo + self.readahead_window, self.device.allocated_blocks)
        if hi <= lo:
            return []
        self._ra_mark = hi - 1
        self.stats.readahead_triggers += 1
        return list(range(lo, hi))

    def reset(self) -> None:
        """Forget the current run (e.g. after the pool is cleared)."""
        self._last_demand = None
        self._run_len = 0
        self._ra_mark = None

    # ------------------------------------------------------------------
    # Batched transfers
    # ------------------------------------------------------------------
    def fetch(self, block_ids: list[int],
              n_speculative: int = 0) -> dict[int, np.ndarray]:
        """Read blocks, coalescing adjacent ids into single device calls.

        The *last* ``n_speculative`` entries of ``block_ids`` are the
        speculative ones (callers append them after the demanded ids);
        they are charged to the ``prefetched`` counter after dedup
        against the demand ids and each other, so an id that is both
        demanded and speculated — or speculated twice — counts once.
        All ids count as ordinary block reads either way.
        """
        ids = sorted(set(block_ids))
        if not ids:
            return {}
        if len(ids) > 1:
            self.stats.coalesced_batches += 1
        if self.enabled:
            arrays = self.device.read_blocks(ids)
        else:
            arrays = [self.device.read_block(b) for b in ids]
        if n_speculative:
            demand = block_ids[:len(block_ids) - n_speculative]
            speculative = set(block_ids[len(block_ids) - n_speculative:])
            n_spec = len(speculative.difference(demand))
            self.device.stats.prefetched += n_spec
            if n_spec:
                self.stats.hint_batches += 1
                self.stats.hinted_blocks += n_spec
        return dict(zip(ids, arrays))

    def write_back(self, items: list[tuple[int, np.ndarray]]) -> None:
        """Write blocks, coalescing adjacent ids into single device calls."""
        if not items:
            return
        items = sorted(items, key=lambda kv: kv[0])
        if len(items) > 1:
            self.stats.coalesced_batches += 1
        if self.enabled:
            self.device.write_blocks(items)
        else:
            for bid, data in items:
                self.device.write_block(bid, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IOScheduler(window={self.readahead_window}, "
                f"min_run={self.min_run}, enabled={self.enabled})")
