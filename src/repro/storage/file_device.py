"""Real-disk block device: a page file behind the simulated contract.

:class:`FileBlockDevice` keeps the exact same interface and accounting
as the in-memory :class:`~repro.storage.block_device.BlockDevice` — it
only overrides the four physical primitives, so any access sequence
produces **identical simulated block counts** on both.  What changes is
that the bytes live in a real file, and the backend-era counters
(``read_ns``/``write_ns``/``bytes_*``/``syscalls``) report what the
blocks cost on actual hardware.  This is ROADMAP item 1: the
IOScheduler's coalescing and ``pool.prefetch()`` footprints, measured
so far only as fewer simulated device calls, cash out here as fewer
``pread`` system calls and lower wall-clock time.

Two transfer modes:

``mmap``
    The page file is memory-mapped; reads and writes are memcpys
    against the mapping (zero syscalls on the hot path — the kernel
    faults pages in and writes them back).  Fastest when the file fits
    the page cache.  :meth:`block_view` additionally exposes zero-copy
    read-only views straight into the mapping.
``pread``
    Positional ``os.pread``/``os.pwrite`` per coalesced run — one
    syscall moves a whole run of adjacent blocks, which is exactly the
    shape the scheduler optimizes for.  With ``direct=True`` the file
    is opened ``O_DIRECT`` where available (transfers staged through a
    page-aligned buffer, bypassing the OS page cache).

Durability: ``sync()`` issues ``msync``/``fsync``; the ``fsync``
constructor flag makes every :meth:`sync` a real fsync barrier.

Persistence: the device carries a ``manifest`` dict (arbitrary JSON —
the tile store records its array directory there) persisted to a
``<path>.meta`` sidecar on ``close()``/``sync()``.  Reopening an
existing path restores the allocation cursor and the manifest, which is
what makes ``repro.open_session("file:///path/riot.db")`` round-trip
arrays across sessions.
"""

from __future__ import annotations

import contextlib
import json
import mmap
import os
import tempfile

import numpy as np

from .block_device import DEFAULT_BLOCK_SIZE, BlockDevice

#: File growth granularity in blocks: the file is extended in extents so
#: mmap remaps stay rare and O_DIRECT sees an aligned file size.
EXTENT_BLOCKS = 256

#: Sidecar suffix for device metadata (allocation cursor + manifest).
META_SUFFIX = ".meta"

#: Alignment O_DIRECT transfers are staged at.
_DIRECT_ALIGN = 4096


class FileBlockDevice(BlockDevice):
    """Blocks in a real page file, via ``mmap`` or ``pread``/``pwrite``."""

    def __init__(self, path: str | os.PathLike | None = None,
                 mode: str = "mmap",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 name: str = "disk",
                 fsync: bool = False,
                 direct: bool = False) -> None:
        if mode not in ("mmap", "pread"):
            raise ValueError(
                f"unknown file-device mode {mode!r}; use mmap|pread")
        super().__init__(block_size=block_size, name=name)
        self.backend = mode
        self.mode = mode
        self.fsync = fsync
        self.manifest: dict = {}
        self._closed = False
        self._mm: mmap.mmap | None = None
        self._dbuf: mmap.mmap | None = None
        if path is None:
            fd, tmp = tempfile.mkstemp(prefix=f"riot-{name}-",
                                       suffix=".pages")
            os.close(fd)
            self.path = tmp
            self.owns_path = True
        else:
            self.path = os.fspath(path)
            self.owns_path = False
        self.direct = bool(direct and mode == "pread"
                           and block_size % _DIRECT_ALIGN == 0)
        self._fd = self._open_fd()
        self._load_meta()

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------
    def _open_fd(self) -> int:
        flags = os.O_RDWR | os.O_CREAT
        if self.direct and hasattr(os, "O_DIRECT"):
            # The filesystem may refuse O_DIRECT — fall back buffered.
            with contextlib.suppress(OSError):
                return os.open(self.path, flags | os.O_DIRECT, 0o644)
        self.direct = False
        return os.open(self.path, flags, 0o644)

    @property
    def meta_path(self) -> str:
        return self.path + META_SUFFIX

    def _load_meta(self) -> None:
        try:
            with open(self.meta_path) as fh:
                meta = json.loads(fh.read())
        except FileNotFoundError:
            # No sidecar: a raw page file still reopens — every existing
            # block stays addressable, there is just no manifest.
            size = os.fstat(self._fd).st_size
            self._next_block_id = -(-size // self.block_size)
            return
        if meta.get("block_size") != self.block_size:
            raise ValueError(
                f"page file {self.path!r} was written with block_size="
                f"{meta.get('block_size')}, not {self.block_size}")
        self._next_block_id = int(meta.get("next_block_id", 0))
        self.manifest = meta.get("manifest", {})

    def _save_meta(self) -> None:
        payload = {"format": 1, "block_size": self.block_size,
                   "next_block_id": self._next_block_id,
                   "manifest": self.manifest}
        tmp = self.meta_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self.meta_path)

    def close(self) -> None:
        """Flush the mapping, persist metadata, release the file.

        A device that created its own temporary page file deletes it
        (and its sidecar) here — sessions opened without an explicit
        path leave nothing behind.
        """
        if self._closed:
            return
        self._closed = True
        if self._mm is not None:
            self._mm.flush()
            # A BufferError means a block_view() is still alive; the
            # mapping then stays open until its last view dies, which
            # is safe — the flush above already pushed the bytes.
            with contextlib.suppress(BufferError):
                self._mm.close()
            self._mm = None
        if self._dbuf is not None:
            self._dbuf.close()
            self._dbuf = None
        if self.owns_path:
            os.close(self._fd)
            for p in (self.path, self.meta_path):
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(p)
        else:
            self._save_meta()
            if self.fsync:
                os.fsync(self._fd)
            os.close(self._fd)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _file_blocks(self) -> int:
        return os.fstat(self._fd).st_size // self.block_size

    def _ensure_capacity(self, n_blocks: int) -> None:
        """Grow the file (extent-rounded) to cover ``n_blocks`` blocks."""
        have = self._file_blocks()
        if n_blocks <= have:
            return
        want = -(-n_blocks // EXTENT_BLOCKS) * EXTENT_BLOCKS
        os.ftruncate(self._fd, want * self.block_size)
        if self.mode == "mmap" and self._mm is not None:
            self._mm.resize(want * self.block_size)

    def _mapping(self, upto_block: int) -> mmap.mmap:
        self._ensure_capacity(upto_block)
        if self._mm is None:
            self._mm = mmap.mmap(self._fd, 0)
        return self._mm

    def _staging(self, nbytes: int) -> mmap.mmap:
        """Page-aligned scratch buffer for O_DIRECT transfers."""
        if self._dbuf is None or len(self._dbuf) < nbytes:
            if self._dbuf is not None:
                self._dbuf.close()
            size = -(-nbytes // _DIRECT_ALIGN) * _DIRECT_ALIGN
            self._dbuf = mmap.mmap(-1, size)
        return self._dbuf

    # ------------------------------------------------------------------
    # Physical primitives (the only thing overridden vs the simulator)
    # ------------------------------------------------------------------
    def _read_run(self, first: int, length: int) -> list[np.ndarray]:
        bs = self.block_size
        nbytes = length * bs
        if self.mode == "mmap":
            mm = self._mapping(first + length)
            raw = np.frombuffer(mm, dtype=np.uint8, count=nbytes,
                                offset=first * bs)
        elif self.direct:
            self._ensure_capacity(first + length)
            buf = self._staging(nbytes)
            view = memoryview(buf)[:nbytes]
            got = os.preadv(self._fd, [view], first * bs)
            self.stats.syscalls += 1
            raw = np.frombuffer(buf, dtype=np.uint8, count=nbytes)
            if got < nbytes:
                raw = raw.copy()
                raw[got:] = 0
        else:
            data = os.pread(self._fd, nbytes, first * bs)
            self.stats.syscalls += 1
            if len(data) < nbytes:
                data = data + b"\0" * (nbytes - len(data))
            raw = np.frombuffer(data, dtype=np.uint8)
        # Each block becomes a fresh writable array: buffer-pool frames
        # are mutated in place and written back explicitly, so handing
        # out live views of the backing store would leak unaccounted
        # writes.  block_view() is the deliberate zero-copy escape hatch.
        return [raw[k * bs:(k + 1) * bs].copy() for k in range(length)]

    def _write_run(self, first: int, bufs: list[np.ndarray]) -> None:
        bs = self.block_size
        length = len(bufs)
        self._ensure_capacity(first + length)
        if self.mode == "mmap":
            mm = self._mapping(first + length)
            out = np.frombuffer(mm, dtype=np.uint8, count=length * bs,
                                offset=first * bs)
            for k, buf in enumerate(bufs):
                out[k * bs:(k + 1) * bs] = buf
        elif self.direct:
            nbytes = length * bs
            staging = self._staging(nbytes)
            scratch = np.frombuffer(staging, dtype=np.uint8,
                                    count=nbytes)
            for k, buf in enumerate(bufs):
                scratch[k * bs:(k + 1) * bs] = buf
            os.pwritev(self._fd, [memoryview(staging)[:nbytes]],
                       first * bs)
            self.stats.syscalls += 1
        else:
            payload = (bufs[0] if length == 1
                       else np.concatenate(bufs)).tobytes()
            os.pwrite(self._fd, payload, first * bs)
            self.stats.syscalls += 1
        if self.fsync:
            self._sync_backend()

    def _discard_run(self, first: int, length: int) -> None:
        """Freeing blocks needs no physical work on a page file."""

    def _sync_backend(self) -> None:
        if self._mm is not None:
            self._mm.flush()
            self.stats.syscalls += 1
        os.fsync(self._fd)
        self.stats.syscalls += 1

    # ------------------------------------------------------------------
    # Extras over the simulated device
    # ------------------------------------------------------------------
    def block_view(self, block_id: int, count: int = 1) -> np.ndarray:
        """Zero-copy **read-only** view of ``count`` consecutive blocks
        (mmap mode only).

        Bypasses the buffer pool and all I/O accounting — this is the
        raw tile-view primitive for consumers that stream straight off
        the mapping and can tolerate the page cache's timing.  A
        multi-block view requires the ids to be physically consecutive,
        which the tile store guarantees for whole raw-codec tiles.
        """
        if self.mode != "mmap":
            raise ValueError("block_view requires the mmap backend")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._check_id(block_id)
        self._check_id(block_id + count - 1)
        bs = self.block_size
        mm = self._mapping(block_id + count)
        view = np.frombuffer(mm, dtype=np.uint8, count=bs * count,
                             offset=block_id * bs)
        view.flags.writeable = False
        return view

    @property
    def resident_blocks(self) -> int:
        """Blocks backed by real file bytes (the file is zero-filled by
        extension, so this counts allocated-and-extended, not written)."""
        return min(self._next_block_id, self._file_blocks())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FileBlockDevice(path={self.path!r}, mode={self.mode!r}"
                f"{', direct' if self.direct else ''}, block_size="
                f"{self.block_size}, allocated={self.allocated_blocks})")
