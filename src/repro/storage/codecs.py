"""Per-tile compression codecs — the TritanDB-style byte axis.

RIOT's thesis is that I/O cost dominates out-of-core numerical
computing, and the biggest remaining lever after scheduling is
shrinking the bytes that cross the device boundary.  A
:class:`TileCodec` transforms one tile's scalars into a compressed
payload at :class:`~repro.storage.tile_store.TiledMatrix` write time
and back at read time; the tile store records each tile's codec and
compressed length in its tile directory (persisted through the
``.meta`` sidecar manifest), charges the *compressed* bytes to
``IOStats.bytes_compressed`` (schema v3), and keeps decompressed tiles
in a decoded-frame cache so repeated reads pay the decode CPU once.

Codecs never leak outside the storage layer: kernels and the planner
only ever see decoded ``numpy`` tiles (enforced by the ``RPR005`` lint
rule — ``encode_tile``/``decode_tile`` may only be called under
``repro/storage``).

Built-in codecs:

``raw``
    Identity.  Tiles occupy their full page span; the zero-copy
    ``block_view`` path requires it.
``delta+zstd``
    Bitwise-lossless: view the scalars' bit patterns as integers,
    delta-encode (wraparound arithmetic), then compress with
    ``zstandard`` when importable and stdlib ``zlib`` otherwise.  The
    payload is self-describing (a one-byte backend tag), so a file
    written with one backend decodes with the other.
``float32-downcast``
    Lossy 2x: store float64 tiles as float32 on disk.  Values
    round-trip within float32 precision (~1e-7 relative) — a
    documented tolerance contract instead of the bitwise one.

``register_codec`` makes the registry pluggable for experiments.
"""

from __future__ import annotations

import zlib

import numpy as np

try:  # pragma: no cover - environment-dependent
    import zstandard as _zstd
except ImportError:  # pragma: no cover - the stdlib fallback path
    _zstd = None

#: Backend tags of the ``delta+zstd`` wire format (first payload byte).
_TAG_ZLIB = 0
_TAG_ZSTD = 1


class TileCodec:
    """Transforms one tile's scalars to/from a compressed payload.

    ``name`` is the registry key recorded per tile in the manifest;
    ``ratio_estimate`` is the static compressed/raw byte ratio the
    planner uses before any measured traffic exists; ``lossless``
    states whether decode is bitwise (the determinism contract) or
    within a documented tolerance.
    """

    name = "codec"
    ratio_estimate = 1.0
    lossless = True

    def encode_tile(self, tile: np.ndarray) -> bytes:
        """Compress one full (edge-padded) tile into a payload."""
        raise NotImplementedError

    def decode_tile(self, payload: bytes, dtype: np.dtype,
                    count: int) -> np.ndarray:
        """Recover ``count`` scalars of ``dtype`` from a payload."""
        raise NotImplementedError


class RawCodec(TileCodec):
    """Identity codec: tiles are stored as their native bytes."""

    name = "raw"
    ratio_estimate = 1.0
    lossless = True

    def encode_tile(self, tile: np.ndarray) -> bytes:
        return np.ascontiguousarray(tile).tobytes()

    def decode_tile(self, payload: bytes, dtype: np.dtype,
                    count: int) -> np.ndarray:
        return np.frombuffer(payload, dtype=dtype)[:count].copy()


class DeltaZstdCodec(TileCodec):
    """Bitwise-lossless delta + entropy coding of scalar bit patterns.

    Scalars are viewed as same-width integers, delta-encoded with
    silent wraparound (``a[i] - a[i-1]`` mod 2^64), and compressed.
    Decode reverses exactly: decompress, cumulative-sum (wrapping
    back), reinterpret as the float dtype — the round-trip is bit
    identical, so float64 determinism contracts survive compression.
    """

    name = "delta+zstd"
    #: Typical ratio on smooth/quantized numeric data; incompressible
    #: tiles fall back to raw storage per tile, so 1.0 is the ceiling.
    ratio_estimate = 0.5
    lossless = True

    #: Compression level for both backends (zstd 3 / zlib 6 class).
    level = 3

    def _int_dtype(self, dtype: np.dtype) -> np.dtype:
        return np.dtype(f"<i{np.dtype(dtype).itemsize}")

    def encode_tile(self, tile: np.ndarray) -> bytes:
        flat = np.ascontiguousarray(tile).reshape(-1)
        ints = flat.view(self._int_dtype(flat.dtype))
        with np.errstate(over="ignore"):
            delta = np.diff(ints, prepend=ints.dtype.type(0))
        raw = delta.tobytes()
        if _zstd is not None:
            body = _zstd.ZstdCompressor(level=self.level).compress(raw)
            return bytes([_TAG_ZSTD]) + body
        return bytes([_TAG_ZLIB]) + zlib.compress(raw, 6)

    def decode_tile(self, payload: bytes, dtype: np.dtype,
                    count: int) -> np.ndarray:
        tag, body = payload[0], payload[1:]
        if tag == _TAG_ZSTD:
            if _zstd is None:
                raise RuntimeError(
                    "tile was compressed with zstandard, which is not "
                    "importable here; install it or rewrite with the "
                    "zlib backend")
            raw = _zstd.ZstdDecompressor().decompress(body)
        elif tag == _TAG_ZLIB:
            raw = zlib.decompress(body)
        else:
            raise ValueError(
                f"unknown delta+zstd backend tag {tag}; the payload is "
                f"not a delta+zstd tile")
        idt = self._int_dtype(dtype)
        delta = np.frombuffer(raw, dtype=idt)
        with np.errstate(over="ignore"):
            ints = np.cumsum(delta, dtype=idt)
        return ints.view(np.dtype(dtype))[:count].copy()


class Float32Codec(TileCodec):
    """Lossy 2x downcast: float64 tiles stored as float32 bytes.

    Decode upcasts back to the matrix dtype; values round-trip within
    float32 precision (~1e-7 relative), which is this codec's
    documented tolerance contract.  On a float32 matrix it is a no-op
    size-wise (ratio 1.0).
    """

    name = "float32-downcast"
    ratio_estimate = 0.5
    lossless = False

    def encode_tile(self, tile: np.ndarray) -> bytes:
        return np.ascontiguousarray(tile, dtype=np.float32).tobytes()

    def decode_tile(self, payload: bytes, dtype: np.dtype,
                    count: int) -> np.ndarray:
        return np.frombuffer(payload, dtype=np.float32)[:count] \
            .astype(np.dtype(dtype))


#: Registry: canonical codec name (and aliases) -> shared instance.
CODECS: dict[str, TileCodec] = {}

_ALIASES = {
    "raw": "raw",
    "none": "raw",
    "delta+zstd": "delta+zstd",
    "zstd": "delta+zstd",
    "delta": "delta+zstd",
    "float32-downcast": "float32-downcast",
    "float32": "float32-downcast",
}


def register_codec(codec: TileCodec, *aliases: str) -> TileCodec:
    """Register a codec under its ``name`` plus optional aliases."""
    CODECS[codec.name] = codec
    _ALIASES[codec.name] = codec.name
    for alias in aliases:
        _ALIASES[alias] = codec.name
    return codec


register_codec(RawCodec(), "none")
register_codec(DeltaZstdCodec(), "zstd", "delta")
register_codec(Float32Codec(), "float32")


def get_codec(name: str | TileCodec) -> TileCodec:
    """Resolve a codec by registry name or alias."""
    if isinstance(name, TileCodec):
        return name
    canonical = _ALIASES.get(str(name).lower())
    if canonical is None:
        raise ValueError(
            f"unknown tile codec {name!r}; registered: "
            f"{sorted(CODECS)} (aliases: {sorted(_ALIASES)})")
    return CODECS[canonical]
