"""Tiled (chunked) array storage — the ChunkyStore analogue of RIOT §5.

Arrays are partitioned into rectangular tiles; each tile occupies whole pages
of a :class:`~repro.storage.pagefile.PageFile`, and the order of tiles on disk
is controlled by a :class:`~repro.storage.linearization.Linearization`.  Array
indexes are never stored explicitly (unlike the relational representation the
paper criticizes): a tile's grid coordinate determines its disk position
arithmetically.

Design points taken straight from the paper:

- *"With tiling, an array is partitioned into (hyper)rectangular tiles; each
  tile is stored in a disk block, but the aspect ratio of tiles can be
  controlled."* — :func:`tile_shape_for_layout` offers the paper's row,
  column, and square aspect ratios; custom shapes are accepted everywhere.
- *"For matrices, row and column layouts correspond to tiling strategies
  where tiles are long and skinny."*
- Square tiles of area B make each p x p submatrix cost O(p^2/B) I/Os, which
  is what the Appendix-A optimal matrix multiply needs.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from ..obs.tracer import Tracer
from .block_device import BlockDevice, DEFAULT_BLOCK_SIZE, IOStats
from .buffer_pool import BufferPool
from .codecs import TileCodec, get_codec
from .linearization import Linearization, make_linearization
from .pagefile import PageFile

_FLOAT = np.float64
_FLOAT_BYTES = 8

#: Chunks hinted ahead of a sequential scan (see ``TiledVector.scan``).
SCAN_PREFETCH_CHUNKS = 16


def tile_shape_for_layout(layout: str, shape: tuple[int, int],
                          scalars_per_block: int) -> tuple[int, int]:
    """Translate a named layout into a tile shape for a matrix.

    ``row``    long skinny horizontal tiles (1 x B), row-major order.
    ``col``    long skinny vertical tiles (B x 1) — R's default column order.
    ``square`` square tiles of area <= B (the Appendix-A layout).
    """
    n1, n2 = shape
    if n1 <= 0 or n2 <= 0:
        raise ValueError(
            f"cannot tile a zero- or negative-sized matrix: shape "
            f"{shape} (every dimension must be >= 1)")
    if scalars_per_block <= 0:
        raise ValueError(
            f"scalars_per_block must be positive, got {scalars_per_block}")
    if layout == "row":
        # Row-major packing: whole rows laid end to end.  When a row is
        # shorter than a block, several rows share one block so pages stay
        # full (no padding waste).
        if n2 >= scalars_per_block:
            return (1, scalars_per_block)
        return (min(n1, max(1, scalars_per_block // n2)), n2)
    if layout == "col":
        if n1 >= scalars_per_block:
            return (scalars_per_block, 1)
        return (n1, min(n2, max(1, scalars_per_block // n1)))
    if layout == "square":
        side = max(1, int(math.isqrt(scalars_per_block)))
        return (min(n1, side), min(n2, side))
    raise ValueError(f"unknown layout {layout!r}; use row|col|square")


class TiledVector:
    """A 1-D array stored as fixed-size chunks of float64 values."""

    def __init__(self, store: "ArrayStore", name: str, length: int,
                 chunk: int) -> None:
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        max_chunk = store.device.block_size // _FLOAT_BYTES
        if chunk > max_chunk:
            raise ValueError(
                f"chunk of {chunk} scalars exceeds one page ({max_chunk})")
        self.store = store
        self.name = name
        self.length = length
        self.chunk = chunk
        self.file = PageFile(store.device, name=name)
        self.file.allocate_pages(self.num_chunks)

    @classmethod
    def _attach(cls, store: "ArrayStore", name: str,
                entry: dict) -> "TiledVector":
        """Rebind a persisted vector (manifest entry) without I/O."""
        vec = cls.__new__(cls)
        vec.store = store
        vec.name = name
        vec.length = int(entry["length"])
        vec.chunk = int(entry["chunk"])
        vec.file = PageFile.attach(store.device, name, entry["pages"])
        return vec

    # ------------------------------------------------------------------
    @property
    def num_chunks(self) -> int:
        return -(-self.length // self.chunk) if self.length else 0

    def chunk_bounds(self, ci: int) -> tuple[int, int]:
        self._check_chunk(ci)
        lo = ci * self.chunk
        return lo, min(lo + self.chunk, self.length)

    def chunk_of(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} outside [0, {self.length})")
        return index // self.chunk

    # ------------------------------------------------------------------
    def read_chunk(self, ci: int) -> np.ndarray:
        """Read chunk ``ci``; returns a fresh float64 array."""
        lo, hi = self.chunk_bounds(ci)
        frame = self.store.pool.get(self.file.block_of(ci))
        return frame.view(_FLOAT)[: hi - lo].copy()

    def write_chunk(self, ci: int, values: np.ndarray) -> None:
        lo, hi = self.chunk_bounds(ci)
        vals = np.ascontiguousarray(values, dtype=_FLOAT)
        if vals.size != hi - lo:
            raise ValueError(
                f"chunk {ci} expects {hi - lo} values, got {vals.size}")
        buf = np.zeros(self.store.device.block_size, dtype=np.uint8)
        buf[: vals.size * _FLOAT_BYTES] = vals.view(np.uint8)
        self.store.pool.put(self.file.block_of(ci), buf)

    def blocks_for_chunks(self, chunk_ids) -> list[int]:
        """Device block keys backing the given chunks (prefetch hints)."""
        return [self.file.block_of(ci) for ci in chunk_ids]

    def scan(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start_index, values)`` for every chunk, in order.

        The scan announces its own footprint: every
        ``SCAN_PREFETCH_CHUNKS`` chunks it hints the next window to the
        buffer pool, so a cold scan issues a few large coalesced reads
        instead of one device call per chunk.
        """
        # Halve the lookahead against pool capacity so a consumer that
        # interleaves writes (copy loops) cannot evict prefetched chunks
        # before they are read, which would inflate block totals.
        window = min(SCAN_PREFETCH_CHUNKS,
                     max(1, (self.store.pool.capacity - 2) // 2))
        for ci in range(self.num_chunks):
            if ci % window == 0:
                hi = min(ci + window, self.num_chunks)
                self.store.pool.prefetch(
                    self.blocks_for_chunks(range(ci, hi)))
            lo, _ = self.chunk_bounds(ci)
            yield lo, self.read_chunk(ci)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Fetch arbitrary elements, touching only the containing chunks.

        This is the I/O path behind selective evaluation: fetching 100
        sampled elements reads at most 100 chunks, not the whole vector.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0, dtype=_FLOAT)
        if idx.min() < 0 or idx.max() >= self.length:
            raise IndexError("gather index out of range")
        out = np.empty(idx.size, dtype=_FLOAT)
        chunks = idx // self.chunk
        order = np.argsort(chunks, kind="stable")
        # Announce the exact chunk footprint: a dense sorted gather then
        # coalesces its chunk reads into a few device calls.
        self.store.pool.prefetch(
            self.blocks_for_chunks(np.unique(chunks).tolist()))
        pos = 0
        while pos < idx.size:
            ci = int(chunks[order[pos]])
            end = pos
            while end < idx.size and chunks[order[end]] == ci:
                end += 1
            data = self.read_chunk(ci)
            sel = order[pos:end]
            out[sel] = data[idx[sel] - ci * self.chunk]
            pos = end
        return out

    def scatter(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Write arbitrary elements (read-modify-write of touched chunks)."""
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values, dtype=_FLOAT)
        if idx.shape != vals.shape:
            raise ValueError("indices and values must align")
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.length:
            raise IndexError("scatter index out of range")
        chunks = idx // self.chunk
        order = np.argsort(chunks, kind="stable")
        pos = 0
        while pos < idx.size:
            ci = int(chunks[order[pos]])
            end = pos
            while end < idx.size and chunks[order[end]] == ci:
                end += 1
            data = self.read_chunk(ci)
            sel = order[pos:end]
            data[idx[sel] - ci * self.chunk] = vals[sel]
            self.write_chunk(ci, data)
            pos = end

    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        out = np.empty(self.length, dtype=_FLOAT)
        for lo, data in self.scan():
            out[lo: lo + data.size] = data
        return out

    def from_numpy(self, values: np.ndarray) -> "TiledVector":
        vals = np.ascontiguousarray(values, dtype=_FLOAT)
        if vals.size != self.length:
            raise ValueError(
                f"expected {self.length} values, got {vals.size}")
        for ci in range(self.num_chunks):
            lo, hi = self.chunk_bounds(ci)
            self.write_chunk(ci, vals[lo:hi])
        return self

    def drop(self) -> None:
        for ci in range(self.num_chunks):
            self.store.pool.invalidate(self.file.block_of(ci))
        self.file.drop()

    def _check_chunk(self, ci: int) -> None:
        if not 0 <= ci < self.num_chunks:
            raise IndexError(
                f"chunk {ci} outside [0, {self.num_chunks}) of {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TiledVector({self.name!r}, length={self.length}, "
                f"chunk={self.chunk})")


class TiledMatrix:
    """A 2-D array stored as rectangular tiles over whole pages.

    Each matrix carries its own storage ``dtype`` (float64 or float32)
    and per-tile :class:`~repro.storage.codecs.TileCodec`.  With a
    non-``raw`` codec the ``tile_dir`` maps a tile's linearized
    position to its compressed payload length: a positive length means
    the payload occupies the first ``ceil(length / block_size)`` of
    the tile's pre-allocated pages, ``0`` is the raw-fallback sentinel
    for incompressible tiles, and an absent entry means the tile was
    never written (reads return zeros without touching the device).
    """

    def __init__(self, store: "ArrayStore", name: str,
                 shape: tuple[int, int], tile_shape: tuple[int, int],
                 linearization: str | Linearization = "row",
                 dtype: np.dtype | str | None = None,
                 codec: TileCodec | str | None = None) -> None:
        n1, n2 = shape
        th, tw = tile_shape
        if n1 <= 0 or n2 <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        if th <= 0 or tw <= 0:
            raise ValueError(f"tile shape must be positive, got {tile_shape}")
        self.store = store
        self.name = name
        self.shape = (n1, n2)
        self.dtype = (np.dtype(dtype) if dtype is not None
                      else store.dtype)
        self.codec = (get_codec(codec) if codec is not None
                      else store.codec)
        self.tile_dir: dict[int, int] = {}
        self.tile_shape = (min(th, n1), min(tw, n2))
        self.grid = (-(-n1 // self.tile_shape[0]),
                     -(-n2 // self.tile_shape[1]))
        if isinstance(linearization, Linearization):
            self.linearization = linearization
        else:
            self.linearization = make_linearization(
                linearization, self.grid[0], self.grid[1])
        th, tw = self.tile_shape
        self.pages_per_tile = -(-th * tw * self.dtype.itemsize
                                // store.device.block_size)
        self.file = PageFile(store.device, name=name)
        self.file.allocate_pages(
            self.grid[0] * self.grid[1] * self.pages_per_tile)

    @classmethod
    def _attach(cls, store: "ArrayStore", name: str,
                entry: dict) -> "TiledMatrix":
        """Rebind a persisted matrix (manifest entry) without I/O."""
        mat = cls.__new__(cls)
        mat.store = store
        mat.name = name
        mat.shape = tuple(int(d) for d in entry["shape"])
        mat.dtype = np.dtype(entry.get("dtype", "float64"))
        mat.codec = get_codec(entry.get("codec", "raw"))
        mat.tile_dir = {int(k): int(v)
                        for k, v in entry.get("tile_dir", {}).items()}
        mat.tile_shape = tuple(int(d) for d in entry["tile_shape"])
        mat.grid = (-(-mat.shape[0] // mat.tile_shape[0]),
                    -(-mat.shape[1] // mat.tile_shape[1]))
        mat.linearization = make_linearization(
            entry["linearization"], mat.grid[0], mat.grid[1])
        th, tw = mat.tile_shape
        mat.pages_per_tile = -(-th * tw * mat.dtype.itemsize
                               // store.device.block_size)
        mat.file = PageFile.attach(store.device, name, entry["pages"])
        return mat

    # ------------------------------------------------------------------
    def tile_bounds(self, ti: int, tj: int) -> tuple[int, int, int, int]:
        """Return (row_lo, row_hi, col_lo, col_hi) of tile (ti, tj)."""
        self._check_tile(ti, tj)
        th, tw = self.tile_shape
        r0 = ti * th
        c0 = tj * tw
        return (r0, min(r0 + th, self.shape[0]),
                c0, min(c0 + tw, self.shape[1]))

    def _tile_pages(self, ti: int, tj: int) -> range:
        pos = self.linearization.index(ti, tj)
        first = pos * self.pages_per_tile
        return range(first, first + self.pages_per_tile)

    def tile_blocks(self, ti: int, tj: int) -> list[int]:
        """Device block keys backing tile (ti, tj) — the prefetch unit.

        Codec-aware: a compressed tile reports only the pages its
        payload occupies, and a never-written compressed tile reports
        none (its read is pure zeros, no I/O).
        """
        pages = self._tile_pages(ti, tj)
        if self.codec.name != "raw":
            comp = self.tile_dir.get(self.linearization.index(ti, tj))
            if comp is None:
                return []
            if comp > 0:
                nb = -(-comp // self.store.device.block_size)
                pages = pages[:nb]
        return self.file.blocks_of(pages)

    def submatrix_blocks(self, r0: int, r1: int, c0: int, c1: int
                         ) -> list[int]:
        """Device block keys for every tile covering the rectangle."""
        th, tw = self.tile_shape
        blocks: list[int] = []
        for ti in range(r0 // th, -(-r1 // th) if r1 else 0):
            for tj in range(c0 // tw, -(-c1 // tw) if c1 else 0):
                blocks.extend(self.tile_blocks(ti, tj))
        return blocks

    def read_tile(self, ti: int, tj: int) -> np.ndarray:
        """Read tile (ti, tj) as a 2-D array (clipped at edges)."""
        r0, r1, c0, c1 = self.tile_bounds(ti, tj)
        full = self._read_full_tile(ti, tj)
        return full[: r1 - r0, : c1 - c0].copy()

    def _charge_codec(self, logical: int, compressed: int) -> None:
        """Record codec traffic on the v3 byte axis (under the pool
        lock, the serializer of every other stats mutation)."""
        with self.store.pool.lock:
            stats = self.store.device.stats
            stats.bytes_logical += logical
            stats.bytes_compressed += compressed

    def _read_raw_tile(self, ti: int, tj: int) -> np.ndarray:
        """Assemble the zero-padded (th, tw) tile from its full page
        span (the codec-unaware path)."""
        th, tw = self.tile_shape
        per_page = self.store.device.block_size // self.dtype.itemsize
        flat = np.empty(self.pages_per_tile * per_page, dtype=self.dtype)
        frames = self.store.pool.get_many(
            self.file.blocks_of(self._tile_pages(ti, tj)))
        for k, frame in enumerate(frames):
            flat[k * per_page: (k + 1) * per_page] = \
                frame.view(self.dtype)
        return flat[: th * tw].reshape(th, tw)

    def _read_full_tile(self, ti: int, tj: int) -> np.ndarray:
        """The decoded zero-padded (th, tw) tile.  May return a cached
        (read-only) array — callers must copy before mutating."""
        th, tw = self.tile_shape
        if self.codec.name == "raw":
            return self._read_raw_tile(ti, tj)
        logical = th * tw * self.dtype.itemsize
        comp = self.tile_dir.get(self.linearization.index(ti, tj))
        if comp is None:
            # Never written: sparse-file semantics without the I/O.
            return np.zeros((th, tw), dtype=self.dtype)
        if comp == 0:
            # Raw-fallback tile (incompressible at write time).
            tile = self._read_raw_tile(ti, tj)
            self._charge_codec(logical, logical)
            return tile
        cached = self.store.tile_cache.get((self.name, ti, tj))
        if cached is not None:
            return cached
        frames = self.store.pool.get_many(self.tile_blocks(ti, tj))
        payload = b"".join(f.tobytes() for f in frames)[:comp]
        tile = self.codec.decode_tile(payload, self.dtype,
                                      th * tw).reshape(th, tw)
        self._charge_codec(logical, comp)
        self.store.tile_cache.put((self.name, ti, tj), tile)
        return tile

    def write_tile(self, ti: int, tj: int, values: np.ndarray) -> None:
        r0, r1, c0, c1 = self.tile_bounds(ti, tj)
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.shape != (r1 - r0, c1 - c0):
            raise ValueError(
                f"tile ({ti},{tj}) expects shape {(r1 - r0, c1 - c0)}, "
                f"got {vals.shape}")
        th, tw = self.tile_shape
        full = np.zeros((th, tw), dtype=self.dtype)
        full[: r1 - r0, : c1 - c0] = vals
        if self.codec.name == "raw":
            self._write_raw_tile(ti, tj, full)
        else:
            self._write_encoded_tile(ti, tj, full)

    def _write_raw_tile(self, ti: int, tj: int,
                        full: np.ndarray) -> None:
        flat = full.reshape(-1).view(np.uint8)
        per_page = self.store.device.block_size
        for k, page in enumerate(self._tile_pages(ti, tj)):
            chunk = flat[k * per_page: (k + 1) * per_page]
            self.store.pool.put(self.file.block_of(page), chunk)

    def _write_encoded_tile(self, ti: int, tj: int,
                            full: np.ndarray) -> None:
        bs = self.store.device.block_size
        th, tw = self.tile_shape
        logical = th * tw * self.dtype.itemsize
        pos = self.linearization.index(ti, tj)
        payload = self.codec.encode_tile(full)
        pages = self._tile_pages(ti, tj)
        if len(payload) > len(pages) * bs:
            # The payload outgrew the tile's page span: store raw
            # (tile_dir length 0 is the fallback sentinel).
            self.tile_dir[pos] = 0
            self.store.tile_cache.invalidate((self.name, ti, tj))
            self._write_raw_tile(ti, tj, full)
            self._charge_codec(logical, logical)
            return
        nb = -(-len(payload) // bs)
        buf = np.frombuffer(payload, dtype=np.uint8)
        for k in range(nb):
            self.store.pool.put(self.file.block_of(pages[k]),
                                buf[k * bs: (k + 1) * bs])
        # A shrinking payload strands stale higher pages in the pool;
        # drop them so they are neither flushed nor read back.
        for page in pages[nb:]:
            self.store.pool.invalidate(self.file.block_of(page))
        self.tile_dir[pos] = len(payload)
        full.flags.writeable = False
        self.store.tile_cache.put((self.name, ti, tj), full)
        self._charge_codec(logical, len(payload))

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Yield tile coordinates in on-disk (linearized) order."""
        total = self.grid[0] * self.grid[1]
        for pos in range(total):
            yield self.linearization.coords(pos)

    # ------------------------------------------------------------------
    def read_submatrix(self, r0: int, r1: int, c0: int, c1: int
                       ) -> np.ndarray:
        """Read an arbitrary aligned-or-not rectangle (touches its tiles)."""
        if not (0 <= r0 <= r1 <= self.shape[0]
                and 0 <= c0 <= c1 <= self.shape[1]):
            raise IndexError(f"rectangle ({r0}:{r1}, {c0}:{c1}) out of range")
        # The rectangle's tile footprint is exact and about to be read in
        # full — announce it so the misses coalesce into large I/Os.
        self.store.pool.prefetch(self.submatrix_blocks(r0, r1, c0, c1))
        out = np.empty((r1 - r0, c1 - c0), dtype=self.dtype)
        th, tw = self.tile_shape
        for ti in range(r0 // th, -(-r1 // th) if r1 else 0):
            for tj in range(c0 // tw, -(-c1 // tw) if c1 else 0):
                tr0, tr1, tc0, tc1 = self.tile_bounds(ti, tj)
                ir0, ir1 = max(tr0, r0), min(tr1, r1)
                ic0, ic1 = max(tc0, c0), min(tc1, c1)
                if ir0 >= ir1 or ic0 >= ic1:
                    continue
                tile = self.read_tile(ti, tj)
                out[ir0 - r0: ir1 - r0, ic0 - c0: ic1 - c0] = \
                    tile[ir0 - tr0: ir1 - tr0, ic0 - tc0: ic1 - tc0]
        return out

    def read_submatrix_view(self, r0: int, r1: int, c0: int, c1: int
                            ) -> np.ndarray:
        """Read a rectangle, zero-copy off the mmap when legal.

        The fast path returns a **read-only** slice of the device's
        mapping, bypassing buffer-pool frames and I/O accounting (the
        documented trade of the ``zero_copy`` opt-in).  It engages only
        when every guard holds: the config opted in and is not
        sanitizing, the codec is ``raw``, the backend is mmap, the
        rectangle is exactly one tile, the tile's blocks are physically
        consecutive, and the pool holds no dirty frames for them.
        Everything else falls back to :meth:`read_submatrix` (a fresh
        writable copy), so callers may use this wherever they do not
        mutate the result.
        """
        store = self.store
        if (store.storage.zero_copy and not store.storage.sanitize
                and self.codec.name == "raw"
                and getattr(store.device, "mode", None) == "mmap"):
            th, tw = self.tile_shape
            if (r0 % th == 0 and c0 % tw == 0
                    and r0 // th < self.grid[0]
                    and c0 // tw < self.grid[1]):
                ti, tj = r0 // th, c0 // tw
                if (r0, r1, c0, c1) == self.tile_bounds(ti, tj):
                    blocks = self.tile_blocks(ti, tj)
                    consecutive = all(
                        blocks[k] == blocks[0] + k
                        for k in range(1, len(blocks)))
                    if consecutive and not store.pool.has_dirty(blocks):
                        raw = store.device.block_view(blocks[0],
                                                      len(blocks))
                        flat = raw.view(self.dtype)[: th * tw]
                        return flat.reshape(th, tw)[: r1 - r0,
                                                    : c1 - c0]
        return self.read_submatrix(r0, r1, c0, c1)

    def write_submatrix(self, r0: int, c0: int, values: np.ndarray) -> None:
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        r1 = r0 + vals.shape[0]
        c1 = c0 + vals.shape[1]
        if not (0 <= r0 <= r1 <= self.shape[0]
                and 0 <= c0 <= c1 <= self.shape[1]):
            raise IndexError(f"rectangle ({r0}:{r1}, {c0}:{c1}) out of range")
        th, tw = self.tile_shape
        # Tiles the rectangle only partially covers are read-modify-
        # written; announce that read footprint up front so the misses
        # coalesce (and so a kernel span's sanitizer sees the reads as
        # part of the declared footprint, not stray demand misses).
        rmw_blocks: list[int] = []
        for ti in range(r0 // th, -(-r1 // th) if r1 else 0):
            for tj in range(c0 // tw, -(-c1 // tw) if c1 else 0):
                tr0, tr1, tc0, tc1 = self.tile_bounds(ti, tj)
                ir0, ir1 = max(tr0, r0), min(tr1, r1)
                ic0, ic1 = max(tc0, c0), min(tc1, c1)
                if ir0 >= ir1 or ic0 >= ic1:
                    continue
                if not (ir0 == tr0 and ir1 == tr1
                        and ic0 == tc0 and ic1 == tc1):
                    rmw_blocks.extend(self.tile_blocks(ti, tj))
        if rmw_blocks:
            self.store.pool.prefetch(rmw_blocks)
        for ti in range(r0 // th, -(-r1 // th) if r1 else 0):
            for tj in range(c0 // tw, -(-c1 // tw) if c1 else 0):
                tr0, tr1, tc0, tc1 = self.tile_bounds(ti, tj)
                ir0, ir1 = max(tr0, r0), min(tr1, r1)
                ic0, ic1 = max(tc0, c0), min(tc1, c1)
                if ir0 >= ir1 or ic0 >= ic1:
                    continue
                if ir0 == tr0 and ir1 == tr1 and ic0 == tc0 and ic1 == tc1:
                    tile = np.empty((tr1 - tr0, tc1 - tc0),
                                    dtype=self.dtype)
                else:
                    tile = self.read_tile(ti, tj)
                tile[ir0 - tr0: ir1 - tr0, ic0 - tc0: ic1 - tc0] = \
                    vals[ir0 - r0: ir1 - r0, ic0 - c0: ic1 - c0]
                self.write_tile(ti, tj, tile)

    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        out = np.empty(self.shape, dtype=self.dtype)
        for ti, tj in self.tiles():
            r0, r1, c0, c1 = self.tile_bounds(ti, tj)
            out[r0:r1, c0:c1] = self.read_tile(ti, tj)
        return out

    def from_numpy(self, values: np.ndarray) -> "TiledMatrix":
        vals = np.ascontiguousarray(values, dtype=self.dtype)
        if vals.shape != self.shape:
            raise ValueError(
                f"expected shape {self.shape}, got {vals.shape}")
        for ti, tj in self.tiles():
            r0, r1, c0, c1 = self.tile_bounds(ti, tj)
            self.write_tile(ti, tj, vals[r0:r1, c0:c1])
        return self

    def drop(self) -> None:
        for page in range(self.file.num_pages):
            self.store.pool.invalidate(self.file.block_of(page))
        self.store.tile_cache.invalidate_matrix(self.name)
        self.tile_dir.clear()
        self.file.drop()

    def _check_tile(self, ti: int, tj: int) -> None:
        if not (0 <= ti < self.grid[0] and 0 <= tj < self.grid[1]):
            raise IndexError(
                f"tile ({ti},{tj}) outside grid {self.grid} of {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TiledMatrix({self.name!r}, shape={self.shape}, "
                f"tile={self.tile_shape}, "
                f"order={self.linearization.name})")


#: Minimum buffer-pool capacity in blocks.  Below this the store cannot
#: hold one tile plus working frames, and every cost model's streaming
#: assumption breaks.
MIN_POOL_BLOCKS = 4


class DecodedTileCache:
    """LRU cache of decoded (decompressed) full tiles.

    For codec-compressed matrices the buffer pool holds *compressed*
    frames — the unit the device serves and IOStats v3 charges — so a
    re-read of a cached tile would still pay the decode CPU.  This
    cache keeps the decoded ``(th, tw)`` arrays under its own byte
    budget and lock; entries are read-only, and ``raw`` tiles never
    enter (their pool frame already is the decoded form).
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = max(0, int(capacity_bytes))
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            tile = self._entries.get(key)
            if tile is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return tile

    def put(self, key: tuple, tile: np.ndarray) -> None:
        if tile.nbytes > self.capacity_bytes:
            return
        tile = tile if not tile.flags.writeable else tile.copy()
        tile.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = tile
            self._bytes += tile.nbytes
            while self._bytes > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes

    def invalidate(self, key: tuple) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes

    def invalidate_matrix(self, name: str) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == name]:
                self._bytes -= self._entries.pop(key).nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0


class ArrayStore:
    """Factory and shared context (device + buffer pool) for tiled arrays.

    Construct either from a :class:`~repro.storage.config.StorageConfig`
    (``ArrayStore(storage=StorageConfig(backend="mmap", ...))``) or from
    the classic keyword arguments, which describe the in-memory backend.
    The device always comes from
    :func:`~repro.storage.config.create_device` — the store never
    hard-codes a device class, so the same code runs against the
    simulator or a real page file.
    """

    def __init__(self, memory_bytes: int | None = None,
                 block_size: int | None = None,
                 policy: str | None = None, name: str = "riot-store",
                 scheduler: bool | None = None,
                 readahead_window: int | None = None,
                 storage: "StorageConfig | None" = None,
                 device: BlockDevice | None = None) -> None:
        from .config import StorageConfig, create_device
        if storage is None:
            storage = StorageConfig()
        overrides = {k: v for k, v in (
            ("memory_bytes", memory_bytes), ("block_size", block_size),
            ("policy", policy), ("scheduler", scheduler),
            ("readahead_window", readahead_window)) if v is not None}
        if overrides:
            storage = storage.with_options(**overrides)
        self.storage = storage
        self.dtype = np.dtype(storage.dtype)
        self.codec = get_codec(storage.codec)
        capacity = storage.memory_bytes // storage.block_size
        if capacity < MIN_POOL_BLOCKS:
            raise ValueError(
                f"memory budget of {storage.memory_bytes} bytes holds "
                f"only {capacity} block(s) of {storage.block_size} "
                f"bytes; the tile store needs at least "
                f"{MIN_POOL_BLOCKS} blocks "
                f"({MIN_POOL_BLOCKS * storage.block_size} bytes)")
        self.device = device if device is not None else \
            create_device(storage, name=name)
        pool_cls = BufferPool
        if storage.sanitize:
            # Imported lazily: repro.analysis depends on repro.storage,
            # not the other way around.
            from repro.analysis.sanitizers import SanitizingBufferPool
            pool_cls = SanitizingBufferPool
        self.pool = pool_cls(self.device, capacity,
                             policy=storage.policy,
                             readahead_window=storage.readahead_window)
        self.pool.scheduler.enabled = storage.scheduler
        # Decoded tiles live beside the pool under the same byte
        # budget; with codec raw everywhere the cache stays empty.
        self.tile_cache = DecodedTileCache(storage.memory_bytes)
        # Observability: one tracer per store, off by default.  Kernels
        # and the evaluator bracket their work in store.tracer.span();
        # spans close with IOStats/PoolStats deltas from this device
        # and pool (see repro.obs.tracer for the overhead contract).
        self.tracer = Tracer(device=self.device, pool=self.pool)
        if storage.sanitize:
            # The sanitizer checks pin balance and footprint coverage
            # at span boundaries; observers fire even with tracing off.
            self.pool.attach_tracer(self.tracer)
        self._counter = 0
        # Parallel plan workers create temporaries concurrently; the
        # name counter and registry are the store's only mutable state
        # not already serialized by the pool's lock.
        self._names_lock = threading.Lock()
        self._arrays: dict[str, TiledVector | TiledMatrix] = {}
        self._closed = False

    @property
    def scalars_per_block(self) -> int:
        """Float64 scalars per block — the cost models' fixed B.
        Vectors always store float64; matrices use
        :meth:`matrix_scalars_per_block`."""
        return self.device.block_size // _FLOAT_BYTES

    @property
    def matrix_scalars_per_block(self) -> int:
        """Scalars of the store's matrix dtype that fit one block."""
        return self.device.block_size // self.dtype.itemsize

    def io_ratio_estimate(self) -> float:
        """Compressed/logical device-byte ratio for planner costs.

        Prefers the measured ratio of codec traffic seen so far (via
        ``explain(analyze=True)``-style feedback); before any codec
        I/O happened, the configured codec's static estimate.  Clamped
        to 1.0 — compression never makes the plan look worse than the
        uncompressed cost model.
        """
        stats = self.device.stats
        if stats.bytes_logical > 0:
            return min(1.0, stats.compression_ratio)
        return min(1.0, self.codec.ratio_estimate)

    def _fresh_name(self, prefix: str) -> str:
        with self._names_lock:
            self._counter += 1
            return f"{prefix}_{self._counter}"

    def _register(self, array: "TiledVector | TiledMatrix"
                  ) -> "TiledVector | TiledMatrix":
        with self._names_lock:
            self._arrays[array.name] = array
        return array

    # ------------------------------------------------------------------
    def create_vector(self, length: int, chunk: int | None = None,
                      name: str | None = None) -> TiledVector:
        chunk = chunk or self.scalars_per_block
        return self._register(
            TiledVector(self, name or self._fresh_name("vec"),
                        length, chunk))

    def vector_from_numpy(self, values: np.ndarray,
                          name: str | None = None) -> TiledVector:
        vec = self.create_vector(int(np.asarray(values).size), name=name)
        return vec.from_numpy(values)

    def create_matrix(self, shape: tuple[int, int],
                      tile_shape: tuple[int, int] | None = None,
                      layout: str | None = None,
                      linearization: str = "row",
                      name: str | None = None,
                      dtype: np.dtype | str | None = None,
                      codec: "TileCodec | str | None" = None
                      ) -> TiledMatrix:
        dt = np.dtype(dtype) if dtype is not None else self.dtype
        if tile_shape is None:
            # Tile layout follows the matrix dtype: float32 tiles pack
            # twice the scalars into the same page span.
            tile_shape = tile_shape_for_layout(
                layout or "square", shape,
                self.device.block_size // dt.itemsize)
        return self._register(
            TiledMatrix(self, name or self._fresh_name("mat"),
                        shape, tile_shape, linearization,
                        dtype=dt, codec=codec))

    def matrix_from_numpy(self, values: np.ndarray,
                          layout: str = "square",
                          linearization: str = "row",
                          name: str | None = None,
                          dtype: np.dtype | str | None = None,
                          codec: "TileCodec | str | None" = None
                          ) -> TiledMatrix:
        vals = np.asarray(values)
        mat = self.create_matrix(vals.shape, layout=layout,
                                 linearization=linearization, name=name,
                                 dtype=dtype, codec=codec)
        return mat.from_numpy(vals)

    # ------------------------------------------------------------------
    # Persistence: on a file-backed device, the store writes its array
    # directory (shape, tiling, linearization, page map) into the
    # device manifest so a later session can reattach every array.
    # ------------------------------------------------------------------
    def _build_manifest(self) -> dict:
        entries: dict[str, dict] = {}
        for name, arr in self._arrays.items():
            if not arr.file.num_pages:
                continue  # dropped
            if isinstance(arr, TiledVector):
                entries[name] = {
                    "kind": "vector", "length": arr.length,
                    "chunk": arr.chunk, "pages": arr.file.page_map}
            else:
                entries[name] = {
                    "kind": "matrix", "shape": list(arr.shape),
                    "tile_shape": list(arr.tile_shape),
                    "linearization": arr.linearization.name,
                    "dtype": arr.dtype.name,
                    "codec": arr.codec.name,
                    "tile_dir": {str(k): int(v)
                                 for k, v in arr.tile_dir.items()},
                    "pages": arr.file.page_map}
        return entries

    def stored_names(self) -> list[str]:
        """Array names reachable in this store (live + persisted)."""
        names = set(self._arrays)
        names.update(getattr(self.device, "manifest", {}))
        return sorted(names)

    def _manifest_entry(self, name: str, kind: str) -> dict:
        entry = getattr(self.device, "manifest", {}).get(name)
        if entry is None:
            raise KeyError(
                f"no stored array named {name!r} in this page file "
                f"(have {sorted(getattr(self.device, 'manifest', {}))})")
        if entry["kind"] != kind:
            raise KeyError(
                f"stored array {name!r} is a {entry['kind']}, "
                f"not a {kind}")
        return entry

    def open_vector(self, name: str) -> TiledVector:
        """Reattach a vector persisted by an earlier session."""
        if name in self._arrays:
            arr = self._arrays[name]
            if not isinstance(arr, TiledVector):
                raise KeyError(f"{name!r} is not a vector")
            return arr
        entry = self._manifest_entry(name, "vector")
        return self._register(TiledVector._attach(self, name, entry))

    def open_matrix(self, name: str) -> TiledMatrix:
        """Reattach a matrix persisted by an earlier session."""
        if name in self._arrays:
            arr = self._arrays[name]
            if not isinstance(arr, TiledMatrix):
                raise KeyError(f"{name!r} is not a matrix")
            return arr
        entry = self._manifest_entry(name, "matrix")
        return self._register(TiledMatrix._attach(self, name, entry))

    # ------------------------------------------------------------------
    def io_stats(self) -> IOStats:
        return self.device.stats

    def reset_stats(self) -> None:
        self.device.reset_stats()
        self.pool.stats.__init__()

    def flush(self) -> None:
        self.pool.flush_all()
        if self.storage.fsync:
            self.device.sync()

    def close(self) -> None:
        """Flush dirty frames, persist the array directory, release the
        device.  Idempotent; after close the store must not be used."""
        if self._closed:
            return
        self._closed = True
        self.pool.flush_all()
        if hasattr(self.device, "manifest"):
            manifest = dict(self.device.manifest)
            manifest.update(self._build_manifest())
            self.device.manifest = manifest
        self.device.close()

    def __enter__(self) -> "ArrayStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
