"""Storage configuration and device factory — the injected storage API.

Every subsystem that used to hard-construct its own
:class:`~repro.storage.block_device.BlockDevice` (the tile store, the
virtual-memory pager, the relational engine, and
:class:`~repro.core.session.RiotSession`) now takes a
:class:`StorageConfig` and builds its device through
:func:`create_device`.  One dataclass names the whole storage contract:
which backend serves the blocks (``memory`` simulator, ``mmap`` page
file, or ``pread`` page file), where the page file lives, the
buffer-pool budget, block size, replacement policy, scheduler knobs,
and durability flags.

URL form (``repro.open_session``)::

    StorageConfig.from_url("file:///tmp/riot.db")            # mmap
    StorageConfig.from_url("file:///tmp/riot.db?mode=pread")
    StorageConfig.from_url("memory://", memory="64MiB")
    StorageConfig.from_url("file:///tmp/riot.db?codec=zstd&dtype=float32")
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field, replace
from urllib.parse import parse_qsl, unquote, urlsplit

from .block_device import DEFAULT_BLOCK_SIZE, BlockDevice
from .file_device import FileBlockDevice

#: Backends a :class:`StorageConfig` can name.
BACKENDS = ("memory", "mmap", "pread")

_MEMORY_UNITS = {
    "": 1, "b": 1,
    "k": 1000, "kb": 1000, "kib": 1024,
    "m": 1000 ** 2, "mb": 1000 ** 2, "mib": 1024 ** 2,
    "g": 1000 ** 3, "gb": 1000 ** 3, "gib": 1024 ** 3,
}


def parse_memory(value: int | str) -> int:
    """Turn ``"64MiB"``-style strings (or plain ints) into bytes."""
    if isinstance(value, int):
        return value
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*",
                         str(value))
    if not match:
        raise ValueError(f"cannot parse memory size {value!r}")
    number, unit = match.groups()
    factor = _MEMORY_UNITS.get(unit.lower())
    if factor is None:
        raise ValueError(
            f"unknown memory unit {unit!r} in {value!r} "
            f"(use B, KB/KiB, MB/MiB, GB/GiB)")
    return int(float(number) * factor)


_TRUE = ("1", "true", "yes", "on")

#: Storage dtypes and their per-scalar byte widths.  Kept as a plain
#: table so this module stays importable without numpy in the loop.
_DTYPE_SIZES = {"float64": 8, "float32": 4}


def _env_sanitize() -> bool:
    """Default of ``StorageConfig.sanitize``: the REPRO_SANITIZE env
    var, so a whole test run can be sanitized without code changes."""
    return os.environ.get("REPRO_SANITIZE", "").lower() in _TRUE


@dataclass
class StorageConfig:
    """Everything a subsystem needs to stand up its storage stack.

    ``backend``
        ``"memory"`` (the counted simulator), ``"mmap"`` or ``"pread"``
        (a real page file; see :mod:`repro.storage.file_device`).
    ``path``
        Page file location for the file backends.  ``None`` means a
        fresh temporary file, deleted when the owner closes.
    ``memory_bytes``
        Buffer-pool budget (the paper's physical-memory cap).  Accepts
        ``"64MiB"``-style strings.
    ``fsync``
        Make every flush a durability barrier (file backends).
    ``direct``
        Try ``O_DIRECT`` for the ``pread`` backend (falls back quietly
        where unsupported).
    ``sanitize``
        Build the buffer pool as a
        :class:`~repro.analysis.sanitizers.SanitizingBufferPool`,
        turning storage-protocol violations (pin leaks, use-after-
        unpin views, pinned discards, unannounced kernel reads) into
        loud errors.  Defaults to the ``REPRO_SANITIZE`` environment
        variable.
    ``codec``
        Default per-tile compression codec applied at array-store
        write time (a :mod:`repro.storage.codecs` registry name:
        ``raw``, ``delta+zstd``/``zstd``, ``float32-downcast``/
        ``float32``, or anything registered).
    ``dtype``
        Storage scalar type of newly created arrays: ``"float64"``
        (the paper's setting) or ``"float32"`` (halves bytes per
        scalar — the budgets and tile layouts scale accordingly).
    ``zero_copy``
        Let dense kernels read whole raw-codec tiles as read-only
        ``block_view`` mmap slices instead of buffer-pool frame
        copies.  Opt-in: the views bypass pool accounting (mmap
        backend only; ignored elsewhere).
    """

    backend: str = "memory"
    path: str | os.PathLike | None = None
    memory_bytes: int = 64 * 1024 * 1024
    block_size: int = DEFAULT_BLOCK_SIZE
    policy: str = "lru"
    scheduler: bool = True
    readahead_window: int = 0
    fsync: bool = False
    direct: bool = False
    sanitize: bool = field(default_factory=_env_sanitize)
    codec: str = "raw"
    dtype: str = "float64"
    zero_copy: bool = False
    extra: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.memory_bytes = parse_memory(self.memory_bytes)
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown storage backend {self.backend!r}; "
                f"use one of {'|'.join(BACKENDS)}")
        if self.memory_bytes <= 0:
            raise ValueError(
                f"memory_bytes must be positive, got {self.memory_bytes}")
        if self.block_size <= 0:
            raise ValueError(
                f"block_size must be positive, got {self.block_size}")
        if self.readahead_window < 0:
            raise ValueError(
                f"readahead_window must be >= 0, "
                f"got {self.readahead_window}")
        if self.dtype not in _DTYPE_SIZES:
            raise ValueError(
                f"unknown storage dtype {self.dtype!r}; use one of "
                f"{'|'.join(sorted(_DTYPE_SIZES))}")
        # Resolve codec aliases eagerly so typos fail at config time,
        # not at first tile write.
        from .codecs import get_codec
        self.codec = get_codec(self.codec).name

    @property
    def itemsize(self) -> int:
        """Bytes per stored scalar for this config's ``dtype``."""
        return _DTYPE_SIZES[self.dtype]

    def with_options(self, **overrides) -> "StorageConfig":
        """A copy with the given fields replaced (config is immutable
        by convention once handed to a subsystem)."""
        return replace(self, **overrides)

    @classmethod
    def from_url(cls, url: str | os.PathLike | None,
                 memory: int | str | None = None,
                 **overrides) -> "StorageConfig":
        """Build a config from a storage URL (or bare file path).

        ``None``/``""``/``"memory://"``/``":memory:"`` select the
        in-memory simulator; ``file:///path`` (or a bare path) selects
        a page file, ``mmap`` by default.  Query parameters map to
        fields: ``mode=pread|mmap``, ``block_size=...``,
        ``fsync=1``, ``direct=1``, ``policy=clock``,
        ``readahead=<blocks>``, ``codec=zstd``, ``dtype=float32``,
        ``zero_copy=1``.
        """
        kwargs: dict = {}
        if url is None:
            backend, path = "memory", None
        else:
            text = os.fspath(url)
            if text in ("", "memory://", ":memory:"):
                backend, path = "memory", None
            elif "://" in text:
                parts = urlsplit(text)
                if parts.scheme not in ("file", "memory"):
                    raise ValueError(
                        f"unsupported storage URL scheme "
                        f"{parts.scheme!r} in {text!r}")
                query = dict(parse_qsl(parts.query))
                if parts.scheme == "memory":
                    backend, path = "memory", None
                else:
                    backend = query.pop("mode", "mmap")
                    # "file://" with no path: a temporary page file
                    path = unquote(parts.path)
                    path = None if path in ("", "/") else path
                    if parts.netloc not in ("", "localhost"):
                        raise ValueError(
                            f"file URL must be local, got host "
                            f"{parts.netloc!r}")
                for key, cast in (("block_size", int),
                                  ("readahead_window", int),
                                  ("readahead", int),
                                  ("policy", str),
                                  ("codec", str),
                                  ("dtype", str)):
                    if key in query:
                        field_name = ("readahead_window"
                                      if key == "readahead" else key)
                        kwargs[field_name] = cast(query.pop(key))
                for key in ("fsync", "direct", "zero_copy"):
                    if key in query:
                        kwargs[key] = query.pop(key).lower() in _TRUE
                if query:
                    raise ValueError(
                        f"unknown storage URL parameter(s) "
                        f"{sorted(query)} in {text!r}")
            else:
                backend, path = "mmap", text
        kwargs.update(overrides)
        if memory is not None:
            kwargs["memory_bytes"] = parse_memory(memory)
        return cls(backend=backend, path=path, **kwargs)


def create_device(config: StorageConfig | None = None,
                  name: str = "disk") -> BlockDevice:
    """Construct the block device a :class:`StorageConfig` describes.

    This factory is the **only** place a device is constructed; every
    subsystem (tile store, pager swap, relational engine) goes through
    it, which is what makes backends swappable end to end.
    """
    config = config or StorageConfig()
    if config.backend == "memory":
        return BlockDevice(block_size=config.block_size, name=name)
    return FileBlockDevice(path=config.path, mode=config.backend,
                           block_size=config.block_size, name=name,
                           fsync=config.fsync, direct=config.direct)
