"""The interpreter: evaluates R-subset programs against an engine.

The interpreter owns control flow, scalars, and the environment; everything
touching vectors or matrices goes through the engine's generics table.  Two
hooks mirror what RIOT-DB needed from R:

- **assignment hook** (``engine.on_assign``): the paper's *only* change to
  core R — RIOT-DB must learn when a name is (re)bound so it can track view
  dependencies and drop views safely (§4.1, footnote 2).
- **modification as a pure operator**: ``x[i] <- v`` evaluates the generic
  ``[<-`` which *returns a new object state* that is then rebound — R's
  value semantics, and exactly the ``[]<-`` operator of Figure 2.
"""

from __future__ import annotations

import numpy as np

from . import rast
from .generics import Generics
from .parser import parse
from .values import MISSING, NULL, RError, RNull, RScalar, RString


class _BreakSignal(Exception):
    pass


class _NextSignal(Exception):
    pass


#: Binary AST operators forwarded to the generics table under these names.
_BINOP_GENERIC = {
    "+": "+", "-": "-", "*": "*", "/": "/", "^": "^", "%%": "%%",
    "%*%": "%*%", "==": "==", "!=": "!=", "<": "<", ">": ">",
    "<=": "<=", ">=": ">=", "&": "&", "|": "|",
}

_SCALAR_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a ** b,
    "%%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "&": lambda a, b: bool(a) and bool(b),
    "|": lambda a, b: bool(a) or bool(b),
}


class Interpreter:
    """Evaluate R-subset programs against a pluggable engine."""

    def __init__(self, engine, seed: int = 20090104) -> None:
        self.engine = engine
        self.generics: Generics = engine.generics
        self.env: dict[str, object] = {}
        self.output: list[str] = []
        self.rng = np.random.default_rng(seed)
        from .builtins import BUILTINS
        self.builtins = dict(BUILTINS)

    # ------------------------------------------------------------------
    def run(self, source: str):
        """Parse and evaluate a program; returns the last statement's value."""
        program = parse(source)
        result: object = NULL
        for stmt in program.statements:
            result = self.eval(stmt)
        return result

    # ------------------------------------------------------------------
    def eval(self, node: rast.Node):
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:
            raise RError(f"cannot evaluate node {type(node).__name__}")
        return method(node)

    # Literals -----------------------------------------------------------
    def _eval_num(self, node: rast.Num):
        return RScalar(int(node.value) if node.is_int else node.value)

    def _eval_str(self, node: rast.Str):
        return RString(node.value)

    def _eval_logical(self, node: rast.Logical):
        return RScalar(bool(node.value))

    def _eval_null(self, node: rast.Null):
        return NULL

    def _eval_name(self, node: rast.Name):
        if node.id in self.env:
            return self.env[node.id]
        raise RError(f"object {node.id!r} not found")

    def _eval_missing(self, node: rast.Missing):
        return MISSING

    # Operators ----------------------------------------------------------
    def _eval_binop(self, node: rast.BinOp):
        left = self.eval(node.left)
        right = self.eval(node.right)
        if node.op == ":":
            return self._make_range(left, right)
        if isinstance(left, RScalar) and isinstance(right, RScalar):
            fn = _SCALAR_BINOPS[node.op]
            value = fn(left.value, right.value)
            if isinstance(value, bool):
                return RScalar(value)
            if isinstance(value, float) and value.is_integer() \
                    and left.is_int and right.is_int \
                    and node.op not in ("/",):
                return RScalar(int(value))
            return RScalar(value)
        generic = _BINOP_GENERIC[node.op]
        return self.generics.dispatch(generic, left, right)

    def _eval_unaryop(self, node: rast.UnaryOp):
        operand = self.eval(node.operand)
        if isinstance(operand, RScalar):
            if node.op == "-":
                return RScalar(-operand.value)
            return RScalar(not operand.truthy())
        return self.generics.dispatch(f"unary{node.op}", operand)

    def _make_range(self, lo, hi):
        if isinstance(lo, RScalar) and isinstance(hi, RScalar):
            return self.generics.dispatch("range", lo, hi)
        raise RError("range endpoints must be scalars")

    # Calls ----------------------------------------------------------------
    def _eval_call(self, node: rast.Call):
        args = [self.eval(a) for a in node.args]
        kwargs = {k: self.eval(v) for k, v in node.kwargs.items()}
        builtin = self.builtins.get(node.func)
        if builtin is not None:
            return builtin(self, args, kwargs)
        # Engines may register whole functions as generics too.
        if args and self.generics.lookup(
                node.func, tuple(type(a) for a in args)) is not None:
            return self.generics.dispatch(node.func, *args, **kwargs)
        raise RError(f"could not find function {node.func!r}")

    # Subscripts ------------------------------------------------------------
    def _eval_index(self, node: rast.Index):
        obj = self.eval(node.obj)
        indices = [self.eval(i) for i in node.indices]
        return self.generics.dispatch("[", obj, *indices)

    # Assignment --------------------------------------------------------------
    def _bind(self, name: str, value):
        old = self.env.get(name)
        hook = getattr(self.engine, "on_assign", None)
        if hook is not None:
            value = hook(name, value, old) or value
        self.env[name] = value
        return value

    def _eval_assign(self, node: rast.Assign):
        value = self.eval(node.value)
        self._bind(node.target, value)
        return value

    def _eval_indexassign(self, node: rast.IndexAssign):
        if node.target not in self.env:
            raise RError(f"object {node.target!r} not found")
        obj = self.env[node.target]
        indices = [self.eval(i) for i in node.indices]
        value = self.eval(node.value)
        # Pure-functional update: the generic returns the NEW state, which
        # is rebound — the paper's []<- operator.
        new_obj = self.generics.dispatch("[<-", obj, *indices, value)
        self._bind(node.target, new_obj)
        return new_obj

    # Control flow ---------------------------------------------------------
    def _truthy(self, value) -> bool:
        if isinstance(value, RScalar):
            return value.truthy()
        if isinstance(value, RNull):
            raise RError("argument is of length zero")
        # R uses the first element of a vector as an if() condition.
        first = self.generics.dispatch("first", value)
        return bool(first.value) if isinstance(first, RScalar) \
            else bool(first)

    def _eval_if(self, node: rast.If):
        if self._truthy(self.eval(node.cond)):
            return self.eval(node.then)
        if node.otherwise is not None:
            return self.eval(node.otherwise)
        return NULL

    def _eval_for(self, node: rast.For):
        iterable = self.eval(node.iterable)
        values = self.generics.dispatch("iterate", iterable)
        for v in values:
            self._bind(node.var, RScalar(v) if not isinstance(
                v, (RScalar, RString)) else v)
            try:
                self.eval(node.body)
            except _BreakSignal:
                break
            except _NextSignal:
                continue
        return NULL

    def _eval_while(self, node: rast.While):
        while self._truthy(self.eval(node.cond)):
            try:
                self.eval(node.body)
            except _BreakSignal:
                break
            except _NextSignal:
                continue
        return NULL

    def _eval_block(self, node: rast.Block):
        result: object = NULL
        for stmt in node.statements:
            result = self.eval(stmt)
        return result

    def _eval_break(self, node: rast.Break):
        raise _BreakSignal()

    def _eval_next(self, node: rast.Next):
        raise _NextSignal()

    def _eval_program(self, node: rast.Program):
        result: object = NULL
        for stmt in node.statements:
            result = self.eval(stmt)
        return result

    # Output ------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.output.append(text)
