"""Abstract syntax tree for the R subset."""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class for AST nodes."""


@dataclass
class Program(Node):
    statements: list[Node] = field(default_factory=list)


@dataclass
class Num(Node):
    value: float
    is_int: bool = False


@dataclass
class Str(Node):
    value: str


@dataclass
class Logical(Node):
    value: bool


@dataclass
class Null(Node):
    pass


@dataclass
class Name(Node):
    id: str


@dataclass
class BinOp(Node):
    """Binary operator: + - * / ^ %% %*% : and comparisons & |."""

    op: str
    left: Node
    right: Node


@dataclass
class UnaryOp(Node):
    """Unary minus / plus / not."""

    op: str
    operand: Node


@dataclass
class Call(Node):
    """Function call ``f(a, b, named=c)``."""

    func: str
    args: list[Node] = field(default_factory=list)
    kwargs: dict[str, Node] = field(default_factory=dict)


@dataclass
class Index(Node):
    """Subscript ``x[i]`` or ``m[i, j]``; empty slots become Missing."""

    obj: Node
    indices: list[Node] = field(default_factory=list)


@dataclass
class Missing(Node):
    """An omitted index position, as in ``m[i, ]``."""


@dataclass
class Assign(Node):
    """``name <- value`` (also ``=``)."""

    target: str
    value: Node


@dataclass
class IndexAssign(Node):
    """``x[i] <- value`` — the modification the paper models as ``[]<-``."""

    target: str
    indices: list[Node]
    value: Node


@dataclass
class If(Node):
    cond: Node
    then: Node
    otherwise: Node | None = None


@dataclass
class For(Node):
    var: str
    iterable: Node
    body: Node


@dataclass
class While(Node):
    cond: Node
    body: Node


@dataclass
class Block(Node):
    """Braced statement sequence; evaluates to its last statement."""

    statements: list[Node] = field(default_factory=list)


@dataclass
class Break(Node):
    pass


@dataclass
class Next(Node):
    pass
