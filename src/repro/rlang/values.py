"""Runtime values shared by every engine.

Scalars stay ordinary in-memory values (the paper substitutes scalar
constants like ``xs`` directly into view definitions); vectors and matrices
are *engine-owned handles* whose classes register methods with the generics
table — the direct analogue of RIOT-DB's ``dbvector`` / ``dbmatrix``
classes plugged into R's S4 dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass


class RNull:
    """R's NULL."""

    _instance: "RNull | None" = None

    def __new__(cls) -> "RNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"


NULL = RNull()


@dataclass(frozen=True)
class RScalar:
    """A scalar numeric/logical value (R's length-1 vector, kept cheap)."""

    value: float | int | bool

    @property
    def is_logical(self) -> bool:
        return isinstance(self.value, bool)

    @property
    def is_int(self) -> bool:
        return isinstance(self.value, int) and not self.is_logical

    def as_float(self) -> float:
        return float(self.value)

    def as_int(self) -> int:
        return int(self.value)

    def truthy(self) -> bool:
        return bool(self.value)

    def __repr__(self) -> str:
        if self.is_logical:
            return "TRUE" if self.value else "FALSE"
        return repr(self.value)


@dataclass(frozen=True)
class RString:
    """A character scalar."""

    value: str

    def __repr__(self) -> str:
        return repr(self.value)


class MissingIndex:
    """The omitted slot in ``m[i, ]``."""

    _instance: "MissingIndex | None" = None

    def __new__(cls) -> "MissingIndex":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"


MISSING = MissingIndex()


class RError(RuntimeError):
    """Runtime error raised by interpretation (R's ``stop()``)."""
