"""Builtin functions of the R subset.

Builtins own argument plumbing and RNG; any data-touching work is forwarded
to the engine through the generics table, so each engine decides *how* (and
*whether*, for deferring engines) computation happens.

A few contracts worth noting, straight from the paper:

- ``length(x)`` is metadata: engines answer it without forcing evaluation,
  which is why ``s <- sample(length(x), 100)`` costs no I/O in RIOT-DB.
- ``sample(n, k)`` draws WITHOUT replacement (R's default), producing the
  small index vector S of Example 1.
- ``print(x)`` is the evaluation point: deferring engines force computation
  here and only here.
"""

from __future__ import annotations

import numpy as np

from .values import NULL, RError, RNull, RScalar, RString


def _scalar_int(value, what: str) -> int:
    if isinstance(value, RScalar):
        return value.as_int()
    raise RError(f"{what} must be a scalar")


def _scalar_float(value, what: str) -> float:
    if isinstance(value, RScalar):
        return value.as_float()
    raise RError(f"{what} must be a scalar")


def _builtin_c(interp, args, kwargs):
    """Concatenate scalars/vectors into one vector."""
    if not args:
        return NULL
    if all(isinstance(a, RScalar) for a in args):
        values = np.asarray([a.as_float() for a in args])
        return interp.engine.make_vector(values)
    return interp.generics.dispatch("concat", *args)


def _builtin_length(interp, args, kwargs):
    (x,) = args
    if isinstance(x, RScalar):
        return RScalar(1)
    if isinstance(x, RNull):
        return RScalar(0)
    return interp.generics.dispatch("length", x)


def _unary(op):
    def call(interp, args, kwargs):
        (x,) = args
        if isinstance(x, RScalar):
            fn = {"sqrt": np.sqrt, "abs": np.abs, "exp": np.exp,
                  "log": np.log, "floor": np.floor,
                  "ceiling": np.ceil}[op]
            val = float(fn(x.as_float()))
            return RScalar(val)
        return interp.generics.dispatch(op, x)
    return call


def _reduction(op):
    def call(interp, args, kwargs):
        (x,) = args
        if isinstance(x, RScalar):
            return x
        return interp.generics.dispatch(op, x)
    return call


def _builtin_sample(interp, args, kwargs):
    """``sample(n, size)``: draw ``size`` values from 1..n w/o replacement."""
    n = _scalar_int(args[0], "sample population")
    size = _scalar_int(args[1] if len(args) > 1 else args[0],
                       "sample size")
    if size > n:
        raise RError("cannot take a sample larger than the population")
    values = interp.rng.choice(np.arange(1, n + 1), size=size,
                               replace=False).astype(np.float64)
    return interp.engine.make_vector(values)


def _builtin_rnorm(interp, args, kwargs):
    n = _scalar_int(args[0], "rnorm n")
    mean = _scalar_float(args[1] if len(args) > 1
                         else kwargs.get("mean", RScalar(0.0)), "mean")
    sd = _scalar_float(args[2] if len(args) > 2
                       else kwargs.get("sd", RScalar(1.0)), "sd")
    return interp.engine.make_vector(
        interp.rng.normal(mean, sd, size=n))


def _builtin_runif(interp, args, kwargs):
    n = _scalar_int(args[0], "runif n")
    lo = _scalar_float(args[1] if len(args) > 1
                       else kwargs.get("min", RScalar(0.0)), "min")
    hi = _scalar_float(args[2] if len(args) > 2
                       else kwargs.get("max", RScalar(1.0)), "max")
    return interp.engine.make_vector(interp.rng.uniform(lo, hi, size=n))


def _builtin_numeric(interp, args, kwargs):
    n = _scalar_int(args[0], "numeric n") if args else 0
    return interp.engine.make_vector(np.zeros(n))


def _builtin_rep(interp, args, kwargs):
    value = _scalar_float(args[0], "rep value")
    times = _scalar_int(args[1] if len(args) > 1
                        else kwargs.get("times", RScalar(1)), "times")
    return interp.engine.make_vector(np.full(times, value))


def _builtin_seq(interp, args, kwargs):
    frm = _scalar_float(args[0] if args
                        else kwargs.get("from", RScalar(1)), "from")
    to = _scalar_float(args[1] if len(args) > 1
                       else kwargs.get("to", RScalar(1)), "to")
    by = _scalar_float(args[2] if len(args) > 2
                       else kwargs.get("by", RScalar(1.0)), "by")
    return interp.engine.make_vector(np.arange(frm, to + by / 2, by))


def _builtin_seq_len(interp, args, kwargs):
    n = _scalar_int(args[0], "seq_len n")
    return interp.generics.dispatch("range", RScalar(1), RScalar(n))


def _builtin_matrix(interp, args, kwargs):
    data = args[0] if args else kwargs.get("data", RScalar(0.0))
    nrow = _scalar_int(args[1] if len(args) > 1
                       else kwargs.get("nrow", RScalar(1)), "nrow")
    ncol = _scalar_int(args[2] if len(args) > 2
                       else kwargs.get("ncol", RScalar(1)), "ncol")
    if isinstance(data, RScalar):
        return interp.engine.make_matrix(
            np.full((nrow, ncol), data.as_float()))
    return interp.generics.dispatch("reshape", data,
                                    RScalar(nrow), RScalar(ncol))


def _builtin_dim(interp, args, kwargs):
    (x,) = args
    if isinstance(x, RScalar):
        return NULL
    return interp.generics.dispatch("dim", x)


def _dim_part(which: int):
    def call(interp, args, kwargs):
        (x,) = args
        dims = interp.generics.dispatch("dim", x)
        values = interp.generics.dispatch("iterate", dims)
        return RScalar(int(values[which]))
    return call


def _builtin_t(interp, args, kwargs):
    (x,) = args
    return interp.generics.dispatch("t", x)


def _builtin_print(interp, args, kwargs):
    (x,) = args
    if isinstance(x, (RScalar, RString, RNull)):
        text = repr(x)
    else:
        text = interp.generics.dispatch("print", x)
    interp.emit(text)
    return x


def _builtin_cat(interp, args, kwargs):
    parts = []
    for a in args:
        if isinstance(a, RString):
            parts.append(a.value)
        elif isinstance(a, RScalar):
            parts.append(repr(a))
        else:
            parts.append(interp.generics.dispatch("print", a))
    interp.emit(" ".join(parts))
    return NULL


def _builtin_head(interp, args, kwargs):
    x = args[0]
    n = _scalar_int(args[1] if len(args) > 1
                    else kwargs.get("n", RScalar(6)), "head n")
    return interp.generics.dispatch("head", x, RScalar(n))


def _builtin_stopifnot(interp, args, kwargs):
    for a in args:
        ok = a.truthy() if isinstance(a, RScalar) else bool(
            interp.generics.dispatch("all", a).value)
        if not ok:
            raise RError("stopifnot() condition failed")
    return NULL


def _builtin_all(interp, args, kwargs):
    (x,) = args
    if isinstance(x, RScalar):
        return RScalar(bool(x.value))
    return interp.generics.dispatch("all", x)


def _builtin_any(interp, args, kwargs):
    (x,) = args
    if isinstance(x, RScalar):
        return RScalar(bool(x.value))
    return interp.generics.dispatch("any", x)


def _builtin_which(interp, args, kwargs):
    (x,) = args
    return interp.generics.dispatch("which", x)


def _as_float_array(interp, value, what: str) -> np.ndarray:
    """Pull a scalar or engine vector into a flat numpy array."""
    if isinstance(value, RScalar):
        return np.asarray([value.as_float()])
    if isinstance(value, RNull):
        return np.empty(0)
    try:
        values = interp.generics.dispatch("iterate", value)
    except Exception as exc:
        raise RError(f"{what} must be a numeric vector") from exc
    return np.asarray(list(values), dtype=np.float64)


def _builtin_sparse_matrix(interp, args, kwargs):
    """``sparseMatrix(i, j, x, dims)``: COO triplets, 1-based like R.

    ``dims`` is a length-2 vector (or ``nrow=``/``ncol=``); omitted, it
    defaults to the max index.  Duplicated (i, j) pairs are summed, as
    in R's Matrix package.  Engines that expose ``make_sparse_matrix``
    (next-gen RIOT) store CSR tiles; every other engine receives the
    equivalent dense matrix, keeping §4 transparency: the same program
    runs everywhere, only the storage differs.
    """
    if len(args) < 3:
        raise RError("sparseMatrix(i, j, x, dims) needs i, j and x")
    iv = _as_float_array(interp, args[0], "sparseMatrix i")
    jv = _as_float_array(interp, args[1], "sparseMatrix j")
    xv = _as_float_array(interp, args[2], "sparseMatrix x")
    if not (iv.size == jv.size == xv.size):
        raise RError("sparseMatrix: i, j and x must have equal length")
    dims = args[3] if len(args) > 3 else kwargs.get("dims")
    if dims is not None:
        dv = _as_float_array(interp, dims, "sparseMatrix dims")
        if dv.size != 2:
            raise RError("sparseMatrix dims must have length 2")
        nrow, ncol = int(dv[0]), int(dv[1])
    else:
        nrow = _scalar_int(kwargs["nrow"], "nrow") if "nrow" in kwargs \
            else int(iv.max()) if iv.size else 0
        ncol = _scalar_int(kwargs["ncol"], "ncol") if "ncol" in kwargs \
            else int(jv.max()) if jv.size else 0
    if nrow <= 0 or ncol <= 0:
        raise RError("sparseMatrix dims must be positive")
    rows = iv.astype(np.int64) - 1
    cols = jv.astype(np.int64) - 1
    if iv.size and (rows.min() < 0 or rows.max() >= nrow
                    or cols.min() < 0 or cols.max() >= ncol):
        raise RError("sparseMatrix subscript out of bounds")
    engine = interp.engine
    if hasattr(engine, "make_sparse_matrix"):
        return engine.make_sparse_matrix(rows, cols, xv, (nrow, ncol))
    dense = np.zeros((nrow, ncol))
    np.add.at(dense, (rows, cols), xv)
    return engine.make_matrix(dense)


def _builtin_solve(interp, args, kwargs):
    """R's ``solve``: ``solve(a)`` inverts, ``solve(a, b)`` solves.

    Data work is forwarded through the generics table, so each engine
    picks its plan: the reference engine calls numpy eagerly, while
    next-generation RIOT defers a Solve/Inverse DAG node — which is
    what lets the optimizer rewrite ``solve(a) %*% b`` into a single
    pivoted-LU solve.
    """
    if not args:
        raise RError("solve(a, b) needs at least a matrix")
    if len(args) == 1:
        return interp.generics.dispatch("solve", args[0])
    return interp.generics.dispatch("solve", args[0], args[1])


def _builtin_crossprod(interp, args, kwargs):
    """R's ``crossprod(x[, y])`` = ``t(x) %*% y``.

    Engines that register a ``crossprod`` generic (next-generation
    RIOT) get the transpose-free plan: an operand-flagged MatMul, or
    the symmetric Crossprod node when y is x.  Every other engine
    falls back to building ``t(x)`` and multiplying — §4 transparency,
    same program everywhere.
    """
    x = args[0]
    y = args[1] if len(args) > 1 else x
    if interp.generics.lookup("crossprod", (type(x), type(y))):
        return interp.generics.dispatch("crossprod", x, y)
    tx = interp.generics.dispatch("t", x)
    return interp.generics.dispatch("%*%", tx, y)


def _builtin_explain(interp, args, kwargs):
    """RIOT's ``explain(x[, analyze])``: print the optimizer's view of
    a deferred object — the DAG as written, the logically rewritten
    DAG, and the chosen physical plan with per-operator predicted
    (and, once forced, measured) block I/O.  With ``analyze=TRUE`` the
    plan is executed under the tracer first and every operator also
    shows measured bytes/syscalls, pool behavior, wall-clock, and its
    measured/predicted calibration ratio (EXPLAIN ANALYZE).

    Only engines that defer computation register the generics; eager
    engines have no plan to show and raise.
    """
    x = args[0]
    flag = args[1] if len(args) > 1 else kwargs.get("analyze")
    analyze = (flag.truthy() if isinstance(flag, RScalar)
               else bool(flag)) if flag is not None else False
    generic = "explain_analyze" if analyze else "explain"
    if interp.generics.lookup(generic, (type(x),)):
        text = interp.generics.dispatch(generic, x)
        interp.emit(text)
        return x
    raise RError(
        "explain() is only available on deferred-DAG engines")


def _builtin_tcrossprod(interp, args, kwargs):
    """R's ``tcrossprod(x[, y])`` = ``x %*% t(y)`` (transpose-free on
    engines that register the generic, like ``crossprod``)."""
    x = args[0]
    y = args[1] if len(args) > 1 else x
    if interp.generics.lookup("tcrossprod", (type(x), type(y))):
        return interp.generics.dispatch("tcrossprod", x, y)
    ty = interp.generics.dispatch("t", y)
    return interp.generics.dispatch("%*%", x, ty)


BUILTINS = {
    "c": _builtin_c,
    "length": _builtin_length,
    "sqrt": _unary("sqrt"),
    "abs": _unary("abs"),
    "exp": _unary("exp"),
    "log": _unary("log"),
    "floor": _unary("floor"),
    "ceiling": _unary("ceiling"),
    "sum": _reduction("sum"),
    "mean": _reduction("mean"),
    "min": _reduction("min"),
    "max": _reduction("max"),
    "sample": _builtin_sample,
    "rnorm": _builtin_rnorm,
    "runif": _builtin_runif,
    "numeric": _builtin_numeric,
    "rep": _builtin_rep,
    "seq": _builtin_seq,
    "seq_len": _builtin_seq_len,
    "matrix": _builtin_matrix,
    "sparseMatrix": _builtin_sparse_matrix,
    "dim": _builtin_dim,
    "nrow": _dim_part(0),
    "ncol": _dim_part(1),
    "t": _builtin_t,
    "print": _builtin_print,
    "cat": _builtin_cat,
    "head": _builtin_head,
    "stopifnot": _builtin_stopifnot,
    "all": _builtin_all,
    "any": _builtin_any,
    "which": _builtin_which,
    "solve": _builtin_solve,
    "crossprod": _builtin_crossprod,
    "tcrossprod": _builtin_tcrossprod,
    "explain": _builtin_explain,
}
