"""Tokenizer for the R subset.

Covers everything the paper's examples use — vectorized arithmetic with
``^``, matrix multiply ``%*%``, assignment ``<-``, indexing, ranges ``a:b``,
comparisons, and comments — plus control flow (``if``/``for``/``while``) so
realistic scripts run.  R-style identifiers may contain dots (``my.var``).
"""

from __future__ import annotations

from dataclasses import dataclass


class LexError(ValueError):
    """Raised on an unrecognized character sequence."""


@dataclass(frozen=True)
class Token:
    kind: str     # NUM, STR, NAME, OP, KEYWORD, NEWLINE, EOF
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r})"


KEYWORDS = {"if", "else", "for", "while", "in", "function",
            "TRUE", "FALSE", "NULL", "break", "next"}

#: Multi-character operators, longest first so matching is greedy.
_OPERATORS = [
    "%*%", "%%", "<-", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "^", "(", ")", "[", "]", "{", "}",
    ",", ":", "<", ">", "=", "&", "|", "!", ";",
]


def tokenize(source: str) -> list[Token]:
    """Turn R source text into a token list ending in EOF."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            tokens.append(Token("NEWLINE", "\n", line, col))
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and source[i + 1].isdigit()):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            tokens.append(Token("NUM", text, line, col))
            col += i - start
            continue
        if ch.isalpha() or ch in "._":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "._"):
                i += 1
            text = source[start:i]
            kind = "KEYWORD" if text in KEYWORDS else "NAME"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            buf: list[str] = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t",
                                "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LexError(f"unterminated string at line {line}")
            tokens.append(Token("STR", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if not matched:
            raise LexError(
                f"unexpected character {ch!r} at line {line}, col {col}")
    tokens.append(Token("EOF", "", line, col))
    return tokens
