"""Reference engine: eager in-memory evaluation with numpy.

This engine defines the *semantics* every other engine must match: R's
vectorized operations, 1-based indexing, logical masks, column-major matrix
fill, and value-semantics modification.  It has no I/O model — the Plain-R
engine of :mod:`repro.engines.plain_r` subclasses it and charges simulated
paging for every array it touches.

Engines register methods on the generics table exactly the way §4 of the
paper registers ``dbvector`` methods with R's S4 system.
"""

from __future__ import annotations

import numpy as np

from .generics import Generics
from .values import MissingIndex, RError, RScalar


class NumpyVector:
    """An eager in-memory vector (float64 or bool)."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data)
        if self.data.ndim != 1:
            raise ValueError("NumpyVector requires 1-D data")

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumpyVector(n={len(self)})"


class NumpyMatrix:
    """An eager in-memory matrix."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data)
        if self.data.ndim != 2:
            raise ValueError("NumpyMatrix requires 2-D data")

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumpyMatrix(shape={self.shape})"


def format_vector(values: np.ndarray, limit: int = 10) -> str:
    """R-flavoured rendering: ``[1] 1.0 2.5 ...``."""
    shown = values[:limit]
    body = " ".join(f"{v:g}" if not isinstance(v, (bool, np.bool_))
                    else ("TRUE" if v else "FALSE")
                    for v in shown.tolist())
    suffix = " ..." if values.shape[0] > limit else ""
    return f"[1] {body}{suffix}"


class NumpyEngine:
    """Eager reference engine; subclass hooks: ``_wrap``, ``_charge``."""

    vector_class = NumpyVector
    matrix_class = NumpyMatrix

    def __init__(self) -> None:
        self.generics = Generics()
        self._register_all()

    # -- subclass hooks -------------------------------------------------
    def _wrap_vector(self, data: np.ndarray) -> NumpyVector:
        return self.vector_class(np.asarray(data))

    def _wrap_matrix(self, data: np.ndarray) -> NumpyMatrix:
        return self.matrix_class(np.asarray(data))

    def _charge(self, inputs: list, output) -> None:
        """Account for one vectorized operation (no-op here).

        Subclasses charge paging I/O for streaming through ``inputs`` and
        writing ``output``.
        """

    # -- public constructors ---------------------------------------------
    def make_vector(self, data: np.ndarray) -> NumpyVector:
        out = self._wrap_vector(np.asarray(data, dtype=np.float64))
        self._charge([], out)
        return out

    def make_matrix(self, data: np.ndarray) -> NumpyMatrix:
        out = self._wrap_matrix(np.asarray(data, dtype=np.float64))
        self._charge([], out)
        return out

    # ------------------------------------------------------------------
    # Generic registration
    # ------------------------------------------------------------------
    def _register_all(self) -> None:
        g = self.generics
        V, M = self.vector_class, self.matrix_class

        for op in ("+", "-", "*", "/", "^", "%%",
                   "==", "!=", "<", ">", "<=", ">=", "&", "|"):
            g.set_method(op, (V, V), self._binop(op))
            g.set_method(op, (V, RScalar), self._binop(op))
            g.set_method(op, (RScalar, V), self._binop(op))
            g.set_method(op, (M, M), self._binop(op))
            g.set_method(op, (M, RScalar), self._binop(op))
            g.set_method(op, (RScalar, M), self._binop(op))
        for name in ("sqrt", "abs", "exp", "log", "floor", "ceiling"):
            g.set_method(name, (V,), self._unary(name))
            g.set_method(name, (M,), self._unary(name))
        g.set_method("unary-", (V,), self._unary("neg"))
        g.set_method("unary-", (M,), self._unary("neg"))
        g.set_method("unary!", (V,), self._unary("not"))
        for name in ("sum", "mean", "min", "max"):
            g.set_method(name, (V,), self._reduction(name))
            g.set_method(name, (M,), self._reduction(name))
        g.set_method("all", (V,), lambda x: RScalar(
            bool(np.all(self._values(x)))))
        g.set_method("any", (V,), lambda x: RScalar(
            bool(np.any(self._values(x)))))
        g.set_method("length", (V,), lambda x: RScalar(len(x)))
        g.set_method("length", (M,), lambda x: RScalar(
            int(x.data.size)))
        g.set_method("dim", (M,), self._dim)
        g.set_method("range", (RScalar, RScalar), self._range)
        g.set_method("concat", (object,), self._concat)
        g.set_method("concat", (object, object), self._concat)
        g.set_method("concat", (object, object, object), self._concat)
        g.set_method("[", (V, object), self._vector_index)
        g.set_method("[", (M, object, object), self._matrix_index)
        g.set_method("[<-", (V, object, object), self._vector_assign)
        g.set_method("[<-", (M, object, object, object),
                     self._matrix_assign)
        g.set_method("%*%", (M, M), self._matmul)
        g.set_method("%*%", (M, V), self._matvec)
        g.set_method("%*%", (V, M), self._vecmat)
        g.set_method("solve", (M,), self._inverse)
        g.set_method("solve", (M, M), self._solve)
        g.set_method("solve", (M, V), self._solve)
        g.set_method("t", (M,), self._transpose)
        g.set_method("t", (V,), self._transpose_vector)
        g.set_method("reshape", (V, RScalar, RScalar), self._reshape)
        g.set_method("print", (V,), self._print_vector)
        g.set_method("print", (M,), self._print_matrix)
        g.set_method("iterate", (V,), lambda x: self._values(x).tolist())
        g.set_method("first", (V,), lambda x: RScalar(
            float(self._values(x)[0])))
        g.set_method("which", (V,), self._which)
        g.set_method("head", (V, RScalar), self._head)

    # ------------------------------------------------------------------
    # Raw-value access (subclasses may charge for it)
    # ------------------------------------------------------------------
    def _values(self, obj) -> np.ndarray:
        return obj.data

    def _operand(self, obj):
        """Raw ndarray for an operand that may be scalar or container."""
        if isinstance(obj, RScalar):
            return obj.as_float()
        return self._values(obj)

    # ------------------------------------------------------------------
    # Implementations
    # ------------------------------------------------------------------
    _BIN_FN = {
        "+": np.add, "-": np.subtract, "*": np.multiply,
        "/": np.divide, "^": np.power, "%%": np.mod,
        "==": np.equal, "!=": np.not_equal, "<": np.less,
        ">": np.greater, "<=": np.less_equal, ">=": np.greater_equal,
        "&": np.logical_and, "|": np.logical_or,
    }

    def _binop(self, op: str):
        fn = self._BIN_FN[op]

        def call(a, b):
            av, bv = self._operand(a), self._operand(b)
            self._check_lengths(av, bv)
            result = fn(av, bv)
            out = (self._wrap_matrix(result) if result.ndim == 2
                   else self._wrap_vector(result))
            self._charge([x for x in (a, b)
                          if not isinstance(x, RScalar)], out)
            return out
        return call

    @staticmethod
    def _check_lengths(av, bv) -> None:
        ashape = getattr(av, "shape", ())
        bshape = getattr(bv, "shape", ())
        if ashape and bshape and ashape != bshape:
            raise RError(
                f"non-conformable arguments: {ashape} vs {bshape}")

    _UNARY_FN = {
        "sqrt": np.sqrt, "abs": np.abs, "exp": np.exp, "log": np.log,
        "floor": np.floor, "ceiling": np.ceil, "neg": np.negative,
        "not": np.logical_not,
    }

    def _unary(self, name: str):
        fn = self._UNARY_FN[name]

        def call(x):
            result = fn(self._values(x))
            out = (self._wrap_matrix(result) if result.ndim == 2
                   else self._wrap_vector(result))
            self._charge([x], out)
            return out
        return call

    def _reduction(self, name: str):
        fn = {"sum": np.sum, "mean": np.mean,
              "min": np.min, "max": np.max}[name]

        def call(x):
            self._charge([x], None)
            return RScalar(float(fn(self._values(x))))
        return call

    def _dim(self, m):
        return self._wrap_vector(np.asarray(m.shape, dtype=np.float64))

    def _range(self, lo: RScalar, hi: RScalar):
        a, b = lo.as_int(), hi.as_int()
        step = 1 if b >= a else -1
        out = self._wrap_vector(
            np.arange(a, b + step, step, dtype=np.float64))
        self._charge([], out)
        return out

    def _concat(self, *parts):
        arrays = []
        for p in parts:
            if isinstance(p, RScalar):
                arrays.append(np.asarray([p.as_float()]))
            else:
                arrays.append(np.asarray(self._values(p),
                                         dtype=np.float64))
        out = self._wrap_vector(np.concatenate(arrays))
        self._charge([p for p in parts if not isinstance(p, RScalar)],
                     out)
        return out

    # -- subscripts ------------------------------------------------------
    def _as_index(self, idx, length: int) -> np.ndarray:
        """Translate an R index (1-based positions or logical mask)."""
        if isinstance(idx, RScalar):
            if idx.is_logical:
                raise RError("scalar logical subscripts not supported")
            return np.asarray([idx.as_int() - 1])
        values = self._values(idx)
        if values.dtype == bool:
            if values.shape[0] != length:
                raise RError("logical subscript length mismatch")
            return np.flatnonzero(values)
        return np.asarray(values, dtype=np.int64) - 1

    def _vector_index(self, x, idx):
        if isinstance(idx, MissingIndex):
            return x
        positions = self._as_index(idx, len(x))
        values = self._values(x)
        if positions.min(initial=0) < 0 or \
                positions.max(initial=-1) >= values.shape[0]:
            raise RError("subscript out of bounds")
        result = values[positions]
        if isinstance(idx, RScalar):
            self._charge([x], None)
            return RScalar(float(result[0]))
        out = self._wrap_vector(result)
        self._charge([x] + ([] if isinstance(idx, RScalar) else [idx]),
                     out)
        return out

    def _vector_assign(self, x, idx, value):
        values = self._values(x).copy()
        if isinstance(idx, MissingIndex):
            positions = np.arange(values.shape[0])
        else:
            positions = self._as_index(idx, len(x))
        if isinstance(value, RScalar):
            values[positions] = value.as_float()
        else:
            values[positions] = self._values(value)
        out = self._wrap_vector(values)
        self._charge([x], out)
        return out

    def _matrix_index(self, m, ri, ci):
        data = self._values(m)
        scalar = isinstance(ri, RScalar) and isinstance(ci, RScalar)
        rows = (np.arange(data.shape[0]) if isinstance(ri, MissingIndex)
                else self._as_index(ri, data.shape[0]))
        cols = (np.arange(data.shape[1]) if isinstance(ci, MissingIndex)
                else self._as_index(ci, data.shape[1]))
        sub = data[np.ix_(rows, cols)]
        self._charge([m], None)
        if scalar:
            return RScalar(float(sub[0, 0]))
        if sub.shape[0] == 1 and isinstance(ri, RScalar):
            return self._wrap_vector(sub[0])
        if sub.shape[1] == 1 and isinstance(ci, RScalar):
            return self._wrap_vector(sub[:, 0])
        return self._wrap_matrix(sub)

    def _matrix_assign(self, m, ri, ci, value):
        data = self._values(m).copy()
        rows = (np.arange(data.shape[0]) if isinstance(ri, MissingIndex)
                else self._as_index(ri, data.shape[0]))
        cols = (np.arange(data.shape[1]) if isinstance(ci, MissingIndex)
                else self._as_index(ci, data.shape[1]))
        if isinstance(value, RScalar):
            data[np.ix_(rows, cols)] = value.as_float()
        else:
            values = self._values(value)
            data[np.ix_(rows, cols)] = values.reshape(
                rows.shape[0], cols.shape[0])
        out = self._wrap_matrix(data)
        self._charge([m], out)
        return out

    # -- linear algebra ----------------------------------------------------
    def _matmul(self, a, b):
        if a.shape[1] != b.shape[0]:
            raise RError(
                f"non-conformable matrices: {a.shape} x {b.shape}")
        out = self._wrap_matrix(self._values(a) @ self._values(b))
        self._charge([a, b], out)
        return out

    def _matvec(self, a, v):
        out = self._wrap_matrix(
            (self._values(a) @ self._values(v)).reshape(-1, 1))
        self._charge([a, v], out)
        return out

    def _vecmat(self, v, a):
        out = self._wrap_matrix(
            (self._values(v) @ self._values(a)).reshape(1, -1))
        self._charge([v, a], out)
        return out

    def _inverse(self, m):
        """R's ``solve(a)``: the explicit inverse."""
        data = self._values(m)
        if data.shape[0] != data.shape[1]:
            raise RError(f"solve() needs a square matrix: {data.shape}")
        try:
            out = self._wrap_matrix(np.linalg.inv(data))
        except np.linalg.LinAlgError as exc:
            raise RError(f"solve(): {exc}") from exc
        self._charge([m], out)
        return out

    def _solve(self, a, b):
        """R's ``solve(a, b)``: the solution of ``a %*% x == b``."""
        data = self._values(a)
        if data.shape[0] != data.shape[1]:
            raise RError(f"solve() needs a square matrix: {data.shape}")
        rhs = self._values(b)
        if rhs.shape[0] != data.shape[0]:
            raise RError(
                f"non-conformable system: {data.shape} vs {rhs.shape}")
        try:
            x = np.linalg.solve(data, rhs)
        except np.linalg.LinAlgError as exc:
            raise RError(f"solve(): {exc}") from exc
        out = (self._wrap_vector(x) if x.ndim == 1
               else self._wrap_matrix(x))
        self._charge([a, b], out)
        return out

    def _transpose(self, m):
        out = self._wrap_matrix(self._values(m).T.copy())
        self._charge([m], out)
        return out

    def _transpose_vector(self, v):
        out = self._wrap_matrix(self._values(v).reshape(1, -1).copy())
        self._charge([v], out)
        return out

    def _reshape(self, v, nrow: RScalar, ncol: RScalar):
        # R fills matrices column-major.
        data = self._values(v).reshape(
            (nrow.as_int(), ncol.as_int()), order="F")
        out = self._wrap_matrix(data.copy())
        self._charge([v], out)
        return out

    # -- inspection -------------------------------------------------------
    def _print_vector(self, x) -> str:
        self._charge([x], None)
        return format_vector(self._values(x))

    def _print_matrix(self, m) -> str:
        self._charge([m], None)
        data = self._values(m)
        rows, cols = data.shape
        lines = [f"matrix {rows}x{cols}"]
        for r in range(min(rows, 6)):
            vals = " ".join(f"{v:g}" for v in data[r, :min(cols, 8)])
            more = " ..." if cols > 8 else ""
            lines.append(f"[{r + 1},] {vals}{more}")
        if rows > 6:
            lines.append("...")
        return "\n".join(lines)

    def _which(self, x):
        mask = self._values(x)
        out = self._wrap_vector(
            (np.flatnonzero(mask) + 1).astype(np.float64))
        self._charge([x], out)
        return out

    def _head(self, x, n: RScalar):
        values = self._values(x)[: n.as_int()]
        out = self._wrap_vector(np.asarray(values, dtype=np.float64))
        self._charge([x], out)
        return out
