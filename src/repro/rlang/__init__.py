"""R-subset language: lexer, parser, interpreter, and generic dispatch.

The interpreter runs the same source against any registered engine — the
transparency property RIOT is built around (*"existing code should run
without modification, and automatically gain I/O-efficiency"*).
"""

from .generics import DispatchError, Generics
from .interp import Interpreter
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse
from .reference import NumpyEngine, NumpyMatrix, NumpyVector, format_vector
from .values import MISSING, NULL, RError, RNull, RScalar, RString

__all__ = [
    "DispatchError", "Generics", "Interpreter", "LexError", "MISSING",
    "NULL", "NumpyEngine", "NumpyMatrix", "NumpyVector", "ParseError",
    "RError", "RNull", "RScalar", "RString", "Token", "format_vector",
    "parse", "tokenize",
]
