"""S4-style generic dispatch — the transparency mechanism of §4.

The paper plugs RIOT-DB into R by registering methods on generic functions:

    setMethod("+", signature(e1="dbvector", e2="dbvector"), ...)

This module is that mechanism: a :class:`Generics` table maps an operation
name plus a tuple of argument classes to an implementation.  Engines register
methods for their own vector/matrix classes; user programs never mention the
engine, and the same source runs on any of them.

Dispatch tries the most specific signature first (exact classes), then
signatures with ``object`` wildcards, preferring matches with more exact
positions — a faithful, simplified model of S4 method selection.
"""

from __future__ import annotations

from itertools import product


class DispatchError(TypeError):
    """No applicable method for the argument classes."""


class Generics:
    """A registry of (operation, signature) -> implementation."""

    def __init__(self) -> None:
        self._methods: dict[tuple[str, tuple[type, ...]], object] = {}

    def set_method(self, op: str, signature: tuple[type, ...],
                   func) -> None:
        """Register ``func`` for ``op`` on the given argument classes.

        ``object`` in a signature position acts as a wildcard.
        """
        self._methods[(op, tuple(signature))] = func

    def set_methods(self, table: dict) -> None:
        """Bulk registration: {(op, signature): func}."""
        for (op, signature), func in table.items():
            self.set_method(op, signature, func)

    def has_method(self, op: str, signature: tuple[type, ...]) -> bool:
        return (op, tuple(signature)) in self._methods

    def lookup(self, op: str, arg_types: tuple[type, ...]):
        """Find the most specific applicable method, or None."""
        # Candidate signatures: each position is the exact class, one of its
        # bases, or the object wildcard; prefer more exact positions.
        position_options: list[list[type]] = []
        for t in arg_types:
            mro = [c for c in t.__mro__ if c is not object]
            position_options.append(mro + [object])
        candidates = []
        for combo in product(*position_options):
            method = self._methods.get((op, combo))
            if method is not None:
                exactness = sum(1 for c, t in zip(combo, arg_types)
                                if c is t)
                wildcards = sum(1 for c in combo if c is object)
                candidates.append((-exactness, wildcards, combo, method))
        if not candidates:
            return None
        candidates.sort(key=lambda c: (c[0], c[1]))
        return candidates[0][3]

    def dispatch(self, op: str, *args, **kwargs):
        """Select and invoke the method for ``op`` on ``args``."""
        method = self.lookup(op, tuple(type(a) for a in args))
        if method is None:
            types = ", ".join(type(a).__name__ for a in args)
            raise DispatchError(
                f"no applicable method for {op!r} on ({types})")
        return method(*args, **kwargs)
