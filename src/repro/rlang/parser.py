"""Recursive-descent parser for the R subset.

Operator precedence follows R (tightest first):

    ( )  [ ]          calls and subscripts
    ^                 right-associative
    unary - !
    :                 range
    %*% %%            special operators
    * /
    + -
    == != < > <= >=
    &  &&
    |  ||
    <- =              assignment (lowest)

Statements are separated by newlines or ``;``.  ``x[i] <- v`` parses into a
dedicated :class:`~repro.rlang.rast.IndexAssign` node — the hook RIOT needs
to model modification as the pure ``[]<-`` operator of §5.
"""

from __future__ import annotations

from . import rast
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    """Raised on malformed input, with line information."""


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def match(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.match(kind, text)
        if tok is None:
            actual = self.peek()
            raise ParseError(
                f"expected {text or kind} but found {actual.text!r} "
                f"at line {actual.line}")
        return tok

    def skip_newlines(self) -> None:
        while self.match("NEWLINE") or self.match("OP", ";"):
            pass

    def skip_newlines_only(self) -> None:
        while self.match("NEWLINE"):
            pass

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_program(self) -> rast.Program:
        stmts: list[rast.Node] = []
        self.skip_newlines()
        while not self.check("EOF"):
            stmts.append(self.parse_statement())
            self.skip_newlines()
        return rast.Program(stmts)

    def parse_statement(self) -> rast.Node:
        if self.check("KEYWORD", "if"):
            return self.parse_if()
        if self.check("KEYWORD", "for"):
            return self.parse_for()
        if self.check("KEYWORD", "while"):
            return self.parse_while()
        if self.check("KEYWORD", "break"):
            self.advance()
            return rast.Break()
        if self.check("KEYWORD", "next"):
            self.advance()
            return rast.Next()
        if self.check("OP", "{"):
            return self.parse_block()
        return self.parse_assignment()

    def parse_block(self) -> rast.Block:
        self.expect("OP", "{")
        stmts: list[rast.Node] = []
        self.skip_newlines()
        while not self.check("OP", "}"):
            stmts.append(self.parse_statement())
            self.skip_newlines()
        self.expect("OP", "}")
        return rast.Block(stmts)

    def parse_if(self) -> rast.If:
        self.expect("KEYWORD", "if")
        self.expect("OP", "(")
        cond = self.parse_expr()
        self.expect("OP", ")")
        self.skip_newlines_only()
        then = self.parse_statement()
        otherwise = None
        save = self.pos
        self.skip_newlines_only()
        if self.check("KEYWORD", "else"):
            self.advance()
            self.skip_newlines_only()
            otherwise = self.parse_statement()
        else:
            self.pos = save
        return rast.If(cond, then, otherwise)

    def parse_for(self) -> rast.For:
        self.expect("KEYWORD", "for")
        self.expect("OP", "(")
        var = self.expect("NAME").text
        self.expect("KEYWORD", "in")
        iterable = self.parse_expr()
        self.expect("OP", ")")
        self.skip_newlines_only()
        body = self.parse_statement()
        return rast.For(var, iterable, body)

    def parse_while(self) -> rast.While:
        self.expect("KEYWORD", "while")
        self.expect("OP", "(")
        cond = self.parse_expr()
        self.expect("OP", ")")
        self.skip_newlines_only()
        body = self.parse_statement()
        return rast.While(cond, body)

    def parse_assignment(self) -> rast.Node:
        expr = self.parse_expr()
        if self.check("OP", "<-") or self.check("OP", "="):
            self.advance()
            self.skip_newlines_only()
            value = self.parse_assignment()
            if isinstance(expr, rast.Name):
                return rast.Assign(expr.id, value)
            if isinstance(expr, rast.Index) and isinstance(expr.obj,
                                                           rast.Name):
                return rast.IndexAssign(expr.obj.id, expr.indices, value)
            raise ParseError(
                "assignment target must be a name or simple subscript")
        return expr

    # Expression precedence climb ----------------------------------------
    def parse_expr(self) -> rast.Node:
        return self.parse_or()

    def parse_or(self) -> rast.Node:
        left = self.parse_and()
        while self.check("OP", "|") or self.check("OP", "||"):
            op = self.advance().text
            self.skip_newlines_only()
            left = rast.BinOp("|", left, self.parse_and())
        return left

    def parse_and(self) -> rast.Node:
        left = self.parse_comparison()
        while self.check("OP", "&") or self.check("OP", "&&"):
            op = self.advance().text
            self.skip_newlines_only()
            left = rast.BinOp("&", left, self.parse_comparison())
        return left

    _CMP = ("==", "!=", "<", ">", "<=", ">=")

    def parse_comparison(self) -> rast.Node:
        left = self.parse_additive()
        while self.peek().kind == "OP" and self.peek().text in self._CMP:
            op = self.advance().text
            self.skip_newlines_only()
            left = rast.BinOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> rast.Node:
        left = self.parse_multiplicative()
        while self.check("OP", "+") or self.check("OP", "-"):
            op = self.advance().text
            self.skip_newlines_only()
            left = rast.BinOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> rast.Node:
        left = self.parse_special()
        while self.check("OP", "*") or self.check("OP", "/"):
            op = self.advance().text
            self.skip_newlines_only()
            left = rast.BinOp(op, left, self.parse_special())
        return left

    def parse_special(self) -> rast.Node:
        left = self.parse_range()
        while self.check("OP", "%*%") or self.check("OP", "%%"):
            op = self.advance().text
            self.skip_newlines_only()
            left = rast.BinOp(op, left, self.parse_range())
        return left

    def parse_range(self) -> rast.Node:
        left = self.parse_unary()
        if self.check("OP", ":"):
            self.advance()
            self.skip_newlines_only()
            return rast.BinOp(":", left, self.parse_unary())
        return left

    def parse_unary(self) -> rast.Node:
        if self.check("OP", "-"):
            self.advance()
            return rast.UnaryOp("-", self.parse_unary())
        if self.check("OP", "+"):
            self.advance()
            return self.parse_unary()
        if self.check("OP", "!"):
            self.advance()
            return rast.UnaryOp("!", self.parse_unary())
        return self.parse_power()

    def parse_power(self) -> rast.Node:
        base = self.parse_postfix()
        if self.check("OP", "^"):
            self.advance()
            self.skip_newlines_only()
            # Right-associative: recurse through unary so -x parses in the
            # exponent and 2^3^2 == 2^(3^2).
            return rast.BinOp("^", base, self.parse_unary())
        return base

    def parse_postfix(self) -> rast.Node:
        expr = self.parse_primary()
        while True:
            if self.check("OP", "("):
                if not isinstance(expr, rast.Name):
                    raise ParseError("only named functions can be called")
                expr = self.parse_call(expr.id)
            elif self.check("OP", "["):
                expr = self.parse_index(expr)
            else:
                return expr

    def parse_call(self, func: str) -> rast.Call:
        self.expect("OP", "(")
        args: list[rast.Node] = []
        kwargs: dict[str, rast.Node] = {}
        self.skip_newlines_only()
        if not self.check("OP", ")"):
            while True:
                if (self.check("NAME")
                        and self.tokens[self.pos + 1].kind == "OP"
                        and self.tokens[self.pos + 1].text == "="
                        and not (self.tokens[self.pos + 2].kind == "OP"
                                 and self.tokens[self.pos + 2].text == "=")):
                    key = self.advance().text
                    self.advance()  # '='
                    kwargs[key] = self.parse_expr()
                else:
                    args.append(self.parse_expr())
                self.skip_newlines_only()
                if not self.match("OP", ","):
                    break
                self.skip_newlines_only()
        self.expect("OP", ")")
        return rast.Call(func, args, kwargs)

    def parse_index(self, obj: rast.Node) -> rast.Index:
        self.expect("OP", "[")
        indices: list[rast.Node] = []
        self.skip_newlines_only()
        while True:
            if self.check("OP", ",") or self.check("OP", "]"):
                indices.append(rast.Missing())
            else:
                indices.append(self.parse_expr())
            self.skip_newlines_only()
            if self.match("OP", ","):
                self.skip_newlines_only()
                continue
            break
        self.expect("OP", "]")
        return rast.Index(obj, indices)

    def parse_primary(self) -> rast.Node:
        tok = self.peek()
        if tok.kind == "NUM":
            self.advance()
            text = tok.text
            if ("." not in text and "e" not in text and "E" not in text):
                return rast.Num(float(int(text)), is_int=True)
            return rast.Num(float(text))
        if tok.kind == "STR":
            self.advance()
            return rast.Str(tok.text)
        if tok.kind == "KEYWORD" and tok.text in ("TRUE", "FALSE"):
            self.advance()
            return rast.Logical(tok.text == "TRUE")
        if tok.kind == "KEYWORD" and tok.text == "NULL":
            self.advance()
            return rast.Null()
        if tok.kind == "NAME":
            self.advance()
            return rast.Name(tok.text)
        if tok.kind == "OP" and tok.text == "(":
            self.advance()
            self.skip_newlines_only()
            expr = self.parse_expr()
            self.skip_newlines_only()
            self.expect("OP", ")")
            return expr
        raise ParseError(
            f"unexpected token {tok.text!r} at line {tok.line}")


def parse(source: str) -> rast.Program:
    """Parse R source text into a Program AST."""
    return Parser(tokenize(source)).parse_program()
