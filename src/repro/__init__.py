"""repro — reproduction of "RIOT: I/O-Efficient Numerical Computing without
SQL" (Zhang, Herodotou, Yang; CIDR 2009).

Subpackages
-----------
``repro.storage``
    Simulated block device, buffer pool, tiled (chunked) array store.
``repro.vm``
    Virtual-memory pager: the substrate that makes "Plain R" thrash.
``repro.db``
    Embedded relational engine (tables, B+trees, views, optimizer,
    vectorized executor) — the MySQL stand-in behind RIOT-DB.
``repro.rlang``
    Interpreter for an R subset with S4-style generic dispatch, so the same
    program source runs unmodified on every engine (the transparency claim).
``repro.engines``
    The four systems of Figure 1: Plain R, RIOT-DB/Strawman,
    RIOT-DB/MatNamed, and full RIOT-DB.
``repro.core``
    Next-generation RIOT: expression DAGs, deferred updates, rewrite rules,
    matrix-chain ordering, analytic I/O cost models, and a streaming
    evaluator over the tile store.
``repro.linalg``
    Out-of-core linear algebra over tiles (matrix multiply variants, LU).
``repro.workloads``
    Paper workloads (Example 1, the Figure-3 chains) and extras.
"""

__version__ = "1.0.0"


def open_session(url: str | None = None, memory: str | int | None = None,
                 **kwargs):
    """Open a :class:`~repro.core.RiotSession` from a storage URL.

    ``url`` selects the backend: ``None``/``"memory://"`` for the
    in-memory simulator, ``"file:///tmp/riot.db"`` (or a bare path)
    for an mmap-backed page file, with query parameters such as
    ``?mode=pread&fsync=1&block_size=8192`` for the other file knobs.
    ``memory`` caps the buffer pool, as bytes or a string like
    ``"64MiB"``.  Remaining keyword arguments go to ``RiotSession``
    (``optimize=``, ``config=``)::

        with repro.open_session("file:///tmp/riot.db",
                                memory="64MiB") as s:
            x = s.random_matrix(512, 512)
            s.values(s.crossprod(x))
    """
    from repro.core import RiotSession
    from repro.storage import StorageConfig

    storage = StorageConfig.from_url(url, memory=memory)
    return RiotSession(storage=storage, **kwargs)
