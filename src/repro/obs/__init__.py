"""Observability: tracing spans, metrics, and cost-model calibration.

Zero-dependency (stdlib-only, imports nothing from the rest of
:mod:`repro`) so every layer — storage, kernels, planner, evaluator —
can carry spans without import cycles.  See :mod:`repro.obs.tracer`
for the design notes.
"""

from .calibration import (CALIBRATION_BAND, CALIBRATION_SCHEMA_VERSION,
                          MIN_PREDICTED_BLOCKS, CalibrationReport,
                          ModelCalibration)
from .metrics import Counter, Gauge, MetricsRegistry
from .tracer import (DEFAULT_CAPACITY, NULL_TRACER, SPAN_CATEGORIES,
                     Span, Tracer)

__all__ = [
    "CALIBRATION_BAND",
    "CALIBRATION_SCHEMA_VERSION",
    "MIN_PREDICTED_BLOCKS",
    "CalibrationReport",
    "ModelCalibration",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "DEFAULT_CAPACITY",
    "NULL_TRACER",
    "SPAN_CATEGORIES",
    "Span",
    "Tracer",
]
