"""Zero-dependency tracing: nestable spans with exact I/O attribution.

RIOT's planner is only as good as the feedback loop validating its cost
models, and ROADMAP items 2–3 (concurrent sessions, intra-query
parallelism) will need their schedulers to be debuggable.  This module
is the substrate: a :class:`Tracer` whose spans bracket any unit of
work — a physical-plan operator, an optimizer pass, one panel of an
out-of-core kernel — and close with the *delta* of the device's
:class:`~repro.storage.IOStats` and the buffer pool's ``PoolStats``
over the span, plus wall-clock nanoseconds.  Every block and every
nanosecond is therefore attributed to exactly one innermost span.

Design constraints, in order:

1. **Near-zero overhead when off.**  Tracing is disabled by default;
   a disabled ``span()`` call is one attribute test returning a shared
   no-op context manager — no counter snapshots, no clock reads, no
   allocation, and (tested) no device-layer work.  Kernels can
   therefore leave their span annotations in the hot loops.
2. **Bounded memory.**  Finished spans land in a ring buffer
   (``capacity`` spans, default 65536); profiling a huge run keeps the
   most recent window instead of growing without bound.  Drops are
   counted, never silent.
3. **Zero dependencies.**  Pure stdlib; the device/pool objects are
   duck-typed (anything with a ``stats`` exposing ``snapshot()`` /
   ``delta()`` works), so :mod:`repro.obs` never imports
   :mod:`repro.storage` and both remain import-cycle free.

Spans nest: the tracer keeps an open-span stack, so each finished span
records its depth and the index of its parent.  ``with`` semantics
guarantee LIFO closing even when the traced region raises.  The whole
buffer exports as Chrome trace-event JSON (:meth:`Tracer.export_chrome`)
loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_CAPACITY = 65536

#: Span categories used across the repo (free-form, these are the
#: conventional ones): ``op`` = physical-plan operator, ``optimizer`` =
#: pass/planner phase, ``kernel`` = panel/tile-batch inside an
#: out-of-core kernel, ``session`` = a whole execute()/force() call.
SPAN_CATEGORIES = ("op", "optimizer", "kernel", "session")


class Span:
    """One finished span: name, nesting, wall-clock and I/O deltas.

    ``io`` is an :class:`~repro.storage.IOStats` *delta* (or ``None``
    when the tracer has no device); ``pool`` likewise a ``PoolStats``
    delta.  ``parent`` is the buffer ``seq`` of the enclosing span on
    the *same thread*, or ``-1`` at top level.  ``args`` carries caller
    annotations (panel coordinates, op labels, ...).  ``tid`` is the
    tracer's compact thread index (1 = the first thread that opened a
    span; parallel workers get 2, 3, ...), so the Chrome exporter lays
    concurrent spans on separate tracks.
    """

    __slots__ = ("name", "cat", "seq", "parent", "depth", "start_ns",
                 "end_ns", "io", "pool", "args", "tid")

    def __init__(self, name: str, cat: str, seq: int, parent: int,
                 depth: int, start_ns: int, end_ns: int,
                 io=None, pool=None, args: dict | None = None,
                 tid: int = 1) -> None:
        self.name = name
        self.cat = cat
        self.seq = seq
        self.parent = parent
        self.depth = depth
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.io = io
        self.pool = pool
        self.args = args or {}
        self.tid = tid

    @property
    def wall_ns(self) -> int:
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict:
        """JSON-ready view (io/pool flattened through their as_dict)."""
        out = {"name": self.name, "cat": self.cat, "seq": self.seq,
               "parent": self.parent, "depth": self.depth,
               "start_ns": self.start_ns, "wall_ns": self.wall_ns,
               "tid": self.tid}
        if self.io is not None:
            out["io"] = self.io.as_dict()
        if self.pool is not None:
            out["pool"] = self.pool.as_dict()
        if self.args:
            out["args"] = dict(self.args)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<span {self.cat}:{self.name} depth={self.depth} "
                f"{self.wall_ns / 1e6:.3f}ms>")


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer.

    A singleton with empty ``__slots__``: entering/exiting it does no
    work at all, which is what keeps disabled-tracer span calls out of
    the profile of the kernels that carry them.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ObserverSpan:
    """Span-boundary notifier used when tracing is off but observers
    are registered (e.g. the storage-protocol sanitizer).

    Nothing is recorded — no counter snapshots, no clock reads, no
    ring-buffer append — so ``len(tracer)`` and the drop counters are
    untouched; observers just learn that a span opened and closed.
    """

    __slots__ = ("tracer", "name", "cat")

    def __init__(self, tracer: "Tracer", name: str, cat: str) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat

    def __enter__(self) -> None:
        for obs in self.tracer.observers:
            obs.span_opened(self.name, self.cat)
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        _notify_closed(self.tracer, self.name, self.cat, exc_type)
        return False


def _notify_closed(tracer: "Tracer", name: str, cat: str,
                   exc_type) -> None:
    """Tell observers a span closed.  An observer error (a sanitizer
    violation) propagates — unless an exception is already in flight,
    which must not be masked."""
    for obs in tracer.observers:
        try:
            obs.span_closed(name, cat, exc_type)
        except BaseException:
            if exc_type is None:
                raise


class _OpenSpan:
    """Context manager for one live span (created only when enabled)."""

    __slots__ = ("tracer", "name", "cat", "args", "seq", "parent",
                 "depth", "start_ns", "io_before", "pool_before", "tid")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_OpenSpan":
        t = self.tracer
        stack = t._stack  # this thread's stack (threading.local)
        self.parent = stack[-1].seq if stack else -1
        self.depth = len(stack)
        with t._lock:
            self.seq = t._next_seq
            t._next_seq += 1
            t.spans_opened += 1
            self.tid = t._tid_of(threading.get_ident())
        stack.append(self)
        self.io_before = (t.device.stats.snapshot()
                          if t.device is not None else None)
        self.pool_before = (t.pool.stats.snapshot()
                            if t.pool is not None else None)
        for obs in t.observers:
            obs.span_opened(self.name, self.cat)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        t = self.tracer
        # ``with`` unwinding is LIFO even under exceptions, so the top
        # of this thread's stack is this span; anything else means
        # spans were entered without ``with`` discipline — fail loudly.
        top = t._stack.pop()
        if top is not self:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {self.name!r} closed out of LIFO order "
                f"(top of stack was {top.name!r})")
        io = (t.device.stats.delta(self.io_before)
              if self.io_before is not None else None)
        pool = (t.pool.stats.delta(self.pool_before)
                if self.pool_before is not None else None)
        t._append(Span(self.name, self.cat, self.seq, self.parent,
                       self.depth, self.start_ns, end_ns, io, pool,
                       self.args, tid=self.tid))
        _notify_closed(t, self.name, self.cat, exc_type)
        return False


class Tracer:
    """Ring-buffered span recorder, disabled by default.

    ``device``/``pool`` are optional stat sources snapshotted at span
    boundaries (duck-typed: ``.stats.snapshot()``/``.stats.delta()``).
    One tracer belongs to one store/session, and since the parallel
    executor it is thread-aware: each thread nests spans on its own
    stack (``threading.local``), the sequence counter and the ring
    buffer are lock-protected, and every span records a compact thread
    id for the Chrome exporter.  Note that a span's io/pool deltas are
    taken from the *shared* store counters — exclusive attribution
    therefore holds on serial (e.g. ``cold=True`` measurement) runs,
    while concurrent spans see overlapping deltas.
    """

    def __init__(self, device=None, pool=None,
                 capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.device = device
        self.pool = pool
        self.capacity = capacity
        self.enabled = enabled
        #: Span-boundary observers (``span_opened(name, cat)`` /
        #: ``span_closed(name, cat, exc_type)``), notified even while
        #: tracing is disabled — the hook the storage sanitizer uses.
        self.observers: list = []
        self.spans_opened = 0
        self.spans_dropped = 0
        self._spans: list[Span] = []
        self._head = 0  # ring insertion point once the buffer is full
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._tids: dict[int, int] = {}  # thread ident -> compact tid
        self._next_seq = 0

    @property
    def _stack(self) -> list[_OpenSpan]:
        """The calling thread's open-span stack."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _tid_of(self, ident: int) -> int:
        """Compact 1-based thread index (caller holds ``_lock``)."""
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids) + 1
        return tid

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "op",
             **args) -> "_OpenSpan | _ObserverSpan | _NullSpan":
        """Context manager bracketing one unit of work.

        Disabled tracers return a shared no-op — the hot-path cost is
        this one ``enabled`` test (plus an observer-list test; with
        observers registered a lightweight notifier is returned
        instead, recording nothing).
        """
        if not self.enabled:
            if self.observers:
                return _ObserverSpan(self, name, cat)
            return _NULL_SPAN
        return _OpenSpan(self, name, cat, args)

    def add_observer(self, observer) -> None:
        """Register a span-boundary observer (see ``observers``)."""
        if observer not in self.observers:
            self.observers.append(observer)

    def remove_observer(self, observer) -> None:
        if observer in self.observers:
            self.observers.remove(observer)

    def _append(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) < self.capacity:
                self._spans.append(span)
                return
            self._spans[self._head] = span
            self._head = (self._head + 1) % self.capacity
            self.spans_dropped += 1

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def recording(self):
        """Enable tracing for a scope, restoring the previous state."""
        prev = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = prev

    def clear(self) -> None:
        """Drop recorded spans (open spans and counters survive)."""
        with self._lock:
            self._spans = []
            self._head = 0

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans, oldest first (ring order restored)."""
        return self._spans[self._head:] + self._spans[:self._head]

    def last_span(self) -> Span | None:
        """Most recently finished span (for post-close annotation)."""
        if not self._spans:
            return None
        # _head is the next insertion point once the ring is full, so
        # _head - 1 is the newest entry; before wrap, _head is 0 and
        # the -1 index lands on the appended tail either way.
        return self._spans[self._head - 1]

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def open_depth(self) -> int:
        """Open-span nesting depth on the *calling* thread."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_chrome(self, path) -> int:
        """Write the buffer as Chrome trace-event JSON; returns #events.

        The output is the stable "JSON object format" consumed by
        Perfetto and ``chrome://tracing``: complete ``"ph": "X"``
        events with microsecond ``ts``/``dur``, one process with one
        track per recorded thread (the span's ``tid``), and the span's
        I/O + pool deltas under ``args`` so block counts are visible in
        the trace viewer's detail pane — parallel workers show up as
        overlapping tracks in Perfetto.
        """
        spans = self.spans()
        origin = min((s.start_ns for s in spans), default=0)
        events = []
        for s in spans:
            args = {k: v for k, v in s.args.items()}
            if s.io is not None:
                args["io"] = s.io.as_dict()
            if s.pool is not None:
                args["pool"] = s.pool.as_dict()
            events.append({
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": (s.start_ns - origin) / 1e3,
                "dur": s.wall_ns / 1e3,
                "pid": 1,
                "tid": s.tid,
                "args": args,
            })
        doc = {"traceEvents": events, "displayTimeUnit": "ms",
               "otherData": {"producer": "repro.obs.Tracer",
                             "spans_dropped": self.spans_dropped}}
        with open(path, "w") as f:
            json.dump(doc, f)
        return len(events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"Tracer({state}, {len(self._spans)}/{self.capacity} "
                f"spans, depth={self.open_depth})")


#: Shared always-disabled tracer for call sites that want the uniform
#: ``with tracer.span(...)`` shape without a per-object tracer.  Never
#: enable this one — enable the store/session tracer instead.
NULL_TRACER = Tracer()
