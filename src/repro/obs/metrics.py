"""Named counters/gauges with pluggable stat-source snapshots.

The tracer answers "where did the time and blocks go *within* a run";
the :class:`MetricsRegistry` answers "what are the totals *right now*"
— a flat, named view over the session's live counters (`IOStats`,
``PoolStats``, ``SchedulerStats``, tracer health, plus any ad-hoc
counters/gauges a subsystem registers) exported as one dict/JSON blob.
Like the tracer it is duck-typed and stdlib-only: sources are any
zero-arg callables returning a JSON-ready mapping, so this module never
imports :mod:`repro.storage`.
"""

from __future__ import annotations

import json
import threading


class Counter:
    """A monotonically increasing named value.

    Increments are atomic (lock-protected), so parallel-plan workers
    can share one counter without losing updates.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A named value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class MetricsRegistry:
    """Registry of counters, gauges, and live stat sources.

    ``register_source(name, fn)`` attaches a snapshot callable whose
    mapping appears under ``name`` in :meth:`snapshot`; counters and
    gauges appear flat under their own names.  Name collisions are an
    error — a metric that silently shadows another is worse than none.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._sources: dict[str, object] = {}
        self._lock = threading.Lock()

    def _check_free(self, name: str) -> None:
        if name in self._counters or name in self._gauges \
                or name in self._sources:
            raise ValueError(f"metric name {name!r} already registered")

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._check_free(name)
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._check_free(name)
                g = self._gauges[name] = Gauge(name)
            return g

    def register_source(self, name: str, fn) -> None:
        """Attach a zero-arg callable returning a JSON-ready mapping."""
        with self._lock:
            self._check_free(name)
            self._sources[name] = fn

    def snapshot(self) -> dict:
        """One dict with every registered metric, evaluated now."""
        out: dict = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, fn in self._sources.items():
            out[name] = fn()
        return out

    def to_json(self, path=None) -> str:
        """Serialize :meth:`snapshot`; also write to ``path`` if given."""
        text = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._sources)} sources)")
