"""Cost-model drift detection: measured/predicted ratios per model.

The repo's cost models (:mod:`repro.core.costs`) are validated to agree
with measured block counts within 0.5–2.0×.  That band is asserted in
tests for a handful of workloads; this module makes it a first-class,
machine-readable artifact of *any* executed plan: a
:class:`CalibrationReport` groups every measured operator by the cost
model that priced it and aggregates the measured/predicted ratio, so
drift in one model (say ``spmm_io`` after a kernel change) is visible,
attributable, and CI-checkable (``benchmarks/check_calibration.py``).

Plans are duck-typed — anything iterable whose items expose
``predicted_io``, ``measured_io``, ``cost_model``, and ``label()``
works — so this module imports nothing from :mod:`repro.core`.
"""

from __future__ import annotations

import json
import statistics

#: The validated agreement band for measured/predicted block ratios,
#: matching tests/linalg/test_cost_agreement.py.
CALIBRATION_BAND = (0.5, 2.0)

#: Ops predicted to cost fewer blocks than this are recorded but not
#: band-checked: at 1–3 blocks a single extra metadata read doubles the
#: ratio, which is noise, not model drift.
MIN_PREDICTED_BLOCKS = 4

#: Version of the JSON shape produced by CalibrationReport.as_dict().
CALIBRATION_SCHEMA_VERSION = 1


class ModelCalibration:
    """Aggregated measured/predicted evidence for one cost model."""

    __slots__ = ("model", "ratios", "n_ops", "n_skipped",
                 "predicted_blocks", "measured_blocks")

    def __init__(self, model: str) -> None:
        self.model = model
        self.ratios: list[float] = []
        self.n_ops = 0
        self.n_skipped = 0
        self.predicted_blocks = 0
        self.measured_blocks = 0

    def add(self, predicted: int, measured: int,
            min_predicted: int) -> None:
        self.n_ops += 1
        self.predicted_blocks += predicted
        self.measured_blocks += measured
        if predicted < min_predicted:
            self.n_skipped += 1
            return
        self.ratios.append(measured / predicted)

    @property
    def median_ratio(self) -> float | None:
        return statistics.median(self.ratios) if self.ratios else None

    def in_band(self, band=CALIBRATION_BAND) -> bool:
        """True when the median ratio sits inside the band.

        Models with no band-checkable samples (every op under the
        noise floor) pass vacuously — absence of evidence is reported
        via ``n_skipped``, not as a violation.
        """
        med = self.median_ratio
        return med is None or band[0] <= med <= band[1]

    def as_dict(self) -> dict:
        med = self.median_ratio
        return {
            "model": self.model,
            "n_ops": self.n_ops,
            "n_skipped": self.n_skipped,
            "predicted_blocks": self.predicted_blocks,
            "measured_blocks": self.measured_blocks,
            "ratios": [round(r, 6) for r in self.ratios],
            "median_ratio": None if med is None else round(med, 6),
        }


class CalibrationReport:
    """Per-cost-model drift report over one or more executed plans."""

    def __init__(self, band=CALIBRATION_BAND,
                 min_predicted: int = MIN_PREDICTED_BLOCKS) -> None:
        self.band = (float(band[0]), float(band[1]))
        self.min_predicted = min_predicted
        self.models: dict[str, ModelCalibration] = {}

    def add_op(self, op) -> bool:
        """Record one executed operator; True when it contributed.

        Ops without a cost model (leaves, constants) or never executed
        (``measured_io is None``) are ignored.
        """
        model = getattr(op, "cost_model", None)
        if model is None or op.measured_io is None:
            return False
        entry = self.models.get(model)
        if entry is None:
            entry = self.models[model] = ModelCalibration(model)
        entry.add(op.predicted_io, op.measured_io, self.min_predicted)
        return True

    def add_plan(self, plan) -> int:
        """Record every executed op of a physical plan; returns count."""
        return sum(1 for op in plan.ops() if self.add_op(op))

    def violations(self) -> list[str]:
        """Human-readable list of models whose median left the band."""
        out = []
        for name in sorted(self.models):
            entry = self.models[name]
            if not entry.in_band(self.band):
                out.append(
                    f"{name}: median measured/predicted ratio "
                    f"{entry.median_ratio:.3f} outside "
                    f"[{self.band[0]}, {self.band[1]}] "
                    f"({len(entry.ratios)} samples)")
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def as_dict(self) -> dict:
        return {
            "schema_version": CALIBRATION_SCHEMA_VERSION,
            "band": list(self.band),
            "min_predicted_blocks": self.min_predicted,
            "ok": self.ok,
            "violations": self.violations(),
            "models": {name: self.models[name].as_dict()
                       for name in sorted(self.models)},
        }

    def to_json(self, path=None) -> str:
        text = json.dumps(self.as_dict(), indent=2)
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.ok else "DRIFT"
        return (f"CalibrationReport({status}, "
                f"{len(self.models)} models)")
