"""Matrix-chain ordering by dynamic programming (§5, Appendix B).

``A1 (d0 x d1), A2 (d1 x d2), ..., An (d(n-1) x dn)``: the classic DP finds
the parenthesization minimizing scalar multiplications; Appendix B shows the
I/O-optimal schedule then performs one multiplication at a time with the
Appendix-A algorithm, giving ``Theta(N / (B sqrt(M)))`` block I/Os where N is
the DP's multiplication count.  ``optimal_order_io`` additionally supports
costing each candidate split directly in I/Os (the two are equivalent up to
lower-order terms; both are exposed for the ablation bench).
"""

from __future__ import annotations

from .costs import square_tile_matmul_io

#: Parenthesization: either an int (leaf index) or a pair of orders.
Order = "int | tuple"


def chain_multiplications(dims: list[int], order) -> float:
    """Scalar multiplications used by a given parenthesization."""

    def walk(o) -> tuple[int, int, float]:
        if isinstance(o, int):
            return dims[o], dims[o + 1], 0.0
        (lr, lc, lcost) = walk(o[0])
        (rr, rc, rcost) = walk(o[1])
        if lc != rr:
            raise ValueError("invalid parenthesization")
        return lr, rc, lcost + rcost + lr * lc * rc

    return walk(order)[2]


def in_order(n_factors: int):
    """Left-deep order ((A1 A2) A3) ... — what R itself does."""
    order = 0
    for i in range(1, n_factors):
        order = (order, i)
    return order


def optimal_order(dims: list[int]):
    """Minimize scalar multiplications (the paper's DP choice)."""
    return _dp(dims, lambda m, l, n: float(m) * l * n)[0]


def optimal_multiplications(dims: list[int]) -> float:
    return _dp(dims, lambda m, l, n: float(m) * l * n)[1]


def optimal_order_io(dims: list[int], memory: float, block: float):
    """Minimize total block I/O using the Appendix-A per-multiply cost."""
    return _dp(dims, lambda m, l, n:
               square_tile_matmul_io(m, l, n, memory, block))[0]


def optimal_order_sparse(dims: list[int], densities: list[float]):
    """Order a chain by *expected nonzero work* instead of dense flops.

    ``densities[i]`` is the estimated nonzero fraction of factor i.  A
    pairwise multiply of operands with densities dL/dR costs
    ``dL * dR * m * l * n`` expected scalar multiplications (the
    independence model), and the intermediate's density follows
    ``1 - (1 - dL dR)^l`` — so a chain like sparse-sparse-vector
    collapses the sparse product first when that is genuinely cheaper,
    even where the dense DP would choose differently.

    The DP tracks the density of each interval's *chosen* split;
    like every chain DP over a non-additive measure this is a
    high-quality heuristic rather than a proven optimum.
    """
    from .costs import matmul_result_density

    n = len(dims) - 1
    if n <= 0:
        raise ValueError("need at least one matrix")
    if len(densities) != n:
        raise ValueError(
            f"need one density per factor: {n} factors, "
            f"{len(densities)} densities")
    if n == 1:
        return 0
    best = [[0.0] * n for _ in range(n)]
    dens = [[0.0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for i in range(n):
        dens[i][i] = min(1.0, max(0.0, densities[i]))
    for span in range(1, n):
        for i in range(0, n - span):
            j = i + span
            best[i][j] = float("inf")
            for k in range(i, j):
                d_l, d_r = dens[i][k], dens[k + 1][j]
                cost = (best[i][k] + best[k + 1][j]
                        + d_l * d_r * dims[i] * dims[k + 1]
                        * dims[j + 1])
                if cost < best[i][j]:
                    best[i][j] = cost
                    split[i][j] = k
                    dens[i][j] = matmul_result_density(
                        d_l, d_r, dims[k + 1])

    def build(i: int, j: int):
        if i == j:
            return i
        k = split[i][j]
        return (build(i, k), build(k + 1, j))

    return build(0, n - 1)


def _dp(dims: list[int], cost_fn):
    """O(n^3) interval DP returning (order, total pairwise cost)."""
    n = len(dims) - 1
    if n <= 0:
        raise ValueError("need at least one matrix")
    if n == 1:
        return 0, 0.0
    best = [[0.0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for span in range(1, n):
        for i in range(0, n - span):
            j = i + span
            best[i][j] = float("inf")
            for k in range(i, j):
                cost = (best[i][k] + best[k + 1][j]
                        + cost_fn(dims[i], dims[k + 1], dims[j + 1]))
                if cost < best[i][j]:
                    best[i][j] = cost
                    split[i][j] = k

    def build(i: int, j: int):
        if i == j:
            return i
        k = split[i][j]
        return (build(i, k), build(k + 1, j))

    return build(0, n - 1), best[0][n - 1]


def order_to_string(order, names: list[str] | None = None) -> str:
    """Readable parenthesization, e.g. ``(A (B C))``."""

    def walk(o) -> str:
        if isinstance(o, int):
            return names[o] if names else f"A{o + 1}"
        return f"({walk(o[0])} {walk(o[1])})"

    return walk(order)


def pairwise_shapes(dims: list[int], order):
    """Yield (m, l, n) for every pairwise multiplication, in order."""

    def walk(o):
        if isinstance(o, int):
            return dims[o], dims[o + 1]
        lr, lc = walk(o[0])
        rr, rc = walk(o[1])
        shapes.append((lr, lc, rc))
        return lr, rc

    shapes: list[tuple[int, int, int]] = []
    walk(order)
    return shapes
