"""Optimizer configuration: one dataclass instead of seven flags.

``OptimizerConfig`` replaces the ``Rewriter(enable_*)`` flag soup.  The
``level`` sets the overall posture; every individual decision can still
be overridden per pass:

- **level 0** — no optimization at all.  DAGs are executed by the
  evaluator's expression-tree dispatch exactly as written (the ablation
  baseline of every benchmark).
- **level 1** — logical rewriting only: constant folding, CSE,
  subscript pushdown, transpose absorption and the inv-to-solve
  rewrite run to fixpoint, but physical choices stay heuristic
  (program-order chains, type-driven kernel dispatch, fuse epilogues
  whenever legal).
- **level 2** (default) — logical rewriting plus cost-based physical
  planning: the planner enumerates kernel alternatives, chain orders
  and fuse-vs-materialize per node and picks by the Appendix-A /
  nnz-parameterized I/O models.

``None`` for a per-pass override means "whatever the level implies".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Logical passes (run at level >= 1 unless individually disabled).
LOGICAL_PASSES = ("fold", "pushdown", "solve_rewrite", "transpose",
                  "cse")
#: Cost-based physical decisions (made at level 2 unless disabled).
PHYSICAL_CHOICES = ("chain_reorder", "kernel_select")


@dataclass
class OptimizerConfig:
    """Optimization level plus per-pass overrides (``None`` = default).

    ``fuse_epilogues`` is special: at level 1 fusion fires whenever it
    is legal (the old heuristic); at level 2 the planner additionally
    checks that the fused plan is model-cheaper than materializing the
    product (it always is under the current models, but the
    alternative is enumerated and shown by ``explain``).

    ``strict`` runs the static plan verifier
    (:func:`repro.analysis.planlint.verify_plan`) over every plan
    before it executes (and before ``explain`` renders it): shape
    conformability, per-op footprint vs the pool budget, kernel pins,
    epilogue legality and prediction sanity are checked up front, with
    errors naming the offending operator instead of a kernel failing
    mid-plan.

    ``parallelism`` sets the worker count for parallel plan execution
    (independent ``PhysOp`` subtrees on a thread pool, plus tile-level
    parallelism inside the dense/sparse kernels).  ``None`` defers to
    the ``REPRO_PARALLELISM`` environment variable, defaulting to 1
    (serial).  Results are bitwise-identical at every parallelism
    level; see :mod:`repro.core.parallel` for the determinism contract.
    """

    level: int = 2
    fold: bool | None = None
    cse: bool | None = None
    pushdown: bool | None = None
    transpose: bool | None = None
    solve_rewrite: bool | None = None
    chain_reorder: bool | None = None
    kernel_select: bool | None = None
    fuse_epilogues: bool | None = None
    strict: bool = False
    max_passes: int = 10
    parallelism: int | None = None

    def __post_init__(self) -> None:
        if self.level not in (0, 1, 2):
            raise ValueError(
                f"optimizer level must be 0, 1 or 2, got {self.level}")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {self.parallelism}")

    # -- resolution ----------------------------------------------------
    def pass_enabled(self, name: str) -> bool:
        """Is a *logical* pass on under this config?"""
        override = getattr(self, name)
        if override is not None:
            return bool(override)
        return self.level >= 1

    def choice_enabled(self, name: str) -> bool:
        """Is a *cost-based physical* choice on under this config?"""
        override = getattr(self, name)
        if override is not None:
            return bool(override)
        return self.level >= 2

    @property
    def fusion_enabled(self) -> bool:
        if self.fuse_epilogues is not None:
            return bool(self.fuse_epilogues)
        return self.level >= 1

    @property
    def plans(self) -> bool:
        """Does this config route execution through a PhysicalPlan?

        Level 0 keeps the evaluator's expression-tree dispatch — the
        un-optimized fallback.
        """
        return self.level >= 1

    def with_level(self, level: int) -> "OptimizerConfig":
        return replace(self, level=level)

    @classmethod
    def from_legacy_flags(cls, enable_pushdown: bool = True,
                          enable_chain_reorder: bool = True,
                          enable_cse: bool = True,
                          enable_fold: bool = True,
                          enable_kernel_select: bool = True,
                          enable_solve_rewrite: bool = True,
                          enable_transpose_rewrite: bool = True,
                          max_passes: int = 10) -> "OptimizerConfig":
        """Map the old ``Rewriter(enable_*)`` kwargs onto a config."""
        return cls(level=2,
                   pushdown=enable_pushdown,
                   chain_reorder=enable_chain_reorder,
                   cse=enable_cse,
                   fold=enable_fold,
                   kernel_select=enable_kernel_select,
                   solve_rewrite=enable_solve_rewrite,
                   transpose=enable_transpose_rewrite,
                   max_passes=max_passes)
