"""Cost-based physical planner: lowers logical DAGs to PhysicalPlans.

Stage 2 of the optimizer.  After the logical pass pipeline has rewritten
the expression DAG, the planner walks it bottom-up and, per node,
**enumerates physical alternatives** — kernel choice (Appendix-A square
tiles vs BNLJ vs SpMM/SpGEMM), matrix-chain order (the Appendix-B DP,
nnz-weighted when any factor is sparse), and fuse-vs-materialize for
elementwise epilogues — then picks by the I/O models of
:mod:`repro.core.costs`.  Rejected alternatives stay on the chosen
operator for ``session.explain()``.

At optimizer level 1 the same lowering runs but with the old heuristic
choices (program order, type-driven kernels, fuse-when-legal); at
level 2 every choice is costed.  Level 0 never reaches the planner —
the evaluator's expression-tree dispatch is the un-optimized fallback.
"""

from __future__ import annotations

from .config import OptimizerConfig
from .costs import (DEFAULT_TILE_SIDE, bnlj_matmul_io,
                    crossprod_epilogue_io, crossprod_io, gather_io,
                    inverse_io, matmul_epilogue_io, scatter_io,
                    solve_op_io, spgemm_io, spmm_io, stream_io,
                    transpose_materialize_io)
from .evaluator import collect_barriers, streamable
from .expr import (ArrayInput, Crossprod, Inverse, Map, MatMul, Node,
                   Range, Reduce, Scalar, Solve, Subscript,
                   SubscriptAssign, Transpose, walk)
from .passes import (build_order, chosen_order, clamped_dense_io,
                     collect_chain, current_order, matmul_kernel_costs,
                     sparse_stored, sparse_tile_side)
from .passes.base import bottom_up
from .plan import (BnljOp, CrossprodOp, FusedEpilogueOp, GatherOp,
                   InverseOp, LeafOp, LUSolveOp, MapOp, PhysOp,
                   PhysicalPlan, RangeOp, ReduceOp, ScalarOp,
                   ScatterOp, SparseSpGEMMOp, SparseSpMMOp,
                   TileMatMulOp, TransposeOp)

#: Prefer the Appendix-A schedule unless BNLJ wins decisively: the
#: models are asymptotic, and at small sizes they agree to within
#: rounding — a coin-flip switch to a different accumulation order
#: would buy nothing and cost reproducibility.
BNLJ_MARGIN = 0.9


def classify_epilogue_region(node: Map, is_matrix_input,
                             memo_ids: frozenset | set = frozenset()):
    """Classify a matrix Map region for epilogue fusion.

    Returns ``(barriers, matrices, scalars, region_edges)`` — the
    distinct MatMul/Crossprod barriers, the materialized-matrix leaves,
    the scalar-valued subtrees, and region-internal parent-edge counts
    for every node a fused evaluation would *not* memoize (the barriers
    and interior Maps) — or ``None`` when the region contains anything
    the per-submatrix epilogue evaluator cannot handle.

    ``is_matrix_input(n)`` decides whether an ndim-2 node counts as a
    stored-matrix input: the evaluator passes "already memoized or an
    ArrayInput" (runtime view); the planner passes "anything that is
    not itself Map/MatMul/Crossprod" (it will schedule those nodes as
    materialized child operators).
    """
    barriers: list[Node] = []
    matrices: list[Node] = []
    scalars: list[Node] = []
    region_edges: dict[int, int] = {}
    seen: set[int] = set()

    def visit(n: Node) -> bool:
        if (isinstance(n, (MatMul, Crossprod, Map)) and n.ndim == 2
                and id(n) not in memo_ids):
            region_edges[id(n)] = region_edges.get(id(n), 0) + 1
        if id(n) in seen:
            return True
        seen.add(id(n))
        if n.ndim == 0:
            scalars.append(n)
            return True
        if n.ndim != 2:
            return False
        if id(n) in memo_ids or is_matrix_input(n):
            matrices.append(n)
            return True
        if isinstance(n, (MatMul, Crossprod)):
            barriers.append(n)
            return True
        if isinstance(n, Map):
            return all(visit(c) for c in n.children)
        return False

    if not all(visit(c) for c in node.children):
        return None
    return barriers, matrices, scalars, region_edges


def _barrier_fusable(barrier: Node) -> bool:
    """Can this product run a dense kernel with an epilogue callback?"""
    if isinstance(barrier, Crossprod):
        return not sparse_stored(barrier.children[0])
    if barrier.kernel == "sparse":
        return False
    if (barrier.kernel == "auto"
            and not (barrier.trans_a or barrier.trans_b)
            and sparse_stored(barrier.children[0])):
        return False  # SpMM/SpGEMM dispatch wins; no dense fusion
    return True


class Planner:
    """Lowers a (logically rewritten) DAG to a :class:`PhysicalPlan`."""

    def __init__(self, config: OptimizerConfig,
                 memory_scalars: int = 8 * 1024 * 1024,
                 block_scalars: int = 1024,
                 io_ratio: float = 1.0) -> None:
        self.config = config
        self.memory_scalars = memory_scalars
        self.block_scalars = block_scalars
        #: Compressed/logical device-byte ratio of the storage codec
        #: (``ArrayStore.io_ratio_estimate``); scales every dense cost
        #: model so fuse-vs-materialize, BNLJ-vs-square and chain-order
        #: decisions price compressed tiles correctly.  1.0 = raw.
        self.io_ratio = io_ratio
        self._memo: dict[int, PhysOp] = {}
        self._edges: dict[int, int] = {}
        #: id(chain head) -> {"order", "cur", "dims"} for every chain
        #: the prepass reordered; consulted during lowering to
        #: annotate the head operator with the decision.
        self._reordered: dict[int, dict] = {}

    # ------------------------------------------------------------------
    def plan(self, root: Node) -> PhysicalPlan:
        """Lower ``root``; choices are final once the plan is built."""
        self._memo = {}
        self._edges = {}
        self._reordered = {}
        if self.config.choice_enabled("chain_reorder"):
            # Reorder whole chains on the logical DAG *before* any
            # lowering: epilogue fusion then sees the DP-chosen top
            # product (as the old monolith's rule order guaranteed),
            # and every operator references nodes of one consistent
            # DAG — no mid-lowering substitutions for execution memos
            # to miss.
            root = bottom_up(root, self._reorder_rule)
        for n in walk(root):
            for c in n.children:
                self._edges[id(c)] = self._edges.get(id(c), 0) + 1
        return PhysicalPlan(root, self._lower(root), self.config.level)

    def _reorder_rule(self, node: Node) -> Node:
        if not isinstance(node, MatMul) or node.trans_a or node.trans_b:
            return node
        factors: list[Node] = []
        collect_chain(node, factors)
        if len(factors) < 3:
            return node
        order, _rule = chosen_order(factors)
        cur = current_order(node, factors)
        if order == cur:
            return node
        head = build_order(factors, order)
        self._reordered[id(head)] = {
            "order": order, "cur": cur,
            "dims": [factors[0].shape[0]]
                    + [f.shape[1] for f in factors]}
        return head

    # ------------------------------------------------------------------
    def _lower(self, node: Node) -> PhysOp:
        if id(node) in self._memo:
            return self._memo[id(node)]
        op = self._lower_inner(node)
        op.footprint_blocks = self._footprint(op)
        self._memo[id(node)] = op
        return op

    #: Pool blocks a streaming operator keeps resident: its prefetch
    #: window plus the output block it is filling.
    STREAM_FOOTPRINT_BLOCKS = 18.0

    def _footprint(self, op: PhysOp) -> float:
        """Predicted peak pool residency (blocks) — admission control.

        The parallel executor only co-schedules operators whose summed
        footprints fit the pool capacity.  Tiled kernels are sized to
        the full working-memory budget (that is the point of the
        Appendix-A schedules), so they claim it all and effectively run
        alone at plan level — tile-level parallelism covers them
        internally.  Streaming operators touch a prefetch window at a
        time; leaves and scalars pin nothing themselves.
        """
        budget = self.memory_scalars / self.block_scalars
        if isinstance(op, (TileMatMulOp, BnljOp, CrossprodOp,
                           SparseSpMMOp, SparseSpGEMMOp, LUSolveOp,
                           InverseOp, FusedEpilogueOp, TransposeOp)):
            return budget
        if isinstance(op, (LeafOp, ScalarOp)):
            return 0.0
        return min(budget, self.STREAM_FOOTPRINT_BLOCKS)

    def _lower_inner(self, node: Node) -> PhysOp:
        blk = self.block_scalars
        if isinstance(node, ArrayInput):
            return LeafOp(node)
        if isinstance(node, Scalar):
            return ScalarOp(node)
        if isinstance(node, Range):
            return RangeOp(node, predicted_io=node.size / blk)
        if isinstance(node, MatMul):
            return self._lower_matmul(node)
        if isinstance(node, Crossprod):
            return self._lower_crossprod(node)
        if isinstance(node, Solve):
            return self._lower_solve(node)
        if isinstance(node, Inverse):
            n = node.shape[0]
            op = InverseOp(
                node, (self._lower(node.children[0]),),
                predicted_io=inverse_io(n, self.memory_scalars, blk))
            op.cost_inputs = {"n": n}
            return op
        if isinstance(node, Transpose):
            rows, cols = node.children[0].shape
            op = TransposeOp(
                node, (self._lower(node.children[0]),),
                predicted_io=transpose_materialize_io(rows, cols, blk))
            op.cost_inputs = {"rows": rows, "cols": cols}
            return op
        if isinstance(node, Subscript):
            return self._lower_subscript(node)
        if isinstance(node, SubscriptAssign) and not node.logical_mask:
            return ScatterOp(
                node, tuple(self._lower(c) for c in node.children),
                predicted_io=scatter_io(node.size,
                                        node.index.size, blk))
        if isinstance(node, Reduce):
            return self._lower_reduce(node)
        if node.ndim == 2 and isinstance(node, Map):
            return self._lower_matrix_map(node)
        if node.ndim == 1:
            return self._lower_stream(node)
        if node.ndim == 0 and isinstance(node, Map):
            return MapOp(node,
                         tuple(self._lower(c) for c in node.children),
                         detail="scalar")
        raise NotImplementedError(
            f"cannot lower node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Streaming regions (vectors) and reductions
    # ------------------------------------------------------------------
    def _region_inputs(self, roots: list[Node]
                       ) -> tuple[list[Node], list[Node], float]:
        """(barriers, stored leaves, input scalars) of a stream region."""
        barriers: list[Node] = []
        seen: set[int] = set()
        for r in roots:
            collect_barriers(r, barriers, seen)
        leaves: list[Node] = []
        lseen: set[int] = set()

        def gather_leaves(n: Node) -> None:
            if id(n) in lseen or not streamable(n):
                return
            lseen.add(id(n))
            if isinstance(n, ArrayInput):
                if hasattr(n.data, "length"):  # TiledVector
                    leaves.append(n)
                return
            for c in n.children:
                gather_leaves(c)

        for r in roots:
            gather_leaves(r)
        input_scalars = (sum(b.size for b in barriers)
                         + sum(leaf.size for leaf in leaves))
        return barriers, leaves, input_scalars

    def _lower_stream(self, node: Node) -> MapOp:
        barriers, leaves, input_scalars = self._region_inputs(
            list(node.children))
        children = tuple(self._lower(n) for n in barriers + leaves)
        return MapOp(node, children,
                     predicted_io=stream_io(input_scalars, node.size,
                                            self.block_scalars),
                     detail="stream")

    def _lower_reduce(self, node: Reduce) -> ReduceOp:
        child = node.children[0]
        blk = self.block_scalars
        if child.ndim == 2:
            return ReduceOp(node, (self._lower(child),),
                            predicted_io=child.size / blk)
        if child.ndim == 0:
            return ReduceOp(node, (self._lower(child),))
        barriers, leaves, input_scalars = self._region_inputs([child])
        children = tuple(self._lower(n) for n in barriers + leaves)
        return ReduceOp(node, children,
                        predicted_io=input_scalars / blk)

    def _lower_subscript(self, node: Subscript) -> GatherOp:
        children: list[PhysOp] = []
        src, index = node.src, node.index
        k = node.size
        if isinstance(src, Range):
            predicted = 2.0 * k / self.block_scalars
        else:
            children.append(self._lower(src))
            predicted = gather_io(src.size, k, self.block_scalars)
        if not isinstance(index, Range):
            children.append(self._lower(index))
            predicted += index.size / self.block_scalars
        return GatherOp(node, tuple(children), predicted_io=predicted)

    # ------------------------------------------------------------------
    # Products: chain order and kernel enumeration
    # ------------------------------------------------------------------
    def _lower_matmul(self, node: MatMul) -> PhysOp:
        op = self._lower_product(node)
        self._annotate_reordered(op, node)
        return op

    def _annotate_reordered(self, op: PhysOp, head: Node) -> None:
        """If ``head`` is a chain head the prepass reordered, record
        the decision and the rejected program order on its operator."""
        info = self._reordered.get(id(head))
        if info is None:
            return
        from .chain import order_to_string
        from .costs import chain_io
        mem, blk = self.memory_scalars, self.block_scalars
        ratio = self.io_ratio
        program_io = chain_io(
            info["dims"], info["cur"],
            lambda m, l, n: clamped_dense_io(m, l, n, mem, blk, ratio))
        op.detail = (op.detail + " " if op.detail else "") + \
            f"order={order_to_string(info['order'])}"
        op.alternatives.append(
            (f"program-order {order_to_string(info['cur'])}",
             program_io))

    def _lower_product(self, node: MatMul) -> PhysOp:
        a, b = node.children
        a_op, b_op = self._lower(a), self._lower(b)
        mem, blk = self.memory_scalars, self.block_scalars
        sa = a.shape[::-1] if node.trans_a else a.shape
        sb = b.shape[::-1] if node.trans_b else b.shape
        m, k, n = sa[0], sa[1], sb[1]
        tile_side = sparse_tile_side(a) or DEFAULT_TILE_SIDE
        both_sparse = sparse_stored(a) and sparse_stored(b)

        def sparse_op(alternatives=()):
            # nnz and tile geometry go on the op: sparse predictions
            # are nnz-driven, so a drifted estimate must be visible in
            # the explain transcript, not just the final number.
            if both_sparse:
                op = SparseSpGEMMOp(
                    node, (a_op, b_op),
                    predicted_io=spgemm_io(m, k, n, a.estimated_nnz,
                                           b.estimated_nnz, blk,
                                           tile_side=tile_side),
                    alternatives=list(alternatives))
                op.cost_inputs = {
                    "m": m, "k": k, "n": n,
                    "nnz_a": a.estimated_nnz,
                    "nnz_b": b.estimated_nnz,
                    "tile_side": tile_side}
                return op
            op = SparseSpMMOp(
                node, (a_op, b_op),
                predicted_io=spmm_io(m, k, n, a.estimated_nnz, mem,
                                     blk, tile_side=tile_side),
                alternatives=list(alternatives))
            op.cost_inputs = {
                "m": m, "k": k, "n": n,
                "nnz_a": a.estimated_nnz, "tile_side": tile_side}
            return op

        if node.kernel == "sparse" and sparse_stored(a):
            op = sparse_op()
            op.detail = "pinned"
            return op
        # A "sparse" pin on operands that will not be sparse-stored
        # falls through to dense lowering — the same graceful
        # type-driven behaviour the evaluator's dispatch always had
        # (there is no sparse kernel to run without a sparse operand).

        dense_square = clamped_dense_io(m, k, n, mem, blk,
                                        self.io_ratio)
        flags = []
        if node.trans_a:
            flags.append("t(a)")
        if node.trans_b:
            flags.append("t(b)")
        detail = ",".join(flags)

        dense_inputs = self._ratio_inputs(
            {"m": m, "k": k, "n": n,
             "trans_a": node.trans_a,
             "trans_b": node.trans_b})

        def dense_op():
            alternatives = []
            if self.config.choice_enabled("kernel_select"):
                bnlj = bnlj_matmul_io(m, k, n, mem, blk,
                                      self.io_ratio)
                if bnlj < BNLJ_MARGIN * dense_square:
                    op = BnljOp(
                        node, (a_op, b_op), predicted_io=bnlj,
                        detail=detail,
                        alternatives=[("square-tile", dense_square)])
                    op.cost_inputs = dict(dense_inputs)
                    return op
                alternatives.append(("bnlj", bnlj))
            op = TileMatMulOp(node, (a_op, b_op),
                              predicted_io=dense_square,
                              detail=detail,
                              alternatives=alternatives)
            op.cost_inputs = dict(dense_inputs)
            return op

        if node.kernel == "dense":
            op = dense_op()
            op.detail = (op.detail + "," if op.detail else "") + \
                "pinned"
            return op

        # kernel == "auto"
        costs = matmul_kernel_costs(node, mem, blk,
                                    ratio=self.io_ratio)
        if costs is not None and \
                self.config.choice_enabled("kernel_select"):
            if costs["sparse"] < costs["dense"]:
                return sparse_op(
                    alternatives=[("dense square-tile",
                                   costs["dense"])])
            op = dense_op()
            op.alternatives.append(
                ("sparse " + ("spgemm" if both_sparse else "spmm"),
                 costs["sparse"]))
            op.detail = (op.detail + "," if op.detail else "") + \
                "densified"
            return op
        if costs is not None:
            # Heuristic levels keep the evaluator's type dispatch:
            # a sparse-stored left operand runs the sparse kernel.
            return sparse_op()
        return dense_op()

    def _ratio_inputs(self, inputs: dict) -> dict:
        """Record the compression ratio in ``cost_inputs`` only when it
        actually scaled the prediction — uncompressed plans (the golden
        snapshots) keep their exact historical shape."""
        if self.io_ratio != 1.0:
            inputs["ratio"] = self.io_ratio
        return inputs

    def _lower_crossprod(self, node: Crossprod) -> CrossprodOp:
        a = node.children[0]
        inner, k = a.shape if node.t_first else a.shape[::-1]
        op = CrossprodOp(
            node, (self._lower(a),),
            predicted_io=crossprod_io(inner, k, self.memory_scalars,
                                      self.block_scalars,
                                      self.io_ratio),
            detail="" if node.t_first else "tcrossprod")
        op.cost_inputs = self._ratio_inputs(
            {"inner": inner, "k": k, "t_first": node.t_first})
        return op

    def _lower_solve(self, node: Solve) -> LUSolveOp:
        a, b = node.children
        n = a.shape[0]
        nrhs = 1 if node.ndim == 1 else node.shape[1]
        op = LUSolveOp(
            node, (self._lower(a), self._lower(b)),
            predicted_io=solve_op_io(n, nrhs, self.memory_scalars,
                                     self.block_scalars),
            detail=f"nrhs={nrhs}")
        op.cost_inputs = {"n": n, "nrhs": nrhs}
        return op

    # ------------------------------------------------------------------
    # Matrix elementwise regions: fuse-vs-materialize
    # ------------------------------------------------------------------
    def _lower_matrix_map(self, node: Map) -> PhysOp:
        if self.config.fusion_enabled:
            fused = self._try_fused(node)
            if fused is not None:
                return fused
        children = tuple(self._lower(c) for c in node.children)
        inputs = sum(c.size for c in node.children if c.ndim == 2)
        return MapOp(node, children,
                     predicted_io=stream_io(inputs, node.size,
                                            self.block_scalars),
                     detail="tile")

    def _try_fused(self, node: Map) -> FusedEpilogueOp | None:
        region = classify_epilogue_region(
            node,
            lambda n: not isinstance(n, (Map, MatMul, Crossprod)))
        if region is None:
            return None
        barriers, matrices, scalars, region_edges = region
        if len(barriers) != 1:
            return None
        barrier = barriers[0]
        if barrier.shape != node.shape:
            return None
        if not _barrier_fusable(barrier):
            return None
        if any(mat.shape != node.shape for mat in matrices):
            return None
        for nid, edges in region_edges.items():
            if edges < self._edges.get(nid, 0):
                # The product — or an interior Map on the way to it —
                # has consumers outside this region; fusing (which
                # memoizes neither) would make them recompute it.
                return None
        mem, blk = self.memory_scalars, self.block_scalars
        ratio = self.io_ratio
        extra = len(matrices)
        if isinstance(barrier, Crossprod):
            a = barrier.children[0]
            inner, k = (a.shape if barrier.t_first
                        else a.shape[::-1])
            fused_io = crossprod_epilogue_io(inner, k, extra, mem,
                                             blk, fused=True,
                                             ratio=ratio)
            unfused_io = crossprod_epilogue_io(inner, k, extra, mem,
                                               blk, fused=False,
                                               ratio=ratio)
            operand_ops = (self._lower(a),)
            model = "crossprod_epilogue_io"
            cost_inputs = self._ratio_inputs(
                {"inner": inner, "k": k, "extra": extra})
        else:
            a, b = barrier.children
            sa = a.shape[::-1] if barrier.trans_a else a.shape
            sb = b.shape[::-1] if barrier.trans_b else b.shape
            m, l, n = sa[0], sa[1], sb[1]
            fused_io = matmul_epilogue_io(m, l, n, extra, mem, blk,
                                          fused=True, ratio=ratio)
            unfused_io = matmul_epilogue_io(m, l, n, extra, mem, blk,
                                            fused=False, ratio=ratio)
            operand_ops = (self._lower(a), self._lower(b))
            model = "matmul_epilogue_io"
            cost_inputs = self._ratio_inputs(
                {"m": m, "k": l, "n": n, "extra": extra,
                 "trans_a": barrier.trans_a,
                 "trans_b": barrier.trans_b})
        if self.config.level >= 2 and fused_io >= unfused_io:
            return None  # enumerated, and materializing won
        children = (operand_ops
                    + tuple(self._lower(mat) for mat in matrices)
                    + tuple(self._lower(s) for s in scalars))
        op = FusedEpilogueOp(
            node, barrier, matrices, scalars, children=children,
            predicted_io=fused_io,
            detail=barrier.label(),
            alternatives=[("materialize+map", unfused_io)])
        op.cost_model = model
        op.cost_inputs = cost_inputs
        # A fused barrier that heads a reordered chain keeps the chain
        # decision visible on the fused operator.
        self._annotate_reordered(op, barrier)
        return op
