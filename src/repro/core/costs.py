"""Analytic I/O cost models (§3, §5, Appendices A/B, Figure 3).

The paper's Figure 3 reports **calculated** I/O costs — an n = 100000 square
matrix is an 80 GB object, so the authors costed the strategies analytically
exactly as we do here.  Units: ``memory`` and ``block`` are in scalars
(8-byte float64 values); results are in disk blocks.

The measured out-of-core implementations in :mod:`repro.linalg` are checked
against these models at small n by ``tests/linalg/test_cost_agreement.py`` —
a validation the paper itself did not show.
"""

from __future__ import annotations

import math

#: Figure 3 parameters: block size B = 1024 scalars (8 KB).
FIG3_BLOCK = 1024
#: 2 GB and 4 GB of memory expressed in scalars.
GB_IN_SCALARS = (1 << 30) // 8


# ----------------------------------------------------------------------
# Single multiplications
# ----------------------------------------------------------------------
def matmul_io_lower_bound(m: float, l: float, n: float,
                          memory: float, block: float) -> float:
    """Appendix A lower bound: ``lmn / (B sqrt(M))`` blocks."""
    return (l * m * n) / (block * math.sqrt(memory))


def square_tile_matmul_io(m: float, l: float, n: float,
                          memory: float, block: float,
                          ratio: float = 1.0) -> float:
    """Appendix A optimal schedule with p x p tiles, p = sqrt(M/3).

    ``(2 p^2/B * l/p + p^2/B) * (mn/p^2) = 2*sqrt(3)*lmn/(B*sqrt(M)) + mn/B``
    — reads of the A/B tile pairs plus one write of each C tile.

    ``ratio`` is the compressed/logical device-byte ratio of the
    storage codec (1.0 uncompressed; see
    :meth:`repro.storage.tile_store.ArrayStore.io_ratio_estimate`):
    every term is device traffic through codec tiles, so the whole
    cost scales with it.
    """
    return ratio * ((2.0 * math.sqrt(3.0) * l * m * n
                     / (block * math.sqrt(memory))) + (m * n) / block)


def transposed_matmul_io(m: float, l: float, n: float,
                         memory: float, block: float) -> float:
    """Appendix-A schedule with a *flagged* (transposed) operand.

    The flag is free: a flagged operand's submatrices are read in
    stored layout (the mirrored rectangle covers the same number of
    whole tiles) and transposed in memory, so the model is exactly the
    unflagged :func:`square_tile_matmul_io`.  Stated as its own symbol
    so plans can be costed against the *materialized-transpose*
    alternative, which additionally pays
    :func:`transpose_materialize_io`.
    """
    return square_tile_matmul_io(m, l, n, memory, block)


def transpose_materialize_io(rows: float, cols: float,
                             block: float) -> float:
    """One full disk pass to store an explicit transpose: read every
    source tile once, write every output tile once.  This is the pass
    the ``trans_a``/``trans_b`` operand flags delete."""
    return 2.0 * rows * cols / block


def crossprod_io(m: float, k: float, memory: float,
                 block: float, ratio: float = 1.0) -> float:
    """I/O of the symmetric ``t(A) %*% A`` schedule for an m x k A.

    Per inner panel the kernel reads one p x p operand block for each
    diagonal output block (g of them) and two for each strictly-upper
    pair (g(g-1)/2), totalling g^2 block reads per panel — half the
    2 g^2 the general schedule pays — and every output block is written
    once (mirrors are writes of already-resident data):

    ``sqrt(3) * m k^2 / (B sqrt(M)) + k^2 / B``.  ``ratio`` scales the
    device traffic by the storage codec's compressed-byte ratio.
    """
    return ratio * ((math.sqrt(3.0) * m * k * k
                     / (block * math.sqrt(memory))) + (k * k) / block)


def matmul_epilogue_io(m: float, l: float, n: float,
                       extra_inputs: float, memory: float, block: float,
                       fused: bool = True,
                       ratio: float = 1.0) -> float:
    """I/O of ``map(A %*% B, C1..Ck)`` — an elementwise epilogue over a
    product with ``extra_inputs`` additional matrix operands.

    Fused, the epilogue is applied to each product submatrix while it
    is resident: the multiply's own single write is the *only* write,
    and each extra operand is read tile-aligned once.  The panel
    shrinks to ``p = sqrt(M / (3 + extra_inputs))`` so the callback's
    resident submatrices stay inside the budget, which scales the
    operand-read term by ``sqrt(3 + extra_inputs) / sqrt(3)``.
    Unfused, the raw product is materialized and the elementwise pass
    re-reads it and writes the final result — ``2 m n / B`` extra
    blocks on top of the plain multiply.  ``ratio`` scales all device
    traffic by the storage codec's compressed-byte ratio, so the
    fuse-vs-materialize comparison stays apples to apples under
    compression.
    """
    if fused:
        return ratio * (2.0 * math.sqrt(3.0 + extra_inputs) * l * m * n
                        / (block * math.sqrt(memory))
                        + (1.0 + extra_inputs) * m * n / block)
    return (square_tile_matmul_io(m, l, n, memory, block, ratio)
            + ratio * (2.0 + extra_inputs) * m * n / block)


def bnlj_matmul_io(n1: float, n2: float, n3: float,
                   memory: float, block: float,
                   ratio: float = 1.0) -> float:
    """Block-nested-loop-inspired algorithm of §3/§4.

    A is row-major, B and the result column-major.  Memory holds q rows of A
    *and* the corresponding q rows of T (q = M/(n2+n3)), plus a scan block
    for B; every chunk of A rows scans all of B.  Total:
    ``Theta(n1*n2*n3*(n2+n3)/(B*M))`` plus the linear input/output terms.
    ``ratio`` scales the device traffic by the storage codec's
    compressed-byte ratio.
    """
    q = max(1.0, memory / (n2 + n3))
    chunks = math.ceil(n1 / q)
    scan_b = chunks * (n2 * n3 / block)
    read_a = n1 * n2 / block
    write_t = n1 * n3 / block
    return ratio * (scan_b + read_a + write_t)


def naive_colmajor_matmul_io(n1: float, n2: float, n3: float,
                             block: float) -> float:
    """R's triple loop with both operands column-major (§3).

    Each access to A along a row faults a distinct page:
    ``Theta(n1*n2*n3)`` block I/Os — the paper's motivating disaster case.
    """
    return n1 * n2 * n3 + n2 * n3 / block + n1 * n3 / block


def rowmajor_scan_matmul_io(n1: float, n2: float, n3: float,
                            block: float) -> float:
    """Triple loop with A row-major: ``Theta(n1*n2*n3/B)`` (§3)."""
    return n1 * n2 * n3 / block + n2 * n3 / block + n1 * n3 / block


def riotdb_matmul_io(n1: float, n2: float, n3: float,
                     memory: float, block: float) -> float:
    """The RIOT-DB SQL plan: grace hash join, external sort, aggregate.

    Per footnote 5 of the paper, index-column storage overhead is excluded
    (each tuple is costed as one scalar), which *"has no effect on the
    relative ordering of performance"*.

    - partition both inputs and re-read them: ``3 (|A| + |B|)``,
    - the join yields ``n1*n2*n3`` tuples that must be sorted by (I, J):
      run formation writes them, each merge pass reads and writes them, the
      final pass streams into aggregation,
    - the aggregated result ``|C|`` is written once.
    """
    a_blocks = n1 * n2 / block
    b_blocks = n2 * n3 / block
    join_blocks = n1 * n2 * n3 / block
    fan_in = max(2.0, memory / block - 1)
    runs = max(1.0, join_blocks * block / memory)
    passes = max(1.0, math.ceil(math.log(runs, fan_in))) if runs > 1 \
        else 1.0
    sort_io = 2.0 * join_blocks * passes
    c_blocks = n1 * n3 / block
    return 3.0 * (a_blocks + b_blocks) + sort_io + c_blocks


# ----------------------------------------------------------------------
# Sparse kernels (nnz-parameterized; see repro.sparse)
# ----------------------------------------------------------------------
#: Default side of a *sparse* tile at B = 1024 scalars per block: 4x the
#: dense square-tile side (see ``SPARSE_TILE_FACTOR`` in
#: :mod:`repro.sparse.sparse_matrix` — a CSR tile's pages scale with its
#: nnz, so the grid can use geometrically larger tiles than dense
#: storage, making empty tiles common at low density).
DEFAULT_TILE_SIDE = 128


def sparse_tile_pages(tile_rows: float, tile_nnz: float,
                      block: float) -> float:
    """Pages one CSR tile occupies: header + indptr + indices + data.

    ``tile_words`` in :mod:`repro.sparse.sparse_matrix` is the exact
    integer version; here the ceiling is taken on the expectation.
    """
    words = tile_rows + 2.0 + 2.0 * tile_nnz
    return max(1.0, math.ceil(words / block))


def sparse_matrix_profile(m: float, l: float, nnz: float, block: float,
                          tile_side: float = DEFAULT_TILE_SIDE) -> dict:
    """Expected tile-directory statistics of an m x l matrix with ``nnz``
    uniformly placed nonzeros on a ``tile_side``-square grid.

    Returns grid dimensions, the probability that a tile is nonempty,
    the expected nonempty-tile count, and the expected total pages —
    the quantities every sparse cost model below is built from.
    """
    area = tile_side * tile_side
    density = min(1.0, nnz / (m * l)) if m and l else 0.0
    grid_rows = math.ceil(m / tile_side)
    grid_cols = math.ceil(l / tile_side)
    p_nonempty = 1.0 - (1.0 - density) ** area
    n_nonempty = grid_rows * grid_cols * p_nonempty
    avg_nnz = (density * area / p_nonempty) if p_nonempty > 0 else 0.0
    pages = n_nonempty * sparse_tile_pages(tile_side, avg_nnz, block)
    return {"grid_rows": grid_rows, "grid_cols": grid_cols,
            "p_nonempty": p_nonempty, "n_nonempty": n_nonempty,
            "avg_nnz": avg_nnz, "pages": pages}


def spmv_io(m: float, l: float, nnz: float, block: float,
            tile_side: float = DEFAULT_TILE_SIDE) -> float:
    """I/O of ``y = A x`` with sparse tiled A and a chunked dense x.

    Per block row: every nonempty tile is read once, and an x chunk is
    read iff any of the tiles it spans is nonempty (the kernel's slice
    reads within one block row coalesce to one read per touched chunk
    via the buffer pool).  y is written once, streaming.
    """
    prof = sparse_matrix_profile(m, l, nnz, block, tile_side)
    x_blocks = math.ceil(l / block)
    tiles_per_chunk = max(1.0, min(l, block) / tile_side)
    p_chunk = 1.0 - (1.0 - prof["p_nonempty"]) ** tiles_per_chunk
    x_reads = prof["grid_rows"] * x_blocks * p_chunk
    y_writes = math.ceil(m / block)
    return prof["pages"] + x_reads + y_writes


def spmm_panel_width(memory: float, tile_rows: float, tile_cols: float,
                     n: float) -> int:
    """Column-panel width of the SpMM schedule, shared by kernel and model.

    Memory holds one accumulator panel (tile_rows x pw), one dense B
    strip (tile_cols x pw) and one CSR tile; the width is rounded down
    to whole tiles so B reads and C writes stay tile-aligned.
    """
    pw = (memory - tile_rows * tile_cols) / (tile_rows + tile_cols)
    pw = max(tile_cols, (pw // tile_cols) * tile_cols)
    return int(min(n, pw)) if n >= tile_cols else int(n)


def spmm_io(m: float, l: float, n: float, nnz: float, memory: float,
            block: float, tile_side: float = DEFAULT_TILE_SIDE) -> float:
    """I/O of ``C = A B`` with sparse tiled A and dense tiled B.

    The schedule sweeps column panels of B: per panel every nonempty A
    tile is read (A is re-read once per panel) and the matching
    ``tile_side x pw`` strip of B is read per nonempty A tile; C is
    written once, tile-aligned.
    """
    prof = sparse_matrix_profile(m, l, nnz, block, tile_side)
    pw = spmm_panel_width(memory, tile_side, tile_side, n)
    panels = math.ceil(n / pw)
    a_reads = panels * prof["pages"]
    b_reads = prof["n_nonempty"] * tile_side * n / block
    c_writes = m * n / block
    return a_reads + b_reads + c_writes


def spgemm_io(m: float, l: float, n: float, nnz_a: float, nnz_b: float,
              block: float,
              tile_side: float = DEFAULT_TILE_SIDE) -> float:
    """I/O of ``C = A B`` with both operands sparse tiled.

    For every output tile, each k where A(i,k) and B(k,j) are both
    nonempty costs one read of each tile; C's nonempty tiles are
    written once.  Result density follows the standard independence
    estimate ``1 - (1 - dA dB)^l`` per element.
    """
    prof_a = sparse_matrix_profile(m, l, nnz_a, block, tile_side)
    prof_b = sparse_matrix_profile(l, n, nnz_b, block, tile_side)
    pages_tile_a = sparse_tile_pages(tile_side, prof_a["avg_nnz"], block)
    pages_tile_b = sparse_tile_pages(tile_side, prof_b["avg_nnz"], block)
    k_tiles = math.ceil(l / tile_side)
    out_tiles = math.ceil(m / tile_side) * math.ceil(n / tile_side)
    pair_p = prof_a["p_nonempty"] * prof_b["p_nonempty"]
    reads = out_tiles * k_tiles * pair_p * (pages_tile_a + pages_tile_b)
    d_a = min(1.0, nnz_a / (m * l))
    d_b = min(1.0, nnz_b / (l * n))
    d_c = 1.0 - (1.0 - d_a * d_b) ** l
    writes = sparse_matrix_profile(m, n, d_c * m * n, block,
                                   tile_side)["pages"]
    return reads + writes


def matmul_result_density(d_a: float, d_b: float, inner: float) -> float:
    """Density estimate for a product of matrices with densities
    ``d_a``/``d_b`` and inner dimension ``inner`` (independence model)."""
    return 1.0 - (1.0 - min(1.0, d_a) * min(1.0, d_b)) ** max(inner, 0.0)


# ----------------------------------------------------------------------
# Dense LU factorization and triangular solves (§5 first-class operators)
# ----------------------------------------------------------------------
def lu_panel_width(n: float, memory: float, tile_side: float) -> int:
    """Column-panel width of the out-of-core pivoted LU, shared by
    kernel and model.

    Partial pivoting needs the full trailing column panel resident to
    choose pivot rows, so the panel is *tall*: ``n x p`` scalars.  One
    third of the memory budget goes to the panel (the other two thirds
    cover the strip being swapped/updated and pool working frames),
    giving ``p = M / (3 n)``, rounded down to whole storage tiles and
    clamped to ``[tile_side, n]``.
    """
    p = (memory / 3.0) / max(n, 1.0)
    p = max(tile_side, (p // tile_side) * tile_side)
    return int(min(p, max(n, 1.0)))


def _dense_tile_side(block: float) -> int:
    """Side of a square dense tile of area <= ``block`` scalars."""
    return max(1, int(math.isqrt(int(block))))


def lu_io(n: float, memory: float, block: float,
          tile_side: float | None = None) -> float:
    """I/O (blocks) of the blocked partial-pivoting LU of an n x n matrix.

    Mirrors the schedule of :func:`repro.linalg.lu.lu_decompose` term by
    term.  Per column panel of width p (tall panel resident in memory):

    - the trailing ``h x p`` panel is read, factored, and written back,
    - one pass over the remaining ``h x (n - p)`` rows applies the
      panel's row interchanges (and, for trailing strips, the
      triangular solve producing U's row panel) — read + write,
    - the trailing update streams L blocks once per block row and the
      U/target blocks per (i, j) pair, exactly as the kernel loops.

    Plus the initial copy of the input into the working factor
    (RIOT's pure-operator discipline: read once, write once).
    """
    tile = tile_side or _dense_tile_side(block)
    p = lu_panel_width(n, memory, tile)
    total = 2.0 * n * n / block          # copy input -> working factor
    k0 = 0.0
    while k0 < n:
        k1 = min(k0 + p, n)
        w = k1 - k0                      # panel width
        h = n - k0                       # trailing height
        total += 2.0 * h * w / block     # panel read + factored write-back
        total += 2.0 * h * (n - w) / block   # swap (+U) pass, read + write
        t = n - k1                       # trailing square side
        if t > 0:
            nb = math.ceil(t / p)        # trailing blocks per side
            total += t * w / block       # L blocks, once per block row
            total += nb * t * w / block  # U row panel, re-read per block row
            total += 2.0 * t * t / block  # trailing blocks read + written
        k0 = k1
    return total


def solve_io(n: float, nrhs: float, memory: float, block: float,
             tile_side: float | None = None) -> float:
    """I/O (blocks) of the two blocked substitution sweeps of ``A x = b``
    given a packed L\\U factor (the RHS rides along in memory).

    The forward sweep reads each block row of the strictly-lower
    triangle plus the diagonal block; the backward sweep mirrors it on
    the upper triangle — together one pass over the packed factor with
    the diagonal blocks touched twice.
    """
    tile = tile_side or _dense_tile_side(block)
    b = lu_panel_width(n, memory, tile)
    total = 0.0
    i0 = 0.0
    while i0 < n:
        i1 = min(i0 + b, n)
        total += (i1 - i0) * i1 / block        # forward: row strip to diag
        total += (i1 - i0) * (n - i0) / block  # backward: diag to row end
        i0 = i1
    return total


def inverse_io(n: float, memory: float, block: float,
               tile_side: float | None = None) -> float:
    """I/O of materializing ``inv(A)``: one pivoted factorization, one
    substitution sweep per resident column panel of the identity RHS,
    and one write of the n x n result."""
    tile = tile_side or _dense_tile_side(block)
    pw = lu_panel_width(n, memory, tile)
    panels = math.ceil(n / pw)
    return (lu_io(n, memory, block, tile)
            + panels * solve_io(n, pw, memory, block, tile)
            + n * n / block)


def solve_op_io(n: float, nrhs: float, memory: float, block: float,
                tile_side: float | None = None) -> float:
    """I/O of the full ``solve(A, B)`` operator: one pivoted
    factorization, one substitution sweep per memory-sized column
    panel of the RHS, plus reading B and writing X once."""
    tile = tile_side or _dense_tile_side(block)
    if nrhs <= 1:
        return (lu_io(n, memory, block, tile)
                + solve_io(n, 1, memory, block, tile)
                + 2.0 * n / block)
    pw = lu_panel_width(n, memory, tile)
    panels = math.ceil(nrhs / pw)
    return (lu_io(n, memory, block, tile)
            + panels * solve_io(n, pw, memory, block, tile)
            + 2.0 * n * nrhs / block)


def crossprod_epilogue_io(m: float, k: float, extra_inputs: float,
                          memory: float, block: float,
                          fused: bool = True,
                          ratio: float = 1.0) -> float:
    """I/O of ``map(crossprod(A), C1..Ce)`` — an elementwise epilogue
    over the symmetric product.

    Fused, the panel shrinks to ``p = sqrt(M / (3 + e))`` (scaling the
    operand-read term of :func:`crossprod_io` by ``sqrt(3 + e) /
    sqrt(3)``), each extra operand is read once, and the kernel's
    single write remains the only write.  Unfused, the raw product is
    materialized and the elementwise pass re-reads it and writes the
    final result.  ``ratio`` scales all device traffic by the storage
    codec's compressed-byte ratio.
    """
    if fused:
        return ratio * (math.sqrt(3.0 + extra_inputs) * m * k * k
                        / (block * math.sqrt(memory))
                        + (1.0 + extra_inputs) * k * k / block)
    return (crossprod_io(m, k, memory, block, ratio)
            + ratio * (2.0 + extra_inputs) * k * k / block)


# ----------------------------------------------------------------------
# Streaming / access-path operators (physical-plan models)
# ----------------------------------------------------------------------
def stream_io(input_scalars: float, output_scalars: float,
              block: float) -> float:
    """One fused streaming pass: read every stored input once, write
    the result once (the loop-fusion regime of §3)."""
    return (input_scalars + output_scalars) / block


def gather_io(n_src: float, k: float, block: float) -> float:
    """Selective evaluation of ``x[s]`` with k selected elements: at
    most one read per selected element, never more than a full scan,
    plus writing the gathered vector."""
    return min(math.ceil(n_src / block), k) + 2.0 * k / block


def scatter_io(n: float, k: float, block: float) -> float:
    """Positional ``b[s] <- v``: copy-on-write pass over the base plus
    one random touch per scattered element (bounded by the base)."""
    return 2.0 * n / block + min(math.ceil(n / block), k)


# ----------------------------------------------------------------------
# Chains
# ----------------------------------------------------------------------
def chain_io(dims: list[float], order, per_multiply) -> float:
    """Total I/O of a parenthesized chain given a per-multiply model.

    Appendix B: the optimum performs one multiplication at a time,
    materializing each intermediate; the per-multiply formulas already
    include reading the inputs and writing the output.
    """
    from .chain import pairwise_shapes
    total = 0.0
    for (m, l, n) in pairwise_shapes([int(d) for d in dims], order):
        total += per_multiply(m, l, n)
    return total


def chain_io_lower_bound(dims: list[float], memory: float,
                         block: float) -> float:
    """Appendix B: ``Theta(N/(B sqrt(M)))`` with N = optimal multiply count."""
    from .chain import optimal_multiplications
    n_mult = optimal_multiplications([int(d) for d in dims])
    return n_mult / (block * math.sqrt(memory))


# ----------------------------------------------------------------------
# Figure 3 reproduction
# ----------------------------------------------------------------------
def fig3_dims(n: int, s: float) -> list[int]:
    """A: n x n/s, B: n/s x n, C: n x n -> dims [n, n/s, n, n]."""
    return [n, int(round(n / s)), n, n]


def fig3_strategy_costs(n: int, s: float, memory: float,
                        block: float = FIG3_BLOCK) -> dict[str, float]:
    """I/O (blocks) of the four §5 strategies for the A·B·C chain.

    - ``RIOT-DB``: two hash-join-sort-aggregate subplans, in program order.
    - ``BNLJ-Inspired``: row/column layouts, in program order.
    - ``Square/In-Order``: square tiles, in program order.
    - ``Square/Opt-Order``: square tiles, DP-chosen order (A(BC) once the
      skew s makes it cheaper).
    """
    from .chain import in_order, optimal_order
    dims = fig3_dims(n, s)
    left_deep = in_order(3)
    best = optimal_order(dims)
    return {
        "RIOT-DB": chain_io(
            dims, left_deep,
            lambda m, l, k: riotdb_matmul_io(m, l, k, memory, block)),
        "BNLJ-Inspired": chain_io(
            dims, left_deep,
            lambda m, l, k: bnlj_matmul_io(m, l, k, memory, block)),
        "Square/In-Order": chain_io(
            dims, left_deep,
            lambda m, l, k: square_tile_matmul_io(m, l, k, memory, block)),
        "Square/Opt-Order": chain_io(
            dims, best,
            lambda m, l, k: square_tile_matmul_io(m, l, k, memory, block)),
    }


def fig3a_rows(s: float = 2.0, block: float = FIG3_BLOCK):
    """Figure 3(a): n in {100000, 120000} x memory in {2 GB, 4 GB}."""
    rows = []
    for n in (100000, 120000):
        for gb in (2, 4):
            memory = gb * GB_IN_SCALARS
            costs = fig3_strategy_costs(n, s, memory, block)
            for strategy, io in costs.items():
                rows.append({"n": n, "memory_gb": gb,
                             "strategy": strategy, "io_blocks": io})
    return rows


def fig3b_rows(n: int = 100000, memory_gb: int = 2,
               block: float = FIG3_BLOCK):
    """Figure 3(b): skew s in {2, 4, 6, 8}, 2 GB memory, n = 100000.

    RIOT-DB is omitted, as in the paper (*"no longer shown because it
    performs far worse than others"*).
    """
    rows = []
    memory = memory_gb * GB_IN_SCALARS
    for s in (2, 4, 6, 8):
        costs = fig3_strategy_costs(n, float(s), memory, block)
        for strategy in ("BNLJ-Inspired", "Square/In-Order",
                         "Square/Opt-Order"):
            rows.append({"s": s, "strategy": strategy,
                         "io_blocks": costs[strategy]})
    return rows


# ----------------------------------------------------------------------
# Cost-model registry
# ----------------------------------------------------------------------
#: Every ``PhysOp.cost_model`` name mapped to the function that prices
#: it.  The planner may only construct operators whose model is listed
#: here — enforced statically by the RPR002 lint rule
#: (:mod:`repro.analysis.lint`) and again at plan time by
#: :func:`repro.analysis.planlint.verify_plan` — and the calibration
#: pipeline groups measured/predicted ratios by these keys.
COST_MODELS = {
    "stream_io": stream_io,
    "gather_io": gather_io,
    "scatter_io": scatter_io,
    "matmul_io": square_tile_matmul_io,
    "bnlj_io": bnlj_matmul_io,
    "crossprod_io": crossprod_io,
    "spmv_io": spmv_io,
    "spmm_io": spmm_io,
    "spgemm_io": spgemm_io,
    "solve_io": solve_op_io,
    "inverse_io": inverse_io,
    "transpose_io": transpose_materialize_io,
    "matmul_epilogue_io": matmul_epilogue_io,
    "crossprod_epilogue_io": crossprod_epilogue_io,
}
