"""One source of truth for node identity.

The old ``Rewriter`` kept two hand-maintained copies of "what makes a
node itself": ``_signature`` (fixpoint detection, built from
``getattr`` probes) and ``_canon_key`` (CSE hashing, a type switch).
They disagreed — ``_signature`` probed ``kernel``/``trans_a``/
``trans_b`` on *every* node but knew nothing about ``Crossprod.t_first``
or ``SubscriptAssign.logical_mask``, so a pass flipping only those
attributes was invisible to fixpoint detection, while CSE treated them
correctly.  Both are now derived from one helper:

- :func:`node_attrs` — the node's local attributes (no children),
- :func:`canon_key` — attrs + children identities, for CSE hashing,
- :func:`dag_signature` — attrs + canonical child indices over a whole
  DAG, for fixpoint detection.

``tests/core/test_signatures.py`` pins the contract: two nodes with
different kernel hints or operand flags never share a key.
"""

from __future__ import annotations

from ..expr import (ArrayInput, Crossprod, Map, MatMul, Node, Range,
                    Reduce, Scalar, SubscriptAssign, walk)


def node_attrs(node: Node) -> tuple:
    """Local identity of a node: type plus every semantic attribute.

    Children are deliberately excluded — callers add child identities
    in whatever form suits them (object ids for CSE, canonical indices
    for DAG signatures).
    """
    if isinstance(node, ArrayInput):
        return ("ArrayInput", id(node.data))
    if isinstance(node, Scalar):
        return ("Scalar", node.value)
    if isinstance(node, Range):
        return ("Range", node.lo, node.hi)
    if isinstance(node, Map):
        return ("Map", node.op)
    if isinstance(node, Reduce):
        return ("Reduce", node.op)
    if isinstance(node, SubscriptAssign):
        return ("SubscriptAssign", node.logical_mask)
    if isinstance(node, MatMul):
        return ("MatMul", node.kernel, node.trans_a, node.trans_b)
    if isinstance(node, Crossprod):
        return ("Crossprod", node.t_first)
    return (type(node).__name__,)


def canon_key(node: Node) -> tuple:
    """CSE key: local attributes plus the *object identities* of the
    children.  Two structurally equal nodes whose children have already
    been canonicalized to the same objects get equal keys; a flagged
    and an unflagged matmul over the same operands never do."""
    return node_attrs(node) + tuple(id(c) for c in node.children)


def dag_signature(root: Node) -> tuple:
    """Whole-DAG signature for fixpoint detection.

    Children are numbered in traversal order, so the signature is
    stable across rebuilds of an identical DAG and changes whenever
    any node's type, semantic attribute, or wiring changes.
    """
    sig = []
    ids: dict[int, int] = {}
    for n in walk(root):
        ids[id(n)] = len(ids)
        sig.append(node_attrs(n)
                   + (tuple(ids[id(c)] for c in n.children),))
    return tuple(sig)
