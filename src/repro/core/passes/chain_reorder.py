"""Matrix-chain collection and reordering (§5 rule 7, Appendix B).

The chain helpers here are shared by the legacy :class:`Rewriter` shim
(which reorders on the logical DAG, as the old monolith did) and by the
physical planner (which treats the order as one of the enumerated,
costed alternatives).  When any factor carries an estimated density
below :data:`~repro.core.passes.sparsity.DENSE_THRESHOLD`, the
nnz-weighted DP replaces the dense flop count, so e.g. a
sparse-sparse-vector chain collapses the cheap sparse product first.
"""

from __future__ import annotations

from .. import chain as chain_mod
from ..expr import MatMul, Node
from .base import Pass, PassContext
from .sparsity import DENSE_THRESHOLD


def collect_chain(node: Node, factors: list[Node]) -> None:
    """Flatten a tree of unflagged MatMuls into its factor list.

    A flagged MatMul is opaque to reordering (its operands are not
    chain factors of the outer product) — treat it as a leaf.
    """
    if isinstance(node, MatMul) and not (node.trans_a or node.trans_b):
        collect_chain(node.children[0], factors)
        collect_chain(node.children[1], factors)
    else:
        factors.append(node)


def chosen_order(factors: list[Node]) -> tuple:
    """(order, rule-name) the DP picks for a factor list."""
    dims = [factors[0].shape[0]] + [f.shape[1] for f in factors]
    densities = [f.density for f in factors]
    if min(densities) < DENSE_THRESHOLD:
        return (chain_mod.optimal_order_sparse(dims, densities),
                "chain-reorder-sparse")
    return chain_mod.optimal_order(dims), "chain-reorder"


def current_order(node: Node, factors: list[Node]):
    """The parenthesization ``node`` already has, over ``factors``."""
    index_of = {id(f): i for i, f in enumerate(factors)}

    def build(n: Node):
        if isinstance(n, MatMul) and id(n) not in index_of:
            return (build(n.children[0]), build(n.children[1]))
        return index_of[id(n)]

    return build(node)


def build_order(factors: list[Node], order) -> Node:
    """Materialize a parenthesization as fresh MatMul nodes."""
    if isinstance(order, int):
        return factors[order]
    return MatMul(build_order(factors, order[0]),
                  build_order(factors, order[1]))


class ChainReorderPass(Pass):
    """Logical-DAG chain reordering (legacy Rewriter behaviour).

    The cost-based planner performs the same search during lowering;
    this pass exists for the deprecated ``Rewriter`` API and for
    pipelines that want the reorder visible in the logical DAG.
    """

    name = "chain-reorder"

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        if not isinstance(node, MatMul) or node.trans_a or node.trans_b:
            return node
        factors: list[Node] = []
        collect_chain(node, factors)
        if len(factors) < 3:
            return node
        order, rule = chosen_order(factors)
        if order == current_order(node, factors):
            return node
        ctx.record(rule)
        return build_order(factors, order)
