"""Sparse/dense kernel choice by the nnz-parameterized cost models
(§5 rule 8).

:func:`matmul_kernel_costs` is the single comparison both the legacy
:class:`Rewriter` shim and the physical planner use: the matching
sparse model (``spgemm_io`` for sparse x sparse, ``spmm_io`` for
sparse x dense, each fed the operands' estimated nnz) against the
dense Appendix-A model clamped at the trivial floor of reading both
operands and writing the result once.
"""

from __future__ import annotations

from ..costs import (DEFAULT_TILE_SIDE, spgemm_io, spmm_io,
                     square_tile_matmul_io)
from ..expr import MatMul, Node
from .base import Pass, PassContext
from .sparsity import sparse_stored, sparse_tile_side


def clamped_dense_io(m: float, k: float, n: float, memory: float,
                     block: float, ratio: float = 1.0) -> float:
    """Appendix-A cost, clamped at the one-pass floor.

    The formula is asymptotic; at small sizes it drops below the
    trivial floor of reading both operands and writing the result
    once, so comparisons clamp it there.  ``ratio`` (the storage
    codec's compressed-byte ratio) scales both the formula and the
    floor — compression shrinks the one-pass traffic too.
    """
    return max(square_tile_matmul_io(m, k, n, memory, block, ratio),
               ratio * (m * k + k * n + m * n) / block)


def matmul_kernel_costs(node: MatMul, memory: float,
                        block: float,
                        ratio: float = 1.0) -> dict[str, float] | None:
    """``{"sparse": blocks, "dense": blocks}`` for an eligible ``%*%``.

    Returns ``None`` when no sparse alternative exists: flagged
    operands (the sparse kernels have no flagged variants) or a dense
    left operand (no dense x sparse kernel exists; the evaluator
    densifies the right operand either way).
    """
    if node.trans_a or node.trans_b:
        return None
    a, b = node.children
    if not sparse_stored(a):
        return None
    m, k = a.shape
    n = b.shape[1]
    tile_side = sparse_tile_side(a) or DEFAULT_TILE_SIDE
    if sparse_stored(b):
        sparse_cost = spgemm_io(m, k, n, a.estimated_nnz,
                                b.estimated_nnz, block,
                                tile_side=tile_side)
    else:
        sparse_cost = spmm_io(m, k, n, a.estimated_nnz, memory, block,
                              tile_side=tile_side)
    # Sparse tiles are not codec-compressed, so only the dense side
    # scales with the storage ratio.
    return {"sparse": sparse_cost,
            "dense": clamped_dense_io(m, k, n, memory, block, ratio)}


class KernelSelectPass(Pass):
    """Annotate eligible ``%*%`` nodes with the cheaper kernel.

    Legacy-Rewriter behaviour: the verdict is recorded on the logical
    node for the evaluator's type dispatch.  The planner makes the
    same comparison (plus BNLJ and flagged alternatives) at lowering
    time instead.
    """

    name = "kernel-select"

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        if not isinstance(node, MatMul) or node.kernel != "auto":
            return node
        costs = matmul_kernel_costs(node, ctx.memory_scalars,
                                    ctx.block_scalars)
        if costs is None:
            return node
        kernel = ("sparse" if costs["sparse"] < costs["dense"]
                  else "dense")
        ctx.record(f"kernel-select:{kernel}")
        return MatMul(node.children[0], node.children[1], kernel=kernel)
