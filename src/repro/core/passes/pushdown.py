"""Subscript pushdown (§5 rules 1–4; the Figure-2 headline rewrite)."""

from __future__ import annotations

from ..expr import (Map, Node, Range, Scalar, Subscript,
                    SubscriptAssign)
from .base import Pass, PassContext


class PushdownPass(Pass):
    """Push subscripts through maps, deferred modification and ranges.

    - ``f(x, y)[s] -> f(x[s], y[s])`` — only selected elements computed.
    - ``(b with b[mask] <- v)[s] -> ifelse(mask[s], v, b[s])`` — the
      Figure-2 rewrite: modifications and tests run on the selection.
    - ``(lo:hi)[s]`` is index arithmetic, no data access at all.
    - ``x[i][j] -> x[i[j]]`` — subscript composition.
    """

    name = "pushdown"

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        if not isinstance(node, Subscript):
            return node
        src, index = node.src, node.index
        if isinstance(src, Map):
            ctx.record(f"pushdown-map:{src.op}")
            new_children = []
            for c in src.children:
                if c.shape == ():
                    new_children.append(c)
                else:
                    new_children.append(Subscript(c, index))
            return Map(src.op, *new_children)
        if isinstance(src, SubscriptAssign) and src.logical_mask:
            ctx.record("pushdown-assign")
            mask_sel = Subscript(src.index, index)
            base_sel = Subscript(src.base, index)
            value = src.value
            if value.shape != ():
                value = Subscript(value, index)
            return Map("ifelse", mask_sel, value, base_sel)
        if isinstance(src, Range):
            ctx.record("pushdown-range")
            if src.lo == 1:
                return index
            return Map("+", index, Scalar(src.lo - 1))
        if isinstance(src, Subscript):
            ctx.record("pushdown-compose")
            return Subscript(src.src, Subscript(src.index, index))
        return node
