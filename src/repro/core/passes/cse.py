"""Common-subexpression elimination by structural hashing (§5 rule 6).

The two ``sqrt`` terms of Example 1 share their ``x`` and ``y`` scans.
Keys come from :func:`repro.core.passes.signatures.canon_key`, the same
helper fixpoint detection uses, so kernel hints, operand flags and
``t_first`` can never be conflated (the bug the old split
``_signature``/``_canon_key`` pair invited).
"""

from __future__ import annotations

from ..expr import Node
from .base import Pass, PassContext
from .signatures import canon_key


class CSEPass(Pass):
    name = "cse"

    def run(self, root: Node, ctx: PassContext) -> Node:
        canon: dict[tuple, Node] = {}
        mapping: dict[int, Node] = {}

        def visit(node: Node) -> Node:
            if id(node) in mapping:
                return mapping[id(node)]
            children = tuple(visit(c) for c in node.children)
            if children != node.children:
                node2 = node.with_children(children)
            else:
                node2 = node
            key = canon_key(node2)
            if key in canon:
                result = canon[key]
                if result is not node2:
                    ctx.record("cse")
            else:
                canon[key] = node2
                result = node2
            mapping[id(node)] = result
            return result

        return visit(root)
