"""Transpose elimination (§5 rule 10): flags, not disk passes.

``t(t(A))`` cancels; ``t`` of a symmetric :class:`Crossprod` is the
identity; ``t(A %*% B)`` swaps the operands and flips their flags
(``(AB)^T = B^T A^T``); ``t(A) %*% B`` becomes
``MatMul(A, B, trans_a=True)`` (the flag reads A in stored layout,
transposing tiles in memory); and the symmetric patterns
``t(A) %*% A`` / ``A %*% t(A)`` become :class:`Crossprod`, whose kernel
computes only the upper-triangular output blocks.  Sparse-stored
operands keep their Transpose — the sparse kernels have no flagged
variants, so densify-then-transpose stays the fallback.
"""

from __future__ import annotations

from ..expr import Crossprod, MatMul, Node, Transpose
from .base import Pass, PassContext
from .sparsity import sparse_stored


class TransposePass(Pass):
    name = "transpose"

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        if isinstance(node, Transpose):
            return self._push(node, ctx)
        if isinstance(node, MatMul):
            return self._absorb(node, ctx)
        return node

    # -- t(...) of a subtree -------------------------------------------
    def _push(self, node: Transpose, ctx: PassContext) -> Node:
        child = node.children[0]
        if isinstance(child, Transpose):
            ctx.record("transpose-cancel")
            return child.children[0]
        if isinstance(child, Crossprod):
            ctx.record("transpose-symmetric")
            return child
        if isinstance(child, MatMul) and child.kernel != "sparse":
            a, b = child.children
            if sparse_stored(a) or sparse_stored(b):
                return node
            ctx.record("transpose-push-matmul")
            return MatMul(b, a, kernel=child.kernel,
                          trans_a=not child.trans_b,
                          trans_b=not child.trans_a)
        return node

    # -- t(...) as a product operand -----------------------------------
    def _absorb(self, node: MatMul, ctx: PassContext) -> Node:
        a, b = node.children
        ta, tb = node.trans_a, node.trans_b
        changed = False
        if isinstance(a, Transpose) and \
                not sparse_stored(a.children[0]):
            a, ta, changed = a.children[0], not ta, True
        if isinstance(b, Transpose) and \
                not sparse_stored(b.children[0]):
            b, tb, changed = b.children[0], not tb, True
        if changed:
            ctx.record("transpose-absorb")
            return MatMul(a, b, kernel=node.kernel,
                          trans_a=ta, trans_b=tb)
        if a is b and ta != tb and not sparse_stored(a):
            ctx.record("crossprod")
            return Crossprod(a, t_first=ta)
        return node
