"""Pass infrastructure: independent, ordered, individually-testable
rewrites over expression DAGs.

Each :class:`Pass` is one rule family (folding, pushdown, transpose
absorption, ...) expressed as a bottom-up local rewrite.  The
:class:`Pipeline` runs its passes in order and iterates the whole
sequence to fixpoint, detected with the shared
:func:`~repro.core.passes.signatures.dag_signature` — so a pass firing
late in the sequence re-enables every earlier pass on the next sweep,
exactly like the old monolithic rewriter's rule loop, but with each
family testable (and disableable) on its own.
"""

from __future__ import annotations

from ..expr import Node
from .signatures import dag_signature


class PassContext:
    """Shared state threaded through a pipeline run.

    ``applied`` collects human-readable rule names in firing order (the
    old ``Rewriter.applied`` contract); ``memory_scalars`` and
    ``block_scalars`` parameterize any cost-model-consulting pass so
    its verdicts match the store the plan will run on.  ``tracer``
    (optional, defaults to a shared disabled one) lets the pipeline
    attribute optimizer wall-clock per pass.
    """

    def __init__(self, memory_scalars: int = 8 * 1024 * 1024,
                 block_scalars: int = 1024, tracer=None) -> None:
        from repro.obs.tracer import NULL_TRACER
        self.memory_scalars = memory_scalars
        self.block_scalars = block_scalars
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.applied: list[str] = []

    def record(self, rule: str) -> None:
        self.applied.append(rule)


class Pass:
    """One rewrite family.  Subclasses implement either ``rewrite``
    (a local bottom-up rule; the traversal is provided) or ``run``
    (a whole-DAG transformation, e.g. CSE)."""

    name = "pass"

    def run(self, root: Node, ctx: PassContext) -> Node:
        return bottom_up(root, lambda node: self.rewrite(node, ctx))

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<pass {self.name}>"


def bottom_up(root: Node, rule) -> Node:
    """Apply ``rule`` to every node, children first, preserving sharing.

    ``rule(node)`` returns a replacement (or the node itself).  When a
    rule fires, the replacement's children are visited and the rule
    re-applied until the node is stable, so a rewrite that exposes more
    opportunities below itself (subscript pushdown does) converges in
    one traversal.  Results are memoized by the *original* node's
    identity, so shared subtrees stay shared.
    """
    # Keyed on id() with the key node pinned in the value: a transient
    # node created by an earlier rule firing must not be collected and
    # have its address reused by a fresh node, or lookups would return
    # a stale result for the wrong node.
    memo: dict[int, tuple[Node, Node]] = {}

    def visit(node: Node) -> Node:
        hit = memo.get(id(node))
        if hit is not None and hit[0] is node:
            return hit[1]
        out = _locally_stable(node, rule, visit)
        memo[id(node)] = (node, out)
        return out

    return visit(root)


def _locally_stable(node: Node, rule, visit) -> Node:
    for _ in range(64):  # cycle guard; rules strictly shrink in practice
        children = tuple(visit(c) for c in node.children)
        if children != node.children:
            node = node.with_children(children)
        replacement = rule(node)
        if replacement is node:
            return node
        node = replacement
    raise RuntimeError(f"rewrite rule did not converge at {node!r}")


class Pipeline:
    """An ordered list of passes iterated to fixpoint."""

    def __init__(self, passes: list[Pass], max_passes: int = 10) -> None:
        self.passes = list(passes)
        self.max_passes = max_passes

    def run(self, root: Node, ctx: PassContext) -> Node:
        node = root
        with ctx.tracer.span("pipeline", cat="optimizer"):
            for sweep in range(self.max_passes):
                before = dag_signature(node)
                for p in self.passes:
                    n_before = len(ctx.applied)
                    with ctx.tracer.span(f"pass:{p.name}",
                                         cat="optimizer", sweep=sweep):
                        node = p.run(node, ctx)
                    if ctx.tracer.enabled:
                        span = ctx.tracer.last_span()
                        if span is not None:
                            span.args["fired"] = \
                                len(ctx.applied) - n_before
                if dag_signature(node) == before:
                    break
        return node
