"""Sparsity propagation: which plan nodes yield *sparse-stored* results.

Estimated density (propagated at node construction, see
:mod:`repro.core.expr`) and storage format are different things: a SpMM
result is dense-stored however sparse its values.  Sparse storage
arises from a sparse ``ArrayInput`` or from a SpGEMM (sparse x sparse
``%*%`` not forced dense).  Transpose absorption, kernel selection and
the physical planner all consult this one analysis.
"""

from __future__ import annotations

from ..expr import ArrayInput, MatMul, Node, walk

#: Densities at or above this are treated as dense (estimates are
#: fuzzy; a 99.9%-full matrix gains nothing from CSR tiles).
DENSE_THRESHOLD = 0.999


def sparse_stored(node: Node) -> bool:
    """Will forcing this node yield a sparse-stored matrix?"""
    if isinstance(node, ArrayInput):
        return hasattr(node.data, "tile_nnz")
    if isinstance(node, MatMul) and node.kernel != "dense":
        return (sparse_stored(node.children[0])
                and sparse_stored(node.children[1]))
    return False


def sparse_tile_side(node: Node) -> int | None:
    """Tile side the forced sparse matrix will actually have.

    A SpGEMM result inherits its row-tile side from the left factor,
    so recursing left reaches the stored leaf.
    """
    if isinstance(node, ArrayInput):
        tile_shape = getattr(node.data, "tile_shape", None)
        return tile_shape[0] if tile_shape else None
    if isinstance(node, MatMul):
        return sparse_tile_side(node.children[0])
    return None


def storage_map(root: Node) -> dict[int, bool]:
    """id(node) -> sparse-stored, for every node of a DAG in one walk."""
    out: dict[int, bool] = {}
    for n in walk(root):
        if isinstance(n, ArrayInput):
            out[id(n)] = hasattr(n.data, "tile_nnz")
        elif isinstance(n, MatMul) and n.kernel != "dense":
            out[id(n)] = (out.get(id(n.children[0]), False)
                          and out.get(id(n.children[1]), False))
        else:
            out[id(n)] = False
    return out
