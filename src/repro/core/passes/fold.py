"""Constant folding over scalar subtrees (§5 rule 5)."""

from __future__ import annotations

from ..expr import (BINARY_OPS, Map, Node, Scalar, TERNARY_OPS,
                    UNARY_OPS)
from .base import Pass, PassContext


class FoldPass(Pass):
    """``Map`` over all-Scalar children collapses to one Scalar."""

    name = "fold"

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        if isinstance(node, Map) and all(
                isinstance(c, Scalar) for c in node.children):
            fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
            value = fns[node.op](*(c.value for c in node.children))
            ctx.record("constant-fold")
            return Scalar(float(value))
        return node
