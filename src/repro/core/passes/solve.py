"""Inverse elimination: ``inv(A) %*% B -> solve(A, B)`` (§5 rule 9)."""

from __future__ import annotations

from ..expr import Inverse, MatMul, Node, Solve
from .base import Pass, PassContext


class SolveRewritePass(Pass):
    """Replace a multiply by an explicit inverse with a Solve node.

    Algebraically equal, but the solve plan factors A once and
    substitutes, while the inverse plan additionally materializes the
    n x n inverse and runs a full out-of-core multiply — strictly more
    I/O (:func:`repro.core.costs.inverse_io` vs ``lu_io + solve_io``).
    The classic array-algebra rewrite a SQL host cannot express.
    """

    name = "solve-rewrite"

    def rewrite(self, node: Node, ctx: PassContext) -> Node:
        if isinstance(node, MatMul) and \
                isinstance(node.children[0], Inverse):
            ctx.record("inv-to-solve")
            return Solve(node.children[0].children[0],
                         node.children[1])
        return node
