"""The logical pass pipeline of the two-stage optimizer.

Stage 1 of the optimizer (:mod:`repro.core.planner` is stage 2): a
sequence of independent, ordered, individually-testable rewrites over
expression DAGs, iterated to fixpoint.  :func:`build_pipeline` derives
the pass list from an :class:`~repro.core.config.OptimizerConfig`;
``legacy=True`` additionally appends the chain-reorder and
kernel-select passes so the deprecated :class:`~repro.core.rewrite.
Rewriter` shim reproduces the old monolith's behaviour on the logical
DAG.
"""

from __future__ import annotations

from ..config import OptimizerConfig
from .base import Pass, PassContext, Pipeline, bottom_up
from .chain_reorder import (ChainReorderPass, build_order,
                            chosen_order, collect_chain, current_order)
from .cse import CSEPass
from .fold import FoldPass
from .kernel_select import (KernelSelectPass, clamped_dense_io,
                            matmul_kernel_costs)
from .pushdown import PushdownPass
from .signatures import canon_key, dag_signature, node_attrs
from .solve import SolveRewritePass
from .sparsity import (DENSE_THRESHOLD, sparse_stored,
                       sparse_tile_side, storage_map)
from .transpose import TransposePass

__all__ = [
    "CSEPass", "ChainReorderPass", "DENSE_THRESHOLD", "FoldPass",
    "KernelSelectPass", "Pass", "PassContext", "Pipeline",
    "PushdownPass", "SolveRewritePass", "TransposePass",
    "bottom_up", "build_order", "build_pipeline", "canon_key",
    "chosen_order", "clamped_dense_io", "collect_chain",
    "current_order", "dag_signature", "matmul_kernel_costs",
    "node_attrs", "sparse_stored", "sparse_tile_side", "storage_map",
]


def build_pipeline(config: OptimizerConfig,
                   legacy: bool = False) -> Pipeline:
    """Pass list implied by a config.

    Order mirrors the old monolithic rule loop: fold, pushdown,
    inv-to-solve, transpose absorption, (legacy: chain reorder and
    kernel select), CSE.  The pipeline's fixpoint loop re-runs the
    whole sequence until the DAG signature stabilizes.
    """
    passes: list[Pass] = []
    if config.pass_enabled("fold"):
        passes.append(FoldPass())
    if config.pass_enabled("pushdown"):
        passes.append(PushdownPass())
    if config.pass_enabled("solve_rewrite"):
        passes.append(SolveRewritePass())
    if config.pass_enabled("transpose"):
        passes.append(TransposePass())
    if legacy:
        if config.choice_enabled("chain_reorder"):
            passes.append(ChainReorderPass())
        if config.choice_enabled("kernel_select"):
            passes.append(KernelSelectPass())
    if config.pass_enabled("cse"):
        passes.append(CSEPass())
    return Pipeline(passes, max_passes=config.max_passes)
