"""Expression DAG — the next-generation RIOT algebra (§5).

Unlike RIOT-DB, which encoded deferred computation in SQL views, the
next-generation design builds an expression DAG of *high-level* array
operators: elementwise maps, subscripts, matrix multiplication, reductions —
and, crucially, **modification as a pure operator**: ``b[i] <- v`` becomes a
:class:`SubscriptAssign` node taking the old state and returning the new
state, which is what lets the Figure-2 rewrite push subscripts through
updates.

Nodes are immutable; shapes are inferred at construction.  Indices follow R:
1-based, inclusive.
"""

from __future__ import annotations

import numpy as np

#: Elementwise operations and their numpy implementations, by arity.
UNARY_OPS = {
    "sqrt": np.sqrt, "abs": np.abs, "exp": np.exp, "log": np.log,
    "neg": np.negative, "floor": np.floor, "ceil": np.ceil,
    "not": np.logical_not,
}

BINARY_OPS = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
    "pow": np.power, "mod": np.mod,
    "==": np.equal, "!=": np.not_equal, "<": np.less, ">": np.greater,
    "<=": np.less_equal, ">=": np.greater_equal,
    "and": np.logical_and, "or": np.logical_or,
}

TERNARY_OPS = {
    "ifelse": np.where,
}

COMPARISON_OPS = frozenset(["==", "!=", "<", ">", "<=", ">=",
                            "and", "or", "not"])

#: Unary ops with f(0) == 0: they preserve the operand's zero pattern,
#: so the estimated density passes through unchanged.
ZERO_PRESERVING_UNARY = frozenset(["sqrt", "abs", "neg", "floor", "ceil"])


def _estimate_map_density(op: str, children: tuple["Node", ...]) -> float:
    """Estimated fraction of nonzeros a Map produces.

    Follows the standard independence heuristics of sparse query
    optimizers: products intersect zero patterns, sums union them,
    zero-preserving unaries pass density through.  Anything whose zero
    pattern cannot be predicted (comparisons, exp/log, ifelse) is
    conservatively dense.
    """
    ds = [c.density for c in children]
    if op in ("*", "and"):
        d = 1.0
        for x in ds:
            d *= x
        return d
    if op in ("+", "-", "or"):
        return min(1.0, sum(ds))
    if op in ZERO_PRESERVING_UNARY or op in ("/", "pow", "mod"):
        # For the binaries only the first operand's zeros survive
        # (0 / y == 0, 0 ** y == 0 for y > 0, 0 %% y == 0).
        return ds[0]
    return 1.0


class Node:
    """Base class for DAG nodes.

    ``shape`` is ``()`` for scalars, ``(n,)`` for vectors, ``(r, c)`` for
    matrices.  ``children`` is a tuple of child nodes.  ``density`` is
    the estimated fraction of nonzero elements (1.0 when unknown); the
    rewriter uses it to order matrix chains and pick sparse vs. dense
    kernels through the nnz-parameterized cost models.
    """

    shape: tuple[int, ...] = ()
    children: tuple["Node", ...] = ()
    density: float = 1.0

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def estimated_nnz(self) -> float:
        """Expected nonzero count under the density estimate."""
        return self.density * self.size

    def key(self) -> tuple:
        """Structural identity for CSE (children by object id)."""
        return (type(self).__name__,
                tuple(id(c) for c in self.children))

    def with_children(self, children: tuple["Node", ...]) -> "Node":
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.label()} shape={self.shape}>"


class ArrayInput(Node):
    """A stored array (leaf): wraps a TiledVector/TiledMatrix or ndarray."""

    def __init__(self, data, name: str = "") -> None:
        self.data = data
        self.name = name or getattr(data, "name", "input")
        if hasattr(data, "length"):          # TiledVector
            self.shape = (data.length,)
        elif hasattr(data, "shape"):          # TiledMatrix / ndarray
            self.shape = tuple(int(s) for s in data.shape)
        else:
            raise TypeError(f"cannot wrap {type(data).__name__}")
        nnz = getattr(data, "nnz", None)      # SparseTiledMatrix
        if nnz is not None and self.size:
            self.density = nnz / self.size

    def key(self) -> tuple:
        return ("ArrayInput", id(self.data))

    def with_children(self, children) -> "ArrayInput":
        return self

    def label(self) -> str:
        return f"input:{self.name}"


class Scalar(Node):
    """A scalar constant."""

    def __init__(self, value: float) -> None:
        self.value = float(value)
        self.shape = ()
        self.density = 0.0 if self.value == 0.0 else 1.0

    def key(self) -> tuple:
        return ("Scalar", self.value)

    def with_children(self, children) -> "Scalar":
        return self

    def label(self) -> str:
        return f"{self.value:g}"


class Range(Node):
    """The virtual vector ``lo:hi`` — generated on demand, never stored."""

    def __init__(self, lo: int, hi: int) -> None:
        if hi < lo:
            raise ValueError(f"descending ranges unsupported: {lo}:{hi}")
        self.lo = int(lo)
        self.hi = int(hi)
        self.shape = (self.hi - self.lo + 1,)

    def key(self) -> tuple:
        return ("Range", self.lo, self.hi)

    def with_children(self, children) -> "Range":
        return self

    def label(self) -> str:
        return f"{self.lo}:{self.hi}"


def _broadcast_shape(shapes: list[tuple[int, ...]], op: str
                     ) -> tuple[int, ...]:
    array_shapes = [s for s in shapes if s != ()]
    if not array_shapes:
        return ()
    first = array_shapes[0]
    for s in array_shapes[1:]:
        if s != first:
            raise ValueError(
                f"non-conformable operands for {op!r}: {shapes}")
    return first


class Map(Node):
    """Elementwise operation over aligned operands (scalars broadcast).

    These are the nodes the evaluator fuses into single streaming passes —
    the loop-fusion / array-contraction optimization of §3 ("we could in
    fact compute d without materializing any of the twelve intermediate
    results").
    """

    def __init__(self, op: str, *children: Node) -> None:
        arity = len(children)
        if arity == 1 and op in UNARY_OPS:
            pass
        elif arity == 2 and op in BINARY_OPS:
            pass
        elif arity == 3 and op in TERNARY_OPS:
            pass
        else:
            raise ValueError(f"unknown op {op!r} with arity {arity}")
        self.op = op
        self.children = tuple(children)
        self.shape = _broadcast_shape([c.shape for c in children], op)
        self.density = _estimate_map_density(op, self.children)

    def key(self) -> tuple:
        return ("Map", self.op, tuple(id(c) for c in self.children))

    def with_children(self, children) -> "Map":
        return Map(self.op, *children)

    def label(self) -> str:
        return self.op


class Subscript(Node):
    """``src[index]`` with a 1-based integer index vector."""

    def __init__(self, src: Node, index: Node) -> None:
        if src.ndim != 1:
            raise ValueError("Subscript currently applies to vectors")
        if index.ndim != 1:
            raise ValueError("index must be a vector")
        self.children = (src, index)
        self.shape = index.shape
        self.density = src.density

    @property
    def src(self) -> Node:
        return self.children[0]

    @property
    def index(self) -> Node:
        return self.children[1]

    def with_children(self, children) -> "Subscript":
        return Subscript(children[0], children[1])

    def label(self) -> str:
        return "[]"


class SubscriptAssign(Node):
    """The pure ``[]<-`` operator of Figure 2.

    Takes the old state, a *logical mask* (elementwise aligned) or a
    positional index vector, and the replacement value; returns the new
    state.  Nothing is modified in place, which is exactly what allows
    further deferral and the Figure-2 pushdown.
    """

    def __init__(self, base: Node, index: Node, value: Node,
                 logical_mask: bool) -> None:
        if logical_mask and index.shape != base.shape:
            raise ValueError("logical mask must align with the base")
        self.children = (base, index, value)
        self.logical_mask = logical_mask
        self.shape = base.shape
        # Assigning zeros can only clear elements; anything else may fill.
        self.density = (base.density if value.density == 0.0
                        else min(1.0, base.density + value.density))

    @property
    def base(self) -> Node:
        return self.children[0]

    @property
    def index(self) -> Node:
        return self.children[1]

    @property
    def value(self) -> Node:
        return self.children[2]

    def key(self) -> tuple:
        return ("SubscriptAssign", self.logical_mask,
                tuple(id(c) for c in self.children))

    def with_children(self, children) -> "SubscriptAssign":
        return SubscriptAssign(children[0], children[1], children[2],
                               self.logical_mask)

    def label(self) -> str:
        return "[]<-"


class MatMul(Node):
    """Matrix multiplication — a first-class operator (§5: *"This approach
    departs from those that are more minimalist in design"*).

    ``kernel`` is an execution hint the rewriter sets from the
    nnz-parameterized cost models: ``"auto"`` (default, evaluator
    decides from the forced operand types), ``"sparse"`` (keep sparse
    operands sparse), or ``"dense"`` (densify sparse operands and run
    the Appendix-A square-tile multiply).

    ``trans_a``/``trans_b`` are *operand flags*: the product uses the
    transpose of the corresponding operand, but the operand itself is
    read in its stored layout — each tile is transposed in memory as it
    streams through, so the transposed copy never exists on disk.  The
    rewriter sets them by absorbing :class:`Transpose` children
    (``t(A) %*% B -> MatMul(A, B, trans_a=True)``).
    """

    KERNELS = ("auto", "sparse", "dense")

    def __init__(self, a: Node, b: Node, kernel: str = "auto",
                 trans_a: bool = False, trans_b: bool = False) -> None:
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("MatMul operands must be matrices")
        sa = a.shape[::-1] if trans_a else a.shape
        sb = b.shape[::-1] if trans_b else b.shape
        if sa[1] != sb[0]:
            raise ValueError(
                f"non-conformable: {sa} x {sb}")
        if kernel not in self.KERNELS:
            raise ValueError(f"unknown kernel hint {kernel!r}")
        if kernel == "sparse" and (trans_a or trans_b):
            raise ValueError(
                "transposed operand flags imply dense execution; the "
                "sparse kernels have no flagged variants")
        self.children = (a, b)
        self.shape = (sa[0], sb[1])
        self.kernel = kernel
        self.trans_a = bool(trans_a)
        self.trans_b = bool(trans_b)
        from .costs import matmul_result_density
        self.density = matmul_result_density(
            a.density, b.density, sa[1])

    def key(self) -> tuple:
        return ("MatMul", self.kernel, self.trans_a, self.trans_b,
                tuple(id(c) for c in self.children))

    def with_children(self, children) -> "MatMul":
        return MatMul(children[0], children[1], kernel=self.kernel,
                      trans_a=self.trans_a, trans_b=self.trans_b)

    def label(self) -> str:
        left = "t(a)" if self.trans_a else "a"
        right = "t(b)" if self.trans_b else "b"
        base = ("%*%" if not (self.trans_a or self.trans_b)
                else f"%*%[{left},{right}]")
        return base if self.kernel == "auto" else f"{base}[{self.kernel}]"


class Crossprod(Node):
    """The symmetric product ``t(A) %*% A`` (R's ``crossprod``), or
    ``A %*% t(A)`` (``tcrossprod``) when ``t_first`` is False.

    A first-class node because the symmetry is worth a dedicated
    schedule: the kernel computes only the upper-triangular output
    blocks (half the multiply FLOPs, half the operand reads) and
    mirrors each block to its transposed position on write.  The
    rewriter produces it from ``t(A) %*% A`` patterns; nothing ever
    materializes ``t(A)``.
    """

    def __init__(self, a: Node, t_first: bool = True) -> None:
        if a.ndim != 2:
            raise ValueError("Crossprod operand must be a matrix")
        self.children = (a,)
        self.t_first = bool(t_first)
        inner, k = a.shape if t_first else a.shape[::-1]
        self.shape = (k, k)
        from .costs import matmul_result_density
        self.density = matmul_result_density(a.density, a.density, inner)

    def key(self) -> tuple:
        return ("Crossprod", self.t_first,
                tuple(id(c) for c in self.children))

    def with_children(self, children) -> "Crossprod":
        return Crossprod(children[0], t_first=self.t_first)

    def label(self) -> str:
        return "crossprod" if self.t_first else "tcrossprod"


class Solve(Node):
    """``solve(A, B)``: the solution of the linear system ``A X = B``.

    A first-class operator like MatMul and Transpose (§5 names LU
    decomposition in the expression algebra; this is its consumer).
    ``B`` may be a vector or a matrix of right-hand-side columns; the
    result has B's shape.  Executed by pivoted out-of-core LU plus
    blocked substitution — never by materializing ``inv(A)``, which is
    exactly what the ``inv(A) %*% B -> solve(A, B)`` rewrite exploits.
    """

    def __init__(self, a: Node, b: Node) -> None:
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(
                f"solve() needs a square coefficient matrix, got "
                f"{a.shape}")
        if b.ndim not in (1, 2):
            raise ValueError("solve() RHS must be a vector or matrix")
        if b.shape[0] != a.shape[0]:
            raise ValueError(
                f"non-conformable system: {a.shape} vs RHS {b.shape}")
        self.children = (a, b)
        self.shape = b.shape

    def with_children(self, children) -> "Solve":
        return Solve(children[0], children[1])

    def label(self) -> str:
        return "solve"


class Inverse(Node):
    """``inv(A)`` — the explicit matrix inverse.

    Present in the algebra so user programs can write it, but plans
    should rarely execute it: the rewriter turns ``inv(A) %*% B`` into
    :class:`Solve`, the classic algebraic optimization a SQL-hosted
    system cannot see.  Forcing an Inverse directly materializes it by
    one pivoted factorization and per-panel substitution sweeps.
    """

    def __init__(self, a: Node) -> None:
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(
                f"inv() needs a square matrix, got {a.shape}")
        self.children = (a,)
        self.shape = a.shape

    def with_children(self, children) -> "Inverse":
        return Inverse(children[0])

    def label(self) -> str:
        return "inv"


class Transpose(Node):
    """Matrix transpose."""

    def __init__(self, a: Node) -> None:
        if a.ndim != 2:
            raise ValueError("Transpose operand must be a matrix")
        self.children = (a,)
        self.shape = (a.shape[1], a.shape[0])
        self.density = a.density

    def with_children(self, children) -> "Transpose":
        return Transpose(children[0])

    def label(self) -> str:
        return "t"


class Reduce(Node):
    """Full reduction to a scalar: sum | mean | min | max."""

    _OPS = ("sum", "mean", "min", "max")

    def __init__(self, op: str, child: Node) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown reduction {op!r}")
        self.op = op
        self.children = (child,)
        self.shape = ()

    def key(self) -> tuple:
        return ("Reduce", self.op, tuple(id(c) for c in self.children))

    def with_children(self, children) -> "Reduce":
        return Reduce(self.op, children[0])

    def label(self) -> str:
        return self.op


# ----------------------------------------------------------------------
# DAG utilities
# ----------------------------------------------------------------------
def walk(node: Node, _seen: set[int] | None = None):
    """Yield each distinct node of the DAG once, children first."""
    seen = _seen if _seen is not None else set()
    if id(node) in seen:
        return
    seen.add(id(node))
    for child in node.children:
        yield from walk(child, seen)
    yield node


def count_nodes(node: Node) -> int:
    return sum(1 for _ in walk(node))


def to_dot(node: Node) -> str:
    """Graphviz rendering of a DAG (used to reproduce Figure 2 visually)."""
    lines = ["digraph dag {", "  node [shape=box];"]
    ids: dict[int, int] = {}
    for n in walk(node):
        ids[id(n)] = len(ids)
        lines.append(f'  n{ids[id(n)]} [label="{n.label()}"];')
    for n in walk(node):
        for c in n.children:
            lines.append(f"  n{ids[id(n)]} -> n{ids[id(c)]};")
    lines.append("}")
    return "\n".join(lines)


def render(node: Node, indent: int = 0,
           _seen: set[int] | None = None) -> str:
    """Indented text rendering of a DAG (shared nodes marked)."""
    seen = _seen if _seen is not None else set()
    pad = "  " * indent
    if id(node) in seen and node.children:
        return f"{pad}{node.label()} (shared)"
    seen.add(id(node))
    lines = [f"{pad}{node.label()}"]
    for c in node.children:
        lines.append(render(c, indent + 1, seen))
    return "\n".join(lines)
