"""Next-generation RIOT (§5): expression DAGs, rewrites, cost models.

Public API::

    from repro.core import RiotSession
    from repro.storage import StorageConfig

    s = RiotSession(storage=StorageConfig(memory_bytes=64 << 20))
    x = s.random_vector(1 << 20, seed=1)
    d = ((x - 3.0) ** 2).sqrt()
    z = d[s.arange(1, 100)]     # deferred
    z.values()                  # selective evaluation: touches ~1 chunk
"""

from . import chain, costs, passes
from .arrays import RiotMatrix, RiotVector
from .config import OptimizerConfig
from .evaluator import Evaluator
from .expr import (ArrayInput, Crossprod, Inverse, Map, MatMul, Node,
                   Range, Reduce, Scalar, Solve, Subscript,
                   SubscriptAssign, Transpose, count_nodes, render,
                   to_dot, walk)
from .plan import PhysicalPlan
from .planner import Planner
from .rewrite import Rewriter, optimize
from .session import RiotSession

__all__ = [
    "ArrayInput", "Crossprod", "Evaluator", "Inverse", "Map", "MatMul",
    "Node", "OptimizerConfig", "PhysicalPlan", "Planner", "Range",
    "Reduce", "RiotMatrix", "RiotSession", "RiotVector",
    "Rewriter", "Scalar", "Solve", "Subscript", "SubscriptAssign",
    "Transpose", "chain", "costs", "count_nodes", "optimize", "passes",
    "render", "to_dot", "walk",
]
