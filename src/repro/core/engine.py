"""Next-generation RIOT as an R-language engine.

The same transparency mechanism that plugged RIOT-DB into R (§4) plugs the
§5 expression-DAG engine in as well: ``riotvector``/``riotmatrix`` classes
register methods on the generics table, every R operation builds DAG nodes,
and evaluation happens only at ``print``/reductions — now executed by the
streaming evaluator over the tile store instead of a relational backend.

This is the engine the paper's conclusion promises: *"With a specialized
storage engine, algorithms, and database-style optimization strategies
tailored towards numerical computing, we expect the next generation of RIOT
to make significant further gain in I/O-efficiency."*
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import Engine
from repro.rlang.generics import Generics
from repro.rlang.reference import format_vector
from repro.rlang.values import MissingIndex, RError, RScalar
from repro.storage import IOStats, SimClock, StorageConfig

from .expr import (ArrayInput, COMPARISON_OPS, Crossprod, Inverse, Map,
                   MatMul, Node, Range, Reduce, Scalar, Solve, Subscript,
                   SubscriptAssign, Transpose)
from .session import RiotSession


class NGVec:
    """A deferred vector: a DAG node plus logical-ness metadata."""

    def __init__(self, session: RiotSession, node: Node,
                 logical: bool = False) -> None:
        self.session = session
        self.node = node
        self.logical = logical

    @property
    def length(self) -> int:
        return self.node.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NGVec(n={self.length}, deferred)"


class NGMat:
    """A deferred matrix handle."""

    def __init__(self, session: RiotSession, node: Node) -> None:
        self.session = session
        self.node = node

    @property
    def shape(self) -> tuple[int, int]:
        return self.node.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NGMat(shape={self.shape}, deferred)"


#: R operator name -> DAG Map op.
_OP_MAP = {
    "+": "+", "-": "-", "*": "*", "/": "/", "^": "pow", "%%": "mod",
    "==": "==", "!=": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">=",
    "&": "and", "|": "or",
}

_UNARY_MAP = {
    "sqrt": "sqrt", "abs": "abs", "exp": "exp", "log": "log",
    "floor": "floor", "ceiling": "ceil",
}


class RiotNGEngine(Engine):
    """Deferred DAG engine behind the standard R interpreter."""

    name = "RIOT (next-gen)"

    def __init__(self, memory_bytes: int = 68 * 1024 * 1024,
                 block_size: int = 8192, optimize: bool = True,
                 config=None, storage=None) -> None:
        """``config`` (an :class:`~repro.core.config.OptimizerConfig`)
        overrides the boolean ``optimize`` switch: pass
        ``OptimizerConfig(level=1)`` for logical rewriting without
        cost-based planning, or per-pass overrides for ablations.
        ``storage`` (a :class:`~repro.storage.StorageConfig`) selects
        the backend/page file; ``memory_bytes``/``block_size`` are
        ignored when it is given."""
        Engine.__init__(self)
        if storage is None:
            storage = StorageConfig(memory_bytes=memory_bytes,
                                    block_size=block_size)
        self.session = RiotSession(storage=storage,
                                   optimize=optimize,
                                   config=config)
        self.generics = Generics()
        self._register_all()

    # -- constructors -----------------------------------------------------
    def make_vector(self, data: np.ndarray) -> NGVec:
        stored = self.session.store.vector_from_numpy(
            np.asarray(data, dtype=np.float64))
        return NGVec(self.session, ArrayInput(stored))

    def make_matrix(self, data: np.ndarray) -> NGMat:
        stored = self.session.store.matrix_from_numpy(
            np.asarray(data, dtype=np.float64), layout="square")
        return NGMat(self.session, ArrayInput(stored))

    def make_sparse_matrix(self, rows, cols, values,
                           shape: tuple[int, int]) -> NGMat:
        """Store 0-based COO triplets as CSR tiles (``sparseMatrix``)."""
        from repro.sparse import SparseTiledMatrix
        stored = SparseTiledMatrix.from_coo(
            self.session.store, rows, cols, values, shape)
        return NGMat(self.session, ArrayInput(stored))

    # -- registration ------------------------------------------------------
    def _register_all(self) -> None:
        g = self.generics
        for op in _OP_MAP:
            g.set_method(op, (NGVec, NGVec), self._vv(op))
            g.set_method(op, (NGVec, RScalar), self._vs(op, False))
            g.set_method(op, (RScalar, NGVec), self._vs(op, True))
            g.set_method(op, (NGMat, NGMat), self._mm(op))
            g.set_method(op, (NGMat, RScalar), self._ms(op, False))
            g.set_method(op, (RScalar, NGMat), self._ms(op, True))
        for rname, dag in _UNARY_MAP.items():
            g.set_method(rname, (NGVec,), self._unary_vec(dag))
            g.set_method(rname, (NGMat,), self._unary_mat(dag))
        g.set_method("unary-", (NGVec,), self._unary_vec("neg"))
        g.set_method("unary-", (NGMat,), self._unary_mat("neg"))
        g.set_method("unary!", (NGVec,), self._not)
        for red in ("sum", "mean", "min", "max"):
            g.set_method(red, (NGVec,), self._reduction(red))
            g.set_method(red, (NGMat,), self._reduction(red))
        g.set_method("all", (NGVec,), lambda v: RScalar(
            bool(self._force_reduce("min", v) != 0)))
        g.set_method("any", (NGVec,), lambda v: RScalar(
            bool(self._force_reduce("max", v) != 0)))
        g.set_method("length", (NGVec,), lambda v: RScalar(v.length))
        g.set_method("length", (NGMat,), lambda m: RScalar(
            m.shape[0] * m.shape[1]))
        g.set_method("dim", (NGMat,), lambda m: self.make_vector(
            np.asarray(m.shape, dtype=np.float64)))
        g.set_method("range", (RScalar, RScalar), self._range)
        g.set_method("concat", (object,), self._concat)
        g.set_method("concat", (object, object), self._concat)
        g.set_method("concat", (object, object, object), self._concat)
        g.set_method("[", (NGVec, object), self._index)
        g.set_method("[<-", (NGVec, object, object), self._assign)
        g.set_method("%*%", (NGMat, NGMat), self._matmul)
        g.set_method("solve", (NGMat,), self._inverse)
        g.set_method("solve", (NGMat, NGMat), self._solve)
        g.set_method("solve", (NGMat, NGVec), self._solve)
        g.set_method("t", (NGMat,), self._transpose)
        g.set_method("crossprod", (NGMat, NGMat), self._crossprod)
        g.set_method("tcrossprod", (NGMat, NGMat), self._tcrossprod)
        g.set_method("reshape", (NGVec, RScalar, RScalar), self._reshape)
        g.set_method("explain", (NGVec,),
                     lambda v: self.session.explain(v.node))
        g.set_method("explain", (NGMat,),
                     lambda m: self.session.explain(m.node))
        g.set_method("explain_analyze", (NGVec,),
                     lambda v: self.session.explain(v.node,
                                                    analyze=True))
        g.set_method("explain_analyze", (NGMat,),
                     lambda m: self.session.explain(m.node,
                                                    analyze=True))
        g.set_method("print", (NGVec,), self._print_vector)
        g.set_method("print", (NGMat,), self._print_matrix)
        g.set_method("iterate", (NGVec,),
                     lambda v: self._values(v).tolist())
        g.set_method("first", (NGVec,), self._first)
        g.set_method("which", (NGVec,), self._which)
        g.set_method("head", (NGVec, RScalar), self._head)

    # -- helpers -------------------------------------------------------------
    def _values(self, v) -> np.ndarray:
        result = self.session.values(v.node)
        return np.asarray(result)

    def _force_reduce(self, op: str, v: NGVec) -> float:
        return float(self.session.force(Reduce(op, v.node)))

    def _logical_op(self, op: str) -> bool:
        return op in COMPARISON_OPS

    # -- operator factories ------------------------------------------------
    def _vv(self, op: str):
        def call(a: NGVec, b: NGVec) -> NGVec:
            dag = _OP_MAP[op]
            return NGVec(self.session, Map(dag, a.node, b.node),
                         logical=self._logical_op(dag))
        return call

    def _vs(self, op: str, swap: bool):
        def call(x, y) -> NGVec:
            vec, scalar = (y, x) if swap else (x, y)
            const = Scalar(scalar.as_float())
            args = (const, vec.node) if swap else (vec.node, const)
            dag = _OP_MAP[op]
            return NGVec(self.session, Map(dag, *args),
                         logical=self._logical_op(dag))
        return call

    def _mm(self, op: str):
        def call(a: NGMat, b: NGMat) -> NGMat:
            return NGMat(self.session, Map(_OP_MAP[op], a.node, b.node))
        return call

    def _ms(self, op: str, swap: bool):
        def call(x, y) -> NGMat:
            mat, scalar = (y, x) if swap else (x, y)
            const = Scalar(scalar.as_float())
            args = (const, mat.node) if swap else (mat.node, const)
            return NGMat(self.session, Map(_OP_MAP[op], *args))
        return call

    def _unary_vec(self, dag: str):
        def call(v: NGVec) -> NGVec:
            return NGVec(self.session, Map(dag, v.node))
        return call

    def _unary_mat(self, dag: str):
        def call(m: NGMat) -> NGMat:
            return NGMat(self.session, Map(dag, m.node))
        return call

    def _not(self, v: NGVec) -> NGVec:
        return NGVec(self.session, Map("not", v.node), logical=True)

    def _reduction(self, red: str):
        def call(obj) -> RScalar:
            return RScalar(float(self.session.force(
                Reduce(red, obj.node))))
        return call

    def _range(self, lo: RScalar, hi: RScalar) -> NGVec:
        return NGVec(self.session, Range(lo.as_int(), hi.as_int()))

    def _concat(self, *parts) -> NGVec:
        arrays = []
        for p in parts:
            if isinstance(p, RScalar):
                arrays.append(np.asarray([p.as_float()]))
            elif isinstance(p, NGVec):
                arrays.append(self._values(p))
            else:
                raise RError(f"cannot concatenate {type(p).__name__}")
        return self.make_vector(np.concatenate(arrays))

    # -- subscripts -----------------------------------------------------------
    def _index(self, x: NGVec, idx):
        if isinstance(idx, MissingIndex):
            return x
        if isinstance(idx, RScalar):
            node = Subscript(x.node, Range(idx.as_int(), idx.as_int()))
            values = self.session.values(node)
            return RScalar(float(np.asarray(values)[0]))
        if idx.logical:
            # Forces the mask (positions are data-dependent).
            mask = self._values(idx).astype(bool)
            positions = np.flatnonzero(mask) + 1
            stored = self.session.store.vector_from_numpy(
                positions.astype(np.float64))
            return NGVec(self.session,
                         Subscript(x.node, ArrayInput(stored)),
                         logical=x.logical)
        return NGVec(self.session, Subscript(x.node, idx.node),
                     logical=x.logical)

    def _assign(self, x: NGVec, idx, value) -> NGVec:
        value_node = (Scalar(value.as_float())
                      if isinstance(value, RScalar) else value.node)
        if isinstance(idx, NGVec) and idx.logical:
            return NGVec(self.session, SubscriptAssign(
                x.node, idx.node, value_node, logical_mask=True),
                logical=x.logical)
        if isinstance(idx, RScalar):
            index_node: Node = Range(idx.as_int(), idx.as_int())
        elif isinstance(idx, NGVec):
            index_node = idx.node
        else:
            raise RError("unsupported subscript in assignment")
        return NGVec(self.session, SubscriptAssign(
            x.node, index_node, value_node, logical_mask=False),
            logical=x.logical)

    # -- linear algebra -----------------------------------------------------
    def _matmul(self, a: NGMat, b: NGMat) -> NGMat:
        return NGMat(self.session, MatMul(a.node, b.node))

    def _inverse(self, a: NGMat) -> NGMat:
        """``solve(a)``: the deferred explicit inverse.

        Deferred like everything else, so ``solve(a) %*% b`` is
        rewritten into a single Solve node before evaluation.
        """
        return NGMat(self.session, Inverse(a.node))

    def _solve(self, a: NGMat, b):
        """``solve(a, b)``: defer the linear system ``a %*% x == b``."""
        node = Solve(a.node, b.node)
        if node.ndim == 1:
            return NGVec(self.session, node)
        return NGMat(self.session, node)

    def _transpose(self, m: NGMat) -> NGMat:
        return NGMat(self.session, Transpose(m.node))

    def _crossprod(self, a: NGMat, b: NGMat) -> NGMat:
        """``crossprod(a[, b])``: t(a) %*% b with an operand flag — the
        transpose never exists on disk.  With one argument (b is a) the
        node is the symmetric :class:`Crossprod`."""
        if a.node is b.node:
            return NGMat(self.session, Crossprod(a.node))
        return NGMat(self.session, MatMul(a.node, b.node, trans_a=True))

    def _tcrossprod(self, a: NGMat, b: NGMat) -> NGMat:
        """``tcrossprod(a[, b])``: a %*% t(b), transpose-free."""
        if a.node is b.node:
            return NGMat(self.session, Crossprod(a.node, t_first=False))
        return NGMat(self.session, MatMul(a.node, b.node, trans_b=True))

    def _reshape(self, v: NGVec, nrow: RScalar, ncol: RScalar) -> NGMat:
        n1, n2 = nrow.as_int(), ncol.as_int()
        if n1 * n2 != v.length:
            raise RError("reshape size mismatch")
        data = self._values(v).reshape((n1, n2), order="F")
        return self.make_matrix(data)

    # -- inspection --------------------------------------------------------
    def _print_vector(self, x: NGVec) -> str:
        values = self._values(x)
        if x.logical:
            values = values.astype(bool)
        return format_vector(values)

    def _print_matrix(self, m: NGMat) -> str:
        data = self.session.force(m.node)
        arr = data.to_numpy() if hasattr(data, "to_numpy") else data
        rows, cols = arr.shape
        lines = [f"matrix {rows}x{cols}"]
        for r in range(min(rows, 6)):
            vals = " ".join(f"{v:g}" for v in arr[r, :min(cols, 8)])
            lines.append(f"[{r + 1},] {vals}{' ...' if cols > 8 else ''}")
        if rows > 6:
            lines.append("...")
        return "\n".join(lines)

    def _first(self, x: NGVec) -> RScalar:
        node = Subscript(x.node, Range(1, 1))
        return RScalar(float(np.asarray(self.session.values(node))[0]))

    def _which(self, x: NGVec) -> NGVec:
        mask = self._values(x).astype(bool)
        return self.make_vector((np.flatnonzero(mask) + 1
                                 ).astype(np.float64))

    def _head(self, x: NGVec, n: RScalar) -> NGVec:
        return NGVec(self.session,
                     Subscript(x.node, Range(1, min(n.as_int(),
                                                    x.length))),
                     logical=x.logical)

    # -- metrics -------------------------------------------------------------
    def io_stats(self) -> IOStats:
        return self.session.io_stats

    def reset_stats(self) -> None:
        self.session.reset_stats()
        self.clock = SimClock()

    def sim_seconds(self) -> float:
        io = self.io_stats()
        values_scanned = io.reads * (
            self.session.store.device.block_size // 8)
        return (self.clock.seconds(io)
                + 2 * values_scanned * self.clock.cpu_op_cost)
