"""Streaming evaluator: executes optimized DAGs over the tile store.

Execution strategy, following §5:

- **Fused elementwise regions.**  A maximal subtree of Map /
  logical-mask-SubscriptAssign nodes is evaluated chunk by chunk in one
  pass: for every chunk the operand chunks are read, the whole scalar
  expression tree is applied, and one result chunk is written.  No
  intermediate vector ever exists — the loop-fusion / array-contraction
  behaviour the paper says a hand-coder would write.
- **Gather for subscripts.**  After the rewriter has pushed subscripts to
  the leaves, ``x[s]`` touches only the chunks containing the selected
  elements (selective evaluation).  If rewriting is disabled, the source is
  forced to a temporary first — the exact cost difference the Figure-2
  ablation bench measures.
- **Out-of-core matmul.**  MatMul nodes call the Appendix-A square-tile
  algorithm; chains have already been reordered by the DP.  Transposed
  operand flags stream the stored tiles and transpose them in memory;
  ``Crossprod`` runs the symmetric half-the-blocks schedule.
- **Fused matmul epilogues.**  A matrix Map region fed by exactly one
  MatMul/Crossprod (``alpha * (A %*% B) + C``) is pushed *into* the
  multiply as an epilogue callback: the elementwise expression is applied
  to each output submatrix while it is still memory-resident and written
  once — the raw product never reaches disk.
- **Streaming reductions** accumulate across chunks without materializing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np

from repro.linalg.matmul import (bnlj_matmul, crossprod_matmul,
                                 square_tile_matmul)
from repro.storage import ArrayStore, TiledMatrix, TiledVector

from .expr import (ArrayInput, BINARY_OPS, Crossprod, Inverse, Map,
                   MatMul, Node, Range, Reduce, Scalar, Solve, Subscript,
                   SubscriptAssign, TERNARY_OPS, Transpose, UNARY_OPS,
                   walk)
from .parallel import resolve_parallelism
from .plan import (BnljOp, CrossprodOp, FusedEpilogueOp, PhysOp,
                   PhysicalPlan, SparseSpGEMMOp, SparseSpMMOp,
                   TileMatMulOp)

#: Chunks of lookahead announced to the buffer pool during streaming.
STREAM_PREFETCH_CHUNKS = 16


def streamable(node: Node) -> bool:
    """Can this node be computed chunk-aligned from its children?"""
    if isinstance(node, (Scalar, Range, ArrayInput)):
        return True
    if isinstance(node, Map):
        return all(streamable(c) for c in node.children)
    if isinstance(node, SubscriptAssign) and node.logical_mask:
        return all(streamable(c) for c in node.children)
    return False


def collect_barriers(node: Node, barriers: list[Node],
                     seen: set[int]) -> None:
    """Find maximal non-streamable subtrees under a streaming region."""
    if id(node) in seen:
        return
    seen.add(id(node))
    if streamable(node):
        for c in node.children:
            collect_barriers(c, barriers, seen)
    else:
        barriers.append(node)


class Evaluator:
    """Evaluates DAG nodes to tiled arrays / scalars over an ArrayStore."""

    def __init__(self, store: ArrayStore,
                 memory_scalars: int | None = None,
                 fuse_epilogues: bool = True,
                 strict: bool = False,
                 parallelism: int | None = None) -> None:
        self.store = store
        self.memory_scalars = memory_scalars or (
            store.pool.capacity * store.scalars_per_block)
        self.fuse_epilogues = fuse_epilogues
        #: Run repro.analysis.planlint.verify_plan before every
        #: execute() (OptimizerConfig(strict=True) sets this).
        self.strict = strict
        #: Worker count for plan- and tile-level parallelism.  ``None``
        #: defers to $REPRO_PARALLELISM (default 1 = serial), so a CI
        #: run can parallelize every evaluator without code changes.
        self.parallelism = resolve_parallelism(parallelism)
        # Worker pools are created lazily (first parallel execution)
        # and live for the evaluator's lifetime; see shutdown().
        self._op_executors: dict[int, object] = {}
        self._tile_parallel = None
        self._serial_kernels = False
        #: True while executing a PhysicalPlan: fuse-vs-materialize was
        #: decided by the planner, so the runtime fusion heuristic of
        #: the tree-dispatch fallback must stay out of the way.
        self._executing_plan = False
        self._parent_edges: dict[int, int] = {}
        # Sparse matrix -> its dense twin, so a sparse object consumed
        # by several dense-only contexts is converted (read fully +
        # written as dense tiles) once, not once per consumer.
        self._densified_cache: dict[int, tuple[object, object]] = {}

    # ------------------------------------------------------------------
    # Parallelism plumbing
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Join this evaluator's worker pools (idempotent)."""
        for ex in self._op_executors.values():
            ex.shutdown()
        self._op_executors.clear()
        if self._tile_parallel is not None:
            self._tile_parallel.shutdown()
            self._tile_parallel = None

    def _plan_executor(self, workers: int):
        ex = self._op_executors.get(workers)
        if ex is None:
            from .parallel import ParallelExecutor
            ex = self._op_executors[workers] = \
                ParallelExecutor(self, workers)
        return ex

    def _kernel_parallel(self):
        """The shared TileParallelism, or None when running serial.

        Tile-level parallelism is measurement-safe (all pool/device
        traffic stays on the calling thread in serial order), so it is
        active even on cold measured runs — except under
        :meth:`serial_kernels`, which forces an honest workers=1
        baseline.
        """
        if self.parallelism <= 1 or self._serial_kernels:
            return None
        if self._tile_parallel is None:
            from .parallel import TileParallelism
            self._tile_parallel = TileParallelism(self.parallelism)
        return self._tile_parallel

    @contextmanager
    def serial_kernels(self):
        """Disable tile-level kernel parallelism inside the block.

        Used by ``explain(analyze=True)``'s baseline run: the serial
        wall time it compares the parallel schedule against must not
        get tile-parallel help.
        """
        prev = self._serial_kernels
        self._serial_kernels = True
        try:
            yield
        finally:
            self._serial_kernels = prev

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def force(self, node: Node, memo: dict[int, object] | None = None):
        """Evaluate ``node``; returns TiledVector/TiledMatrix or float.

        The densified-twin cache only needs to live for one evaluation
        (its job is de-duplicating conversions *within* a DAG): it is
        cleared on entry and drained again on exit, so a long session
        never pins the sparse operands it densified — not even the
        last evaluation's.
        """
        self._densified_cache.clear()
        # Parent-edge counts over the whole root DAG: epilogue fusion
        # evaluates a region's products and interior Maps without
        # memoizing them, so it must only fire when *every* consumer of
        # those nodes sits inside the fused region — otherwise the
        # multiply would silently run twice.
        self._parent_edges = {}
        if self.fuse_epilogues:
            for n in walk(node):
                for c in n.children:
                    self._parent_edges[id(c)] = \
                        self._parent_edges.get(id(c), 0) + 1
        memo = memo if memo is not None else {}
        try:
            return self._force(node, memo)
        finally:
            self._densified_cache.clear()

    # ------------------------------------------------------------------
    # Physical-plan execution
    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan,
                memo: dict[int, object] | None = None, *,
                cold: bool = False):
        """Execute a :class:`PhysicalPlan` operator by operator.

        Children run before their parents; results are memoized by
        logical node, so shared subplans run once.  Around each
        operator's own work the device and pool counters are sampled
        and the full deltas recorded — ``op.measured`` (IOStats:
        blocks, bytes, syscalls, read/write ns), ``op.pool_measured``
        (PoolStats) and ``op.wall_ns``, with ``op.measured_io`` keeping
        the plain block total ``session.explain()`` prints next to the
        prediction.  When the store's tracer is enabled each op is also
        bracketed in a span.

        ``cold=True`` measures under the cost models' own assumptions
        (EXPLAIN ANALYZE semantics): the pool is flushed and emptied
        first so inputs are read from the device rather than served
        from residue of earlier work, and the trailing write-back of
        dirty output frames is flushed and charged to the root
        operator — the same protocol the cost-agreement tests use, so
        measured/predicted ratios are comparable to the validated
        0.5–2.0x band.  (Writes
        are charged to the operator that triggered the device transfer:
        a dirty block evicted during a later operator counts there.
        Totals are exact, per-op splits approximate.)

        With ``parallelism > 1``, *warm* runs schedule independent
        operators onto the worker pool (see
        :class:`repro.core.parallel.ParallelExecutor`); results stay
        bitwise-identical.  ``cold=True`` runs always schedule ops
        serially — exclusive per-op deltas only sum exactly to the
        session totals when one op runs at a time — while tile-level
        kernel parallelism (which keeps all I/O on the calling thread)
        stays active either way.  Use :meth:`execute_parallel` to get
        a parallel schedule for a cold run.
        """
        self._verify_strict(plan)
        memo = memo if memo is not None else {}
        for op in plan.ops():
            op.measured_io = None
            op.measured = None
            op.pool_measured = None
            op.wall_ns = None
        self._densified_cache.clear()
        self._executing_plan = True
        if cold:
            self.store.pool.clear()
        try:
            with self.store.tracer.span(
                    f"execute:level{plan.level}", cat="session"):
                if cold or self.parallelism <= 1:
                    result = self._exec_op(plan.root, memo, set())
                else:
                    result = self._plan_executor(
                        self.parallelism).execute(plan, memo)
                if cold:
                    self._flush_into_root(plan.root)
            plan.executed = True
            return result
        finally:
            self._executing_plan = False
            self._densified_cache.clear()

    def _verify_strict(self, plan: PhysicalPlan) -> None:
        if not self.strict:
            return
        # Imported lazily: repro.analysis depends on repro.core,
        # not the other way around.
        from repro.analysis.planlint import verify_plan
        verify_plan(plan, memory_scalars=self.memory_scalars,
                    block_scalars=self.store.scalars_per_block)

    def execute_parallel(self, plan: PhysicalPlan,
                         memo: dict[int, object] | None = None, *,
                         cold: bool = False,
                         workers: int | None = None):
        """Execute a plan on the worker pool, recording its schedule.

        Unlike :meth:`execute` this never takes exclusive per-op
        deltas (``op.measured`` stays whatever it was — exactness
        needs serial op scheduling); instead it fills
        ``plan.parallel_schedule`` with per-op worker assignments and
        start/end times.  ``cold=True`` still empties the pool first
        and flushes dirty frames after, so the recorded wall time is
        comparable to a cold serial run's.  This is the first half of
        ``explain(analyze=True)``'s dual run.
        """
        self._verify_strict(plan)
        memo = memo if memo is not None else {}
        w = (self.parallelism if workers is None
             else resolve_parallelism(workers))
        self._densified_cache.clear()
        self._executing_plan = True
        if cold:
            self.store.pool.clear()
        try:
            with self.store.tracer.span(
                    f"execute:level{plan.level}", cat="session"):
                result = self._plan_executor(w).execute(plan, memo)
                if cold:
                    self.store.pool.flush_all()
            return result
        finally:
            self._executing_plan = False
            self._densified_cache.clear()

    def _flush_into_root(self, root: PhysOp) -> None:
        """Flush dirty frames, charging the write-back to the root op.

        The cost models price an operator's output *writes*; under
        write-back caching those blocks may still sit dirty in the pool
        when execution ends.  Folding the final flush into the root's
        delta keeps per-op sums equal to the session totals over the
        whole (cold) execution window.
        """
        io_before = self.store.device.stats.snapshot()
        pool_before = self.store.pool.stats.snapshot()
        start_ns = time.perf_counter_ns()
        self.store.pool.flush_all()
        if root.measured is not None:
            root.measured = root.measured.merged(
                self.store.device.stats.delta(io_before))
            root.measured_io = root.measured.total
        if root.pool_measured is not None:
            root.pool_measured = root.pool_measured.merged(
                self.store.pool.stats.delta(pool_before))
        if root.wall_ns is not None:
            root.wall_ns += time.perf_counter_ns() - start_ns

    def _exec_op(self, op: PhysOp, memo: dict[int, object],
                 done: set[int]):
        if id(op) in done:
            return memo[id(op.node)]
        for c in op.children:
            self._exec_op(c, memo, done)
        # Each operator's own work runs sequentially between these
        # snapshots (children already done), so per-op deltas sum
        # exactly to the session totals — the invariant the obs
        # hypothesis test asserts on random DAGs.
        io_before = self.store.device.stats.snapshot()
        pool_before = self.store.pool.stats.snapshot()
        start_ns = time.perf_counter_ns()
        with self.store.tracer.span(op.label(), cat="op"):
            result = self._dispatch_op(op, memo)
        op.wall_ns = time.perf_counter_ns() - start_ns
        op.measured = self.store.device.stats.delta(io_before)
        op.pool_measured = self.store.pool.stats.delta(pool_before)
        op.measured_io = op.measured.total
        done.add(id(op))
        memo[id(op.node)] = result
        return result

    def _dispatch_op(self, op: PhysOp, memo: dict[int, object]):
        """Run one operator's own work (children already in memo)."""
        node = op.node
        if isinstance(op, (TileMatMulOp, BnljOp)):
            a = self._as_tiled_matrix(memo[id(node.children[0])])
            b = self._as_tiled_matrix(memo[id(node.children[1])])
            if isinstance(op, BnljOp):
                return bnlj_matmul(self.store, a, b,
                                   self.memory_scalars,
                                   trans_a=node.trans_a,
                                   trans_b=node.trans_b)
            return square_tile_matmul(self.store, a, b,
                                      self.memory_scalars,
                                      trans_a=node.trans_a,
                                      trans_b=node.trans_b,
                                      parallel=self._kernel_parallel())
        if isinstance(op, SparseSpMMOp):
            from repro.sparse import spmm
            a = memo[id(node.children[0])]
            b = self._densified(memo[id(node.children[1])])
            return spmm(self.store, a, b, self.memory_scalars,
                        parallel=self._kernel_parallel())
        if isinstance(op, SparseSpGEMMOp):
            from repro.sparse import spgemm
            return spgemm(self.store, memo[id(node.children[0])],
                          memo[id(node.children[1])])
        if isinstance(op, CrossprodOp):
            a = self._as_tiled_matrix(memo[id(node.children[0])])
            return crossprod_matmul(self.store, a,
                                    self.memory_scalars,
                                    t_first=node.t_first,
                                    parallel=self._kernel_parallel())
        if isinstance(op, FusedEpilogueOp):
            return self._run_epilogue(node, op.barrier,
                                      op.matrix_nodes,
                                      op.scalar_nodes, memo)
        # Everything else (leaves, streams, gathers, scatters,
        # reductions, solves, inverses, transposes) executes through
        # the tree machinery; its barriers are already memoized, so
        # only this operator's own work happens here.
        return self._force(node, memo)

    def _force(self, node: Node, memo: dict[int, object]):
        if id(node) in memo:
            return memo[id(node)]
        result = self._force_inner(node, memo)
        memo[id(node)] = result
        return result

    def _force_inner(self, node: Node, memo: dict[int, object]):
        if isinstance(node, Scalar):
            return node.value
        if isinstance(node, ArrayInput):
            return node.data
        if isinstance(node, Range):
            out = self.store.create_vector(node.shape[0])
            for ci in range(out.num_chunks):
                lo, hi = out.chunk_bounds(ci)
                out.write_chunk(ci, np.arange(node.lo + lo, node.lo + hi,
                                              dtype=np.float64))
            return out
        if isinstance(node, Reduce):
            return self._force_reduce(node, memo)
        if isinstance(node, Subscript):
            return self._force_subscript(node, memo)
        if isinstance(node, MatMul):
            a = self._force(node.children[0], memo)
            b = self._force(node.children[1], memo)
            return self._dispatch_matmul(node, a, b)
        if isinstance(node, Crossprod):
            a = self._as_tiled_matrix(self._force(node.children[0],
                                                  memo))
            return crossprod_matmul(self.store, a, self.memory_scalars,
                                    t_first=node.t_first,
                                    parallel=self._kernel_parallel())
        if isinstance(node, Solve):
            return self._force_solve(node, memo)
        if isinstance(node, Inverse):
            return self._force_inverse(node, memo)
        if isinstance(node, Transpose):
            return self._force_transpose(node, memo)
        if isinstance(node, SubscriptAssign) and not node.logical_mask:
            return self._force_scatter(node, memo)
        if node.ndim == 1:
            return self._stream_vector(node, memo)
        if node.ndim == 2:
            if self.fuse_epilogues and not self._executing_plan \
                    and isinstance(node, Map):
                fused = self._try_fused_epilogue(node, memo)
                if fused is not None:
                    return fused
            return self._stream_matrix(node, memo)
        if node.ndim == 0:
            # Scalar-valued Map over reductions/constants.
            values = [self._force(c, memo) for c in node.children]
            if isinstance(node, Map):
                fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
                return float(fns[node.op](*values))
        raise NotImplementedError(
            f"cannot evaluate node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Matrix multiplication dispatch (dense and sparse kernels)
    # ------------------------------------------------------------------
    def _dispatch_matmul(self, node: MatMul, a, b):
        """Route a forced ``%*%`` to the right kernel.

        The rewriter's cost-model verdict (``node.kernel``) wins;
        ``auto`` falls back to type-driven dispatch: sparse x sparse
        runs SpGEMM, sparse x dense runs SpMM, and a sparse *right*
        operand under a dense left one is densified (no dense x sparse
        kernel exists — the cost models treat that case as dense).
        Transposed operand flags force the dense flagged kernel (tiles
        are transposed in memory as they stream, so no transposed copy
        — dense or sparse — ever exists on disk).
        """
        from repro.sparse import SparseTiledMatrix, spgemm, spmm
        if node.trans_a or node.trans_b:
            return square_tile_matmul(
                self.store, self._as_tiled_matrix(a),
                self._as_tiled_matrix(b), self.memory_scalars,
                trans_a=node.trans_a, trans_b=node.trans_b,
                parallel=self._kernel_parallel())
        kernel = getattr(node, "kernel", "auto")
        if kernel == "dense":
            a = self._densified(a)
            b = self._densified(b)
        if isinstance(a, SparseTiledMatrix):
            if isinstance(b, SparseTiledMatrix):
                return spgemm(self.store, a, b)
            return spmm(self.store, a, b, self.memory_scalars,
                        parallel=self._kernel_parallel())
        b = self._densified(b)
        return square_tile_matmul(self.store, a, b, self.memory_scalars,
                                  parallel=self._kernel_parallel())

    def _densified(self, data):
        """Dense view of a forced matrix for tile-streaming consumers.

        Memoized per sparse object (the sparse operand is kept in the
        cache entry so its ``id`` stays valid for the cache's lifetime).
        """
        from repro.sparse import SparseTiledMatrix
        if not isinstance(data, SparseTiledMatrix):
            return data
        cached = self._densified_cache.get(id(data))
        if cached is not None and cached[0] is data:
            return cached[1]
        dense = data.to_dense()
        self._densified_cache[id(data)] = (data, dense)
        return dense

    # ------------------------------------------------------------------
    # Linear systems: solve() and inv()
    # ------------------------------------------------------------------
    def _as_tiled_matrix(self, data) -> TiledMatrix:
        """Coerce a forced matrix operand onto this evaluator's store."""
        data = self._densified(data)
        if isinstance(data, TiledMatrix):
            return data
        return self.store.matrix_from_numpy(
            np.asarray(data, dtype=np.float64), layout="square")

    def _force_solve(self, node: Solve, memo: dict[int, object]):
        """``solve(A, B)``: pivoted out-of-core LU + blocked substitution.

        The factor streams from the tile store; the right-hand side is
        factored once and substituted one memory-sized column panel at
        a time, so a wide B (e.g. a rewritten ``inv(A) %*% B`` with
        matrix B) respects the same budget the factorization does.
        """
        from repro.core.costs import lu_panel_width
        from repro.linalg.lu import lu_decompose
        from repro.linalg.solve import lu_solve_factored
        a = self._as_tiled_matrix(self._force(node.children[0], memo))
        b = self._densified(self._force(node.children[1], memo))
        factors = lu_decompose(self.store, a, self.memory_scalars)
        try:
            if node.ndim == 1:
                rhs = (b.to_numpy() if hasattr(b, "to_numpy")
                       else np.asarray(b, dtype=np.float64))
                x = lu_solve_factored(factors, rhs.ravel(),
                                      self.memory_scalars)
                return self.store.vector_from_numpy(x)
            n, k = node.shape
            b_mat = self._as_tiled_matrix(b)
            out = self.store.create_matrix(node.shape, layout="square")
            pw = lu_panel_width(n, self.memory_scalars,
                                out.tile_shape[1])
            for j0 in range(0, k, pw):
                j1 = min(j0 + pw, k)
                rhs = b_mat.read_submatrix(0, n, j0, j1)
                out.write_submatrix(
                    0, j0,
                    lu_solve_factored(factors, rhs,
                                      self.memory_scalars))
            return out
        finally:
            factors.drop()

    def _force_inverse(self, node: Inverse,
                       memo: dict[int, object]) -> TiledMatrix:
        """Materialize ``inv(A)``: factor once, then substitute one
        memory-sized column panel of the identity at a time.

        This is the plan the ``inv(A) %*% B -> solve(A, B)`` rewrite
        avoids; it exists for programs that genuinely need the inverse.
        """
        from repro.core.costs import lu_panel_width
        from repro.linalg.lu import lu_decompose
        from repro.linalg.solve import lu_solve_factored
        a = self._as_tiled_matrix(self._force(node.children[0], memo))
        n = node.shape[0]
        factors = lu_decompose(self.store, a, self.memory_scalars)
        out = self.store.create_matrix((n, n), layout="square")
        pw = lu_panel_width(n, self.memory_scalars,
                            out.tile_shape[1])
        try:
            for j0 in range(0, n, pw):
                j1 = min(j0 + pw, n)
                rhs = np.zeros((n, j1 - j0))
                rhs[np.arange(j0, j1), np.arange(j1 - j0)] = 1.0
                out.write_submatrix(
                    0, j0,
                    lu_solve_factored(factors, rhs,
                                      self.memory_scalars))
        finally:
            factors.drop()
        return out

    # ------------------------------------------------------------------
    # Streamability analysis lives in the module-level streamable() /
    # collect_barriers() functions, shared with the planner.
    # ------------------------------------------------------------------
    def _collect_barriers(self, node: Node, barriers: list[Node],
                          seen: set[int]) -> None:
        collect_barriers(node, barriers, seen)

    # ------------------------------------------------------------------
    # Fused elementwise streaming
    # ------------------------------------------------------------------
    def _stream_sources(self, node: Node,
                        memo: dict[int, object]) -> list[TiledVector]:
        """Tiled vectors ``_eval_chunk`` will read one chunk of per pass.

        Mirrors ``_eval_chunk``'s dispatch exactly — in particular a
        memoized (barrier) result shadows its subtree — so the returned
        footprint is precise: every listed vector is read chunk-aligned,
        and nothing else is.  Only vectors on this evaluator's store with
        the store's standard chunk grid qualify as prefetch targets.
        """
        sources: list[TiledVector] = []
        seen: set[int] = set()

        def visit(n: Node) -> None:
            if id(n) in seen or isinstance(n, (Scalar, Range)):
                return
            seen.add(id(n))
            data = memo.get(id(n))
            if data is None and isinstance(n, ArrayInput):
                data = n.data
            if isinstance(data, TiledVector):
                if (data.store is self.store
                        and data.chunk == self.store.scalars_per_block):
                    sources.append(data)
                return
            if data is not None:
                return
            if isinstance(n, Map) or (isinstance(n, SubscriptAssign)
                                      and n.logical_mask):
                for c in n.children:
                    visit(c)

        visit(node)
        return sources

    def _stream_window(self, n_sources: int) -> int:
        """Prefetch lookahead (in chunks) that the pool can actually hold.

        Each streamed chunk touches ``n_sources`` input blocks plus one
        output block; the window is sized so a full window of prefetched
        inputs plus the outputs written while consuming it fit in the
        pool together.  An oversized window would evict its own
        prefetched frames before they are read — re-reading them later
        and silently inflating the block totals the cost models rely on.
        """
        per_chunk = n_sources + 1
        fits = max(1, (self.store.pool.capacity - 2) // per_chunk)
        return min(STREAM_PREFETCH_CHUNKS, fits)

    def _prefetch_stream_window(self, sources: list[TiledVector],
                                lo_ci: int, hi_ci: int) -> None:
        """Announce chunks [lo_ci, hi_ci) of every streamed input."""
        keys: list[int] = []
        for vec in sources:
            hi = min(hi_ci, vec.num_chunks)
            if lo_ci < hi:
                keys.extend(vec.blocks_for_chunks(range(lo_ci, hi)))
        if keys:
            self.store.pool.prefetch(keys)

    def _stream_vector(self, node: Node,
                       memo: dict[int, object]) -> TiledVector:
        # Materialize barrier subtrees first (gathers, matmuls, ...).
        barriers: list[Node] = []
        seen: set[int] = set()
        for child in node.children:
            self._collect_barriers(child, barriers, seen)
        for barrier in barriers:
            self._force(barrier, memo)
        n = node.shape[0]
        out = self.store.create_vector(n)
        sources = self._stream_sources(node, memo)
        window = self._stream_window(len(sources))
        for ci in range(out.num_chunks):
            if ci % window == 0:
                self._prefetch_stream_window(sources, ci, ci + window)
            lo, hi = out.chunk_bounds(ci)
            chunk = self._eval_chunk(node, lo, hi, ci, memo)
            if np.ndim(chunk) == 0:
                chunk = np.full(hi - lo, float(chunk))
            out.write_chunk(ci, np.asarray(chunk, dtype=np.float64))
        return out

    def _eval_chunk(self, node: Node, lo: int, hi: int, ci: int,
                    memo: dict[int, object]):
        """Value of ``node[lo:hi)`` (0-based), reading one chunk per leaf."""
        if isinstance(node, Scalar):
            return node.value
        if isinstance(node, Range):
            return np.arange(node.lo + lo, node.lo + hi, dtype=np.float64)
        if id(node) in memo:
            data = memo[id(node)]
            if isinstance(data, TiledVector):
                return data.read_chunk(ci)
            if isinstance(data, float):
                return data
        if isinstance(node, ArrayInput):
            data = node.data
            if isinstance(data, TiledVector):
                return data.read_chunk(ci)
            return np.asarray(data)[lo:hi]
        if isinstance(node, Map):
            fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
            args = [self._eval_chunk(c, lo, hi, ci, memo)
                    for c in node.children]
            return fns[node.op](*args)
        if isinstance(node, SubscriptAssign) and node.logical_mask:
            mask = self._eval_chunk(node.index, lo, hi, ci, memo)
            base = self._eval_chunk(node.base, lo, hi, ci, memo)
            value = (node.value.value if isinstance(node.value, Scalar)
                     else self._eval_chunk(node.value, lo, hi, ci, memo))
            return np.where(np.asarray(mask, dtype=bool), value, base)
        # Barrier node that was pre-forced into memo.
        forced = self._force(node, memo)
        if isinstance(forced, TiledVector):
            return forced.read_chunk(ci)
        return forced

    # ------------------------------------------------------------------
    # Subscript (gather) — selective evaluation
    # ------------------------------------------------------------------
    def _force_subscript(self, node: Subscript,
                         memo: dict[int, object]) -> TiledVector:
        index = self._index_values(node.index, memo)
        src = node.src
        if isinstance(src, ArrayInput) and isinstance(src.data,
                                                      TiledVector):
            gathered = src.data.gather(index - 1)
        elif isinstance(src, Range):
            gathered = (index - 1 + src.lo).astype(np.float64)
        else:
            forced = self._force(src, memo)
            if isinstance(forced, TiledVector):
                gathered = forced.gather(index - 1)
            else:
                gathered = np.asarray(forced)[index - 1]
        out = self.store.create_vector(gathered.size)
        for ci in range(out.num_chunks):
            lo, hi = out.chunk_bounds(ci)
            out.write_chunk(ci, gathered[lo:hi])
        return out

    def _index_values(self, node: Node,
                      memo: dict[int, object]) -> np.ndarray:
        """1-based integer index values of an index expression."""
        if isinstance(node, Range):
            return np.arange(node.lo, node.hi + 1, dtype=np.int64)
        forced = self._force(node, memo)
        if isinstance(forced, TiledVector):
            return forced.to_numpy().astype(np.int64)
        return np.asarray(forced).astype(np.int64)

    def _force_scatter(self, node: SubscriptAssign,
                       memo: dict[int, object]) -> TiledVector:
        """Positional ``b[s] <- v``: copy-on-write then random scatter."""
        base = self._force(node.base, memo)
        if not isinstance(base, TiledVector):
            raise NotImplementedError("scatter base must be a vector")
        index = self._index_values(node.index, memo)
        value = self._force(node.value, memo)
        if isinstance(value, TiledVector):
            values = value.to_numpy()
        elif np.ndim(value) == 0:
            values = np.full(index.size, float(value))
        else:
            values = np.asarray(value, dtype=np.float64)
        out = self.store.create_vector(base.length)
        for ci in range(base.num_chunks):
            out.write_chunk(ci, base.read_chunk(ci))
        out.scatter(index - 1, values)
        return out

    # ------------------------------------------------------------------
    # Reductions / matrices
    # ------------------------------------------------------------------
    def _force_reduce(self, node: Reduce, memo: dict[int, object]):
        child = node.children[0]
        if child.ndim == 2:
            data = self._force(child, memo)
            acc_sum, acc_min, acc_max, count = 0.0, np.inf, -np.inf, 0
            for ti, tj in data.tiles():
                tile = data.read_tile(ti, tj)
                acc_sum += float(tile.sum())
                acc_min = min(acc_min, float(tile.min()))
                acc_max = max(acc_max, float(tile.max()))
                count += tile.size
        else:
            barriers: list[Node] = []
            self._collect_barriers(child, barriers, set())
            for barrier in barriers:
                self._force(barrier, memo)
            n = child.shape[0]
            tmp = self.store.create_vector(n)  # chunk grid template
            sources = self._stream_sources(child, memo)
            window = self._stream_window(len(sources))
            acc_sum, acc_min, acc_max, count = 0.0, np.inf, -np.inf, 0
            for ci in range(tmp.num_chunks):
                if ci % window == 0:
                    self._prefetch_stream_window(sources, ci, ci + window)
                lo, hi = tmp.chunk_bounds(ci)
                chunk = np.asarray(
                    self._eval_chunk(child, lo, hi, ci, memo))
                if chunk.ndim == 0:
                    chunk = np.full(hi - lo, float(chunk))
                acc_sum += float(chunk.sum())
                acc_min = min(acc_min, float(chunk.min()))
                acc_max = max(acc_max, float(chunk.max()))
                count += chunk.size
            tmp.drop()
        if node.op == "sum":
            return acc_sum
        if node.op == "mean":
            return acc_sum / max(count, 1)
        if node.op == "min":
            return acc_min
        return acc_max

    def _stream_matrix(self, node: Node,
                       memo: dict[int, object]) -> TiledMatrix:
        """Tile-aligned elementwise evaluation for matrix Maps."""
        if not isinstance(node, Map):
            raise NotImplementedError(
                f"cannot stream matrix node {type(node).__name__}")
        inputs = []
        for c in node.children:
            if c.shape == ():
                inputs.append(self._force(c, memo))
            else:
                forced = self._densified(self._force(c, memo))
                if not isinstance(forced, TiledMatrix):
                    raise NotImplementedError(
                        "matrix operands must be stored matrices")
                inputs.append(forced)
        template = next(i for i in inputs if isinstance(i, TiledMatrix))
        out = self.store.create_matrix(
            node.shape, tile_shape=template.tile_shape,
            linearization=template.linearization.name)
        fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}
        for ti, tj in out.tiles():
            r0, r1, c0, c1 = out.tile_bounds(ti, tj)
            args = []
            for inp in inputs:
                if isinstance(inp, TiledMatrix):
                    args.append(inp.read_submatrix(r0, r1, c0, c1))
                else:
                    args.append(inp)
            out.write_tile(ti, tj, np.asarray(fns[node.op](*args),
                                              dtype=np.float64))
        return out

    # ------------------------------------------------------------------
    # Fused matmul epilogues
    # ------------------------------------------------------------------
    def _try_fused_epilogue(self, node: Map, memo: dict[int, object]):
        """Runtime fuse-or-not for the tree-dispatch fallback.

        When the Map region is fed by exactly one MatMul/Crossprod that
        will run a dense kernel, the whole scalar expression tree is
        applied to each output submatrix while it is memory-resident
        and written once: the raw product never exists on disk.
        Returns the result matrix, or ``None`` to fall back to the
        materialize-then-stream path (sparse plans, multiple barriers,
        non-conforming shapes).  Plans built by the
        :class:`~repro.core.planner.Planner` make this decision at
        plan time instead, with both alternatives costed.
        """
        from .planner import classify_epilogue_region
        region = classify_epilogue_region(
            node, lambda n: isinstance(n, ArrayInput),
            memo_ids=set(memo))
        if region is None:
            return None
        barriers, matrix_nodes, scalar_nodes, region_edges = region
        if len(barriers) != 1:
            return None
        barrier = barriers[0]
        if barrier.shape != node.shape:
            return None
        for nid, edges in region_edges.items():
            if edges < self._parent_edges.get(nid, 0):
                # The product — or an interior Map on the way to it —
                # has consumers outside this region; fusing (which
                # memoizes neither) would make them recompute the
                # multiply.
                return None
        if isinstance(barrier, MatMul):
            if barrier.kernel == "sparse":
                return None
            a = self._force(barrier.children[0], memo)
            from repro.sparse import SparseTiledMatrix
            if (barrier.kernel == "auto"
                    and not (barrier.trans_a or barrier.trans_b)
                    and isinstance(a, SparseTiledMatrix)):
                return None  # SpMM/SpGEMM dispatch wins; no dense fusion
        for n in matrix_nodes:
            forced = self._as_tiled_matrix(self._force(n, memo))
            if forced.shape != node.shape:
                return None
        return self._run_epilogue(node, barrier, matrix_nodes,
                                  scalar_nodes, memo)

    def _run_epilogue(self, node: Map, barrier: Node,
                      matrix_nodes: list[Node],
                      scalar_nodes: list[Node],
                      memo: dict[int, object]) -> TiledMatrix:
        """Run a fused epilogue region (legality already established).

        Shared by the runtime heuristic above and by
        :class:`~repro.core.plan.FusedEpilogueOp` execution; operand
        and input forcing hits the memo when a plan pre-executed them.
        """
        if isinstance(barrier, MatMul):
            operands = (
                self._as_tiled_matrix(
                    self._force(barrier.children[0], memo)),
                self._as_tiled_matrix(
                    self._force(barrier.children[1], memo)))
        else:
            operands = (self._as_tiled_matrix(
                self._force(barrier.children[0], memo)),)
        inputs: dict[int, TiledMatrix] = {
            id(n): self._as_tiled_matrix(self._force(n, memo))
            for n in matrix_nodes}
        values = {id(n): float(self._force(n, memo))
                  for n in scalar_nodes}
        fns = {**UNARY_OPS, **BINARY_OPS, **TERNARY_OPS}

        def epilogue(r0: int, c0: int, block: np.ndarray) -> np.ndarray:
            r1 = r0 + block.shape[0]
            c1 = c0 + block.shape[1]

            def ev(n: Node):
                if n is barrier:
                    return block
                if id(n) in values:
                    return values[id(n)]
                sub = inputs.get(id(n))
                if sub is not None:
                    return sub.read_submatrix(r0, r1, c0, c1)
                return fns[n.op](*[ev(c) for c in n.children])

            return np.asarray(ev(node), dtype=np.float64)

        if isinstance(barrier, Crossprod):
            return crossprod_matmul(self.store, operands[0],
                                    self.memory_scalars,
                                    t_first=barrier.t_first,
                                    epilogue=epilogue,
                                    epilogue_inputs=len(inputs),
                                    parallel=self._kernel_parallel())
        return square_tile_matmul(self.store, operands[0], operands[1],
                                  self.memory_scalars,
                                  trans_a=barrier.trans_a,
                                  trans_b=barrier.trans_b,
                                  epilogue=epilogue,
                                  epilogue_inputs=len(inputs),
                                  parallel=self._kernel_parallel())

    def _force_transpose(self, node: Transpose,
                         memo: dict[int, object]) -> TiledMatrix:
        """Materialize a *bare* transpose (one read + one write pass).

        The rewriter eliminates transposes that feed products, so this
        fallback only runs for explicitly forced ``t(A)``.  The output
        keeps the source's linearization and carries its name, so a
        stored transpose is as recognizable — and its scans as
        sequential — as the array it came from.
        """
        src = self._densified(self._force(node.children[0], memo))
        out = self.store.create_matrix(
            node.shape, tile_shape=src.tile_shape[::-1],
            linearization=src.linearization.name,
            name=f"t({src.name})")
        for ti, tj in src.tiles():
            r0, r1, c0, c1 = src.tile_bounds(ti, tj)
            out.write_submatrix(c0, r0,
                                src.read_submatrix(r0, r1, c0, c1).T)
        return out
